//! Map algebra: chained boolean operations building a non-trivial zoning
//! map — buildable area = (city ∪ suburbs) \ (water ∪ protected) with a
//! noise-corridor carve-out, demonstrating multi-step pipelines, holes and
//! fill rules.
//!
//! ```sh
//! cargo run --release --example map_algebra
//! ```

use polyclip::datagen::{comb, smooth_blob, star};
use polyclip::prelude::*;

fn main() {
    let opts = ClipOptions::default();

    // Land-use layers (all in the same coordinate frame).
    let city = smooth_blob(1, Point::new(0.0, 0.0), 4.0, 600, 0.25);
    let suburbs = smooth_blob(2, Point::new(3.5, 1.0), 3.0, 400, 0.35);
    let lake = smooth_blob(3, Point::new(-1.5, 0.8), 1.4, 200, 0.2);
    let river = comb(Point::new(-6.0, -2.4), 12, 0.55, 4.0); // branched waterway
    let reserve = star(Point::new(2.0, -2.0), 0.8, 2.0, 7); // protected park

    let step = |name: &str, p: &PolygonSet| {
        println!(
            "{name:<22} {:>3} contour(s)  area {:>9.4}",
            p.len(),
            eo_area(p)
        );
    };
    step("city", &city);
    step("suburbs", &suburbs);
    step("lake", &lake);
    step("river (comb)", &river);
    step("reserve (star)", &reserve);
    println!();

    // metro = city ∪ suburbs
    let metro = clip(&city, &suburbs, BoolOp::Union, &opts);
    step("metro = c ∪ s", &metro);

    // water = lake ∪ river
    let water = clip(&lake, &river, BoolOp::Union, &opts);
    step("water = l ∪ r", &water);

    // no-build = water ∪ reserve
    let no_build = clip(&water, &reserve, BoolOp::Union, &opts);
    step("no-build = w ∪ p", &no_build);

    // buildable = metro \ no-build — expect holes where the lake sits
    // inside the city.
    let buildable = clip(&metro, &no_build, BoolOp::Difference, &opts);
    step("buildable = m \\ nb", &buildable);
    let holes = buildable
        .contours()
        .iter()
        .filter(|c| c.signed_area() < 0.0)
        .count();
    println!("  ({holes} hole(s) in the buildable area)\n");

    // Area identities tie the pipeline together.
    let lhs = eo_area(&metro);
    let rhs = eo_area(&buildable) + eo_area(&clip(&metro, &no_build, BoolOp::Intersection, &opts));
    println!("identity |metro| = |buildable| + |metro ∩ no-build|:");
    println!("  {lhs:.9} = {rhs:.9}  (Δ = {:.2e})", (lhs - rhs).abs());

    // Point queries against the final map.
    for (label, p) in [
        ("downtown", Point::new(0.2, -0.2)),
        ("lake centre", Point::new(-1.5, 0.8)),
        ("park centre", Point::new(2.0, -2.0)),
        ("far offshore", Point::new(20.0, 0.0)),
    ] {
        println!(
            "  can build at {label:<12}? {}",
            buildable.contains(p, FillRule::EvenOdd)
        );
    }
}
