//! Triangulating clipped geometry for rendering — the computer-graphics
//! use-case from the paper's introduction. Clips a star against a blob,
//! extracts the trapezoid decomposition and a triangle mesh, and writes an
//! SVG showing inputs, output contours and the mesh.
//!
//! ```sh
//! cargo run --release --example triangulation [out.svg]
//! ```

use polyclip::core::tess::triangle_area;
use polyclip::datagen::{smooth_blob, star};
use polyclip::geom::svg::{render, SvgLayer};
use polyclip::prelude::*;
use std::fmt::Write as _;

fn main() {
    let subject = star(Point::new(0.0, 0.0), 1.2, 2.8, 9);
    let clip_p = smooth_blob(7, Point::new(0.8, 0.4), 2.0, 160, 0.3);
    let opts = ClipOptions::default();

    let out = clip(&subject, &clip_p, BoolOp::Intersection, &opts);
    let traps = trapezoids(&subject, &clip_p, BoolOp::Intersection, &opts);
    let tris = triangulate(&subject, &clip_p, BoolOp::Intersection, &opts);

    let contour_area = eo_area(&out);
    let trap_area: f64 = traps.iter().map(|t| t.area()).sum();
    let tri_area: f64 = tris.iter().map(triangle_area).sum();

    println!("star ∩ blob:");
    println!(
        "  contours     : {} ({} vertices), area {:.6}",
        out.len(),
        out.vertex_count(),
        contour_area
    );
    println!("  trapezoids   : {}, area {:.6}", traps.len(), trap_area);
    println!("  triangles    : {}, area {:.6}", tris.len(), tri_area);
    println!(
        "  (three independent area computations agree to {:.1e})",
        (contour_area - tri_area)
            .abs()
            .max((contour_area - trap_area).abs())
    );

    // Compose the SVG: inputs faint, result solid, mesh as thin outlines.
    let mesh = PolygonSet::from_contours(tris.iter().map(|t| Contour::new(t.to_vec())).collect());
    let doc = render(
        &[
            SvgLayer {
                polygon: &subject,
                fill: "#1f77b4",
                stroke: "none",
                opacity: 0.15,
            },
            SvgLayer {
                polygon: &clip_p,
                fill: "#d62728",
                stroke: "none",
                opacity: 0.15,
            },
            SvgLayer {
                polygon: &out,
                fill: "#2ca02c",
                stroke: "none",
                opacity: 0.6,
            },
            SvgLayer {
                polygon: &mesh,
                fill: "none",
                stroke: "#145214",
                opacity: 1.0,
            },
        ],
        900,
        FillRule::EvenOdd,
    );

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "triangulation.svg".into());
    std::fs::write(&path, doc).expect("write SVG");
    println!("\nwrote {path}");

    // A tiny OBJ-style dump of the first few triangles, to show mesh export.
    let mut obj = String::new();
    for (i, t) in tris.iter().take(3).enumerate() {
        let _ = writeln!(
            obj,
            "tri {i}: ({:.3},{:.3}) ({:.3},{:.3}) ({:.3},{:.3})",
            t[0].x, t[0].y, t[1].x, t[1].y, t[2].x, t[2].y
        );
    }
    println!("\nfirst triangles:\n{obj}");
}
