//! GIS layer overlay: the paper's real-world workload, on synthetic
//! Table III replica layers.
//!
//! Intersects a replica of dataset 1 (urban areas) with a replica of
//! dataset 2 (state/province boundaries) — the paper's "Intersect (1,2)" —
//! and unions them, reporting per-slab load like Figure 11.
//!
//! ```sh
//! cargo run --release --example gis_overlay [scale]
//! ```
//! `scale` (default 0.02) is the fraction of the full Table III feature
//! counts to generate; 1.0 reproduces the full dataset sizes.

use polyclip::datagen::{generate_layer, table3_spec};
use polyclip::prelude::*;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    let spec1 = table3_spec(1);
    let spec2 = table3_spec(2);
    println!("generating Table III replicas at scale {scale} ...");
    let t0 = Instant::now();
    let urban = Layer::new(generate_layer(&spec1, scale, 101));
    let states = Layer::new(generate_layer(&spec2, scale, 202));
    println!(
        "  {}: {} polys, {} edges",
        spec1.name,
        urban.len(),
        urban.edge_count()
    );
    println!(
        "  {}: {} polys, {} edges  (generated in {:.2?})\n",
        spec2.name,
        states.len(),
        states.edge_count(),
        t0.elapsed()
    );

    let slabs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);
    let opts = ClipOptions::default();

    // Intersect (1,2): pairwise feature intersection.
    let t1 = Instant::now();
    let inter = overlay_intersection(&urban, &states, slabs, SlabAssignment::UniqueOwner, &opts);
    let t_inter = t1.elapsed();
    let inter_area: f64 = inter.features.iter().map(eo_area).sum();
    println!(
        "Intersect(1,2): {} result features from {} candidate pairs in {:.2?}",
        inter.features.len(),
        inter.candidate_pairs,
        t_inter
    );
    println!("  total intersection area: {inter_area:.6}");
    println!("  per-slab clip times (Figure 11 load profile):");
    for (i, d) in inter.per_slab_clip.iter().enumerate() {
        println!("    slab {i:>2}: {d:>10.2?}");
    }
    println!(
        "  load imbalance (max/mean): {:.2}\n",
        inter.load_imbalance()
    );

    // Union (1,2): whole-layer union via the slab-partitioned Algorithm 2.
    let t2 = Instant::now();
    let uni = overlay_union(&urban, &states, slabs, &opts);
    println!(
        "Union(1,2): {} contours, area {:.6}, in {:.2?} over {} slabs",
        uni.output.len(),
        eo_area(&uni.output),
        t2.elapsed(),
        uni.slabs
    );
    println!(
        "  phases: partition(avg) {:.2?}  clip(avg) {:.2?}  merge {:.2?}",
        uni.times.partition_avg(),
        uni.times.clip_avg(),
        uni.times.merge
    );

    // Sanity: inclusion-exclusion across the layers. Same-layer features
    // may overlap (the state tiles do), so the measures use the nonzero
    // rule on whole layers; the pairwise sum above intentionally differs
    // where several features of one layer cover the same clip feature.
    let nz = ClipOptions {
        fill_rule: FillRule::NonZero,
        ..opts
    };
    let a_area = measure_op(&urban.merged(), &PolygonSet::new(), BoolOp::Union, &nz);
    let b_area = measure_op(&states.merged(), &PolygonSet::new(), BoolOp::Union, &nz);
    let i_area = measure_op(&urban.merged(), &states.merged(), BoolOp::Intersection, &nz);
    let u_area = eo_area(&uni.output);
    println!(
        "\ninclusion-exclusion: |1|+|2|−|1∩2| = {:.6} vs |1∪2| = {:.6}  (Δ = {:.2e})",
        a_area + b_area - i_area,
        u_area,
        (a_area + b_area - i_area - u_area).abs()
    );
}
