//! Quickstart: boolean operations on two polygons.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use polyclip::prelude::*;

fn main() {
    // A square and a triangle overlapping it.
    let square = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
    let triangle = PolygonSet::from_xy(&[(2.0, 1.0), (7.0, 2.0), (3.0, 6.0)]);

    println!("subject: square   area = {:.3}", eo_area(&square));
    println!("clip:    triangle area = {:.3}\n", eo_area(&triangle));

    let opts = ClipOptions::default();
    for (name, op) in [
        ("intersection", BoolOp::Intersection),
        ("union        ", BoolOp::Union),
        ("difference   ", BoolOp::Difference),
        ("xor          ", BoolOp::Xor),
    ] {
        let (out, stats) = clip_with_stats(&square, &triangle, op, &opts);
        println!(
            "{name} -> {} contour(s), {} vertices, area {:.4}   [n={}, k={}, k'={}]",
            out.len(),
            out.vertex_count(),
            eo_area(&out),
            stats.n_edges,
            stats.k_intersections,
            stats.k_prime,
        );
        for (i, c) in out.contours().iter().enumerate() {
            let pts: Vec<String> = c
                .points()
                .iter()
                .map(|p| format!("({:.2}, {:.2})", p.x, p.y))
                .collect();
            println!("    contour {i}: {}", pts.join(" "));
        }
    }

    // The identity |A| + |B| = |A∪B| + |A∩B| holds to machine precision.
    let u = measure_op(&square, &triangle, BoolOp::Union, &opts);
    let i = measure_op(&square, &triangle, BoolOp::Intersection, &opts);
    println!(
        "\ninclusion-exclusion check: |A|+|B| = {:.12}, |A∪B|+|A∩B| = {:.12}",
        eo_area(&square) + eo_area(&triangle),
        u + i
    );

    // Self-intersecting inputs are first-class citizens.
    let bowtie = PolygonSet::from_xy(&[(5.0, 0.0), (9.0, 4.0), (9.0, 0.0), (5.0, 4.0)]);
    let band = PolygonSet::from_xy(&[(4.0, 1.0), (10.0, 1.0), (10.0, 3.0), (4.0, 3.0)]);
    let cut = clip(&bowtie, &band, BoolOp::Intersection, &opts);
    println!(
        "\nbow-tie ∩ band: {} contours, area {:.4} (even-odd fill of a self-intersecting input)",
        cut.len(),
        eo_area(&cut)
    );
}
