//! Scaling demo: Algorithm 2's slab decomposition on one machine.
//!
//! Sweeps the slab count for a fixed synthetic polygon pair (the paper's
//! Figure 8 setup) and reports measured wall time plus the critical-path
//! projection (what a machine with ≥ p cores would achieve — on a 1-core
//! host the measured time stays flat while the projection shows the
//! algorithmic speedup).
//!
//! ```sh
//! cargo run --release --example scaling_demo [n_edges]
//! ```

use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);

    let (a, b) = synthetic_pair(n, 42);
    println!("two synthetic polygons with {n} edges each\n");

    // Sequential baseline (our GPC-equivalent).
    let t0 = Instant::now();
    let (base, stats) = clip_with_stats(&a, &b, BoolOp::Intersection, &ClipOptions::sequential());
    let t_seq = t0.elapsed();
    println!(
        "sequential engine: {t_seq:.2?}   (k = {}, k' = {}, {} output vertices)\n",
        stats.k_intersections, stats.k_prime, stats.out_vertices
    );

    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "slabs", "measured", "critical-path", "proj-speedup", "imbalance"
    );
    for slabs in [1usize, 2, 4, 8, 16, 32, 64] {
        let t1 = Instant::now();
        let r = clip_pair_slabs(
            &a,
            &b,
            BoolOp::Intersection,
            slabs,
            &ClipOptions::sequential(),
        );
        let measured = t1.elapsed();

        // Critical path: slowest slab (partition + clip) + sequential merge.
        let critical = r
            .times
            .per_slab_partition
            .iter()
            .zip(&r.times.per_slab_clip)
            .map(|(p, c)| *p + *c)
            .max()
            .unwrap_or(Duration::ZERO)
            + r.times.merge;
        let speedup = t_seq.as_secs_f64() / critical.as_secs_f64().max(1e-9);
        println!(
            "{:>6} {:>12.2?} {:>14.2?} {:>11.2}x {:>10.2}",
            r.slabs,
            measured,
            critical,
            speedup,
            r.times.load_imbalance()
        );

        // Outputs agree with the plain engine for every slab count.
        let delta = (eo_area(&r.output) - eo_area(&base)).abs();
        assert!(delta < 1e-6 * eo_area(&base).max(1.0), "area drift {delta}");
    }
    println!("\n(measured ≈ flat on a single-core host; the critical path is what");
    println!(" p cores realize — the paper's Figure 8 shape)");
}
