//! Offline stand-in for the `libfuzzer-sys` crate.
//!
//! The real crate links LLVM's in-process fuzzer; this container has no
//! registry access, so this stub provides the same `fuzz_target!` macro
//! backed by a deterministic xorshift mutation driver. It understands the
//! subset of libFuzzer's command line our CI uses:
//!
//! * `-max_total_time=<secs>` — stop after roughly that many seconds;
//! * `-runs=<n>` — stop after `n` executions;
//! * `-seed=<n>` — RNG seed (default 1);
//! * `-max_len=<n>` — maximum input length in bytes (default 4096);
//! * bare file paths — replayed once each before (or instead of) the
//!   random loop, matching libFuzzer's corpus/reproducer semantics.
//!
//! A panic in the target aborts the process with a nonzero exit code, so a
//! CI job wrapping the binary fails exactly as it would with libFuzzer.
//! Coverage feedback is *not* simulated: inputs are random/mutated blobs.
//! That is deliberate — the stub's job is to keep the fuzz target building
//! and smoke-running offline, not to replace coverage-guided fuzzing.

/// Deterministic xorshift64* generator: tiny, seedable, dependency-free.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// One mutation step in the style of libFuzzer's default mutator: grow,
/// shrink, flip, splice or overwrite a region of the buffer.
pub fn mutate(data: &mut Vec<u8>, rng: &mut Rng, max_len: usize) {
    match rng.below(6) {
        0 => {
            // Append random bytes.
            let n = 1 + rng.below(16);
            for _ in 0..n {
                if data.len() >= max_len {
                    break;
                }
                data.push(rng.next_u64() as u8);
            }
        }
        1 => {
            // Truncate.
            if !data.is_empty() {
                let n = data.len() - rng.below(data.len());
                data.truncate(n);
            }
        }
        2 => {
            // Flip a bit.
            if !data.is_empty() {
                let i = rng.below(data.len());
                let bit = rng.below(8);
                data[i] ^= 1 << bit;
            }
        }
        3 => {
            // Overwrite a byte with an "interesting" value.
            if !data.is_empty() {
                const INTERESTING: [u8; 10] =
                    [0, 1, 0x7f, 0x80, 0xff, b'(', b')', b',', b'-', b'.'];
                let i = rng.below(data.len());
                data[i] = INTERESTING[rng.below(INTERESTING.len())];
            }
        }
        4 => {
            // Duplicate a random slice (splice with itself).
            if !data.is_empty() && data.len() < max_len {
                let start = rng.below(data.len());
                let len = (1 + rng.below(8)).min(data.len() - start);
                let slice: Vec<u8> = data[start..start + len].to_vec();
                let at = rng.below(data.len() + 1);
                for (k, b) in slice.into_iter().enumerate() {
                    if data.len() >= max_len {
                        break;
                    }
                    data.insert(at + k, b);
                }
            }
        }
        _ => {
            // Swap two bytes.
            if data.len() >= 2 {
                let i = rng.below(data.len());
                let j = rng.below(data.len());
                data.swap(i, j);
            }
        }
    }
}

/// Driver configuration parsed from libFuzzer-style arguments.
pub struct Config {
    pub max_total_time: Option<std::time::Duration>,
    pub runs: Option<u64>,
    pub seed: u64,
    pub max_len: usize,
    pub replay_files: Vec<String>,
}

impl Config {
    pub fn from_args() -> Self {
        let mut cfg = Config {
            max_total_time: None,
            runs: None,
            seed: 1,
            max_len: 4096,
            replay_files: Vec::new(),
        };
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("-max_total_time=") {
                cfg.max_total_time = v.parse().ok().map(std::time::Duration::from_secs);
            } else if let Some(v) = arg.strip_prefix("-runs=") {
                cfg.runs = v.parse().ok();
            } else if let Some(v) = arg.strip_prefix("-seed=") {
                cfg.seed = v.parse().unwrap_or(1);
            } else if let Some(v) = arg.strip_prefix("-max_len=") {
                cfg.max_len = v.parse().unwrap_or(4096);
            } else if !arg.starts_with('-') {
                cfg.replay_files.push(arg);
            }
        }
        // Neither a time budget nor a run count: default to a quick smoke
        // pass rather than running forever.
        if cfg.max_total_time.is_none() && cfg.runs.is_none() && cfg.replay_files.is_empty() {
            cfg.runs = Some(10_000);
        }
        cfg
    }
}

/// Run the fuzz body under the driver loop. Called by `fuzz_target!`.
pub fn drive(body: fn(&[u8])) {
    let cfg = Config::from_args();
    let mut executed: u64 = 0;

    for path in &cfg.replay_files {
        match std::fs::read(path) {
            Ok(bytes) => {
                body(&bytes);
                executed += 1;
            }
            Err(e) => eprintln!("skipping {path}: {e}"),
        }
    }
    if !cfg.replay_files.is_empty() && cfg.max_total_time.is_none() && cfg.runs.is_none() {
        eprintln!("replayed {executed} file(s)");
        return;
    }

    let start = std::time::Instant::now();
    let mut rng = Rng::new(cfg.seed);
    let mut data: Vec<u8> = Vec::new();
    loop {
        if let Some(t) = cfg.max_total_time {
            if start.elapsed() >= t {
                break;
            }
        }
        if let Some(r) = cfg.runs {
            if executed >= r {
                break;
            }
        }
        // Periodically restart from scratch so mutations don't drift into
        // one basin; otherwise mutate the previous input.
        if data.is_empty() || rng.below(64) == 0 {
            data.clear();
            let n = rng.below(cfg.max_len.min(256));
            for _ in 0..n {
                data.push(rng.next_u64() as u8);
            }
        } else {
            mutate(&mut data, &mut rng, cfg.max_len);
        }
        body(&data);
        executed += 1;
    }
    eprintln!(
        "done: {executed} runs in {:.1}s, no failures",
        start.elapsed().as_secs_f64()
    );
}

/// The `libfuzzer-sys` entry-point macro: wraps the body in a `main` that
/// feeds it replayed files and deterministically mutated inputs.
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:block) => {
        fn fuzz_body($data: &[u8]) $body

        fn main() {
            $crate::drive(fuzz_body);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mutate_respects_max_len() {
        let mut rng = Rng::new(3);
        let mut data = vec![1, 2, 3];
        for _ in 0..10_000 {
            mutate(&mut data, &mut rng, 64);
            assert!(data.len() <= 64);
        }
    }
}
