//! Differential fuzz target: engine vs Foster–Overfelt on mutated WKT.
//!
//! Two small polygon sets are decoded from the byte stream, round-tripped
//! through WKT with byte-level corruption (so the pair the clippers see
//! includes whatever parser salvage produced), and fed to both the
//! scanbeam engine and the independent Foster–Overfelt oracle. Cases
//! outside the oracle's contract (self-intersecting or sub-rounding
//! near-contact input, typed engine rejections) are skipped — the oracle
//! of this target is *agreement*: for every supported case, the two
//! implementations' outputs must enclose the same region to within
//! [`ORACLE_REL_TOL`], measured by the band-integration comparator.

use libfuzzer_sys::fuzz_target;
use polyclip::geom::{wkt, Contour, Point, PolygonSet};
use polyclip::prelude::*;

/// Small lattice-coordinate polygon set: coincidences, collinear runs and
/// shared edges are likely rather than measure-zero.
fn decode_set(bytes: &mut impl Iterator<Item = u8>) -> PolygonSet {
    let mut contours = Vec::new();
    let n_contours = 1 + bytes.next().unwrap_or(0) as usize % 3;
    for _ in 0..n_contours {
        let n_pts = bytes.next().unwrap_or(0) as usize % 9;
        let mut pts = Vec::with_capacity(n_pts);
        for _ in 0..n_pts {
            let x = bytes.next().unwrap_or(0) as i8 as f64 / 8.0;
            let y = bytes.next().unwrap_or(0) as i8 as f64 / 8.0;
            pts.push(Point::new(x, y));
        }
        contours.push(Contour::from_raw(pts));
    }
    let mut p = PolygonSet::new();
    *p.contours_mut() = contours;
    p
}

/// WKT round trip with byte mutations; falls back to the original when the
/// corruption broke the syntax (same as a read error).
fn mutate_via_wkt(p: &PolygonSet, bytes: &mut impl Iterator<Item = u8>) -> PolygonSet {
    let mut text = wkt::to_wkt(p).into_bytes();
    let n_mutations = bytes.next().unwrap_or(0) as usize % 8;
    for _ in 0..n_mutations {
        if text.is_empty() {
            break;
        }
        let pos = bytes.next().unwrap_or(0) as usize % text.len();
        text[pos] = bytes.next().unwrap_or(b' ');
    }
    String::from_utf8(text)
        .ok()
        .and_then(|t| wkt::from_wkt(&t).ok())
        .unwrap_or_else(|| p.clone())
}

fuzz_target!(|data: &[u8]| {
    let mut bytes = data.iter().copied();
    let subject = mutate_via_wkt(&decode_set(&mut bytes), &mut bytes);
    let clip_p = mutate_via_wkt(&decode_set(&mut bytes), &mut bytes);

    let flags = bytes.next().unwrap_or(0);
    let op = [
        BoolOp::Intersection,
        BoolOp::Union,
        BoolOp::Difference,
        BoolOp::Xor,
    ][flags as usize % 4];
    let backend =
        [PartitionBackend::FullScan, PartitionBackend::SlabIndex][(flags >> 2) as usize % 2];
    let n_slabs = 1 + (flags >> 3) as usize % 4;

    let fo = FosterOverfeltOracle;
    let reference = match fo.clip(&subject, &clip_p, op) {
        Ok(out) => out,
        Err(OracleError::Unsupported(_)) => return, // outside the contract
        Err(OracleError::Failed(e)) => panic!("FO oracle failed on supported input: {e}"),
    };
    let engine = ScanbeamOracle::new(backend, n_slabs);
    let out = match engine.clip(&subject, &clip_p, op) {
        Ok(out) => out,
        Err(_) => return, // typed rejection is a valid outcome
    };

    let d = compare_outputs(&out, &reference);
    assert!(
        d.within_tolerance(ORACLE_REL_TOL),
        "{:?} {backend:?} p={n_slabs}: engine and Foster–Overfelt disagree: \
         engine area {:.12}, oracle area {:.12}, sym-diff {:.3e}\n\
         subject: {}\nclip: {}",
        op,
        d.area_a,
        d.area_b,
        d.sym_diff_area,
        wkt::to_wkt(&subject),
        wkt::to_wkt(&clip_p),
    );
});
