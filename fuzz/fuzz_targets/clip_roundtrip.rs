//! Fuzz target: mutated WKT/GeoJSON through sanitize → clip → validate.
//!
//! From the raw byte stream we derive two polygon sets, serialize one of
//! them to WKT or GeoJSON, corrupt the text with byte mutations, and try to
//! parse it back — exercising the parsers' tolerance for unclosed rings and
//! junk. Whatever parses (or the original, when the corruption broke the
//! syntax) is clipped against the second set with the full robustness
//! ladder armed. The oracle:
//!
//! * no entry point may panic;
//! * typed errors (`ClipError`) are acceptable, silent corruption is not;
//! * unless the ladder explicitly reported defeat
//!   (`OutputRepaired { rung: Unrepaired, .. }`), the output must be
//!   canonical — zero [`validate`] violations.

use libfuzzer_sys::fuzz_target;
use polyclip::geom::{geojson, wkt, Contour, Point, PolygonSet};
use polyclip::prelude::*;

/// Build a small polygon set from a byte cursor: up to 3 contours of up to
/// 8 vertices, coordinates on a coarse integer-ish lattice so coincidences,
/// collinear runs and duplicates are *likely* rather than measure-zero.
fn decode_set(bytes: &mut impl Iterator<Item = u8>) -> PolygonSet {
    let mut contours = Vec::new();
    let n_contours = 1 + bytes.next().unwrap_or(0) as usize % 3;
    for _ in 0..n_contours {
        let n_pts = bytes.next().unwrap_or(0) as usize % 9;
        let mut pts = Vec::with_capacity(n_pts);
        for _ in 0..n_pts {
            let x = bytes.next().unwrap_or(0) as i8 as f64 / 8.0;
            let y = bytes.next().unwrap_or(0) as i8 as f64 / 8.0;
            pts.push(Point::new(x, y));
        }
        contours.push(Contour::from_raw(pts));
    }
    let mut p = PolygonSet::new();
    *p.contours_mut() = contours;
    p
}

fuzz_target!(|data: &[u8]| {
    let mut bytes = data.iter().copied();
    let subject = decode_set(&mut bytes);
    let clip_p = decode_set(&mut bytes);

    // Serialize the subject, corrupt the text, and try to parse it back.
    let flags = bytes.next().unwrap_or(0);
    let mut text = if flags & 1 == 0 {
        wkt::to_wkt(&subject)
    } else {
        geojson::to_geojson(&subject, flags & 2 != 0)
    };
    let n_mutations = (flags >> 2) as usize % 8;
    {
        let buf = unsafe { text.as_mut_vec() }; // corruption may break UTF-8 …
        for _ in 0..n_mutations {
            if buf.is_empty() {
                break;
            }
            let pos = bytes.next().unwrap_or(0) as usize % buf.len();
            buf[pos] = bytes.next().unwrap_or(b' ');
        }
    }
    // … in which case the parsers never see it (same as a read error).
    let reparsed = String::from_utf8(text.into_bytes())
        .ok()
        .and_then(|t| {
            if flags & 1 == 0 {
                wkt::from_wkt(&t).ok()
            } else {
                geojson::from_geojson(&t).ok()
            }
        })
        .unwrap_or(subject);

    let snap = [0.0, 1e-12, 1e-9, 1e-6][(flags >> 5) as usize % 4];
    let opts = ClipOptions {
        validate_output: true,
        snap_cell: snap,
        ..ClipOptions::sequential()
    };
    let op = [
        BoolOp::Intersection,
        BoolOp::Union,
        BoolOp::Difference,
        BoolOp::Xor,
    ][(flags >> 3) as usize % 4];

    match try_clip(&reparsed, &clip_p, op, &opts) {
        Err(_) => {} // typed rejection is a valid outcome
        Ok(outcome) => {
            let ladder_defeated = outcome.degradations.iter().any(|d| {
                matches!(
                    d,
                    Degradation::OutputRepaired {
                        rung: RepairRung::Unrepaired,
                        ..
                    }
                )
            });
            if !ladder_defeated {
                let rep = validate(&outcome.result);
                assert!(
                    rep.violations.is_empty(),
                    "non-canonical output without a ladder-defeat report: {:?}",
                    &rep.violations[..rep.violations.len().min(3)]
                );
            }
        }
    }
});
