//! Offline stand-in for the `criterion` crate.
//!
//! Supports the `criterion_group!` / `criterion_main!` harness shape and the
//! `benchmark_group` → `bench_function` / `bench_with_input` → `iter` call
//! surface. Each benchmark closure is warmed up once and then timed over a
//! small fixed number of samples; the mean and minimum are printed to
//! stdout. No statistics, plots, or baselines — enough to keep `cargo
//! bench` compiling and producing comparable wall-clock numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the last `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-sample wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.last);
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.run_one(&id.to_string(), f);
    }

    /// Benchmark a routine that takes an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
    }

    /// End the group (printing happens per benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Parse command-line configuration — accepted and ignored offline.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &b.last);
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<48} mean {mean:>12?}   min {min:>12?}   ({} samples)",
        samples.len()
    );
}

/// Collect benchmark functions into one runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_the_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("count", 7), &7u32, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            g.finish();
        }
        // One warm-up call plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        let id = BenchmarkId::new("sort", 1024);
        assert_eq!(id.id, "sort/1024");
    }
}
