//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, range / tuple / collection
//! strategies, `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros with a deterministic runner
//! (seeded per test name). Failing cases report the case number and the
//! assertion message; there is no shrinking — the deterministic seed makes
//! failures reproducible by re-running the test.

pub mod strategy {
    use rand::prelude::*;

    /// A source of random values of one type.
    ///
    /// `sample` is the whole interface: strategies here are generators, not
    /// shrink trees.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe sampling, so heterogeneous strategies can be unified.
    pub trait StrategyObj<T> {
        /// Draw one value.
        fn sample_obj(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn sample_obj(&self, rng: &mut StdRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn StrategyObj<T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample_obj(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample_obj(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f64, f32, usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::prelude::*;

        /// Strategy for `Vec`s with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty length range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The case runner behind the `proptest!` macro.
pub mod test_runner {
    use rand::prelude::*;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw new ones.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a over the test name: deterministic across runs and
        // platforms, distinct per test.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `f` until `cfg.cases` cases are accepted; panic on the first
    /// failure or when rejections swamp acceptances.
    pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(seed_from_name(name));
        let max_rejects = cfg.cases.saturating_mul(16).max(1024);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cfg.cases {
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: {rejected} cases rejected by prop_assume! \
                         with only {accepted} accepted"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {accepted} failed: {msg}")
                }
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::test_runner::run(&cfg, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                #[allow(unused_mut)]
                let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Assert inside a property test; failure reports the case instead of
/// unwinding through arbitrary code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Discard the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let s = (0.0f64..2.0).prop_map(|x| x * 10.0);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((0.0..20.0).contains(&v));
        }
        let t = (0u32..5, 1usize..4);
        for _ in 0..100 {
            let (a, b) = t.sample(&mut rng);
            assert!(a < 5 && (1..4).contains(&b));
        }
        let v = prop::collection::vec(0i32..3, 2..6);
        for _ in 0..50 {
            let xs = v.sample(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| (0..3).contains(&x)));
        }
        let u = prop_oneof![0.0f64..1.0, 5.0f64..6.0];
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            assert!((0.0..1.0).contains(&x) || (5.0..6.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn runner_accepts_passing_property(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x + y >= x, "overflow-free by construction");
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn assume_rejects_and_resamples(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn failing_property_panics_with_case_message() {
        let r = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &ProptestConfig::with_cases(8),
                "always_fails",
                |_rng| -> Result<(), TestCaseError> {
                    Err(TestCaseError::fail("expected failure"))
                },
            );
        });
        assert!(r.is_err());
    }
}
