//! Offline stand-in for the `rand` crate.
//!
//! Provides the names the workspace uses — `rngs::StdRng`, the [`Rng`] and
//! [`SeedableRng`] traits, `gen`, `gen_range`, `gen_bool` — backed by a
//! xoshiro256++ generator seeded through splitmix64 (the exact construction
//! the xoshiro authors recommend). The stream differs from the real
//! `StdRng` (which is ChaCha-based), but every use in this workspace treats
//! the generator as an arbitrary deterministic source, so only determinism
//! per seed matters.

/// A deterministic pseudo-random generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    #[inline]
    fn next(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw; bias is < 2^-64 per draw,
                // irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on an empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The generator interface.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` (uniform over `T`'s standard domain).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl Rng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++ here).
    pub type StdRng = super::Xoshiro256;
}

/// The usual glob import.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
