//! Offline stand-in for the `rayon` crate.
//!
//! This workspace builds in environments with no access to a crates
//! registry, so the real rayon cannot be fetched. This crate provides the
//! subset of rayon's API the workspace uses with identical call-site syntax
//! and semantics:
//!
//! * [`join`] runs its two closures on real OS threads (via
//!   `std::thread::scope`) under a global concurrency budget, falling back
//!   to inline execution when the budget is exhausted — recursive
//!   `join`-based divide-and-conquer (parallel merge sort, tree reductions)
//!   therefore still fans out across cores without unbounded thread spawns;
//! * the `par_iter` / `into_par_iter` / `par_chunks` / `par_sort_*` family
//!   delegates to the standard library's sequential equivalents. Results
//!   are deterministic and bit-identical to rayon's (rayon guarantees
//!   deterministic results for these adapters too), only without
//!   data-parallel speedup.
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no call site needs to change.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Live threads spawned by [`join`] across the whole process.
static LIVE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Decrements the live-thread budget even if a closure panics.
struct BudgetGuard;

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        LIVE_THREADS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The number of threads rayon would use: one per available core.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `b` runs on a scoped OS thread when the global budget (one thread per
/// core) allows; otherwise both closures run inline on the caller's thread.
/// A panic in either closure propagates to the caller, as with rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads().saturating_sub(1);
    if LIVE_THREADS.fetch_add(1, Ordering::Relaxed) >= budget {
        LIVE_THREADS.fetch_sub(1, Ordering::Relaxed);
        return (a(), b());
    }
    let _guard = BudgetGuard;
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// `IntoIterator` under rayon's name: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into an iterator (sequential in this stand-in).
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon's adapter extensions, provided for every iterator.
pub trait ParallelIterator: Iterator + Sized {
    /// rayon's `flat_map_iter`: flat-map producing sequential inner
    /// iterators. Identical to `Iterator::flat_map` here.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// rayon's splitting hint — a no-op for sequential iteration.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// rayon's splitting hint — a no-op for sequential iteration.
    fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Shared-slice methods under rayon's names.
pub trait ParallelSlice<T> {
    /// `slice.par_iter()`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// `slice.par_chunks(n)`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }

    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Mutable-slice methods under rayon's names.
pub trait ParallelSliceMut<T> {
    /// `slice.par_iter_mut()`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// `slice.par_chunks_mut(n)`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// `slice.par_sort_unstable()`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// `slice.par_sort_unstable_by(cmp)`.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;
    /// `slice.par_sort_unstable_by_key(key)`.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

/// `collection.par_extend(iter)` under rayon's name.
pub trait ParallelExtend<T> {
    /// Extend from an iterator (sequential in this stand-in).
    fn par_extend<I: IntoIterator<Item = T>>(&mut self, iter: I);
}

impl<T> ParallelExtend<T> for Vec<T> {
    fn par_extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.extend(iter);
    }
}

/// The traits a `use rayon::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelExtend, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests_beyond_the_thread_budget() {
        fn sum(xs: &[u64]) -> u64 {
            if xs.len() <= 2 {
                return xs.iter().sum();
            }
            let mid = xs.len() / 2;
            let (l, r) = super::join(|| sum(&xs[..mid]), || sum(&xs[mid..]));
            l + r
        }
        let xs: Vec<u64> = (0..1000).collect();
        assert_eq!(sum(&xs), 999 * 1000 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            super::join(|| 0, || panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn adapters_match_sequential_results() {
        let xs = vec![3u32, 1, 2];
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let flat: Vec<u32> = (0u32..3).into_par_iter().flat_map_iter(|i| 0..i).collect();
        assert_eq!(flat, vec![0, 0, 1]);

        let mut ys = xs.clone();
        ys.par_sort_unstable();
        assert_eq!(ys, vec![1, 2, 3]);

        let mut out: Vec<u32> = Vec::new();
        out.par_extend(xs.par_chunks(2).map(|c| c.iter().sum::<u32>()));
        assert_eq!(out, vec![4, 2]);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
