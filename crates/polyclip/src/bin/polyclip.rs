//! `polyclip` — command-line polygon clipping.
//!
//! ```sh
//! polyclip <op> <subject.wkt> <clip.wkt> [-o out.wkt] [--svg out.svg]
//!          [--fill-rule evenodd|nonzero] [--slabs N] [--stats]
//! ```
//!
//! `op` is one of `intersection`, `union`, `difference`, `xor`. Inputs are
//! WKT `POLYGON`/`MULTIPOLYGON` files; output is WKT on stdout or `-o`, and
//! optionally an SVG rendering of subject (blue), clip (red) and result
//! (green).

use polyclip::geom::svg::{render, SvgLayer};
use polyclip::geom::wkt::{from_wkt, to_wkt};
use polyclip::prelude::*;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: polyclip <intersection|union|difference|xor> <subject.wkt> <clip.wkt>\n\
         \x20      [-o out.wkt] [--svg out.svg] [--fill-rule evenodd|nonzero]\n\
         \x20      [--slabs N] [--stats]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let op = match args[0].as_str() {
        "intersection" => BoolOp::Intersection,
        "union" => BoolOp::Union,
        "difference" => BoolOp::Difference,
        "xor" => BoolOp::Xor,
        _ => usage(),
    };

    let mut out_path: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut opts = ClipOptions::default();
    let mut slabs: Option<usize> = None;
    let mut stats = false;
    let mut it = args[3..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => out_path = it.next().cloned(),
            "--svg" => svg_path = it.next().cloned(),
            "--fill-rule" => match it.next().map(String::as_str) {
                Some("evenodd") => opts.fill_rule = FillRule::EvenOdd,
                Some("nonzero") => opts.fill_rule = FillRule::NonZero,
                _ => usage(),
            },
            "--slabs" => slabs = it.next().and_then(|s| s.parse().ok()),
            "--stats" => stats = true,
            _ => usage(),
        }
    }

    let read = |path: &str| -> Result<PolygonSet, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        from_wkt(text.trim()).map_err(|e| format!("{path}: {e}"))
    };
    let (subject, clip_p) = match (read(&args[1]), read(&args[2])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (result, st) = match slabs {
        Some(p) if p > 1 => {
            let r = clip_pair_slabs(&subject, &clip_p, op, p, &opts);
            (r.output, None)
        }
        _ => {
            let (out, st) = clip_with_stats(&subject, &clip_p, op, &opts);
            (out, Some(st))
        }
    };

    if stats {
        if let Some(st) = st {
            eprintln!(
                "n={} k={} k'={} beams={} out_contours={} out_vertices={} area={:.6}",
                st.n_edges,
                st.k_intersections,
                st.k_prime,
                st.n_beams,
                st.out_contours,
                st.out_vertices,
                eo_area(&result)
            );
        } else {
            eprintln!("contours={} area={:.6}", result.len(), eo_area(&result));
        }
    }

    let wkt = to_wkt(&result);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, wkt + "\n") {
                eprintln!("error writing {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{wkt}"),
    }

    if let Some(p) = svg_path {
        let doc = render(
            &[
                SvgLayer {
                    polygon: &subject,
                    fill: "#1f77b4",
                    stroke: "none",
                    opacity: 0.3,
                },
                SvgLayer {
                    polygon: &clip_p,
                    fill: "#d62728",
                    stroke: "none",
                    opacity: 0.3,
                },
                SvgLayer {
                    polygon: &result,
                    fill: "#2ca02c",
                    stroke: "#145214",
                    opacity: 0.85,
                },
            ],
            800,
            opts.fill_rule,
        );
        if let Err(e) = std::fs::write(&p, doc) {
            eprintln!("error writing {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
