//! # polyclip — output-sensitive parallel polygon clipping
//!
//! A from-scratch Rust implementation of Puri & Prasad, *"Output-Sensitive
//! Parallel Algorithm for Polygon Clipping"* (ICPP 2014): a parallelization
//! of Vatti-style plane-sweep clipping built from prefix sums, parallel
//! merge sort with inversion reporting, and segment trees — plus the
//! practical multi-threaded slab-partitioning clipper the paper evaluates on
//! GIS data.
//!
//! ## Capabilities
//!
//! * boolean operations (∩, ∪, \, ⊕) on **arbitrary** polygons: convex,
//!   concave, multi-contour, holes, self-intersecting — under even-odd or
//!   nonzero fill rules;
//! * **output-sensitive** cost `O((n + k + k') log(n + k + k'))`: work scales
//!   with the number of intersections actually present;
//! * sequential mode (a GPC-equivalent scanbeam clipper) and parallel modes:
//!   fine-grained per-scanbeam parallelism (Algorithm 1) and slab
//!   partitioning (Algorithm 2);
//! * GIS layer overlay (pairwise feature intersection, whole-layer union)
//!   with slab load balancing;
//! * classical baselines: Sutherland–Hodgman, Liang–Barsky,
//!   Greiner–Hormann;
//! * synthetic workload generators replicating the paper's Table III
//!   datasets.
//!
//! ## Quick start
//!
//! ```
//! use polyclip::prelude::*;
//!
//! let subject = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
//! let clip_p = PolygonSet::from_xy(&[(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]);
//!
//! let result = clip(&subject, &clip_p, BoolOp::Intersection, &ClipOptions::default());
//! assert!((eo_area(&result) - 4.0).abs() < 1e-9);
//! ```
//!
//! ## Error handling
//!
//! Every lenient entry point (`clip`, `clip_pair_slabs`, the overlay
//! functions) has a fallible `try_*` twin returning typed [`ClipError`]s
//! (`prelude::ClipError`) for non-finite inputs and unrecoverable slab
//! failures, and a [`ClipOutcome`](prelude::ClipOutcome) listing the
//! [`Degradation`](prelude::Degradation)s the pipeline absorbed (sanitized
//! contours, slab retries/fallbacks, refinement exhaustion):
//!
//! ```
//! use polyclip::prelude::*;
//!
//! let subject = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
//! let clip_p = PolygonSet::from_xy(&[(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]);
//!
//! let outcome = try_clip_with_stats(&subject, &clip_p, BoolOp::Intersection,
//!                                   &ClipOptions::default()).unwrap();
//! assert!(outcome.is_clean());
//! // `strict()` refuses lossy degradations (accepted residuals, dropped
//! // fragments) while letting exact recoveries (retries, fallbacks) pass.
//! let (result, _stats) = outcome.strict().unwrap();
//! assert!((eo_area(&result) - 4.0).abs() < 1e-9);
//!
//! // Non-finite coordinates are rejected up front, not propagated as NaN.
//! let bad = PolygonSet::from_xy(&[(0.0, 0.0), (f64::NAN, 1.0), (1.0, 1.0)]);
//! let err = try_clip(&bad, &clip_p, BoolOp::Union, &ClipOptions::default());
//! assert!(matches!(err, Err(ClipError::NonFiniteInput { .. })));
//! ```
//!
//! ## Dirty input
//!
//! Real-world GIS data arrives with duplicate vertices, spikes, and
//! collinear runs. The engine's sanitizer (on by default via
//! [`ClipOptions`](prelude::ClipOptions)`::sanitize`) repairs such input
//! before the sweep and records the repair as a
//! [`Degradation::InputRepaired`](prelude::Degradation). Lenient callers get
//! the repaired answer; `strict()` callers get a typed rejection instead:
//!
//! ```
//! use polyclip::prelude::*;
//!
//! // A square with a duplicated corner and a zero-width spike.
//! let dirty = PolygonSet::from_contours(vec![Contour::from_raw(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(4.0, 0.0),
//!     Point::new(4.0, 0.0),            // duplicate vertex
//!     Point::new(5.0, 0.0),
//!     Point::new(4.0, 0.0),            // ...and back: a spike
//!     Point::new(4.0, 4.0),
//!     Point::new(0.0, 4.0),
//! ])]);
//! let clip_p = PolygonSet::from_xy(&[(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]);
//!
//! let outcome = try_clip_with_stats(&dirty, &clip_p, BoolOp::Intersection,
//!                                   &ClipOptions::default()).unwrap();
//! assert!(outcome
//!     .degradations
//!     .iter()
//!     .any(|d| matches!(d, Degradation::InputRepaired { .. })));
//! // The lenient answer is the clipped repaired polygon...
//! assert!((eo_area(&outcome.result) - 4.0).abs() < 1e-9);
//! // ...but strict() refuses to pretend the input was clean.
//! assert!(matches!(outcome.strict(), Err(ClipError::DirtyInput { .. })));
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`geom`] | `polyclip-geom` | points, segments, contours, robust predicates |
//! | [`parprim`] | `polyclip-parprim` | scans, packing, parallel sort, inversions |
//! | [`segtree`] | `polyclip-segtree` | segment tree, count-then-report queries |
//! | [`sweep`] | `polyclip-sweep` | scanbeams, virtual vertices, intersection discovery |
//! | [`seqclip`] | `polyclip-seqclip` | Sutherland–Hodgman, Liang–Barsky, Greiner–Hormann |
//! | [`core`] | `polyclip-core` | the clipping engine, Algorithm 1 & 2, layer overlay |
//! | [`datagen`] | `polyclip-datagen` | synthetic & Table III workload generators |

pub use polyclip_core as core;
pub use polyclip_datagen as datagen;
pub use polyclip_geom as geom;
pub use polyclip_parprim as parprim;
pub use polyclip_segtree as segtree;
pub use polyclip_seqclip as seqclip;
pub use polyclip_sweep as sweep;

/// The most common imports in one place.
pub mod prelude {
    pub use polyclip_core::algo2::{
        clip_pair_slabs, clip_pair_slabs_backend, clip_pair_slabs_with, MergeStrategy,
        PartitionBackend,
    };
    pub use polyclip_core::{
        clip, clip_with_stats, dissolve, eo_area, measure_op, overlay_difference,
        overlay_intersection, overlay_union, Algo2Result, BoolOp, ClipOptions, ClipStats, Layer,
        OverlayResult, PhaseTimes, SlabAssignment,
    };
    pub use polyclip_core::{
        clip_prepared, try_clip_prepared, try_clip_prepared_backend, PreparedLayer,
    };
    pub use polyclip_core::{
        compare_outputs, ClipOracle, DiffReport, FosterOverfeltOracle, OracleError, ScanbeamOracle,
        ORACLE_REL_TOL,
    };
    pub use polyclip_core::{intersection_all, subtract_all, union_all, xor_all};
    pub use polyclip_core::{sanitize_set, SanitizeOptions, SanitizeReport};
    pub use polyclip_core::{
        trapezoids, triangulate, validate, Trapezoid, ValidationReport, Violation,
    };
    pub use polyclip_core::{
        try_clip, try_clip_pair_slabs, try_clip_pair_slabs_backend, try_clip_pair_slabs_with,
        try_clip_with_stats, try_overlay_difference, try_overlay_intersection, try_overlay_union,
        ClipError, ClipOutcome, Degradation, FaultPlan, InputRole, RepairRung,
    };
    pub use polyclip_core::{CancelToken, ExecBudget, MeterSnapshot, WorkMeter};
    pub use polyclip_geom::{BBox, Contour, FillRule, Point, PolygonSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_end_to_end() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let b = a.translate(Point::new(1.0, 1.0));
        let i = clip(&a, &b, BoolOp::Intersection, &ClipOptions::default());
        assert!((eo_area(&i) - 1.0).abs() < 1e-9);
        let r = clip_pair_slabs(&a, &b, BoolOp::Union, 2, &ClipOptions::sequential());
        assert!((eo_area(&r.output) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn prepared_layer_facade_build_once_clip_many() {
        let base = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let layer = PreparedLayer::build(&base, &ClipOptions::default()).unwrap();
        let q = PolygonSet::from_xy(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let r = clip_prepared(&layer, &q, BoolOp::Intersection, 2, &ClipOptions::default());
        assert!((eo_area(&r.output) - 4.0).abs() < 1e-9);
        assert!(r.times.prepared_reused);
    }
}
