//! Prefix sums (scans), sequential and parallel.
//!
//! Lemma 3 of the paper reduces "is this vertex contributing?" to an even-odd
//! parity test expressed as an all-prefix-sums problem over edge labels. The
//! parallel scan here is the classic two-pass blocked algorithm: per-block
//! reduction, scan of block sums, then per-block rescan — `O(n)` work,
//! `O(log n)` depth with enough processors, matching the PRAM bound used in
//! the paper's analysis.

use crate::SEQ_CUTOFF;
use rayon::prelude::*;

/// Sequential inclusive scan: `out[i] = op(x[0], ..., x[i])`.
pub fn inclusive_scan<T, F>(xs: &[T], op: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<T> = None;
    for &x in xs {
        let v = match acc {
            None => x,
            Some(a) => op(a, x),
        };
        out.push(v);
        acc = Some(v);
    }
    out
}

/// Sequential exclusive scan: `out[i] = op(id, x[0], ..., x[i-1])`.
pub fn exclusive_scan<T, F>(xs: &[T], identity: T, op: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = identity;
    for &x in xs {
        out.push(acc);
        acc = op(acc, x);
    }
    out
}

/// Parallel inclusive scan (blocked two-pass).
///
/// `op` must be associative; the identity is only required for the exclusive
/// variant. Falls back to the sequential scan below [`SEQ_CUTOFF`].
pub fn par_inclusive_scan<T, F>(xs: &[T], op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        return inclusive_scan(xs, op);
    }
    let threads = rayon::current_num_threads().max(1);
    let block = n.div_ceil(threads * 4).max(1);

    // Pass 1: per-block totals.
    let totals: Vec<T> = xs
        .par_chunks(block)
        .map(|c| {
            let mut acc = c[0];
            for &x in &c[1..] {
                acc = op(acc, x);
            }
            acc
        })
        .collect();

    // Scan of block totals (small, sequential).
    let offsets = exclusive_scan_opt(&totals, &op);

    // Pass 2: rescan each block seeded with its offset.
    let mut out: Vec<T> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    {
        out.reserve(n);
    }
    out.resize(n, xs[0]); // placeholder values, fully overwritten below
    out.par_chunks_mut(block)
        .zip(xs.par_chunks(block))
        .enumerate()
        .for_each(|(bi, (oc, ic))| {
            let mut acc = match &offsets[bi] {
                Some(seed) => op(*seed, ic[0]),
                None => ic[0],
            };
            oc[0] = acc;
            for i in 1..ic.len() {
                acc = op(acc, ic[i]);
                oc[i] = acc;
            }
        });
    out
}

/// Exclusive scan without an identity element: `out[i] = Some(total of
/// blocks 0..i)`, `None` for `i == 0`.
fn exclusive_scan_opt<T, F>(xs: &[T], op: &F) -> Vec<Option<T>>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<T> = None;
    for &x in xs {
        out.push(acc);
        acc = Some(match acc {
            None => x,
            Some(a) => op(a, x),
        });
    }
    out
}

/// Parallel exclusive scan.
pub fn par_exclusive_scan<T, F>(xs: &[T], identity: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    if xs.is_empty() {
        return Vec::new();
    }
    // Exclusive = shift of inclusive with identity in front.
    let inc = par_inclusive_scan(xs, &op);
    let mut out = Vec::with_capacity(xs.len());
    out.push(identity);
    out.extend_from_slice(&inc[..xs.len() - 1]);
    out
}

/// The paper's Lemma 3 parity test, vectorized.
///
/// Given edge labels (`true` = the edge belongs to the *other* polygon),
/// returns for every position whether the count of other-polygon edges at or
/// before it is **odd** — i.e. whether a vertex of this polygon lying just
/// after that edge is inside the other polygon and therefore *contributing*.
pub fn parity_prefix(labels: &[bool]) -> Vec<bool> {
    inclusive_scan(
        &labels.iter().map(|&b| b as u32).collect::<Vec<_>>(),
        |a, b| a + b,
    )
    .into_iter()
    .map(|c| c % 2 == 1)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_scan_matches_manual() {
        assert_eq!(
            inclusive_scan(&[1, 2, 3, 4], |a, b| a + b),
            vec![1, 3, 6, 10]
        );
        assert_eq!(
            inclusive_scan::<i32, _>(&[], |a, b| a + b),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn exclusive_scan_matches_manual() {
        assert_eq!(
            exclusive_scan(&[1, 2, 3, 4], 0, |a, b| a + b),
            vec![0, 1, 3, 6]
        );
    }

    #[test]
    fn par_scan_agrees_with_sequential_across_sizes() {
        for n in [0usize, 1, 2, 100, SEQ_CUTOFF, SEQ_CUTOFF + 1, 50_000] {
            let xs: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(2654435761) % 97)
                .collect();
            let seq = inclusive_scan(&xs, |a, b| a + b);
            let par = par_inclusive_scan(&xs, |a, b| a + b);
            assert_eq!(seq, par, "inclusive mismatch at n={n}");
            let seqx = exclusive_scan(&xs, 0, |a, b| a + b);
            let parx = par_exclusive_scan(&xs, 0, |a, b| a + b);
            assert_eq!(seqx, parx, "exclusive mismatch at n={n}");
        }
    }

    #[test]
    fn par_scan_with_non_commutative_op() {
        // Max-suffix-like op: (a, b) -> concat order matters. Use string-ish
        // encoding via pairs (first, last) to detect order violations.
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Chain(u64, u64);
        let op = |a: Chain, b: Chain| Chain(a.0, b.1);
        let xs: Vec<Chain> = (0..20_000u64).map(|i| Chain(i, i)).collect();
        let par = par_inclusive_scan(&xs, op);
        for (i, c) in par.iter().enumerate() {
            assert_eq!(*c, Chain(0, i as u64));
        }
    }

    #[test]
    fn parity_prefix_is_lemma3() {
        // Labels: edges of the clip polygon marked true. A subject vertex is
        // contributing when an odd number of clip edges lie to its left.
        let labels = [false, true, false, true, true, false];
        assert_eq!(
            parity_prefix(&labels),
            vec![false, true, true, false, true, true]
        );
    }

    #[test]
    fn scan_on_floats_is_deterministic() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i % 7) as f64 * 0.5).collect();
        let a = par_inclusive_scan(&xs, |x, y| x + y);
        let b = par_inclusive_scan(&xs, |x, y| x + y);
        assert_eq!(a, b);
    }
}
