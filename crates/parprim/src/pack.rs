//! Array packing (stream compaction) and output-sensitive scatter.
//!
//! The paper repeatedly uses the pattern *count the output size, allocate
//! exactly that many processors/slots, then fill* — for reporting edges in
//! scanbeams (Step 2), reporting inversion pairs (Lemma 4), and removing
//! virtual vertices after the merge ("the virtual vertices are removed
//! finally by array packing"). [`scatter_offsets`] is that pattern's core:
//! it turns per-producer counts into disjoint output ranges via an exclusive
//! prefix sum.

use crate::scan::exclusive_scan;
use crate::SEQ_CUTOFF;
use rayon::prelude::*;

/// Sequential pack: keep the elements whose predicate holds, preserving
/// order. (Equivalent to `filter().collect()`, spelled as count + scatter to
/// mirror the PRAM formulation.)
pub fn pack<T: Copy, F: Fn(&T) -> bool>(xs: &[T], keep: F) -> Vec<T> {
    xs.iter().copied().filter(|x| keep(x)).collect()
}

/// Parallel pack with stable order: per-chunk count, exclusive scan of chunk
/// counts, then parallel scatter into an exactly-sized output.
pub fn par_pack<T, F>(xs: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    par_pack_indexed(xs, |_, x| keep(x))
}

/// [`par_pack`] whose predicate also sees the element's global index —
/// the building block for packs that inspect a neighbourhood, like
/// [`par_dedup_adjacent`].
pub fn par_pack_indexed<T, F>(xs: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Send + Sync,
{
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        return xs
            .iter()
            .enumerate()
            .filter(|(i, x)| keep(*i, x))
            .map(|(_, x)| *x)
            .collect();
    }
    let threads = rayon::current_num_threads().max(1);
    let block = n.div_ceil(threads * 4).max(1);

    let counts: Vec<usize> = xs
        .par_chunks(block)
        .enumerate()
        .map(|(bi, c)| {
            let base = bi * block;
            c.iter()
                .enumerate()
                .filter(|(j, x)| keep(base + j, x))
                .count()
        })
        .collect();
    let total: usize = counts.iter().sum();
    let offsets = exclusive_scan(&counts, 0, |a, b| a + b);

    let mut out: Vec<T> = Vec::with_capacity(total);
    // Fill via per-chunk scatter into disjoint ranges of the output.
    // Safety-free formulation: collect per-chunk vectors in parallel and
    // concatenate sequentially would copy twice; instead use unsafe-free
    // split_at_mut based distribution.
    out.resize(total, xs[0]); // placeholder, fully overwritten
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(counts.len());
    {
        let mut rest: &mut [T] = &mut out;
        for (bi, &c) in counts.iter().enumerate() {
            debug_assert!(offsets[bi] + c <= total);
            let (head, tail) = rest.split_at_mut(c);
            slices.push(head);
            rest = tail;
        }
    }
    slices
        .into_par_iter()
        .zip(xs.par_chunks(block))
        .enumerate()
        .for_each(|(bi, (dst, src))| {
            let base = bi * block;
            let mut k = 0;
            for (j, x) in src.iter().enumerate() {
                if keep(base + j, x) {
                    dst[k] = *x;
                    k += 1;
                }
            }
            debug_assert_eq!(k, dst.len());
        });
    out
}

/// Remove adjacent duplicates from a **sorted** slice by parallel pack
/// (`dedup` as stream compaction): keep `xs[i]` iff it differs from its
/// left neighbour. On sorted input this yields the distinct values, exactly
/// like `Vec::dedup` — but with O(n / p + log n) depth.
pub fn par_dedup_adjacent<T>(xs: &[T]) -> Vec<T>
where
    T: Copy + Send + Sync + PartialEq,
{
    par_pack_indexed(xs, |i, x| i == 0 || xs[i - 1] != *x)
}

/// Turn per-producer output counts into `(offsets, total)`.
///
/// `offsets[i]` is the index at which producer `i` may start writing; the
/// ranges `offsets[i] .. offsets[i] + counts[i]` partition `0..total`. This
/// is the paper's output-sensitive allocation step: run a counting pass,
/// prefix-sum the counts, allocate `total` slots (processors), fill.
pub fn scatter_offsets(counts: &[usize]) -> (Vec<usize>, usize) {
    let offsets = exclusive_scan(counts, 0, |a, b| a + b);
    let total = counts.iter().sum();
    (offsets, total)
}

/// Parallel count-then-fill: each of `n` producers reports its count, gets a
/// disjoint output range, and fills it. Returns the concatenated output.
///
/// `count(i)` must equal the number of items `fill(i, ...)` appends.
pub fn par_count_then_fill<T, C, F>(n: usize, count: C, fill: F) -> Vec<T>
where
    T: Send + Sync + Copy + Default,
    C: Fn(usize) -> usize + Send + Sync,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    let counts: Vec<usize> = (0..n).into_par_iter().map(&count).collect();
    let (offsets, total) = scatter_offsets(&counts);
    let mut out = vec![T::default(); total];
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(n);
    {
        let mut rest: &mut [T] = &mut out;
        for &c in &counts {
            let (head, tail) = rest.split_at_mut(c);
            slices.push(head);
            rest = tail;
        }
    }
    let _ = offsets; // offsets are implicit in the slice partitioning
    slices
        .into_par_iter()
        .enumerate()
        .for_each(|(i, dst)| fill(i, dst));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_keeps_order() {
        let xs = [5, 1, 8, 2, 9, 3];
        assert_eq!(pack(&xs, |&x| x > 2), vec![5, 8, 9, 3]);
    }

    #[test]
    fn par_pack_agrees_with_sequential() {
        for n in [0usize, 10, SEQ_CUTOFF + 1, 30_000] {
            let xs: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
            let keep = |x: &u32| x.is_multiple_of(3);
            assert_eq!(par_pack(&xs, keep), pack(&xs, keep), "n={n}");
        }
    }

    #[test]
    fn par_pack_all_and_none() {
        let xs: Vec<u32> = (0..20_000).collect();
        assert_eq!(par_pack(&xs, |_| true), xs);
        assert!(par_pack(&xs, |_| false).is_empty());
    }

    #[test]
    fn par_pack_indexed_sees_global_indices() {
        let n = 3 * SEQ_CUTOFF;
        let xs: Vec<u32> = (0..n as u32).collect();
        // Keep exactly the elements whose *index* is a multiple of 7; with
        // xs[i] == i this is checkable without the index.
        let got = par_pack_indexed(&xs, |i, _| i % 7 == 0);
        let want: Vec<u32> = (0..n as u32).filter(|x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_dedup_adjacent_matches_vec_dedup() {
        for n in [0usize, 1, 5, SEQ_CUTOFF + 3, 30_000] {
            let mut xs: Vec<u32> = (0..n as u32).map(|i| i / 17).collect();
            xs.sort_unstable();
            let mut want = xs.clone();
            want.dedup();
            assert_eq!(par_dedup_adjacent(&xs), want, "n={n}");
        }
    }

    #[test]
    fn scatter_offsets_partition() {
        let counts = [3usize, 0, 5, 2];
        let (offsets, total) = scatter_offsets(&counts);
        assert_eq!(offsets, vec![0, 3, 3, 8]);
        assert_eq!(total, 10);
    }

    #[test]
    fn count_then_fill_produces_disjoint_ranges() {
        // Producer i emits i copies of i.
        let out = par_count_then_fill(
            5,
            |i| i,
            |i, dst| {
                for d in dst.iter_mut() {
                    *d = i;
                }
            },
        );
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3, 4, 4, 4, 4]);
    }

    #[test]
    fn count_then_fill_empty_producers() {
        let out: Vec<usize> = par_count_then_fill(3, |_| 0, |_, _| {});
        assert!(out.is_empty());
    }
}
