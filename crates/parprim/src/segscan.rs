//! Segmented scans — the flat-data-parallel form of "a prefix sum per
//! scanbeam".
//!
//! Step 3 of the paper's Algorithm 1 runs four parity prefix sums *in every
//! scanbeam*. On a PRAM (or GPU, per the paper's conclusion) the standard
//! formulation concatenates all beams into one array with segment-start
//! flags and runs a single **segmented scan**: the combine operator stops at
//! segment boundaries, so one `O(n)`-work, `O(log n)`-depth pass computes
//! every beam's prefix sums at once, independent of how skewed the beam
//! sizes are — exactly the load-balance argument for the flat formulation.

use crate::SEQ_CUTOFF;
use rayon::prelude::*;

/// Sequential segmented inclusive scan: `flags[i]` marks the first element
/// of a segment; within each segment, `out[i] = op(seg_start.. ..=i)`.
pub fn seg_inclusive_scan<T, F>(xs: &[T], flags: &[bool], op: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    assert_eq!(xs.len(), flags.len());
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<T> = None;
    for (i, &x) in xs.iter().enumerate() {
        let v = match (flags[i], acc) {
            (false, Some(a)) => op(a, x),
            _ => x,
        };
        out.push(v);
        acc = Some(v);
    }
    out
}

/// Parallel segmented inclusive scan via the classic flag-carrying trick:
/// lift `(value, flag)` pairs into a monoid whose combine respects segment
/// starts, then run an ordinary parallel scan.
pub fn par_seg_inclusive_scan<T, F>(xs: &[T], flags: &[bool], op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    assert_eq!(xs.len(), flags.len());
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        return seg_inclusive_scan(xs, flags, op);
    }
    // (value, started): combine(a, b) = if b.started { b } else { (op(a.v, b.v), a.started) }
    let lifted: Vec<(T, bool)> = xs
        .par_iter()
        .zip(flags.par_iter())
        .map(|(&x, &f)| (x, f))
        .collect();
    let combined =
        crate::scan::par_inclusive_scan(&lifted, |a, b| if b.1 { b } else { (op(a.0, b.0), a.1) });
    combined.into_par_iter().map(|(v, _)| v).collect()
}

/// Per-segment totals (the last scanned value of each segment), paired with
/// the segment's start index. Sequential helper used by the tests and by
/// count-style reductions.
pub fn segment_totals<T, F>(xs: &[T], flags: &[bool], op: F) -> Vec<(usize, T)>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let scanned = seg_inclusive_scan(xs, flags, op);
    let mut out = Vec::new();
    for i in 0..xs.len() {
        let last_of_segment = i + 1 == xs.len() || flags[i + 1];
        if last_of_segment {
            let start = (0..=i).rev().find(|&j| flags[j]).unwrap_or(0);
            out.push((start, scanned[i]));
        }
    }
    out
}

/// Build segment-start flags from a CSR offset array (`offsets[i]` = start
/// of segment i, last entry = total length).
pub fn flags_from_offsets(offsets: &[usize]) -> Vec<bool> {
    let total = *offsets.last().unwrap_or(&0);
    let mut flags = vec![false; total];
    for &o in &offsets[..offsets.len().saturating_sub(1)] {
        if o < total {
            flags[o] = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_restarts_at_flags() {
        let xs = [1u32, 2, 3, 4, 5, 6];
        let flags = [true, false, false, true, false, false];
        assert_eq!(
            seg_inclusive_scan(&xs, &flags, |a, b| a + b),
            vec![1, 3, 6, 4, 9, 15]
        );
    }

    #[test]
    fn singleton_segments_are_identity() {
        let xs = [7u32, 8, 9];
        let flags = [true, true, true];
        assert_eq!(seg_inclusive_scan(&xs, &flags, |a, b| a + b), vec![7, 8, 9]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 40_000;
        let xs: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
        // Segments of irregular length (skewed, like scanbeams).
        let mut flags = vec![false; n];
        let mut i = 0;
        let mut step = 1;
        while i < n {
            flags[i] = true;
            i += step;
            step = step % 97 + 1;
        }
        let seq = seg_inclusive_scan(&xs, &flags, |a, b| a + b);
        let par = par_seg_inclusive_scan(&xs, &flags, |a, b| a + b);
        assert_eq!(seq, par);
    }

    #[test]
    fn lemma3_parity_across_all_beams_at_once() {
        // Two beams' clip-edge labels, concatenated: parity prefix per beam
        // in one pass — the flat form of the paper's Lemma 3.
        let labels = [1u32, 0, 1, /* beam 2 */ 1, 1, 0, 1];
        let flags = [true, false, false, true, false, false, false];
        let parity: Vec<bool> = seg_inclusive_scan(&labels, &flags, |a, b| a + b)
            .into_iter()
            .map(|c| c % 2 == 1)
            .collect();
        assert_eq!(parity, vec![true, true, false, true, false, false, true]);
    }

    #[test]
    fn totals_and_offsets_roundtrip() {
        let offsets = [0usize, 3, 3, 7];
        let flags = flags_from_offsets(&offsets);
        assert_eq!(flags, vec![true, false, false, true, false, false, false]);
        let xs = [1u32; 7];
        let totals = segment_totals(&xs, &flags, |a, b| a + b);
        assert_eq!(totals, vec![(0, 3), (3, 4)]);
    }

    #[test]
    fn empty_input() {
        let out = par_seg_inclusive_scan::<u32, _>(&[], &[], |a, b| a + b);
        assert!(out.is_empty());
        assert!(flags_from_offsets(&[0]).is_empty());
    }
}
