//! Parallel merge sort.
//!
//! The PRAM analysis assumes Cole's pipelined O(log n)-time merge sort. On a
//! multicore, the practical equivalent is a fork-join merge sort whose merge
//! step is itself parallel via rank splitting (the "merge path" technique):
//! O(n log n) work and O(log³ n) span — polylogarithmic depth, exactly the
//! regime the paper's Lemmas exploit.

use crate::interrupt::Gate;
use crate::SEQ_CUTOFF;

/// Sort a slice in parallel by a key-extraction comparison.
///
/// Stable within sequential base cases; overall stability is preserved
/// because merges take from the left run on ties.
pub fn par_merge_sort<T, F>(xs: &mut [T], cmp: F)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    par_merge_sort_gated(xs, cmp, None);
}

/// [`par_merge_sort`] with a cooperative interruption [`Gate`]: the fork-join
/// recursion polls the gate once per merge block (each node above
/// [`SEQ_CUTOFF`]) and abandons the remaining work when it trips. The slice
/// is then left in an *unspecified permutation* of its input — callers must
/// check the gate after the call and discard the data when tripped.
pub fn par_merge_sort_gated<T, F>(xs: &mut [T], cmp: F, gate: Option<&Gate>)
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        xs.sort_by(cmp);
        return;
    }
    let mut buf = vec![T::default(); n];
    sort_into(xs, &mut buf, cmp, false, gate);
}

/// Recursive sort: if `into_buf`, the sorted output lands in `buf`,
/// otherwise in `xs`. Both slices have equal length.
fn sort_into<T, F>(xs: &mut [T], buf: &mut [T], cmp: F, into_buf: bool, gate: Option<&Gate>)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    // Per-merge-block interruption point: one poll per recursion node, far
    // above the sequential base-case granularity.
    if gate.is_some_and(|g| g.is_tripped()) {
        if into_buf {
            buf.copy_from_slice(xs);
        }
        return;
    }
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        xs.sort_by(cmp);
        if into_buf {
            buf.copy_from_slice(xs);
        }
        return;
    }
    let mid = n / 2;
    let (xl, xr) = xs.split_at_mut(mid);
    let (bl, br) = buf.split_at_mut(mid);
    // Sort halves into the *opposite* location, then merge back.
    rayon::join(
        || sort_into(xl, bl, cmp, !into_buf, gate),
        || sort_into(xr, br, cmp, !into_buf, gate),
    );
    if into_buf {
        // Halves are in xs; merge xs -> buf.
        par_merge_into(xl, xr, buf, cmp);
    } else {
        par_merge_into(bl, br, xs, cmp);
    }
}

/// Sort and deduplicate an owned vector — the parallel replacement for the
/// ubiquitous `v.sort_unstable(); v.dedup();` event-schedule idiom (the
/// paper's Step 1). Below [`SEQ_CUTOFF`] it runs exactly that sequential
/// idiom; above it, [`par_merge_sort`] plus dedup-by-pack
/// ([`crate::pack::par_dedup_adjacent`]). `Ord` keys are totally ordered, so
/// both routes produce the identical vector.
pub fn par_sort_dedup<T>(xs: Vec<T>) -> Vec<T>
where
    T: Copy + Send + Sync + Default + Ord,
{
    par_sort_dedup_gated(xs, None)
}

/// [`par_sort_dedup`] under a [`Gate`]: bails between the sort and dedup
/// passes (and per merge block inside the sort) when the gate trips. The
/// returned vector is then unspecified — callers must check the gate.
pub fn par_sort_dedup_gated<T>(mut xs: Vec<T>, gate: Option<&Gate>) -> Vec<T>
where
    T: Copy + Send + Sync + Default + Ord,
{
    if xs.len() <= SEQ_CUTOFF {
        xs.sort_unstable();
        xs.dedup();
        return xs;
    }
    par_merge_sort_gated(&mut xs, |a, b| a.cmp(b), gate);
    if gate.is_some_and(|g| g.is_tripped()) {
        return xs;
    }
    crate::pack::par_dedup_adjacent(&xs)
}

/// Parallel merge of two sorted runs into `out` (`out.len() == a.len() +
/// b.len()`), splitting recursively by the median rank.
pub fn par_merge<T, F>(a: &[T], b: &[T], cmp: F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    let mut out = vec![T::default(); a.len() + b.len()];
    par_merge_into(a, b, &mut out, cmp);
    out
}

fn par_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + Copy,
{
    debug_assert_eq!(a.len() + b.len(), out.len());
    if out.len() <= SEQ_CUTOFF {
        seq_merge_into(a, b, out, cmp);
        return;
    }
    // Split the larger run at its midpoint; binary-search the split value's
    // rank in the smaller run; recurse on the two halves in parallel.
    let (a, b) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    // NOTE: after a potential swap, ties must still prefer the originally
    // left run; using `<=`-style partition keeps the merge correct (it may
    // reorder equal elements, acceptable for our key types which are total).
    let am = a.len() / 2;
    let pivot = &a[am];
    let bm = b.partition_point(|x| cmp(x, pivot) == std::cmp::Ordering::Less);
    let (a_lo, a_hi) = a.split_at(am);
    let (b_lo, b_hi) = b.split_at(bm);
    let (out_lo, out_hi) = out.split_at_mut(am + bm);
    rayon::join(
        || par_merge_into(a_lo, b_lo, out_lo, cmp),
        || par_merge_into(a_hi, b_hi, out_hi, cmp),
    );
}

fn seq_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: F)
where
    T: Copy,
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == std::cmp::Ordering::Less {
            out[k] = b[j];
            j += 1;
        } else {
            out[k] = a[i];
            i += 1;
        }
        k += 1;
    }
    if i < a.len() {
        out[k..].copy_from_slice(&a[i..]);
    } else {
        out[k..].copy_from_slice(&b[j..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn sorts_random_inputs_of_many_sizes() {
        let mut rng = xorshift(42);
        for n in [0usize, 1, 2, 3, 100, SEQ_CUTOFF, SEQ_CUTOFF + 7, 100_000] {
            let mut xs: Vec<u64> = (0..n).map(|_| rng() % 1000).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            par_merge_sort(&mut xs, |a, b| a.cmp(b));
            assert_eq!(xs, want, "n={n}");
        }
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let mut asc: Vec<u64> = (0..50_000).collect();
        let want = asc.clone();
        par_merge_sort(&mut asc, |a, b| a.cmp(b));
        assert_eq!(asc, want);

        let mut desc: Vec<u64> = (0..50_000).rev().collect();
        par_merge_sort(&mut desc, |a, b| a.cmp(b));
        assert_eq!(desc, want);
    }

    #[test]
    fn sorts_by_custom_comparator() {
        let mut xs: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i % 13, i)).collect();
        par_merge_sort(&mut xs, |a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        for w in xs.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 >= w[1].1));
        }
    }

    #[test]
    fn par_merge_basic() {
        let a = [1, 3, 5, 7];
        let b = [2, 4, 6];
        assert_eq!(
            par_merge(&a, &b, |x, y| x.cmp(y)),
            vec![1, 2, 3, 4, 5, 6, 7]
        );
        assert_eq!(par_merge(&a, &[], |x, y| x.cmp(y)), a.to_vec());
        assert_eq!(par_merge(&[], &b, |x, y| x.cmp(y)), b.to_vec());
    }

    #[test]
    fn par_merge_large_runs() {
        let a: Vec<u64> = (0..60_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..60_000).map(|i| i * 2 + 1).collect();
        let merged = par_merge(&a, &b, |x, y| x.cmp(y));
        let want: Vec<u64> = (0..120_000).collect();
        assert_eq!(merged, want);
    }

    #[test]
    fn par_sort_dedup_equals_sequential_idiom() {
        let mut rng = xorshift(7);
        for n in [0usize, 1, 100, SEQ_CUTOFF, SEQ_CUTOFF + 1, 120_000] {
            let xs: Vec<u64> = (0..n).map(|_| rng() % 500).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            want.dedup();
            assert_eq!(par_sort_dedup(xs), want, "n={n}");
        }
    }

    #[test]
    fn duplicates_survive_sorting() {
        let mut xs = vec![3u32; 10_000];
        xs.extend(vec![1u32; 10_000]);
        par_merge_sort(&mut xs, |a, b| a.cmp(b));
        assert_eq!(xs.iter().filter(|&&x| x == 1).count(), 10_000);
        assert_eq!(xs.iter().filter(|&&x| x == 3).count(), 10_000);
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    }
}
