//! Cooperative interruption and work accounting for bounded execution.
//!
//! The paper's output-sensitive bound promises work proportional to the
//! number of intersections `k` — but an adversarial input can drive `k`
//! toward `n²`, and a service clipping untrusted polygons cannot let one
//! request pin every core until it finishes or OOMs. This module provides
//! the low-level primitives the pipeline uses to stay bounded:
//!
//! * [`CancelToken`] — an `Arc<AtomicBool>`-based cooperative cancellation
//!   flag, cloneable across threads, flipped once and observed by cheap
//!   relaxed loads;
//! * [`WorkMeter`] — lock-free relaxed counters for intersections found,
//!   events processed, vertices emitted, and peak scratch bytes;
//! * [`Gate`] — a cancel token + optional deadline + optional work limits
//!   bundled behind two check entry points: [`Gate::poll`] (two relaxed
//!   atomic loads, safe to call per scanbeam / per merge block) and
//!   [`Gate::checkpoint`] (adds an `Instant::now()` clock read and the
//!   meter-vs-limit comparisons; called at phase boundaries).
//!
//! Checks are deliberately **coarse**: per scanbeam in the sweep, per batch
//! in the segment-tree count-then-report path, per merge block in the
//! parallel sort, per slab in Algorithm 2. A tripped gate makes the gated
//! primitives bail out early with truncated output; callers observe the trip
//! at the next phase boundary and surface a typed error, so truncated data
//! never escapes an API boundary.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cooperative cancellation token. Clones share the same flag; once
/// [`cancel`](CancelToken::cancel)ed the token stays cancelled forever.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Safe to call from any thread, any number of
    /// times; the pipeline observes it at its next checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested? A single relaxed load.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free work counters, updated with relaxed atomics so metering adds no
/// synchronization to the hot paths. Counts are exact for deterministic
/// quantities (every worker adds its true local count) but the *interleaving*
/// of updates across slabs is scheduling-dependent — which is why limits are
/// enforced at coarse checkpoints rather than per increment.
#[derive(Debug, Default)]
pub struct WorkMeter {
    intersections: AtomicU64,
    events: AtomicU64,
    vertices: AtomicU64,
    peak_scratch_bytes: AtomicU64,
    scratch_reused_bytes: AtomicU64,
}

impl WorkMeter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_intersections(&self, n: u64) {
        self.intersections.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_events(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_vertices(&self, n: u64) {
        self.vertices.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a scratch-buffer high-water mark (bytes). Keeps the maximum
    /// over all reports, not the sum: concurrent buffers are short-lived and
    /// the quantity of interest is the largest single allocation.
    pub fn record_scratch_bytes(&self, bytes: u64) {
        self.peak_scratch_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Credit bytes of scratch capacity that were *reused* instead of
    /// freshly allocated (arena buffers handed back to a later refinement
    /// round or slab). Unlike the peak, reuse accumulates: the quantity of
    /// interest is the total allocation traffic the arena avoided.
    pub fn add_scratch_reused(&self, bytes: u64) {
        self.scratch_reused_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn intersections(&self) -> u64 {
        self.intersections.load(Ordering::Relaxed)
    }

    pub fn vertices(&self) -> u64 {
        self.vertices.load(Ordering::Relaxed)
    }

    /// Snapshot all counters at once.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            intersections: self.intersections.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            vertices: self.vertices.load(Ordering::Relaxed),
            peak_scratch_bytes: self.peak_scratch_bytes.load(Ordering::Relaxed),
            scratch_reused_bytes: self.scratch_reused_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`WorkMeter`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Intersection pairs discovered by inversion reporting / residual
    /// crossing discovery.
    pub intersections: u64,
    /// Sub-edge/beam incidences processed by the sweep (the paper's `k'`
    /// scale factor).
    pub events: u64,
    /// Output fragments gathered before stitching (each contributes at most
    /// two output vertices).
    pub vertices: u64,
    /// Largest single scratch allocation observed (bytes).
    pub peak_scratch_bytes: u64,
    /// Total scratch-arena capacity reused across refinement rounds and
    /// slabs instead of being freshly allocated (bytes, accumulated).
    pub scratch_reused_bytes: u64,
}

/// Why a [`Gate`] tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The [`CancelToken`] was fired.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A work limit (`max_intersections` / `max_vertices`) was exceeded.
    BudgetExceeded,
}

/// An armed execution gate: cancellation + optional deadline + optional work
/// limits, sharing one [`WorkMeter`]. Passed by `&Gate` through the gated
/// pipeline; `Sync` because all state is atomic.
///
/// Once tripped, a gate stays tripped (the first reason wins) — gated
/// primitives use that latch to bail out of deep recursion quickly.
#[derive(Debug)]
pub struct Gate {
    cancel: CancelToken,
    deadline: Option<Instant>,
    max_intersections: Option<u64>,
    max_vertices: Option<u64>,
    meter: Arc<WorkMeter>,
    /// 0 = open, else `TripReason as u8 + 1`.
    tripped: AtomicU8,
}

impl Gate {
    /// Build a gate from its parts. `deadline` is absolute — convert a
    /// `Duration` budget *once* at the public API boundary so nested calls
    /// can never reset the clock.
    pub fn new(
        cancel: CancelToken,
        deadline: Option<Instant>,
        max_intersections: Option<u64>,
        max_vertices: Option<u64>,
        meter: Arc<WorkMeter>,
    ) -> Self {
        Gate {
            cancel,
            deadline,
            max_intersections,
            max_vertices,
            meter,
            tripped: AtomicU8::new(0),
        }
    }

    /// A gate that never trips on time or work (it still honours its own
    /// fresh cancel token, which nobody else holds). Used by ungated public
    /// wrappers so gated internals need no `Option<&Gate>` plumbing.
    pub fn unlimited() -> Self {
        Gate::new(
            CancelToken::new(),
            None,
            None,
            None,
            Arc::new(WorkMeter::new()),
        )
    }

    /// Derive a child gate sharing this gate's cancel token, meter, and work
    /// limits, but with its own (typically earlier) deadline and a fresh
    /// latch. Algorithm 2 uses this to give each slab a watchdog deadline.
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> Gate {
        Gate::new(
            self.cancel.clone(),
            deadline,
            self.max_intersections,
            self.max_vertices,
            Arc::clone(&self.meter),
        )
    }

    pub fn meter(&self) -> &WorkMeter {
        &self.meter
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Latch the gate shut with `reason` (first reason wins).
    pub fn trip(&self, reason: TripReason) {
        let code = reason as u8 + 1;
        let _ = self
            .tripped
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    fn tripped_reason(&self) -> Option<TripReason> {
        match self.tripped.load(Ordering::Relaxed) {
            0 => None,
            1 => Some(TripReason::Cancelled),
            2 => Some(TripReason::DeadlineExceeded),
            _ => Some(TripReason::BudgetExceeded),
        }
    }

    /// Cheap check: the latch plus the cancel flag — two relaxed loads, no
    /// clock read. Suitable for per-scanbeam / per-merge-block frequency.
    pub fn poll(&self) -> Option<TripReason> {
        if let Some(r) = self.tripped_reason() {
            return Some(r);
        }
        if self.cancel.is_cancelled() {
            self.trip(TripReason::Cancelled);
            return Some(TripReason::Cancelled);
        }
        None
    }

    /// `poll()` as a boolean, for tight loops.
    pub fn is_tripped(&self) -> bool {
        self.poll().is_some()
    }

    /// Full check: cancellation, then the deadline clock, then the meter
    /// against the work limits. Called at phase boundaries and per batch in
    /// the heavy loops.
    pub fn checkpoint(&self) -> Option<TripReason> {
        if let Some(r) = self.poll() {
            return Some(r);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.trip(TripReason::DeadlineExceeded);
                return Some(TripReason::DeadlineExceeded);
            }
        }
        if let Some(limit) = self.max_intersections {
            if self.meter.intersections() > limit {
                self.trip(TripReason::BudgetExceeded);
                return Some(TripReason::BudgetExceeded);
            }
        }
        if let Some(limit) = self.max_vertices {
            if self.meter.vertices() > limit {
                self.trip(TripReason::BudgetExceeded);
                return Some(TripReason::BudgetExceeded);
            }
        }
        None
    }

    /// Would crediting `extra` more intersections exceed the limit? Trips
    /// the gate if so. Lets inversion reporting refuse the `O(k)` fill phase
    /// *before* allocating the output, which is the whole point of
    /// count-then-report.
    ///
    /// The refused count IS credited to the meter: the work was *discovered*
    /// even though its report was never allocated. This keeps the overflow
    /// visible to every gate sharing the meter — in particular the global
    /// gate above a slab watchdog, whose checkpoint must distinguish "the
    /// run's budget blew" from "only this slab's watchdog fired".
    pub fn intersections_would_exceed(&self, extra: u64) -> bool {
        if let Some(limit) = self.max_intersections {
            if self.meter.intersections().saturating_add(extra) > limit {
                self.meter.add_intersections(extra);
                self.trip(TripReason::BudgetExceeded);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        u.cancel(); // idempotent
        assert!(u.is_cancelled());
    }

    #[test]
    fn unlimited_gate_never_trips() {
        let g = Gate::unlimited();
        g.meter().add_intersections(u64::MAX / 2);
        g.meter().add_vertices(u64::MAX / 2);
        assert_eq!(g.poll(), None);
        assert_eq!(g.checkpoint(), None);
    }

    #[test]
    fn deadline_in_the_past_trips_on_checkpoint_only() {
        let g = Gate::new(
            CancelToken::new(),
            Some(Instant::now() - Duration::from_secs(1)),
            None,
            None,
            Arc::new(WorkMeter::new()),
        );
        assert_eq!(g.poll(), None, "poll never reads the clock");
        assert_eq!(g.checkpoint(), Some(TripReason::DeadlineExceeded));
        assert_eq!(g.poll(), Some(TripReason::DeadlineExceeded), "latched");
    }

    #[test]
    fn first_trip_reason_wins() {
        let cancel = CancelToken::new();
        let g = Gate::new(
            cancel.clone(),
            None,
            Some(10),
            None,
            Arc::new(WorkMeter::new()),
        );
        g.meter().add_intersections(11);
        assert_eq!(g.checkpoint(), Some(TripReason::BudgetExceeded));
        cancel.cancel();
        assert_eq!(g.checkpoint(), Some(TripReason::BudgetExceeded));
    }

    #[test]
    fn child_shares_cancel_and_meter_but_not_latch() {
        let parent = Gate::new(
            CancelToken::new(),
            None,
            Some(100),
            None,
            Arc::new(WorkMeter::new()),
        );
        let child = parent.child_with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(child.checkpoint(), Some(TripReason::DeadlineExceeded));
        // The child's deadline trip does not latch the parent.
        assert_eq!(parent.checkpoint(), None);
        // But work metered through the child is visible to the parent.
        child.meter().add_intersections(101);
        assert_eq!(parent.checkpoint(), Some(TripReason::BudgetExceeded));
    }

    #[test]
    fn would_exceed_credits_discovery_and_latches() {
        let g = Gate::new(
            CancelToken::new(),
            None,
            Some(10),
            None,
            Arc::new(WorkMeter::new()),
        );
        g.meter().add_intersections(8);
        assert!(!g.intersections_would_exceed(2));
        assert_eq!(g.meter().intersections(), 8, "a clean peek does not credit");
        assert!(g.intersections_would_exceed(3));
        assert_eq!(g.meter().intersections(), 11, "the overflow is recorded");
        assert_eq!(g.poll(), Some(TripReason::BudgetExceeded), "and it latches");
        // Gates sharing the meter now see the blown budget at checkpoint.
        let sibling = g.child_with_deadline(None);
        assert_eq!(sibling.checkpoint(), Some(TripReason::BudgetExceeded));
    }

    #[test]
    fn meter_snapshot_reads_all_counters() {
        let m = WorkMeter::new();
        m.add_intersections(3);
        m.add_events(5);
        m.add_vertices(7);
        m.record_scratch_bytes(100);
        m.record_scratch_bytes(50); // max, not sum
        m.add_scratch_reused(40);
        m.add_scratch_reused(2); // sum, not max
        assert_eq!(
            m.snapshot(),
            MeterSnapshot {
                intersections: 3,
                events: 5,
                vertices: 7,
                peak_scratch_bytes: 100,
                scratch_reused_bytes: 42,
            }
        );
    }
}
