//! Parallel primitives underpinning the PRAM algorithm of Puri & Prasad
//! (ICPP 2014).
//!
//! The paper's central claim is that output-sensitive polygon clipping can be
//! built from *nothing but* sorting and prefix sums (plus a segment tree for
//! the partitioning step). This crate provides those building blocks:
//!
//! * [`scan`] — sequential and parallel prefix sums (inclusive/exclusive) and
//!   the parity prefix test of the paper's Lemma 3;
//! * [`pack`] — array packing / stream compaction and the two-phase
//!   *count → allocate → fill* pattern the paper uses for output-sensitive
//!   processor allocation;
//! * [`sort`] — parallel merge sort with a parallel merge (the practical
//!   stand-in for Cole's pipelined mergesort used in the PRAM analysis);
//! * [`inversions`] — inversion counting and **inversion-pair reporting**
//!   (the paper's Lemma 4: an extended merge sort whose merge step counts and
//!   then reports cross-inversions, which identify intersecting edge pairs
//!   within a scanbeam);
//! * [`interrupt`] — cooperative cancellation tokens, work meters, and the
//!   execution [`Gate`] checked at coarse checkpoints so the whole pipeline
//!   can run under deadlines and work budgets.

pub mod interrupt;
pub mod inversions;
pub mod pack;
pub mod scan;
pub mod segscan;
pub mod sort;

pub use interrupt::{CancelToken, Gate, MeterSnapshot, TripReason, WorkMeter};
pub use inversions::{
    count_inversions, par_count_inversions, par_report_inversions, par_report_inversions_gated,
    report_inversions, report_inversions_in, InvScratch,
};
pub use pack::{
    pack, par_count_then_fill, par_dedup_adjacent, par_pack, par_pack_indexed, scatter_offsets,
};
pub use scan::{exclusive_scan, inclusive_scan, par_exclusive_scan, par_inclusive_scan};
pub use segscan::{flags_from_offsets, par_seg_inclusive_scan, seg_inclusive_scan};
pub use sort::{
    par_merge, par_merge_sort, par_merge_sort_gated, par_sort_dedup, par_sort_dedup_gated,
};

/// Default sequential cutoff below which parallel routines fall back to their
/// sequential counterparts. Chosen so that rayon task overhead stays well
/// under the work per task.
pub const SEQ_CUTOFF: usize = 4096;
