//! Inversion counting and reporting — the paper's Lemma 4.
//!
//! *"If the edges span a bounded region, the number of edge intersections can
//! be found within the region simply by knowing the order in which the edges
//! intersect the boundary of the region."* Within one scanbeam every active
//! edge spans the full beam, so the permutation between the bottom-scanline
//! order and the top-scanline order encodes exactly which pairs cross: pair
//! `(i, j)` crosses iff it is an **inversion** of that permutation.
//!
//! The paper extends Cole's merge sort so that the merge step first *counts*
//! cross-inversions (one run of the sort), then — after output-sensitive
//! processor allocation — *reports* each inversion pair in O(1) per pair
//! (a second run assisted by the `Cnt`/`Sum` auxiliary arrays). Our multicore
//! realization keeps the same two-phase structure: a counting pass using
//! merge-sort (sequential) or sorted-halves + binary-search ranks (parallel),
//! then a count → prefix-sum → fill reporting pass
//! ([`crate::pack::scatter_offsets`]).

use crate::pack::scatter_offsets;
use crate::SEQ_CUTOFF;
use rayon::prelude::*;

/// Count inversions `(i < j, xs[i] > xs[j])` by merge sort. `O(n log n)`.
pub fn count_inversions<T: Ord + Copy>(xs: &[T]) -> u64 {
    let mut work: Vec<T> = xs.to_vec();
    let mut buf = work.clone();
    count_rec(&mut work, &mut buf)
}

fn count_rec<T: Ord + Copy>(xs: &mut [T], buf: &mut [T]) -> u64 {
    let n = xs.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let mut inv = {
        let (xl, xr) = xs.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        count_rec(xl, bl) + count_rec(xr, br)
    };
    // Merge, counting cross inversions: when an element of the right half is
    // emitted while `mid - i` left elements remain, each of those forms an
    // inversion with it (the paper's Inv_m).
    {
        let (mut i, mut j, mut k) = (0, mid, 0);
        while i < mid && j < n {
            if xs[j] < xs[i] {
                inv += (mid - i) as u64;
                buf[k] = xs[j];
                j += 1;
            } else {
                buf[k] = xs[i];
                i += 1;
            }
            k += 1;
        }
        while i < mid {
            buf[k] = xs[i];
            i += 1;
            k += 1;
        }
        while j < n {
            buf[k] = xs[j];
            j += 1;
            k += 1;
        }
    }
    xs.copy_from_slice(&buf[..n]);
    inv
}

/// Report every inversion as an **index pair** `(i, j)` with `i < j` and
/// `xs[i] > xs[j]`. Output order is unspecified. `O(n log n + k)` where `k`
/// is the number of inversions.
pub fn report_inversions<T: Ord + Copy>(xs: &[T]) -> Vec<(usize, usize)> {
    let mut scratch = InvScratch::default();
    let mut out = Vec::new();
    report_inversions_in(xs, &mut scratch, &mut out);
    out
}

/// Reusable working buffers for [`report_inversions_in`]: the index
/// permutation and its merge buffer. Keeping one per worker thread makes
/// repeated per-beam reporting allocation-free once capacity is established.
#[derive(Debug, Default)]
pub struct InvScratch {
    idx: Vec<usize>,
    buf: Vec<usize>,
}

impl InvScratch {
    /// Bytes of heap capacity currently held by the scratch buffers.
    pub fn capacity_bytes(&self) -> u64 {
        ((self.idx.capacity() + self.buf.capacity()) * std::mem::size_of::<usize>()) as u64
    }
}

/// [`report_inversions`] into caller-supplied buffers: `out` is cleared and
/// filled with the inversion pairs; `scratch` is reused across calls so the
/// steady state performs no allocation. Results are identical to
/// [`report_inversions`].
pub fn report_inversions_in<T: Ord + Copy>(
    xs: &[T],
    scratch: &mut InvScratch,
    out: &mut Vec<(usize, usize)>,
) {
    out.clear();
    scratch.idx.clear();
    scratch.idx.extend(0..xs.len());
    scratch.buf.clear();
    scratch.buf.resize(xs.len(), 0);
    report_rec(xs, &mut scratch.idx, &mut scratch.buf, out);
}

fn report_rec<T: Ord + Copy>(
    vals: &[T],
    idx: &mut [usize],
    buf: &mut [usize],
    out: &mut Vec<(usize, usize)>,
) {
    let n = idx.len();
    if n <= 1 {
        return;
    }
    let mid = n / 2;
    {
        let (il, ir) = idx.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        report_rec(vals, il, bl, out);
        report_rec(vals, ir, br, out);
    }
    let (mut i, mut j, mut k) = (0, mid, 0);
    while i < mid && j < n {
        if vals[idx[j]] < vals[idx[i]] {
            // idx[i..mid] all pair with idx[j]; original positions preserved
            // because we sort index arrays, so (left index, right index) is a
            // genuine (i < j) inversion of the input.
            for &li in &idx[i..mid] {
                out.push((li, idx[j]));
            }
            buf[k] = idx[j];
            j += 1;
        } else {
            buf[k] = idx[i];
            i += 1;
        }
        k += 1;
    }
    while i < mid {
        buf[k] = idx[i];
        i += 1;
        k += 1;
    }
    while j < n {
        buf[k] = idx[j];
        j += 1;
        k += 1;
    }
    idx.copy_from_slice(&buf[..n]);
}

/// Report inversions as **value pairs** `(xs[i], xs[j])` — the form of the
/// paper's Table I.
pub fn report_inversion_values<T: Ord + Copy>(xs: &[T]) -> Vec<(T, T)> {
    report_inversions(xs)
        .into_iter()
        .map(|(i, j)| (xs[i], xs[j]))
        .collect()
}

/// Parallel inversion count: fork-join on halves, cross-count by ranking the
/// right half's elements in the sorted left half. `O(n log n)` work,
/// polylogarithmic span.
pub fn par_count_inversions<T>(xs: &[T]) -> u64
where
    T: Ord + Copy + Send + Sync + Default,
{
    if xs.len() <= SEQ_CUTOFF {
        return count_inversions(xs);
    }
    let mid = xs.len() / 2;
    let (l, r) = xs.split_at(mid);
    let ((cl, mut sl), (cr, sr)) = rayon::join(
        || {
            let c = par_count_inversions(l);
            let mut s = l.to_vec();
            crate::sort::par_merge_sort(&mut s, |a, b| a.cmp(b));
            (c, s)
        },
        || {
            let c = par_count_inversions(r);
            let mut s = r.to_vec();
            crate::sort::par_merge_sort(&mut s, |a, b| a.cmp(b));
            (c, s)
        },
    );
    // Cross inversions: for each right element, the number of strictly
    // greater elements in the (sorted) left half.
    let cross: u64 = sr
        .par_iter()
        .map(|x| (sl.len() - sl.partition_point(|y| y <= x)) as u64)
        .sum();
    sl.clear(); // release early; values no longer needed
    cl + cr + cross
}

/// Parallel inversion reporting, two-phase (the paper's count-then-report):
///
/// 1. for each position `j`, count the inversions `(i, j)` it participates
///    in as the *right* element (an order-statistics query on a Fenwick-style
///    sweep is possible; here each `j` queries the set of earlier positions
///    via a merge-sorted prefix structure built per block);
/// 2. prefix-sum the counts, allocate the exact output, and fill each `j`'s
///    range in parallel.
///
/// Output order is unspecified; pairs are `(i, j)`, `i < j`, `xs[i] > xs[j]`.
pub fn par_report_inversions<T>(xs: &[T]) -> Vec<(usize, usize)>
where
    T: Ord + Copy + Send + Sync + Default,
{
    par_report_inversions_gated(xs, None)
}

/// [`par_report_inversions`] under a cooperative [`Gate`]: polls once per
/// block while building the sorted snapshots, checkpoints between the count
/// and fill phases, and — crucially — asks the gate whether crediting the
/// counted total would blow `max_intersections` *before* allocating and
/// filling the `O(k)` output. A tripped gate yields an empty (or truncated)
/// vector; callers must check the gate before trusting the result.
pub fn par_report_inversions_gated<T>(
    xs: &[T],
    gate: Option<&crate::interrupt::Gate>,
) -> Vec<(usize, usize)>
where
    T: Ord + Copy + Send + Sync + Default,
{
    let n = xs.len();
    if n <= SEQ_CUTOFF {
        return report_inversions(xs);
    }
    // Sorted prefix snapshots per block boundary let every position find its
    // left-partners with binary search. Block count is O(threads); each
    // position scans at most `block` in-block predecessors plus queries the
    // sorted snapshots — O((n/B + B) log n) per element worst case, but with
    // output-sensitive fill the dominant cost is the k writes, as in Lemma 4.
    let threads = rayon::current_num_threads().max(1);
    let nblocks = (threads * 4).min(n.max(1));
    let block = n.div_ceil(nblocks);

    // Sorted copy of each block, paired with original positions.
    let sorted_blocks: Vec<Vec<(T, usize)>> = xs
        .par_chunks(block)
        .enumerate()
        .map(|(bi, c)| {
            // Per-block poll: a tripped gate degrades remaining blocks to
            // empty snapshots (counts below become garbage, discarded by the
            // caller's gate check).
            if gate.is_some_and(|g| g.is_tripped()) {
                return Vec::new();
            }
            let mut v: Vec<(T, usize)> = c
                .iter()
                .enumerate()
                .map(|(o, &x)| (x, bi * block + o))
                .collect();
            v.sort_unstable();
            v
        })
        .collect();
    if let Some(g) = gate {
        if g.checkpoint().is_some() {
            return Vec::new();
        }
    }

    // Phase 1: per-position counts.
    let counts: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|j| {
            let x = xs[j];
            let bj = j / block;
            // Full earlier blocks: elements strictly greater than x.
            let mut c = 0usize;
            for sb in &sorted_blocks[..bj] {
                c += sb.len() - sb.partition_point(|&(v, _)| v <= x);
            }
            // Same block, earlier positions.
            c += xs[(bj * block)..j].iter().filter(|&&v| v > x).count();
            c
        })
        .collect();

    let (offsets, total) = scatter_offsets(&counts);
    if let Some(g) = gate {
        // The count phase just told us k exactly; refuse the O(k) allocation
        // and fill if it would blow the intersection budget, and bail if the
        // deadline passed or cancellation arrived while counting.
        if g.intersections_would_exceed(total as u64) || g.checkpoint().is_some() {
            return Vec::new();
        }
        g.meter()
            .record_scratch_bytes((total * std::mem::size_of::<(usize, usize)>()) as u64);
    }

    // Phase 2: fill. Each position writes its own disjoint range.
    let mut out = vec![(0usize, 0usize); total];
    let mut slices: Vec<&mut [(usize, usize)]> = Vec::with_capacity(n);
    {
        let mut rest: &mut [(usize, usize)] = &mut out;
        for &c in &counts {
            let (head, tail) = rest.split_at_mut(c);
            slices.push(head);
            rest = tail;
        }
    }
    let _ = offsets;
    slices.into_par_iter().enumerate().for_each(|(j, dst)| {
        if dst.is_empty() || gate.is_some_and(|g| g.is_tripped()) {
            return;
        }
        let x = xs[j];
        let bj = j / block;
        let mut k = 0usize;
        for sb in &sorted_blocks[..bj] {
            let start = sb.partition_point(|&(v, _)| v <= x);
            for &(_, i) in &sb[start..] {
                dst[k] = (i, j);
                k += 1;
            }
        }
        for (i, &v) in xs.iter().enumerate().take(j).skip(bj * block) {
            if v > x {
                dst[k] = (i, j);
                k += 1;
            }
        }
        debug_assert_eq!(k, dst.len());
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn brute_pairs<T: Ord>(xs: &[T]) -> HashSet<(usize, usize)> {
        let mut s = HashSet::new();
        for i in 0..xs.len() {
            for j in i + 1..xs.len() {
                if xs[i] > xs[j] {
                    s.insert((i, j));
                }
            }
        }
        s
    }

    #[test]
    fn count_simple_cases() {
        assert_eq!(count_inversions::<u32>(&[]), 0);
        assert_eq!(count_inversions(&[1]), 0);
        assert_eq!(count_inversions(&[1, 2, 3]), 0);
        assert_eq!(count_inversions(&[3, 2, 1]), 3);
        assert_eq!(count_inversions(&[2, 1, 2, 1]), 3);
    }

    #[test]
    fn figure4_example() {
        // Paper Figure 4: order of edges at the lower scanline {3,2,4,1};
        // inversions (as index pairs of the crossing edges' values).
        let l = [3u32, 2, 4, 1];
        assert_eq!(count_inversions(&l), 4);
        let vals: HashSet<(u32, u32)> = report_inversion_values(&l).into_iter().collect();
        let want: HashSet<(u32, u32)> = [(3, 1), (3, 2), (4, 1), (2, 1)].into_iter().collect();
        assert_eq!(vals, want);
    }

    #[test]
    fn paper_table_i() {
        // Table I: merging A_l = {5,6,7,9} with A_r = {1,2,3,4} — every
        // left/right pair is inverted, 16 pairs total, exactly as listed.
        let xs = [5u32, 6, 7, 9, 1, 2, 3, 4];
        let got: HashSet<(u32, u32)> = report_inversion_values(&xs).into_iter().collect();
        let want: HashSet<(u32, u32)> = [
            (7, 1),
            (7, 2),
            (7, 4),
            (7, 3),
            (5, 3),
            (6, 3),
            (9, 3),
            (5, 1),
            (5, 2),
            (5, 4),
            (6, 1),
            (9, 1),
            (6, 2),
            (6, 4),
            (9, 2),
            (9, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(got, want);
        assert_eq!(count_inversions(&xs), 16);
    }

    #[test]
    fn report_matches_bruteforce_on_random_inputs() {
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for n in [0usize, 1, 2, 17, 64, 257] {
            let xs: Vec<u64> = (0..n).map(|_| rng() % 50).collect();
            let got: HashSet<(usize, usize)> = report_inversions(&xs).into_iter().collect();
            assert_eq!(got, brute_pairs(&xs), "n={n}");
            assert_eq!(count_inversions(&xs), got.len() as u64);
        }
    }

    #[test]
    fn parallel_count_agrees_with_sequential() {
        let mut s = 123456789u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for n in [100usize, SEQ_CUTOFF + 1, 40_000] {
            let xs: Vec<u64> = (0..n).map(|_| rng() % 1000).collect();
            assert_eq!(par_count_inversions(&xs), count_inversions(&xs), "n={n}");
        }
    }

    #[test]
    fn parallel_report_agrees_with_sequential() {
        let mut s = 987654321u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        // Keep inversion counts manageable: near-sorted input with sparse swaps.
        let n = SEQ_CUTOFF * 3;
        let mut xs: Vec<u64> = (0..n as u64).collect();
        for _ in 0..200 {
            let i = (rng() % n as u64) as usize;
            let j = (rng() % n as u64) as usize;
            xs.swap(i, j);
        }
        let mut par: Vec<(usize, usize)> = par_report_inversions(&xs);
        let mut seq: Vec<(usize, usize)> = report_inversions(&xs);
        par.sort_unstable();
        seq.sort_unstable();
        assert_eq!(par, seq);
    }

    #[test]
    fn equal_elements_are_not_inversions() {
        let xs = [2u32, 2, 2, 2];
        assert_eq!(count_inversions(&xs), 0);
        assert!(report_inversions(&xs).is_empty());
        assert_eq!(par_count_inversions(&xs), 0);
    }

    #[test]
    fn descending_input_has_all_pairs() {
        let xs: Vec<u32> = (0..100).rev().collect();
        assert_eq!(count_inversions(&xs), 100 * 99 / 2);
        assert_eq!(report_inversions(&xs).len(), 100 * 99 / 2);
    }
}
