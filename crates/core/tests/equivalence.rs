//! Partition-backend equivalence: the output-sensitive slab index must be a
//! pure optimization. For random polygon pairs — including duplicate-heavy
//! event schedules, degenerate (flat) contours, and invalid contours
//! injected past the validity filter — every boolean operation, merge
//! strategy, and slab count must produce **bit-identical** output, identical
//! engine counters ([`polyclip_core::ClipStats`] is timer-free and `Eq`),
//! and identical degradation reports on both backends.

use polyclip_core::algo2::{clip_pair_slabs_backend, MergeStrategy, PartitionBackend};
use polyclip_core::{BoolOp, ClipOptions};
use polyclip_geom::{Contour, PolygonSet};
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random polygon set on a half-integer grid: the coarse grid makes
/// duplicate y's (shared scanlines, collapsed quantiles) and flat/degenerate
/// contours common, which is exactly where the two partition paths could
/// diverge. Occasionally an invalid 2-point contour is smuggled in through
/// `contours_mut`, bypassing the constructor's validity filter — both
/// backends must agree on dropping it.
fn gen_set(seed: u64, max_contours: u64) -> PolygonSet {
    let mut s = seed | 1;
    let n = 1 + xorshift(&mut s) % max_contours;
    let mut contours = Vec::new();
    for _ in 0..n {
        let k = 3 + xorshift(&mut s) % 6;
        let pts: Vec<(f64, f64)> = (0..k)
            .map(|_| {
                let x = (xorshift(&mut s) % 24) as f64 * 0.5;
                let y = (xorshift(&mut s) % 16) as f64 * 0.5;
                (x, y)
            })
            .collect();
        contours.push(Contour::from_xy(&pts));
    }
    let mut p = PolygonSet::from_contours(contours);
    if xorshift(&mut s).is_multiple_of(4) {
        let y0 = (xorshift(&mut s) % 16) as f64 * 0.5;
        p.contours_mut()
            .push(Contour::from_xy(&[(0.0, y0), (2.0, y0 + 1.0)]));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slab_index_is_bit_identical_to_full_scan(
        seed_a in 1u64..u64::MAX,
        seed_b in 1u64..u64::MAX,
    ) {
        let a = gen_set(seed_a, 4);
        let b = gen_set(seed_b, 3);
        let opts = ClipOptions::sequential();
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            for strategy in [MergeStrategy::Sequential, MergeStrategy::Tree] {
                for slabs in [1usize, 3, 4, 8] {
                    let full = clip_pair_slabs_backend(
                        &a, &b, op, slabs, &opts, strategy, PartitionBackend::FullScan,
                    );
                    let ix = clip_pair_slabs_backend(
                        &a, &b, op, slabs, &opts, strategy, PartitionBackend::SlabIndex,
                    );
                    let ctx = format!("op {op:?} strategy {strategy:?} slabs {slabs}");
                    prop_assert_eq!(&full.output, &ix.output, "output: {}", ctx);
                    prop_assert_eq!(full.stats, ix.stats, "stats: {}", ctx);
                    prop_assert_eq!(
                        &full.degradations,
                        &ix.degradations,
                        "degradations: {}",
                        ctx
                    );
                    prop_assert_eq!(full.slabs, ix.slabs, "slab count: {}", ctx);
                }
            }
        }
    }
}
