//! Incremental-refinement equivalence: patching dirty beams in place on
//! refinement rounds ≥ 2 must be a pure optimization. For random polygon
//! pairs on a duplicate-heavy half-integer grid — and for the degeneracy
//! torture generators that drive multi-round refinement — every boolean
//! operation, sweep partition backend, parallel mode, and slab count must
//! produce **bit-identical** output, identical counters (modulo the two
//! fields that *describe* the optimization), and identical degradation
//! reports with `incremental_refine` on and off.

use polyclip_core::algo2::{
    try_clip_pair_slabs_backend, MergeStrategy, PartitionBackend as SlabBackend,
};
use polyclip_core::stats::ClipStats;
use polyclip_core::{try_clip_with_stats, BoolOp, ClipOptions};
use polyclip_datagen::degenerate::{shingled_strips, sliver_fan};
use polyclip_geom::{Contour, Point, PolygonSet};
use polyclip_sweep::PartitionBackend;
use proptest::prelude::*;

const ALL_OPS: [BoolOp; 4] = [
    BoolOp::Intersection,
    BoolOp::Union,
    BoolOp::Difference,
    BoolOp::Xor,
];

/// Zero the two counters that legitimately differ between the incremental
/// and full-rebuild paths; everything else in [`ClipStats`] must match
/// bit for bit.
fn scrub(mut s: ClipStats) -> ClipStats {
    s.refine_rounds_incremental = 0;
    s.beams_rebuilt = 0;
    s
}

fn opts_with(parallel: bool, backend: PartitionBackend, incremental: bool) -> ClipOptions {
    ClipOptions {
        parallel,
        backend,
        incremental_refine: incremental,
        ..ClipOptions::default()
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random polygon set on a half-integer grid. The coarse grid makes
/// shared scanlines, coincident crossings and flat contours common —
/// exactly the geometry where the dirty-beam classification
/// (`partition_point` against the carried-over schedule) could disagree
/// with a from-scratch rebuild.
fn grid_set(seed: u64, max_contours: u64) -> PolygonSet {
    let mut s = seed | 1;
    let n = 1 + xorshift(&mut s) % max_contours;
    let mut contours = Vec::new();
    for _ in 0..n {
        let k = 3 + xorshift(&mut s) % 7;
        let pts: Vec<(f64, f64)> = (0..k)
            .map(|_| {
                let x = (xorshift(&mut s) % 20) as f64 * 0.5;
                let y = (xorshift(&mut s) % 14) as f64 * 0.5;
                (x, y)
            })
            .collect();
        contours.push(Contour::from_xy(&pts));
    }
    PolygonSet::from_contours(contours)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_refine_is_bit_identical_to_full_rebuild(
        seed_a in 1u64..u64::MAX,
        seed_b in 1u64..u64::MAX,
    ) {
        let a = grid_set(seed_a, 4);
        let b = grid_set(seed_b, 3);
        for op in ALL_OPS {
            for parallel in [false, true] {
                for backend in [PartitionBackend::DirectScan, PartitionBackend::SegmentTree] {
                    let on = try_clip_with_stats(
                        &a, &b, op, &opts_with(parallel, backend, true),
                    ).unwrap();
                    let off = try_clip_with_stats(
                        &a, &b, op, &opts_with(parallel, backend, false),
                    ).unwrap();
                    let ctx = format!("op {op:?} parallel {parallel} backend {backend:?}");
                    prop_assert_eq!(&on.result, &off.result, "output: {}", ctx);
                    prop_assert_eq!(scrub(on.stats), scrub(off.stats), "stats: {}", ctx);
                    prop_assert_eq!(
                        on.degradations.len(), off.degradations.len(),
                        "degradations: {}", ctx
                    );
                    // The full-rebuild path must never report incremental work.
                    prop_assert_eq!(off.stats.refine_rounds_incremental, 0);
                    prop_assert_eq!(off.stats.beams_rebuilt, 0);
                }
            }
        }
    }
}

/// The degeneracy torture pair used throughout the budget tests: jittered
/// strip seams crossing a sliver fan. Crossings discovered in round 1 add
/// scanlines that expose further crossings, driving the refinement loop
/// through multiple rounds — the regime the incremental patch exists for.
fn torture_pair() -> (PolygonSet, PolygonSet) {
    // Sized so refinement runs several rounds without hitting MAX_REFINE
    // and the per-round dirty fraction stays under the rebuild threshold
    // (calibrated: 6 rounds, every round ≥ 2 served incrementally).
    let subject = shingled_strips(5, Point::new(-1.0, -1.0), 2.0, 2.0, 10, 1e-6);
    let clip_p = sliver_fan(6, Point::new(0.0, 0.0), 1.4, 8);
    (subject, clip_p)
}

// On a workload with several refinement rounds, every round after the
// first must be served by the dirty-beam patch — zero full rebuilds —
// while the output stays bit-identical to the rebuild-every-round path.
// This is the acceptance criterion of the optimization: if a round falls
// back (TooDirty, out-of-schedule scanline), `refine_rounds_incremental`
// drops below `refine_rounds - 1` and this test fails.
#[test]
fn torture_workload_refines_incrementally_without_rebuilds() {
    let (subject, clip_p) = torture_pair();
    for parallel in [false, true] {
        // `grain: Some(1)` forces the beam-parallel fill paths even on
        // beams below the built-in cutoff, so both fill strategies are
        // exercised regardless of workload size.
        for grain in [None, Some(1)] {
            for backend in [PartitionBackend::DirectScan, PartitionBackend::SegmentTree] {
                let mut on = opts_with(parallel, backend, true);
                on.grain = grain;
                let mut off = opts_with(parallel, backend, false);
                off.grain = grain;
                let inc = try_clip_with_stats(&subject, &clip_p, BoolOp::Union, &on).unwrap();
                let full = try_clip_with_stats(&subject, &clip_p, BoolOp::Union, &off).unwrap();
                let ctx = format!("parallel {parallel} grain {grain:?} backend {backend:?}");
                assert!(
                    inc.stats.refine_rounds >= 3,
                    "{ctx}: torture case too tame ({} rounds) — the incremental \
                     path never engaged",
                    inc.stats.refine_rounds
                );
                // Every round after the first was an in-place patch. (When
                // MAX_REFINE is exhausted the loop's final iteration patches
                // once more before breaking, so the counter may reach
                // `refine_rounds`; it must never fall *below* rounds - 1,
                // which would mean a TooDirty full-rebuild fallback.)
                assert!(
                    inc.stats.refine_rounds_incremental >= inc.stats.refine_rounds - 1,
                    "{ctx}: a refinement round fell back to a full rebuild \
                     ({} incremental of {} rounds)",
                    inc.stats.refine_rounds_incremental,
                    inc.stats.refine_rounds
                );
                assert!(
                    inc.stats.beams_rebuilt > 0,
                    "{ctx}: no dirty beams re-split"
                );
                assert_eq!(inc.result, full.result, "{ctx}: output differs");
                assert_eq!(scrub(inc.stats), scrub(full.stats), "{ctx}: stats differ");
            }
        }
    }
}

// Algorithm 2 inherits the guarantee: per-slab engines run with the same
// `incremental_refine` switch and reuse one scratch arena across slabs, so
// the equivalence must hold through the slab fan-out and merge — across
// both partition backends and slab counts 1 and 4.
#[test]
fn algo2_is_bit_identical_with_and_without_incremental_refine() {
    let (subject, clip_p) = torture_pair();
    for op in ALL_OPS {
        for slabs in [1usize, 4] {
            for backend in [SlabBackend::FullScan, SlabBackend::SlabIndex] {
                let on = try_clip_pair_slabs_backend(
                    &subject,
                    &clip_p,
                    op,
                    slabs,
                    &opts_with(false, PartitionBackend::DirectScan, true),
                    MergeStrategy::Sequential,
                    backend,
                )
                .unwrap();
                let off = try_clip_pair_slabs_backend(
                    &subject,
                    &clip_p,
                    op,
                    slabs,
                    &opts_with(false, PartitionBackend::DirectScan, false),
                    MergeStrategy::Sequential,
                    backend,
                )
                .unwrap();
                let ctx = format!("op {op:?} slabs {slabs} backend {backend:?}");
                assert_eq!(on.output, off.output, "{ctx}: output differs");
                assert_eq!(scrub(on.stats), scrub(off.stats), "{ctx}: stats differ");
                assert_eq!(
                    on.degradations.len(),
                    off.degradations.len(),
                    "{ctx}: degradations differ"
                );
            }
        }
    }
}
