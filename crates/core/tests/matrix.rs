//! Systematic matrix test: every operation × fill rule × shape-pair
//! combination must satisfy the measure identities and produce canonical
//! output, in both sequential and parallel modes and through Algorithm 2.

use polyclip_core::*;
use polyclip_geom::contour::rect;
use polyclip_geom::{Contour, FillRule, Point, PolygonSet};

fn shapes() -> Vec<(&'static str, PolygonSet)> {
    vec![
        ("square", PolygonSet::from_contour(rect(0.0, 0.0, 2.0, 2.0))),
        (
            "triangle",
            PolygonSet::from_xy(&[(0.5, -0.5), (3.0, 1.0), (0.0, 3.0)]),
        ),
        (
            "concave",
            PolygonSet::from_xy(&[
                (0.0, 0.0),
                (3.0, 0.0),
                (3.0, 1.0),
                (1.0, 1.2),
                (1.0, 2.0),
                (3.0, 2.2),
                (3.0, 3.0),
                (0.0, 3.0),
            ]),
        ),
        (
            "bowtie",
            PolygonSet::from_xy(&[(0.0, 0.0), (2.5, 2.5), (2.5, 0.0), (0.0, 2.5)]),
        ),
        (
            "ring",
            PolygonSet::from_contours(vec![rect(-0.5, -0.5, 3.0, 3.0), rect(0.5, 0.5, 2.0, 2.0)]),
        ),
        (
            "two-islands",
            PolygonSet::from_contours(vec![rect(0.0, 0.0, 1.0, 1.0), rect(1.5, 1.5, 2.5, 2.5)]),
        ),
        (
            "sliver",
            PolygonSet::from_contour(Contour::from_xy(&[
                (0.0, 0.0),
                (3.0, 0.001),
                (3.0, 0.002),
                (0.0, 0.003),
            ])),
        ),
    ]
}

const OPS: [BoolOp; 4] = [
    BoolOp::Intersection,
    BoolOp::Union,
    BoolOp::Difference,
    BoolOp::Xor,
];

#[test]
fn measure_identities_hold_for_every_cell() {
    let shapes = shapes();
    for rule in [FillRule::EvenOdd, FillRule::NonZero] {
        let opts = ClipOptions {
            fill_rule: rule,
            parallel: false,
            ..Default::default()
        };
        for (na, a) in &shapes {
            for (nb, b) in &shapes {
                let i = measure_op(a, b, BoolOp::Intersection, &opts);
                let u = measure_op(a, b, BoolOp::Union, &opts);
                let d = measure_op(a, b, BoolOp::Difference, &opts);
                let x = measure_op(a, b, BoolOp::Xor, &opts);
                let sa = measure_op(a, &PolygonSet::new(), BoolOp::Union, &opts);
                let sb = measure_op(b, &PolygonSet::new(), BoolOp::Union, &opts);
                let tol = 1e-9 * (1.0 + sa + sb);
                assert!(
                    (i + u - (sa + sb)).abs() < tol,
                    "{rule:?} {na}×{nb}: incl-excl"
                );
                assert!((d + i - sa).abs() < tol, "{rule:?} {na}×{nb}: difference");
                assert!((x - (u - i)).abs() < tol, "{rule:?} {na}×{nb}: xor");
                assert!(
                    i >= -tol && u >= sa.max(sb) - tol,
                    "{rule:?} {na}×{nb}: bounds"
                );
            }
        }
    }
}

#[test]
fn stitched_equals_measured_for_every_cell() {
    let shapes = shapes();
    for rule in [FillRule::EvenOdd, FillRule::NonZero] {
        for parallel in [false, true] {
            let opts = ClipOptions {
                fill_rule: rule,
                parallel,
                ..Default::default()
            };
            for (na, a) in &shapes {
                for (nb, b) in &shapes {
                    for op in OPS {
                        let out = clip(a, b, op, &opts);
                        let got = eo_area(&out);
                        let want = measure_op(a, b, op, &opts);
                        assert!(
                            (got - want).abs() < 1e-9 * (1.0 + want),
                            "{rule:?} par={parallel} {na}×{nb} {op:?}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn outputs_are_canonical_for_every_cell() {
    let shapes = shapes();
    let opts = ClipOptions::sequential();
    for (na, a) in &shapes {
        for (nb, b) in &shapes {
            for op in OPS {
                let out = clip(a, b, op, &opts);
                let report = validate(&out);
                assert!(
                    report.is_canonical(),
                    "{na}×{nb} {op:?}: {:?}",
                    &report.violations[..report.violations.len().min(3)]
                );
            }
        }
    }
}

#[test]
fn algo2_agrees_for_every_cell() {
    let shapes = shapes();
    let opts = ClipOptions::sequential();
    for (na, a) in &shapes {
        for (nb, b) in &shapes {
            for op in OPS {
                let want = measure_op(a, b, op, &opts);
                let r = algo2::clip_pair_slabs(a, b, op, 4, &opts);
                assert!(
                    (eo_area(&r.output) - want).abs() < 1e-9 * (1.0 + want),
                    "{na}×{nb} {op:?}: algo2 {} vs engine {}",
                    eo_area(&r.output),
                    want
                );
            }
        }
    }
}

#[test]
fn self_operations_for_every_shape() {
    let shapes = shapes();
    let opts = ClipOptions::sequential();
    for (name, s) in &shapes {
        let area = eo_area(&dissolve(s, &opts));
        let i = measure_op(s, s, BoolOp::Intersection, &opts);
        let d = measure_op(s, s, BoolOp::Difference, &opts);
        let x = measure_op(s, s, BoolOp::Xor, &opts);
        let tol = 1e-9 * (1.0 + area);
        assert!((i - area).abs() < tol, "{name}: A∩A = |A|");
        assert!(d.abs() < tol, "{name}: A\\A = 0");
        assert!(x.abs() < tol, "{name}: A⊕A = 0");
    }
}

#[test]
fn point_membership_spot_checks_per_cell() {
    // A fixed probe grid checked against input membership for every pair.
    let shapes = shapes();
    let opts = ClipOptions::sequential();
    let probes: Vec<Point> = (0..8)
        .flat_map(|i| (0..8).map(move |j| Point::new(i as f64 * 0.41 - 0.3, j as f64 * 0.43 - 0.4)))
        .collect();
    for (na, a) in &shapes {
        for (nb, b) in &shapes {
            for op in [BoolOp::Intersection, BoolOp::Difference] {
                let out = clip(a, b, op, &opts);
                for p in &probes {
                    // Skip probes within 1e-7 of any input edge.
                    let near = a.edges().chain(b.edges()).any(|e| {
                        let d = e.dir();
                        let t = if d.norm2() > 0.0 {
                            ((*p - e.a).dot(&d) / d.norm2()).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                        p.dist(&e.a.lerp(&e.b, t)) < 1e-7
                    });
                    if near {
                        continue;
                    }
                    let want = op.keep(
                        a.contains(*p, FillRule::EvenOdd),
                        b.contains(*p, FillRule::EvenOdd),
                    );
                    let got = out.contains(*p, FillRule::EvenOdd);
                    assert_eq!(want, got, "{na}×{nb} {op:?} at {p}");
                }
            }
        }
    }
}
