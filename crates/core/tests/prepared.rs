//! Prepared-layer equivalence and concurrency.
//!
//! The compile-once/clip-many contract: [`polyclip_core::prepared`] must be
//! a pure optimization. For random polygon pairs on a duplicate-heavy grid
//! — and for every degeneracy-torture subject — `clip_prepared` on a frozen
//! layer must produce **bit-identical** output to the cold slab clipper at
//! the same op, partition backend, and slab count. And because one layer is
//! meant to serve a whole process, clipping it from many threads at once —
//! some budgeted, some cancelled mid-flight — must neither panic nor leak
//! one request's statistics into another's.

use polyclip_core::algo2::{try_clip_pair_slabs_backend, MergeStrategy, PartitionBackend};
use polyclip_core::budget::ExecBudget;
use polyclip_core::prepared::{try_clip_prepared_backend, PreparedLayer};
use polyclip_core::{BoolOp, ClipOptions};
use polyclip_datagen::torture_corpus;
use polyclip_geom::{Contour, PolygonSet};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const OPS: [BoolOp; 4] = [
    BoolOp::Intersection,
    BoolOp::Union,
    BoolOp::Difference,
    BoolOp::Xor,
];
const BACKENDS: [PartitionBackend; 2] = [PartitionBackend::FullScan, PartitionBackend::SlabIndex];
const SLABS: [usize; 2] = [1, 4];

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Same half-integer-grid generator as the backend-equivalence suite:
/// duplicate y's, flat contours, and a smuggled invalid 2-point contour are
/// common — exactly where the frozen schedule, the merged-quantile
/// boundaries, and the slab-skip logic could diverge from the cold path.
fn gen_set(seed: u64, max_contours: u64) -> PolygonSet {
    let mut s = seed | 1;
    let n = 1 + xorshift(&mut s) % max_contours;
    let mut contours = Vec::new();
    for _ in 0..n {
        let k = 3 + xorshift(&mut s) % 6;
        let pts: Vec<(f64, f64)> = (0..k)
            .map(|_| {
                let x = (xorshift(&mut s) % 24) as f64 * 0.5;
                let y = (xorshift(&mut s) % 16) as f64 * 0.5;
                (x, y)
            })
            .collect();
        contours.push(Contour::from_xy(&pts));
    }
    let mut p = PolygonSet::from_contours(contours);
    if xorshift(&mut s).is_multiple_of(4) {
        let y0 = (xorshift(&mut s) % 16) as f64 * 0.5;
        p.contours_mut()
            .push(Contour::from_xy(&[(0.0, y0), (2.0, y0 + 1.0)]));
    }
    p
}

/// Every (op, backend, p) combination: the prepared clip of `query` against
/// a layer frozen from `subject` must match the cold path bit-for-bit.
fn assert_prepared_matches_cold(subject: &PolygonSet, query: &PolygonSet, ctx: &str) {
    let opts = ClipOptions::sequential();
    let layer = PreparedLayer::build(subject, &opts).expect("finite subject");
    for op in OPS {
        for backend in BACKENDS {
            for p in SLABS {
                let cold = try_clip_pair_slabs_backend(
                    subject,
                    query,
                    op,
                    p,
                    &opts,
                    MergeStrategy::Sequential,
                    backend,
                )
                .expect("cold clip");
                let warm = try_clip_prepared_backend(
                    &layer,
                    query,
                    op,
                    p,
                    &opts,
                    MergeStrategy::Sequential,
                    backend,
                )
                .expect("prepared clip");
                let ctx = format!("{ctx}: op {op:?} backend {backend:?} p {p}");
                assert_eq!(cold.output, warm.output, "output: {ctx}");
                assert_eq!(cold.slabs, warm.slabs, "slab count: {ctx}");
                assert_eq!(cold.degradations, warm.degradations, "degradations: {ctx}");
                assert_eq!(
                    cold.stats.input_repairs, warm.stats.input_repairs,
                    "repairs: {ctx}"
                );
                assert!(warm.stats.prepared_reused && !cold.stats.prepared_reused);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clip_prepared_is_bit_identical_to_cold_path(
        seed_a in 1u64..u64::MAX,
        seed_b in 1u64..u64::MAX,
    ) {
        let subject = gen_set(seed_a, 4);
        let query = gen_set(seed_b, 3);
        assert_prepared_matches_cold(&subject, &query, "random grid pair");
    }
}

/// The degeneracy torture corpus as frozen subjects: jittered seams, sliver
/// fans, collapsed quantiles. Each case's clip polygon plays the query.
#[test]
fn clip_prepared_matches_cold_on_torture_corpus() {
    for case in torture_corpus(7) {
        assert_prepared_matches_cold(&case.subject, &case.clip, case.name);
    }
}

/// One frozen layer, eight threads, mixed request shapes: unbounded,
/// generously budgeted, and pre-cancelled. No panics; cancelled requests
/// fail with a typed error without poisoning the layer; every successful
/// call reports its own per-call statistics (slab accounting matches the
/// request's own p, provenance flags set) independent of its neighbours.
#[test]
fn concurrent_clips_on_one_layer_stay_isolated() {
    let subject = gen_set(0xfeed, 6);
    let layer = PreparedLayer::build(&subject, &ClipOptions::sequential()).unwrap();

    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let layer: Arc<PreparedLayer> = Arc::clone(&layer);
            std::thread::spawn(move || {
                let mut outputs = Vec::new();
                for i in 0..16u64 {
                    let query = gen_set(0x9e3779b9 ^ i, 3);
                    let p = [1usize, 4, 8][(i % 3) as usize];
                    let opts = match t % 3 {
                        0 => ClipOptions::sequential(),
                        1 => ClipOptions {
                            budget: ExecBudget {
                                deadline: Some(Duration::from_secs(3600)),
                                max_intersections: Some(u64::MAX / 2),
                                allow_partial: true,
                                ..ExecBudget::default()
                            },
                            ..ClipOptions::sequential()
                        },
                        _ => {
                            let budget = ExecBudget::default();
                            budget.cancel.cancel();
                            ClipOptions {
                                budget,
                                ..ClipOptions::sequential()
                            }
                        }
                    };
                    let r = polyclip_core::prepared::try_clip_prepared(
                        &layer,
                        &query,
                        BoolOp::Intersection,
                        p,
                        &opts,
                    );
                    match r {
                        Ok(r) => {
                            // Per-call isolation: this result accounts for
                            // its own request's partition, nobody else's.
                            assert!(t % 3 != 2, "pre-cancelled request succeeded");
                            assert_eq!(r.stats.total_slabs, r.slabs);
                            assert_eq!(r.stats.completed_slabs, r.slabs);
                            assert!(r.slabs <= p);
                            assert!(r.times.prepared_reused);
                            assert!(r.stats.prepared_reused);
                            outputs.push((i, r.output));
                        }
                        Err(e) => {
                            assert!(t % 3 == 2, "unexpected failure: {e:?}");
                        }
                    }
                }
                outputs
            })
        })
        .collect();

    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panics under concurrency"))
        .collect();

    // Threads 0 and 1 (mod 3) ran the same queries with compatible options:
    // identical (query, p) pairs must yield identical outputs regardless of
    // interleaving with the cancelled traffic.
    let baseline = &results[0];
    for (t, r) in results.iter().enumerate() {
        if t % 3 == 2 {
            assert!(r.is_empty(), "cancelled thread produced output");
        } else {
            assert_eq!(r, baseline, "thread {t} diverged");
        }
    }
    // The layer survives the storm reusable: one more clip, still correct.
    let q = gen_set(0x5eed, 2);
    let again = polyclip_core::prepared::clip_prepared(
        &layer,
        &q,
        BoolOp::Union,
        4,
        &ClipOptions::sequential(),
    );
    assert!(again.times.prepared_reused);
    assert!(layer.pooled_arenas() > 0, "arenas returned to the pool");
}

/// Hammer one layer from eight threads through a pool capped far below the
/// concurrency (2 arenas for 8 threads): checkouts against the drained
/// pool must fall back to fresh arenas — never block, never deadlock —
/// every call must stay bit-identical to its single-threaded baseline, the
/// per-call arena accounting must be live for every request, and the pool
/// must still respect its cap once the storm passes.
#[test]
fn undersized_arena_pool_survives_a_thread_storm() {
    const POOL_CAP: usize = 2;
    const THREADS: u64 = 8;
    const ITERS: u64 = 24;
    let subject = gen_set(0xdecade, 8);
    let layer =
        PreparedLayer::build_with_pool_limit(&subject, &ClipOptions::sequential(), POOL_CAP)
            .unwrap();

    // Two query shapes with very different arena appetites, so recycled
    // arenas constantly change hands between light and heavy work.
    let small_q = gen_set(0x51, 1);
    let big_q = gen_set(0xb16, 6);
    let baseline = |q: &PolygonSet| {
        polyclip_core::prepared::try_clip_prepared(
            &layer,
            q,
            BoolOp::Intersection,
            4,
            &ClipOptions::sequential(),
        )
        .expect("baseline clip")
    };
    let base_small = baseline(&small_q);
    let base_big = baseline(&big_q);
    assert!(base_big.times.arena_hwm_bytes > 0, "hwm accounting is live");

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let layer: Arc<PreparedLayer> = Arc::clone(&layer);
            let small_q = small_q.clone();
            let big_q = big_q.clone();
            let (small_out, big_out) = (base_small.output.clone(), base_big.output.clone());
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let big = (t + i) % 2 == 0;
                    let q = if big { &big_q } else { &small_q };
                    let r = polyclip_core::prepared::try_clip_prepared(
                        &layer,
                        q,
                        BoolOp::Intersection,
                        4,
                        &ClipOptions::sequential(),
                    )
                    .expect("no failures under contention");
                    let want = if big { &big_out } else { &small_out };
                    assert_eq!(
                        &r.output, want,
                        "thread {t} iter {i}: output diverged under contention"
                    );
                    // Per-call accounting: the stats describe this request's
                    // own run, not a neighbour's.
                    assert_eq!(r.stats.total_slabs, r.slabs);
                    assert_eq!(r.stats.completed_slabs, r.slabs);
                    assert!(r.stats.prepared_reused && r.times.prepared_reused);
                    assert!(r.times.arena_hwm_bytes > 0, "hwm lost under contention");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics under pool starvation");
    }

    // The check-in cap held: at most POOL_CAP arenas were retained no
    // matter how many fresh ones the storm forced into existence.
    assert!(
        layer.pooled_arenas() <= POOL_CAP,
        "pool grew past its cap: {}",
        layer.pooled_arenas()
    );
    // And the layer still serves correct answers afterwards.
    let after = baseline(&big_q);
    assert_eq!(after.output, base_big.output);

    // pool_limit = 0 disables retention entirely while still serving.
    let unpooled =
        PreparedLayer::build_with_pool_limit(&subject, &ClipOptions::sequential(), 0).unwrap();
    let r = polyclip_core::prepared::try_clip_prepared(
        &unpooled,
        &big_q,
        BoolOp::Intersection,
        4,
        &ClipOptions::sequential(),
    )
    .unwrap();
    assert_eq!(r.output, base_big.output);
    assert_eq!(unpooled.pooled_arenas(), 0, "cap 0 must retain nothing");
}
