//! Typed errors, the degradation ladder, and the fault-injection plan.
//!
//! The scanbeam pipeline is built to *degrade*, not to die: numerically
//! degenerate inputs, refinement that hits its iteration bound, or a slab
//! worker that panics are all absorbed, repaired where possible, and
//! **reported** instead of silently smoothed over (the pre-existing
//! behavior) or aborting the process.
//!
//! Three layers cooperate:
//!
//! * [`ClipError`] — the conditions under which a fallible entry point
//!   (`try_clip`, `try_clip_pair_slabs`, `try_overlay_intersection`, …)
//!   refuses to produce a result at all. Only non-finite input coordinates
//!   and a slab worker that keeps panicking through the whole recovery
//!   ladder reach this level.
//! * [`Degradation`] — everything the pipeline absorbed on the way to a
//!   result: dropped degenerate contours, refinement rounds that gave up,
//!   slab retries and sequential fallbacks, stitch walks that failed to
//!   close. Collected in [`ClipOutcome::degradations`], ordered by
//!   discovery. [`ClipOutcome::strict`] upgrades the lossy ones to errors
//!   for callers that need exactness guarantees.
//! * [`FaultPlan`] — a deterministic fault-injection layer (behind the
//!   `fault-injection` cargo feature) that lets tests panic a chosen slab
//!   worker, exhaust the refinement loop, or storm the residual-crossing
//!   accept path, proving the recovery machinery actually runs.

use crate::stats::ClipStats;
use polyclip_geom::PolygonSet;
use std::fmt;

/// Which operand of a clip call an error or degradation refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputRole {
    /// The first operand (the polygon being clipped).
    Subject,
    /// The second operand (the clip polygon).
    Clip,
}

impl fmt::Display for InputRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputRole::Subject => write!(f, "subject"),
            InputRole::Clip => write!(f, "clip"),
        }
    }
}

/// Why a fallible clipping entry point could not produce a result.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ClipError {
    /// An input coordinate is NaN or infinite. The sweep orders events by
    /// y; a non-finite coordinate poisons that order, so these are rejected
    /// at the API boundary rather than detected mid-pipeline.
    NonFiniteInput {
        /// Which operand carries the offending coordinate.
        role: InputRole,
        /// Index of the offending contour within the operand.
        contour: usize,
        /// Index of the offending vertex within that contour.
        vertex: usize,
    },
    /// The crossing-refinement loop hit its iteration bound with residual
    /// crossings still unresolved (surfaced by [`ClipOutcome::strict`];
    /// the lenient entry points record it as a [`Degradation`] instead).
    RefinementExhausted {
        /// Refinement rounds executed before giving up.
        rounds: usize,
        /// Residual crossings still present when the loop stopped.
        residual_crossings: usize,
    },
    /// A slab worker panicked on every rung of the recovery ladder:
    /// first attempt, retry, and the pristine sequential fallback.
    SlabPanic {
        /// Index of the slab whose worker died.
        slab: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Stitching dropped boundary fragments because some walks failed to
    /// close (surfaced by [`ClipOutcome::strict`]; the lenient entry
    /// points record it as a [`Degradation`] instead).
    StitchImbalance {
        /// Fragments consumed by walks that never closed.
        dropped_fragments: usize,
    },
    /// An input needed sanitizer repairs (duplicate/collinear/spike
    /// vertices, redundant ring closers, zero-area contours). The clip
    /// result is exact *for the repaired input*; strict callers asked to
    /// be told when the input they supplied was not what was clipped.
    /// Surfaced by [`ClipOutcome::strict`] from
    /// [`Degradation::InputRepaired`].
    DirtyInput {
        /// Which operand needed repairs.
        role: InputRole,
        /// What was repaired.
        repairs: crate::sanitize::SanitizeReport,
    },
    /// Post-clip validation found violations of the engine's output
    /// guarantees (surfaced by [`ClipOutcome::strict`] from
    /// [`Degradation::OutputRepaired`], whether or not the repair ladder
    /// managed to fix them).
    InvalidOutput {
        /// Number of violations found by [`crate::validate::validate`].
        violations: usize,
    },
    /// The wall-clock deadline in [`ExecBudget`](crate::ExecBudget) passed
    /// before the operation finished. The work done so far is discarded
    /// (unless Algorithm 2 salvaged completed slabs under
    /// `allow_partial`).
    DeadlineExceeded,
    /// A work limit (`max_intersections` / `max_output_vertices`) in
    /// [`ExecBudget`](crate::ExecBudget) was exceeded.
    BudgetExceeded {
        /// The work meter at the time the budget blew.
        work: polyclip_parprim::MeterSnapshot,
    },
    /// The [`CancelToken`](crate::CancelToken) was fired mid-operation.
    Cancelled,
}

impl fmt::Display for ClipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClipError::NonFiniteInput {
                role,
                contour,
                vertex,
            } => write!(
                f,
                "non-finite coordinate in {role} input at contour {contour}, vertex {vertex}"
            ),
            ClipError::RefinementExhausted {
                rounds,
                residual_crossings,
            } => write!(
                f,
                "crossing refinement exhausted after {rounds} rounds with \
                 {residual_crossings} residual crossings"
            ),
            ClipError::SlabPanic { slab, message } => {
                write!(
                    f,
                    "slab {slab} worker panicked after retry and fallback: {message}"
                )
            }
            ClipError::StitchImbalance { dropped_fragments } => write!(
                f,
                "stitching dropped {dropped_fragments} boundary fragments from unclosed walks"
            ),
            ClipError::DirtyInput { role, repairs } => {
                write!(f, "{role} input needed sanitizer repairs: {repairs}")
            }
            ClipError::InvalidOutput { violations } => {
                write!(f, "output failed validation with {violations} violations")
            }
            ClipError::DeadlineExceeded => {
                write!(f, "execution deadline exceeded before the clip finished")
            }
            ClipError::BudgetExceeded { work } => write!(
                f,
                "work budget exceeded ({} intersections, {} events, {} vertices, \
                 {} peak scratch bytes)",
                work.intersections, work.events, work.vertices, work.peak_scratch_bytes
            ),
            ClipError::Cancelled => write!(f, "operation cancelled by caller"),
        }
    }
}

impl std::error::Error for ClipError {}

/// One graceful-degradation event absorbed on the way to a result.
///
/// Ordered by [`severity`](Degradation::severity): everything below
/// [`Degradation::ResidualsAccepted`] leaves the result exact; everything
/// at or above it means the result may differ from the true boolean result
/// by resolution-limit slivers (see [`Degradation::is_lossy`]).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Degradation {
    /// Degenerate contours (fewer than three vertices, or zero bbox
    /// extent) were dropped from an input before sweeping. Exact: such
    /// contours cannot contribute area.
    SanitizedInput {
        /// Which operand was sanitized.
        role: InputRole,
        /// How many contours were dropped.
        dropped_contours: usize,
    },
    /// A slab worker panicked once and succeeded on the retry. Exact:
    /// the retry runs the identical computation.
    SlabRetry {
        /// Index of the recovered slab.
        slab: usize,
    },
    /// A slab worker panicked twice and was recovered by re-running the
    /// slab on the pristine sequential engine (default backend, faults
    /// stripped). Exact: the fallback computes the same band on the same
    /// engine configuration family, bit-identical to an unfaulted run.
    SlabFallback {
        /// Index of the recovered slab.
        slab: usize,
    },
    /// The refinement loop stopped because the remaining residual
    /// crossings sit inside beams already at the floating-point resolution
    /// limit and no new split made progress. Lossy at sliver scale.
    ResidualsAccepted {
        /// Residual crossings accepted unresolved.
        residual_crossings: usize,
    },
    /// The refinement loop hit its iteration bound. Lossy at sliver scale.
    RefinementExhausted {
        /// Refinement rounds executed.
        rounds: usize,
        /// Residual crossings still present at the bound.
        residual_crossings: usize,
    },
    /// Stitching dropped fragments from walks that failed to close.
    /// Lossy: some boundary pieces are missing from the output contours.
    DroppedFragments {
        /// Fragments consumed by unclosed walks.
        fragments: usize,
    },
    /// The sanitizer repaired an input before clipping: redundant ring
    /// closers, duplicate/collinear/spike vertices, or zero-area contours
    /// were removed. The result is exact *for the repaired input* — the
    /// repairs themselves preserve enclosed area — but strict callers are
    /// told the input they supplied was not what was clipped.
    InputRepaired {
        /// Which operand was repaired.
        role: InputRole,
        /// Tally of the repairs performed.
        repairs: crate::sanitize::SanitizeReport,
    },
    /// Post-clip validation found the output violating the engine's
    /// canonical-output guarantees, and the self-repair ladder ran.
    /// Lossy: even a successful repair re-derived the result by a
    /// different route than the one requested.
    OutputRepaired {
        /// The highest rung of the repair ladder that ran.
        rung: RepairRung,
        /// Violations found in the original output.
        violations: usize,
    },
    /// The execution budget blew mid-run and, because
    /// [`ExecBudget::allow_partial`](crate::ExecBudget::allow_partial) was
    /// set, Algorithm 2 returned the union of the slabs that finished
    /// instead of discarding all completed work. Lossy by definition: the
    /// result covers only the completed slabs' bands. Also marked by
    /// `completed_slabs < total_slabs` in [`ClipStats`](crate::ClipStats).
    PartialResult {
        /// Slabs whose results are included.
        completed_slabs: usize,
        /// Total slabs the run was partitioned into.
        total_slabs: usize,
    },
    /// A serving layer above the engine (`polyclip-serve`) altered how this
    /// request ran because the fleet was overloaded: output validation
    /// disabled, partial results forced, or the deadline tightened for a
    /// retry. The engine itself never emits this rung — it is the
    /// service-level extension of the ladder, appended by the server so
    /// clients see overload measures through the same reporting channel as
    /// engine degradations. Lossy: the caller got a best-effort answer
    /// shaped by load, not the configuration they asked for.
    ServiceDegraded {
        /// Overload level at execution time: 1 = output validation
        /// disabled, 2 = partial results forced, 3 = load shedding active
        /// (this request survived shedding but ran under maximum
        /// degradation).
        level: u8,
        /// Whether the request was retried with a tightened budget after a
        /// first-attempt budget trip.
        retried: bool,
    },
}

/// A rung of the output self-repair ladder, cheapest first. Recorded in
/// [`Degradation::OutputRepaired`] as the rung whose result was kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairRung {
    /// Re-dissolved the output through a union-with-empty pass.
    Redissolve,
    /// Re-clipped with a tightened snap-rounding grid.
    TightenedSnap,
    /// Re-clipped on the pristine sequential engine.
    PristineSequential,
    /// Every rung still produced violations; the original output was
    /// kept.
    Unrepaired,
}

impl fmt::Display for RepairRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairRung::Redissolve => write!(f, "re-dissolve"),
            RepairRung::TightenedSnap => write!(f, "tightened snap"),
            RepairRung::PristineSequential => write!(f, "pristine sequential re-clip"),
            RepairRung::Unrepaired => write!(f, "unrepaired"),
        }
    }
}

impl Degradation {
    /// Severity rank, higher is worse. Ranks 1–3 preserve exactness;
    /// rank 4 means the input was repaired (exact for the repaired input,
    /// but not the bytes the caller supplied); ranks 5+ mean the result
    /// may deviate by resolution-limit slivers.
    pub fn severity(&self) -> u8 {
        match self {
            Degradation::SanitizedInput { .. } => 1,
            Degradation::SlabRetry { .. } => 2,
            Degradation::SlabFallback { .. } => 3,
            Degradation::InputRepaired { .. } => 4,
            Degradation::ResidualsAccepted { .. } => 5,
            Degradation::RefinementExhausted { .. } => 6,
            Degradation::DroppedFragments { .. } => 7,
            Degradation::OutputRepaired { .. } => 8,
            Degradation::PartialResult { .. } => 9,
            Degradation::ServiceDegraded { .. } => 10,
        }
    }

    /// Whether [`ClipOutcome::strict`] escalates this degradation: either
    /// the result may differ from the true boolean result (by slivers at
    /// the floating-point resolution limit), or the input/output needed
    /// repairs a strict caller asked to be told about.
    pub fn is_lossy(&self) -> bool {
        self.severity() >= 4
    }

    /// The error this degradation escalates to under
    /// [`ClipOutcome::strict`], if it is lossy.
    fn as_error(&self) -> Option<ClipError> {
        match *self {
            Degradation::ResidualsAccepted { residual_crossings } => {
                Some(ClipError::RefinementExhausted {
                    rounds: 0,
                    residual_crossings,
                })
            }
            Degradation::RefinementExhausted {
                rounds,
                residual_crossings,
            } => Some(ClipError::RefinementExhausted {
                rounds,
                residual_crossings,
            }),
            Degradation::DroppedFragments { fragments } => Some(ClipError::StitchImbalance {
                dropped_fragments: fragments,
            }),
            Degradation::InputRepaired { role, repairs } => {
                Some(ClipError::DirtyInput { role, repairs })
            }
            Degradation::OutputRepaired { violations, .. } => {
                Some(ClipError::InvalidOutput { violations })
            }
            Degradation::PartialResult { .. } | Degradation::ServiceDegraded { .. } => {
                Some(ClipError::BudgetExceeded {
                    work: polyclip_parprim::MeterSnapshot::default(),
                })
            }
            _ => None,
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::SanitizedInput {
                role,
                dropped_contours,
            } => {
                write!(
                    f,
                    "dropped {dropped_contours} degenerate contours from {role} input"
                )
            }
            Degradation::SlabRetry { slab } => write!(f, "slab {slab} recovered on retry"),
            Degradation::SlabFallback { slab } => {
                write!(f, "slab {slab} recovered via sequential fallback")
            }
            Degradation::ResidualsAccepted { residual_crossings } => {
                write!(
                    f,
                    "accepted {residual_crossings} residual crossings at resolution limit"
                )
            }
            Degradation::RefinementExhausted {
                rounds,
                residual_crossings,
            } => write!(
                f,
                "refinement bound hit after {rounds} rounds, {residual_crossings} residuals left"
            ),
            Degradation::DroppedFragments { fragments } => {
                write!(
                    f,
                    "dropped {fragments} fragments from unclosed stitch walks"
                )
            }
            Degradation::InputRepaired { role, repairs } => {
                write!(f, "repaired {role} input: {repairs}")
            }
            Degradation::OutputRepaired { rung, violations } => {
                write!(
                    f,
                    "output had {violations} validation violations, repaired via {rung}"
                )
            }
            Degradation::PartialResult {
                completed_slabs,
                total_slabs,
            } => write!(
                f,
                "budget blew mid-run: partial result covering {completed_slabs} of \
                 {total_slabs} slabs"
            ),
            Degradation::ServiceDegraded { level, retried } => write!(
                f,
                "service degraded this request under overload (level {level}{})",
                if *retried {
                    ", retried with tightened budget"
                } else {
                    ""
                }
            ),
        }
    }
}

/// The result of a fallible clip: the polygon, its statistics, and every
/// degradation absorbed while producing it.
#[derive(Clone, Debug, Default)]
pub struct ClipOutcome {
    /// The boolean result.
    pub result: PolygonSet,
    /// Output-sensitivity counters for the run.
    pub stats: ClipStats,
    /// Degradations absorbed, in discovery order. Empty means the run was
    /// pristine.
    pub degradations: Vec<Degradation>,
}

impl ClipOutcome {
    /// Whether the run completed without absorbing any degradation.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }

    /// The worst degradation absorbed, if any.
    pub fn worst(&self) -> Option<&Degradation> {
        self.degradations.iter().max_by_key(|d| d.severity())
    }

    /// Demand exactness: return the result only if every absorbed
    /// degradation preserves it. Lossy degradations (accepted residuals,
    /// exhausted refinement, dropped stitch fragments) escalate to the
    /// corresponding [`ClipError`]; sanitized inputs, slab retries, and
    /// slab fallbacks pass — they recover the exact answer.
    pub fn strict(self) -> Result<(PolygonSet, ClipStats), ClipError> {
        if let Some(err) = self
            .degradations
            .iter()
            .filter(|d| d.is_lossy())
            .max_by_key(|d| d.severity())
            .and_then(|d| d.as_error())
        {
            return Err(err);
        }
        Ok((self.result, self.stats))
    }
}

/// Deterministic fault plan for exercising the recovery ladder in tests.
///
/// Threaded through [`ClipOptions`](crate::ClipOptions); inert unless the
/// `fault-injection` cargo feature is enabled (without the feature the
/// type still exists so options remain source-compatible, but no fault
/// ever fires).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic the worker of this slab index (Algorithm 2 and overlay
    /// tasks).
    pub panic_slab: Option<usize>,
    /// How many attempts of the chosen slab panic before the worker is
    /// allowed to succeed: `1` recovers on the retry, `2` (or more)
    /// forces the pristine sequential fallback, which never panics
    /// because the fault plan is stripped from it.
    pub panic_attempts: u32,
    /// Enter the refinement loop with the round budget already spent, so
    /// the engine exercises the exhaustion path on the first iteration.
    pub exhaust_refinement: bool,
    /// Append a synthetic non-progressing residual crossing in the first
    /// refinement round, forcing the accept-residuals path.
    pub residual_storm: bool,
    /// Stall attempt 0 of this slab's worker by [`stall_ms`]
    /// (Self::stall_ms) before it runs. Combined with a deadline in
    /// [`ExecBudget`](crate::ExecBudget), this deterministically trips the
    /// slab watchdog so tests can drive the watchdog→retry rung of the
    /// ladder on *both* the cold and the prepared
    /// ([`try_clip_prepared`](crate::try_clip_prepared)) query paths — the
    /// retry runs unstalled and recovers bit-identically.
    pub stall_slab: Option<usize>,
    /// Milliseconds the stalled slab's first attempt sleeps.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A plan that panics `attempts` attempts of slab `slab`.
    pub fn panic_in_slab(slab: usize, attempts: u32) -> Self {
        FaultPlan {
            panic_slab: Some(slab),
            panic_attempts: attempts,
            ..FaultPlan::default()
        }
    }

    /// A plan that stalls attempt 0 of slab `slab` for `ms` milliseconds.
    pub fn stall_in_slab(slab: usize, ms: u64) -> Self {
        FaultPlan {
            stall_slab: Some(slab),
            stall_ms: ms,
            ..FaultPlan::default()
        }
    }
}

/// Panic if the fault plan targets this slab at this attempt. Compiled to
/// a no-op without the `fault-injection` feature.
#[inline]
pub(crate) fn maybe_panic_slab(opts: &crate::ClipOptions, slab: usize, attempt: u32) {
    #[cfg(feature = "fault-injection")]
    if opts.faults.panic_slab == Some(slab) && attempt < opts.faults.panic_attempts {
        panic!("fault-injection: slab {slab} attempt {attempt}");
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = (opts, slab, attempt);
}

/// Sleep if the fault plan stalls this slab's first attempt (retries run
/// unstalled so the watchdog→retry rung recovers). Compiled to a no-op
/// without the `fault-injection` feature.
#[inline]
pub(crate) fn maybe_stall_slab(opts: &crate::ClipOptions, slab: usize, attempt: u32) {
    #[cfg(feature = "fault-injection")]
    if opts.faults.stall_slab == Some(slab) && attempt == 0 && opts.faults.stall_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(opts.faults.stall_ms));
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = (opts, slab, attempt);
}

/// Whether the refinement loop should start with its budget spent.
#[inline]
pub(crate) fn fault_exhaust_refinement(opts: &crate::ClipOptions) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        opts.faults.exhaust_refinement
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = opts;
        false
    }
}

/// Whether to inject a synthetic non-progressing residual crossing.
#[inline]
pub(crate) fn fault_residual_storm(opts: &crate::ClipOptions) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        opts.faults.residual_storm
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = opts;
        false
    }
}

/// The pristine configuration a failed slab falls back to: sequential,
/// default partition backend, fault plan stripped. Fill rule and virtual
/// vertex handling are preserved — they affect the answer.
pub(crate) fn pristine(opts: &crate::ClipOptions) -> crate::ClipOptions {
    crate::ClipOptions {
        parallel: false,
        backend: polyclip_sweep::PartitionBackend::DirectScan,
        faults: FaultPlan::default(),
        // Recovery stays cancellable but budget-exempt: the failing attempt
        // already consumed the deadline/work allowance, and the fallback is
        // the last chance to produce an answer at all.
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    }
}

/// Render a `catch_unwind` payload as a message for [`ClipError::SlabPanic`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ladder_is_ordered_exact_then_lossy() {
        let ladder = [
            Degradation::SanitizedInput {
                role: InputRole::Subject,
                dropped_contours: 1,
            },
            Degradation::SlabRetry { slab: 0 },
            Degradation::SlabFallback { slab: 0 },
            Degradation::InputRepaired {
                role: InputRole::Subject,
                repairs: crate::sanitize::SanitizeReport::default(),
            },
            Degradation::ResidualsAccepted {
                residual_crossings: 1,
            },
            Degradation::RefinementExhausted {
                rounds: 8,
                residual_crossings: 1,
            },
            Degradation::DroppedFragments { fragments: 2 },
            Degradation::OutputRepaired {
                rung: RepairRung::Redissolve,
                violations: 1,
            },
            Degradation::PartialResult {
                completed_slabs: 3,
                total_slabs: 8,
            },
            Degradation::ServiceDegraded {
                level: 2,
                retried: true,
            },
        ];
        for w in ladder.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
        assert!(ladder.iter().take(3).all(|d| !d.is_lossy()));
        assert!(ladder.iter().skip(3).all(|d| d.is_lossy()));
    }

    #[test]
    fn strict_passes_exact_degradations_and_rejects_lossy_ones() {
        let exact = ClipOutcome {
            degradations: vec![
                Degradation::SanitizedInput {
                    role: InputRole::Clip,
                    dropped_contours: 2,
                },
                Degradation::SlabFallback { slab: 3 },
            ],
            ..ClipOutcome::default()
        };
        assert!(!exact.is_clean());
        assert!(exact.strict().is_ok());

        let lossy = ClipOutcome {
            degradations: vec![
                Degradation::SlabRetry { slab: 1 },
                Degradation::DroppedFragments { fragments: 4 },
            ],
            ..ClipOutcome::default()
        };
        assert_eq!(
            lossy.strict().unwrap_err(),
            ClipError::StitchImbalance {
                dropped_fragments: 4
            }
        );

        // A repaired input is exact for the repaired geometry, but strict
        // callers asked to reject anything that needed surgery.
        let repairs = crate::sanitize::SanitizeReport {
            spikes_dropped: 2,
            ..Default::default()
        };
        let dirty = ClipOutcome {
            degradations: vec![Degradation::InputRepaired {
                role: InputRole::Subject,
                repairs,
            }],
            ..ClipOutcome::default()
        };
        assert_eq!(
            dirty.strict().unwrap_err(),
            ClipError::DirtyInput {
                role: InputRole::Subject,
                repairs,
            }
        );
    }

    #[test]
    fn worst_picks_highest_severity() {
        let o = ClipOutcome {
            degradations: vec![
                Degradation::SlabRetry { slab: 0 },
                Degradation::ResidualsAccepted {
                    residual_crossings: 3,
                },
                Degradation::SanitizedInput {
                    role: InputRole::Subject,
                    dropped_contours: 1,
                },
            ],
            ..ClipOutcome::default()
        };
        assert_eq!(
            o.worst(),
            Some(&Degradation::ResidualsAccepted {
                residual_crossings: 3
            })
        );
    }

    #[test]
    fn errors_and_degradations_render_human_readably() {
        let e = ClipError::NonFiniteInput {
            role: InputRole::Clip,
            contour: 2,
            vertex: 7,
        };
        assert_eq!(
            e.to_string(),
            "non-finite coordinate in clip input at contour 2, vertex 7"
        );
        let d = Degradation::SlabFallback { slab: 5 };
        assert_eq!(d.to_string(), "slab 5 recovered via sequential fallback");
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let a: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(a.as_ref()), "boom");
        let b: Box<dyn std::any::Any + Send> = Box::new(String::from("kapow"));
        assert_eq!(panic_message(b.as_ref()), "kapow");
        let c: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(c.as_ref()), "non-string panic payload");
    }
}
