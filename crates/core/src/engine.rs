//! The scanbeam boolean engine — Algorithm 1 of the paper.
//!
//! The pipeline matches the paper's steps exactly:
//!
//! 1. **Step 1** — sort the event y's (endpoint schedule);
//! 2. **Step 2** — partition the edges into scanbeams (virtual vertices k');
//! 3. **Lemma 4** — discover the k intersections by per-beam inversion
//!    reporting, then rebuild the scanbeams with the intersection events so
//!    every beam becomes crossing-free (the two beam builds are the paper's
//!    "additional processors are requested a constant number of times");
//! 4. **Step 3** — classify every scanbeam independently (Lemmas 1–3),
//!    emitting boundary fragments and kept intervals;
//! 5. **Step 4** — merge partial polygons: horizontal interval symmetric
//!    differences between adjacent beams, cancellation, and stitching.
//!
//! With `parallel = true` every phase runs on rayon (parallel sort,
//! parallel partition, parallel per-beam discovery/classification, parallel
//! cancellation sort); with `false` the same code paths run sequentially —
//! this sequential mode is the repository's stand-in for the GPC library
//! used by the paper's Algorithm 2 (same algorithm family, same
//! asymptotics).

use crate::budget::{self, ExecBudget, Gate};
use crate::classify::{classify_beam, BeamOutput, BoolOp};
use crate::horizontal::horizontal_edges;
use crate::resilience::{
    self, ClipError, ClipOutcome, Degradation, FaultPlan, InputRole, RepairRung,
};
use crate::sanitize::{sanitize_set, SanitizeOptions};
use crate::stats::ClipStats;
use crate::stitch::stitch_counted;
use crate::validate::{is_degenerate, sanitize_counted};
use polyclip_geom::{Contour, FillRule, Point, PolygonSet};
use polyclip_sweep::cross::{discover_residual_crossings_in, CrossEvent};
use polyclip_sweep::{
    collect_edges, collect_edges_refs, discover_intersections_in, event_ys_in, BeamSet,
    ForcedSplits, InputEdge, PartitionBackend, RefineOutcome, SweepScratch, BIG_BEAM,
};
use rayon::prelude::*;
use std::borrow::Cow;

/// Configuration for the scanbeam engine.
#[derive(Clone, Debug)]
pub struct ClipOptions {
    /// Fill rule interpreting the inputs (the paper uses even-odd parity).
    pub fill_rule: FillRule,
    /// Run every phase on the rayon pool (Algorithm 1) or sequentially
    /// (the GPC-equivalent baseline).
    pub parallel: bool,
    /// Step-2 partition implementation (direct scan vs segment tree).
    pub backend: PartitionBackend,
    /// Keep the k' virtual vertices in the output instead of packing them
    /// away (useful for inspecting the scanbeam structure).
    pub keep_virtual: bool,
    /// Snap-rounding grid cell for intersection vertices. `0.0` (the
    /// default) disables snapping — results are bit-identical to the
    /// pre-snap engine. When positive, every discovered crossing is
    /// rounded onto the uniform grid of this cell size *if* the rounded
    /// point still lies on both crossing edges' spans (verified before
    /// use; otherwise the exact crossing is kept). Snapping collapses
    /// near-coincident intersection clusters that would otherwise produce
    /// ulp-thin scanbeams and sliver contours, at the cost of perturbing
    /// crossing vertices by at most half a cell diagonal.
    pub snap_cell: f64,
    /// Run the input sanitizer on both operands before clipping (see
    /// [`crate::sanitize`]): repairs duplicate/collinear/spike vertices
    /// and culls zero-area contours, recording any surgery as
    /// [`Degradation::InputRepaired`]. Clean input passes through
    /// borrowed, untouched — repairs never change the enclosed region,
    /// so clean-input results are identical with or without this flag.
    /// Orientation is never touched (it is semantic under nonzero
    /// winding).
    pub sanitize: bool,
    /// Validate the output against the engine's canonical-output
    /// guarantees and, on violation, run the self-repair ladder
    /// (re-dissolve → tightened snap re-clip → pristine sequential
    /// re-clip), recording [`Degradation::OutputRepaired`]. Off by
    /// default: the engine's output is canonical by construction and the
    /// check costs a validation sweep.
    pub validate_output: bool,
    /// Deterministic fault plan for resilience testing. Inert unless the
    /// `fault-injection` cargo feature is enabled.
    pub faults: FaultPlan,
    /// Execution budget: wall-clock deadline, cooperative cancellation,
    /// and work caps (see [`crate::budget`]). The default is unlimited,
    /// and an unlimited budget produces bit-identical output to a build
    /// without the budget machinery.
    pub budget: ExecBudget,
    /// Patch the scanbeam structure in place on refinement rounds ≥ 2
    /// (re-splitting only the beams that gained new scanlines) instead of
    /// rebuilding it from scratch. Output is bit-identical either way —
    /// the incremental patch is property-tested against the full rebuild —
    /// so this is purely a performance switch; it falls back to a full
    /// rebuild automatically when too many beams are dirty.
    pub incremental_refine: bool,
    /// Sequential-cutoff override for the beam-granular phases
    /// (intersection discovery's per-beam parallel reporter, the
    /// incremental-refinement fill). `None` uses the built-in
    /// [`polyclip_sweep::BIG_BEAM`] cutoff; small values force the
    /// parallel paths on small inputs (useful for testing), large values
    /// keep small workloads sequential and amortization-friendly.
    pub grain: Option<usize>,
}

impl Default for ClipOptions {
    fn default() -> Self {
        ClipOptions {
            fill_rule: FillRule::EvenOdd,
            parallel: true,
            backend: PartitionBackend::DirectScan,
            keep_virtual: false,
            snap_cell: 0.0,
            sanitize: true,
            validate_output: false,
            faults: FaultPlan::default(),
            budget: ExecBudget::default(),
            incremental_refine: true,
            grain: None,
        }
    }
}

impl ClipOptions {
    /// Sequential configuration (the baseline of Figures 8/10/12).
    pub fn sequential() -> Self {
        ClipOptions {
            parallel: false,
            ..Default::default()
        }
    }
}

/// Everything the classification phase needs: crossing-free scanbeams plus
/// the discovered intersection count.
pub(crate) struct Prepared {
    pub(crate) edges: Vec<InputEdge>,
    pub(crate) beams: BeamSet,
    pub(crate) k: usize,
}

/// Snap `y` onto the nearest existing event scanline when it falls within
/// the snap tolerance — intersection events landing ulps away from a vertex
/// scanline would otherwise create unsplittably thin scanbeams.
fn snap_to_events(ys: &[f64], y: f64) -> f64 {
    let i = ys.partition_point(|&v| v < y);
    let mut best = y;
    let mut best_d = f64::INFINITY;
    for j in [i.wrapping_sub(1), i] {
        if let Some(&v) = ys.get(j) {
            let d = (y - v).abs();
            if d < best_d {
                best_d = d;
                best = v;
            }
        }
    }
    if best_d <= polyclip_sweep::edges::snap_tolerance(best) {
        best
    } else {
        y
    }
}

/// Snap a discovered crossing onto the uniform grid of cell size `cell`,
/// verified: the rounded point is used only when it still lies on both
/// crossing edges' spans, otherwise the exact crossing is kept (so
/// snapping can collapse sliver clusters but never move a vertex off its
/// generating edges). Identity when `cell <= 0`.
fn snap_crossing(p: Point, a: &InputEdge, b: &InputEdge, cell: f64) -> Point {
    if cell <= 0.0 {
        return p;
    }
    let s = p.snap_to_grid(cell);
    if s == p {
        return p;
    }
    let on_span = |e: &InputEdge| {
        s.x >= e.lo.x.min(e.hi.x) && s.x <= e.lo.x.max(e.hi.x) && s.y >= e.lo.y && s.y <= e.hi.y
    };
    if on_span(a) && on_span(b) {
        s
    } else {
        p
    }
}

/// Everything `prepare` absorbed and measured besides the scanbeam
/// structure itself: degradations plus the refinement counters.
#[derive(Debug, Default)]
pub(crate) struct PrepReport {
    pub(crate) degradations: Vec<Degradation>,
    pub(crate) refine_rounds: usize,
    pub(crate) refine_rounds_incremental: usize,
    pub(crate) beams_rebuilt: usize,
    pub(crate) residuals_accepted: usize,
    pub(crate) input_repairs: usize,
}

/// Input gate: reject non-finite coordinates (they poison the event
/// ordering), run the vertex-repair sanitizer when configured (recording
/// any surgery), then drop contours that provably cannot contribute area,
/// recording the drops. Borrows the input untouched in the clean case.
fn gate_input<'a>(
    p: &'a PolygonSet,
    role: InputRole,
    opts: &ClipOptions,
    report: &mut PrepReport,
) -> Result<Cow<'a, PolygonSet>, ClipError> {
    if let Some((contour, vertex)) = p.first_non_finite() {
        return Err(ClipError::NonFiniteInput {
            role,
            contour,
            vertex,
        });
    }
    let repaired = if opts.sanitize {
        let (repaired, repairs) = sanitize_set(p, &SanitizeOptions::repairs_only());
        if !repairs.is_clean() {
            report.input_repairs += repairs.total();
            report
                .degradations
                .push(Degradation::InputRepaired { role, repairs });
        }
        repaired
    } else {
        Cow::Borrowed(p)
    };
    let (gated, dropped) = match repaired {
        Cow::Borrowed(q) => sanitize_counted(q),
        Cow::Owned(q) => {
            let (g, dropped) = sanitize_counted(&q);
            (Cow::Owned(g.into_owned()), dropped)
        }
    };
    if dropped > 0 {
        report.degradations.push(Degradation::SanitizedInput {
            role,
            dropped_contours: dropped,
        });
    }
    Ok(gated)
}

/// [`gate_input`] over a borrowed contour slice: the same non-finite
/// rejection and degenerate-contour sanitization, with the slice position as
/// the reported contour index. Borrows the slice untouched in the clean
/// case.
fn gate_refs<'a, 'b>(
    contours: &'b [&'a Contour],
    role: InputRole,
    report: &mut PrepReport,
) -> Result<Cow<'b, [&'a Contour]>, ClipError> {
    for (ci, c) in contours.iter().enumerate() {
        if let Some(vertex) = c.first_non_finite() {
            return Err(ClipError::NonFiniteInput {
                role,
                contour: ci,
                vertex,
            });
        }
    }
    let dropped = contours.iter().filter(|c| is_degenerate(c)).count();
    if dropped == 0 {
        return Ok(Cow::Borrowed(contours));
    }
    report.degradations.push(Degradation::SanitizedInput {
        role,
        dropped_contours: dropped,
    });
    Ok(Cow::Owned(
        contours
            .iter()
            .copied()
            .filter(|c| !is_degenerate(c))
            .collect(),
    ))
}

/// Rounds A and B: events, partition, intersection discovery, re-partition.
/// `Ok(None)` means the gated instance has nothing to sweep (empty result).
pub(crate) fn prepare(
    subject: &PolygonSet,
    clip: &PolygonSet,
    opts: &ClipOptions,
    report: &mut PrepReport,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<Option<Prepared>, ClipError> {
    let subject = gate_input(subject, InputRole::Subject, opts, report)?;
    let clip = gate_input(clip, InputRole::Clip, opts, report)?;
    budget::check(gate)?;
    let edges = collect_edges(&subject, &clip);
    prepare_edges(edges, opts, report, gate, scratch)
}

/// [`prepare`] over borrowed contour slices — identical non-finite and
/// degeneracy gating, no `PolygonSet` materialization. Deliberately skips
/// [`ClipOptions::sanitize`]: this is the slab-worker hot path, whose
/// band-clipped contours carry exactly-collinear seam vertices that the
/// merge's fragment cancellation depends on.
pub(crate) fn prepare_refs(
    subject: &[&Contour],
    clip: &[&Contour],
    opts: &ClipOptions,
    report: &mut PrepReport,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<Option<Prepared>, ClipError> {
    let subject = gate_refs(subject, InputRole::Subject, report)?;
    let clip = gate_refs(clip, InputRole::Clip, report)?;
    budget::check(gate)?;
    let edges = collect_edges_refs(&subject, &clip);
    prepare_edges(edges, opts, report, gate, scratch)
}

/// Full rebuild threshold for incremental refinement: when more than this
/// fraction of the beams is dirty, patching costs about as much as
/// rebuilding and the full rebuild's better cache behavior wins.
const DIRTY_REBUILD_FRACTION: f64 = 0.25;

/// The shared back half of preparation, from normalized sweep edges onward.
fn prepare_edges(
    edges: Vec<InputEdge>,
    opts: &ClipOptions,
    report: &mut PrepReport,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<Option<Prepared>, ClipError> {
    if edges.is_empty() {
        return Ok(None);
    }
    let grain = opts.grain.unwrap_or(BIG_BEAM);
    let ys_a = event_ys_in(&edges, &[], opts.parallel, scratch);
    if ys_a.len() < 2 {
        scratch.give_ys(ys_a);
        return Ok(None);
    }
    let empty_forced = ForcedSplits::empty(edges.len());
    let beams_a = BeamSet::build_gated_in(
        &edges,
        ys_a,
        &empty_forced,
        opts.backend,
        opts.parallel,
        Some(gate),
        scratch,
    );
    budget::check(gate)?;
    let crossings =
        discover_intersections_in(&beams_a, &edges, opts.parallel, Some(gate), grain, scratch);
    budget::check(gate)?;

    // Turn crossings into forced splits (both edges share the intersection
    // vertex exactly) and extra events.
    let mut triples: Vec<(u32, f64, f64)> = Vec::with_capacity(2 * crossings.len());
    let mut extra: Vec<f64> = Vec::with_capacity(crossings.len());
    let mut k_pairs: Vec<(u32, u32)> = Vec::with_capacity(crossings.len());
    for (ci, c) in crossings.iter().enumerate() {
        // k can reach millions; bound the cancellation latency of this
        // O(k) post-processing pass the same way the discovery loops do.
        if ci & 0x1FFF == 0 && ci > 0 {
            budget::check(gate)?;
        }
        let cp = snap_crossing(
            c.p,
            &edges[c.e1 as usize],
            &edges[c.e2 as usize],
            opts.snap_cell,
        );
        let py = snap_to_events(&beams_a.ys, cp.y);
        let mut applied = false;
        for eid in [c.e1, c.e2] {
            let e = &edges[eid as usize];
            if py > e.lo.y && py < e.hi.y {
                triples.push((eid, py, cp.x));
                applied = true;
            }
        }
        if applied {
            extra.push(py);
        }
        k_pairs.push((c.e1.min(c.e2), c.e1.max(c.e2)));
    }
    beams_a.recycle(scratch);
    scratch.give_events(crossings);
    k_pairs.sort_unstable();
    k_pairs.dedup();
    let k = k_pairs.len();

    // Round B with fixed-point refinement: rounding can leave residual
    // crossings inside numerically degenerate beams (two intersections of a
    // nearly horizontal edge rounding to inconsistent y's). Re-discover on
    // the bent sub-edge geometry and re-split until crossing-free; each
    // iteration only adds events strictly inside an offending beam, so the
    // loop terminates (bounded further by MAX_REFINE as a belt-and-braces).
    //
    // Round 1 builds the scanbeam structure from scratch; rounds ≥ 2 patch
    // it incrementally (only beams that gained a scanline are re-split;
    // see [`BeamSet::refine_incremental`]) unless too much of it is dirty,
    // in which case the round falls back to a full rebuild — the result is
    // bit-identical either way. All builds draw from `scratch`, so even
    // the fallback reuses the previous round's capacity.
    const MAX_REFINE: usize = 8;
    let forced_exhaust = resilience::fault_exhaust_refinement(opts);
    let mut beams: Option<BeamSet> = None;
    // New events appended by the previous iteration's residual pass:
    // exactly the scanlines an incremental patch must splice in.
    let mut round_mark = 0usize;
    // Fault injection can pre-spend the round budget so the exhaustion
    // path runs on the very first iteration.
    let mut refine = if forced_exhaust { MAX_REFINE } else { 0 };
    loop {
        budget::check(gate)?;
        let forced = ForcedSplits::build_in(edges.len(), &triples, scratch);
        let mut patched = false;
        if opts.incremental_refine {
            if let Some(b) = beams.as_mut() {
                match b.refine_incremental(
                    &edges,
                    &forced,
                    &extra[round_mark..],
                    DIRTY_REBUILD_FRACTION,
                    grain,
                    opts.parallel,
                    Some(gate),
                    scratch,
                ) {
                    RefineOutcome::Incremental { beams_rebuilt } => {
                        report.refine_rounds_incremental += 1;
                        report.beams_rebuilt += beams_rebuilt;
                        patched = true;
                    }
                    RefineOutcome::TooDirty => {}
                }
            }
        }
        if !patched {
            if let Some(old) = beams.take() {
                old.recycle(scratch);
            }
            let ys_b = event_ys_in(&edges, &extra, opts.parallel, scratch);
            beams = Some(BeamSet::build_gated_in(
                &edges,
                ys_b,
                &forced,
                opts.backend,
                opts.parallel,
                Some(gate),
                scratch,
            ));
        }
        let bs = beams.as_ref().expect("built or patched above");
        budget::check(gate)?;
        refine += 1;
        if refine > MAX_REFINE {
            // Bound hit: count what is left so the degradation report is
            // concrete. A genuine (unfaulted) run only lands here after
            // MAX_REFINE rounds that each made progress.
            let leftover_v =
                discover_residual_crossings_in(bs, opts.parallel, Some(gate), grain, scratch);
            let leftover = leftover_v.len();
            scratch.give_events(leftover_v);
            forced.recycle(scratch);
            budget::check(gate)?;
            if leftover > 0 || forced_exhaust {
                report.degradations.push(Degradation::RefinementExhausted {
                    rounds: MAX_REFINE,
                    residual_crossings: leftover,
                });
            }
            break;
        }
        let mut residual =
            discover_residual_crossings_in(bs, opts.parallel, Some(gate), grain, scratch);
        budget::check(gate)?;
        if resilience::fault_residual_storm(opts) && refine == 1 {
            // Synthetic crossing pinned to an edge endpoint: never strictly
            // interior to the edge, so it cannot force a split — this
            // drives the accept-residuals path below deterministically.
            residual.push(CrossEvent {
                e1: 0,
                e2: 0,
                p: edges[0].lo,
            });
        }
        if residual.is_empty() {
            scratch.give_events(residual);
            forced.recycle(scratch);
            break;
        }
        round_mark = extra.len();
        let mut progressed = false;
        for c in &residual {
            let cp = snap_crossing(
                c.p,
                &edges[c.e1 as usize],
                &edges[c.e2 as usize],
                opts.snap_cell,
            );
            for eid in [c.e1, c.e2] {
                let e = &edges[eid as usize];
                if cp.y > e.lo.y && cp.y < e.hi.y {
                    let t = (eid, cp.y, cp.x);
                    if !triples.contains(&t) {
                        triples.push(t);
                        progressed = true;
                    }
                }
            }
            extra.push(cp.y);
        }
        let n_residual = residual.len();
        scratch.give_events(residual);
        forced.recycle(scratch);
        if !progressed {
            // The remaining residuals sit inside beams already at the
            // resolution limit; the cancellation/stitch phase degrades
            // gracefully (a dropped sliver walk), so accept — and report.
            report.residuals_accepted += n_residual;
            report.degradations.push(Degradation::ResidualsAccepted {
                residual_crossings: n_residual,
            });
            break;
        }
    }
    report.refine_rounds = refine.min(MAX_REFINE);
    Ok(Some(Prepared {
        edges,
        beams: beams.expect("round loop always builds"),
        k,
    }))
}

/// Classify every beam (Step 3), in parallel when configured. Polls the
/// gate per scanbeam; on a trip the remaining beams yield empty outputs and
/// the typed error is returned instead of the truncated classification.
fn classify_all(
    p: &Prepared,
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
) -> Result<Vec<BeamOutput>, ClipError> {
    let beams = &p.beams;
    let run = |i: usize| {
        if gate.is_tripped() {
            return BeamOutput::default();
        }
        classify_beam(
            beams.beam(i),
            beams.y_bot(i),
            beams.y_top(i),
            op,
            opts.fill_rule,
        )
    };
    let outputs = if opts.parallel {
        (0..beams.n_beams()).into_par_iter().map(run).collect()
    } else {
        (0..beams.n_beams()).map(run).collect()
    };
    budget::check(gate)?;
    Ok(outputs)
}

/// Perform a boolean operation, returning the result, its statistics, and
/// every degradation absorbed on the way — or a [`ClipError`] when no
/// result can be produced (non-finite input coordinates).
///
/// This is the engine's fallible entry point; [`clip_with_stats`] and
/// [`clip`] are lenient wrappers over it. Call
/// [`ClipOutcome::strict`] on the returned outcome to additionally reject
/// lossy degradations (accepted residual crossings, exhausted refinement,
/// dropped stitch fragments).
pub fn try_clip_with_stats(
    subject: &PolygonSet,
    clip: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> Result<ClipOutcome, ClipError> {
    // Arm the budget exactly once at the public boundary: the relative
    // deadline becomes absolute here, and every nested phase below shares
    // this gate by reference.
    let gate = opts.budget.arm();
    budget::check(&gate)?;
    try_clip_with_stats_gated(subject, clip, op, opts, &gate)
}

/// [`try_clip_with_stats`] against an already-armed gate — the re-entry
/// point for drivers (slab workers, overlay workers) that arm one budget
/// for a whole multi-clip operation and share it across engine calls.
pub(crate) fn try_clip_with_stats_gated(
    subject: &PolygonSet,
    clip: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
) -> Result<ClipOutcome, ClipError> {
    try_clip_with_stats_in(subject, clip, op, opts, gate, &mut SweepScratch::new())
}

/// [`try_clip_with_stats_gated`] against a caller-owned [`SweepScratch`] —
/// the innermost re-entry point for workers (Algorithm 2's slab workers)
/// that keep one arena per worker and reuse its capacity across clips.
pub(crate) fn try_clip_with_stats_in(
    subject: &PolygonSet,
    clip: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<ClipOutcome, ClipError> {
    let mut report = PrepReport::default();
    let prepared = prepare(subject, clip, opts, &mut report, gate, scratch)?;
    let mut outcome = clip_prepared(prepared, report, op, opts, gate, scratch)?;
    if opts.validate_output {
        repair_output(subject, clip, op, opts, &mut outcome);
    }
    Ok(outcome)
}

/// The output self-repair ladder: validate the result and, on violation,
/// escalate through increasingly expensive re-derivations until one
/// validates — re-dissolve the output, re-clip with a tightened snap
/// grid, re-clip on the pristine sequential engine — keeping the original
/// if every rung still violates. Every invocation (repaired or not) is
/// recorded as [`Degradation::OutputRepaired`].
pub(crate) fn repair_output(
    subject: &PolygonSet,
    clip: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
    outcome: &mut ClipOutcome,
) {
    let violations = crate::validate::validate(&outcome.result).violations.len();
    if violations == 0 {
        return;
    }
    // Internal re-derivations must not sanitize (the inputs were already
    // gated), must not re-validate (no recursion), and run budget-exempt
    // but cancellable: the failing attempt already consumed the allowance,
    // and a repair that re-armed the deadline would double it.
    let internal = ClipOptions {
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };

    let mut rung = RepairRung::Unrepaired;

    // Rung 1: re-dissolve the output. Cheap — proportional to the output,
    // not the inputs — and fixes most stitch-level defects (duplicate
    // vertices, crossing slivers).
    let redissolved = dissolve(&outcome.result, &internal);
    if crate::validate::validate(&redissolved).is_canonical() {
        outcome.result = redissolved;
        rung = RepairRung::Redissolve;
    } else {
        // Rung 2: re-clip with a tightened snap grid, collapsing the
        // near-coincident crossings that produced the violation. Doubling
        // an explicit cell widens the grid; otherwise derive one from the
        // input extent.
        let cell = if opts.snap_cell > 0.0 {
            opts.snap_cell * 2.0
        } else {
            let bb = subject.bbox().union(&clip.bbox());
            let span = (bb.xmax - bb.xmin).max(bb.ymax - bb.ymin);
            if span.is_finite() && span > 0.0 {
                span * polyclip_geom::EPS_BOUNDARY
            } else {
                polyclip_geom::EPS_BOUNDARY
            }
        };
        let snapped = ClipOptions {
            snap_cell: cell,
            ..internal.clone()
        };
        if let Ok(o) = try_clip_with_stats(subject, clip, op, &snapped) {
            if crate::validate::validate(&o.result).is_canonical() {
                outcome.result = o.result;
                rung = RepairRung::TightenedSnap;
            }
        }
        // Rung 3: pristine sequential re-clip.
        if rung == RepairRung::Unrepaired {
            let pristine = resilience::pristine(&internal);
            if let Ok(o) = try_clip_with_stats(subject, clip, op, &pristine) {
                if crate::validate::validate(&o.result).is_canonical() {
                    outcome.result = o.result;
                    rung = RepairRung::PristineSequential;
                }
            }
        }
    }
    outcome.stats.output_repairs += 1;
    outcome.stats.out_contours = outcome.result.len();
    outcome.stats.out_vertices = outcome.result.vertex_count();
    outcome
        .degradations
        .push(Degradation::OutputRepaired { rung, violations });
}

/// [`try_clip_with_stats`] over borrowed contour slices.
///
/// The slab-index hot path of Algorithm 2 hands each slab worker a mix of
/// borrowed (fully-inside) and freshly band-clipped contours; this entry
/// point runs the identical pipeline on such a view, so its result is
/// bit-identical to building a [`PolygonSet`] from the same contours and
/// calling [`try_clip_with_stats`] (invalid contours must be pre-filtered,
/// as [`PolygonSet::push`] would).
pub fn try_clip_refs_with_stats(
    subject: &[&Contour],
    clip: &[&Contour],
    op: BoolOp,
    opts: &ClipOptions,
) -> Result<ClipOutcome, ClipError> {
    let gate = opts.budget.arm();
    budget::check(&gate)?;
    try_clip_refs_gated(subject, clip, op, opts, &gate)
}

/// [`try_clip_refs_with_stats`] against an already-armed gate (slab-worker
/// re-entry; see [`try_clip_with_stats_gated`]).
pub(crate) fn try_clip_refs_gated(
    subject: &[&Contour],
    clip: &[&Contour],
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
) -> Result<ClipOutcome, ClipError> {
    try_clip_refs_in(subject, clip, op, opts, gate, &mut SweepScratch::new())
}

/// [`try_clip_refs_gated`] against a caller-owned [`SweepScratch`] (see
/// [`try_clip_with_stats_in`]).
pub(crate) fn try_clip_refs_in(
    subject: &[&Contour],
    clip: &[&Contour],
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<ClipOutcome, ClipError> {
    let mut report = PrepReport::default();
    let prepared = prepare_refs(subject, clip, opts, &mut report, gate, scratch)?;
    clip_prepared(prepared, report, op, opts, gate, scratch)
}

/// Classification + merge + stitching: the shared tail of the two fallible
/// entry points above, from a prepared scanbeam structure to the outcome.
fn clip_prepared(
    prepared: Option<Prepared>,
    mut report: PrepReport,
    op: BoolOp,
    opts: &ClipOptions,
    gate: &Gate,
    scratch: &mut SweepScratch,
) -> Result<ClipOutcome, ClipError> {
    let Some(p) = prepared else {
        return Ok(ClipOutcome {
            result: PolygonSet::new(),
            stats: ClipStats::default(),
            degradations: report.degradations,
        });
    };
    let outputs = classify_all(&p, op, opts, gate)?;

    // Gather boundary fragments: verticals from the beams, horizontals from
    // the scanline symmetric differences (Step 4's merge of partial
    // polygons).
    let n_beams = p.beams.n_beams();
    let empty: &[(f64, f64)] = &[];
    let hline = |j: usize| -> Vec<(Point, Point)> {
        let below = if j > 0 {
            outputs[j - 1].top.as_slice()
        } else {
            empty
        };
        let above = if j < n_beams {
            outputs[j].bottom.as_slice()
        } else {
            empty
        };
        horizontal_edges(below, above, p.beams.ys[j])
    };
    let mut all_edges: Vec<(Point, Point)> = if opts.parallel {
        let mut v: Vec<(Point, Point)> = outputs
            .par_iter()
            .flat_map_iter(|o| o.edges.iter().copied())
            .collect();
        v.par_extend((0..=n_beams).into_par_iter().flat_map_iter(hline));
        v
    } else {
        let mut v: Vec<(Point, Point)> = outputs
            .iter()
            .flat_map(|o| o.edges.iter().copied())
            .collect();
        v.extend((0..=n_beams).flat_map(hline));
        v
    };

    // Drop degenerate fragments defensively (zero-length can appear from
    // zero-width spans at vertices).
    all_edges.retain(|(a, b)| a != b);

    // Every fragment contributes at most two output vertices: meter the
    // gathered count against `max_output_vertices` *before* paying for the
    // stitch.
    gate.meter().add_vertices(all_edges.len() as u64);
    budget::check(gate)?;

    let (contours, dropped) = stitch_counted(all_edges, !opts.keep_virtual);
    if dropped > 0 {
        report
            .degradations
            .push(Degradation::DroppedFragments { fragments: dropped });
    }
    let out = PolygonSet::from_contours(contours);

    let stats = ClipStats {
        n_edges: p.edges.len(),
        n_events: p.beams.ys.len(),
        n_beams,
        k_intersections: p.k,
        k_prime: p.beams.total_sub_edges() - p.edges.len(),
        n_subedges: p.beams.total_sub_edges(),
        out_contours: out.len(),
        out_vertices: out.vertex_count(),
        refine_rounds: report.refine_rounds,
        refine_rounds_incremental: report.refine_rounds_incremental,
        beams_rebuilt: report.beams_rebuilt,
        residuals_accepted: report.residuals_accepted,
        slab_retries: 0,
        input_repairs: report.input_repairs,
        output_repairs: 0,
        completed_slabs: 0,
        total_slabs: 0,
        prepared_reused: false,
    };
    // Hand the scanbeam buffers back so the next clip on this worker's
    // arena reuses them, and publish the arena counters on the meter.
    p.beams.recycle(scratch);
    gate.meter().record_scratch_bytes(scratch.capacity_bytes());
    gate.meter().add_scratch_reused(scratch.take_reused_bytes());
    Ok(ClipOutcome {
        result: out,
        stats,
        degradations: report.degradations,
    })
}

/// Fallible boolean operation: like [`clip`], but returns the
/// [`ClipOutcome`] (result + stats + degradation report) or a typed
/// [`ClipError`] instead of silently absorbing bad input.
pub fn try_clip(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> Result<ClipOutcome, ClipError> {
    try_clip_with_stats(subject, clip_p, op, opts)
}

/// Perform a boolean operation, returning the result and its statistics.
///
/// Lenient wrapper over [`try_clip_with_stats`]: rejected input (non-finite
/// coordinates) yields an empty result, degradations are absorbed silently.
pub fn clip_with_stats(
    subject: &PolygonSet,
    clip: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> (PolygonSet, ClipStats) {
    match try_clip_with_stats(subject, clip, op, opts) {
        Ok(o) => (o.result, o.stats),
        Err(_) => (PolygonSet::new(), ClipStats::default()),
    }
}

/// Perform a boolean operation on two polygon sets.
///
/// This is the library's main entry point: arbitrary (convex, concave,
/// multi-contour, self-intersecting) inputs, output-sensitive cost, exact
/// parity semantics under the configured fill rule. It never panics and
/// never fails: inputs it cannot process (non-finite coordinates) produce
/// an empty result. Use [`try_clip`] to observe errors and degradations.
pub fn clip(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> PolygonSet {
    clip_with_stats(subject, clip_p, op, opts).0
}

/// Area of the boolean result, computed from the kept trapezoids without
/// constructing output contours. Independent of the stitching code, which
/// makes it the test oracle for the constructed output's area.
pub fn measure_op(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> f64 {
    let gate = Gate::unlimited();
    let Ok(Some(p)) = prepare(
        subject,
        clip_p,
        opts,
        &mut PrepReport::default(),
        &gate,
        &mut SweepScratch::new(),
    ) else {
        return 0.0;
    };
    let Ok(outputs) = classify_all(&p, op, opts, &gate) else {
        return 0.0;
    };
    outputs.iter().map(|o| o.area).sum()
}

/// The even-odd measure (area) of a polygon set — meaningful for arbitrary,
/// including self-intersecting, inputs.
pub fn eo_area(p: &PolygonSet) -> f64 {
    measure_op(
        p,
        &PolygonSet::new(),
        BoolOp::Union,
        &ClipOptions::default(),
    )
}

/// Canonicalize a polygon set: resolve self-intersections and overlaps into
/// clean, properly oriented contours (outer CCW, holes CW) under the fill
/// rule. Also the merge ("Step 8") used by Algorithm 2 to fuse per-slab
/// partial outputs: shared slab-boundary runs cancel during stitching.
pub fn dissolve(p: &PolygonSet, opts: &ClipOptions) -> PolygonSet {
    clip(p, &PolygonSet::new(), BoolOp::Union, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;
    use polyclip_geom::point::pt;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    fn opts_seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    #[test]
    fn intersection_of_offset_squares() {
        for opts in [opts_seq(), ClipOptions::default()] {
            let (out, stats) = clip_with_stats(
                &sq(0.0, 0.0, 2.0, 2.0),
                &sq(1.0, 1.0, 3.0, 3.0),
                BoolOp::Intersection,
                &opts,
            );
            assert_eq!(out.len(), 1, "parallel={}", opts.parallel);
            let c = &out.contours()[0];
            assert!((c.signed_area() - 1.0).abs() < 1e-12);
            assert_eq!(c.len(), 4);
            // The two boundary crossings involve horizontal edges, which
            // never enter the sweep: k counts sweep-edge crossings only.
            assert_eq!(stats.k_intersections, 0);
            assert_eq!(stats.out_contours, 1);
        }
    }

    #[test]
    fn union_of_offset_squares() {
        let out = clip(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(1.0, 1.0, 3.0, 3.0),
            BoolOp::Union,
            &opts_seq(),
        );
        assert_eq!(out.len(), 1);
        assert!((out.contours()[0].signed_area() - 7.0).abs() < 1e-12);
        // The union is an L-ish octagon: 8 corners.
        assert_eq!(out.contours()[0].len(), 8);
    }

    #[test]
    fn difference_of_offset_squares() {
        let out = clip(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(1.0, 1.0, 3.0, 3.0),
            BoolOp::Difference,
            &opts_seq(),
        );
        assert_eq!(out.len(), 1);
        assert!((out.contours()[0].signed_area() - 3.0).abs() < 1e-12);
        assert!(!out.contains(pt(1.5, 1.5), FillRule::EvenOdd));
        assert!(out.contains(pt(0.5, 0.5), FillRule::EvenOdd));
    }

    #[test]
    fn xor_of_offset_squares() {
        let out = clip(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(1.0, 1.0, 3.0, 3.0),
            BoolOp::Xor,
            &opts_seq(),
        );
        // Two L-shaped pieces touching at two points, or contours totalling
        // area 6 under even-odd.
        assert!((eo_area(&out) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_and_nested_cases() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(5.0, 5.0, 6.0, 6.0);
        assert!(clip(&a, &b, BoolOp::Intersection, &opts_seq()).is_empty());
        let u = clip(&a, &b, BoolOp::Union, &opts_seq());
        assert_eq!(u.len(), 2);

        let outer = sq(0.0, 0.0, 4.0, 4.0);
        let inner = sq(1.0, 1.0, 2.0, 2.0);
        let d = clip(&outer, &inner, BoolOp::Difference, &opts_seq());
        assert_eq!(d.len(), 2); // ring: outer CCW + hole CW
        let areas: Vec<f64> = d.contours().iter().map(|c| c.signed_area()).collect();
        assert!(areas.iter().any(|&x| (x - 16.0).abs() < 1e-12));
        assert!(areas.iter().any(|&x| (x + 1.0).abs() < 1e-12));
        assert!(!d.contains(pt(1.5, 1.5), FillRule::EvenOdd));
    }

    #[test]
    fn identical_inputs() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let i = clip(&a, &a, BoolOp::Intersection, &opts_seq());
        assert!((eo_area(&i) - 4.0).abs() < 1e-9);
        let d = clip(&a, &a, BoolOp::Difference, &opts_seq());
        assert!(eo_area(&d) < 1e-9);
        let x = clip(&a, &a, BoolOp::Xor, &opts_seq());
        assert!(eo_area(&x) < 1e-9);
    }

    #[test]
    fn self_intersecting_subject_bowtie() {
        // Bow-tie ∩ square covering the left lobe only.
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let left = sq(0.0, 0.0, 1.0, 2.0);
        let out = clip(&bow, &left, BoolOp::Intersection, &opts_seq());
        // Left lobe is the triangle (0,0), (1,1), (0,2): area 1.
        assert!((eo_area(&out) - 1.0).abs() < 1e-9, "area={}", eo_area(&out));
        assert!(out.contains(pt(0.25, 1.0), FillRule::EvenOdd));
        assert!(!out.contains(pt(0.9, 1.9), FillRule::EvenOdd));
    }

    #[test]
    fn triangles_with_crossing_boundaries() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]);
        let b = PolygonSet::from_xy(&[(0.0, 2.0), (4.0, 2.0), (2.0, -1.0)]);
        let (out, stats) = clip_with_stats(&a, &b, BoolOp::Intersection, &opts_seq());
        assert!(stats.k_intersections > 0);
        let area = eo_area(&out);
        let oracle = measure_op(&a, &b, BoolOp::Intersection, &opts_seq());
        assert!(
            (area - oracle).abs() < 1e-9,
            "stitched {area} vs measured {oracle}"
        );
        assert!(area > 0.0);
    }

    #[test]
    fn horizontal_edges_in_input_are_handled() {
        // Both squares have horizontal edges; results must still be exact.
        let out = clip(
            &sq(0.0, 0.0, 2.0, 1.0),
            &sq(1.0, 0.0, 3.0, 1.0),
            BoolOp::Intersection,
            &opts_seq(),
        );
        assert_eq!(out.len(), 1);
        assert!((out.contours()[0].signed_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_edges_between_inputs() {
        // Two squares sharing the full edge x=2: union is one rectangle,
        // intersection is empty (zero area), difference is the left square.
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(2.0, 0.0, 4.0, 2.0);
        let u = clip(&a, &b, BoolOp::Union, &opts_seq());
        assert_eq!(u.len(), 1);
        assert!((u.contours()[0].signed_area() - 8.0).abs() < 1e-12);
        assert_eq!(u.contours()[0].len(), 4, "shared edge must dissolve");
        let i = clip(&a, &b, BoolOp::Intersection, &opts_seq());
        assert!(eo_area(&i) < 1e-12);
        let d = clip(&a, &b, BoolOp::Difference, &opts_seq());
        assert!((eo_area(&d) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_sequential_agree_exactly() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 1.5), (3.0, 4.0)]);
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            let s = clip(&a, &b, op, &opts_seq());
            let p = clip(&a, &b, op, &ClipOptions::default());
            assert_eq!(s, p, "op {op:?} must be deterministic across modes");
        }
    }

    #[test]
    fn segment_tree_backend_agrees() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 1.5), (3.0, 4.0)]);
        let mut o1 = opts_seq();
        let mut o2 = opts_seq();
        o2.backend = PartitionBackend::SegmentTree;
        o1.backend = PartitionBackend::DirectScan;
        assert_eq!(
            clip(&a, &b, BoolOp::Union, &o1),
            clip(&a, &b, BoolOp::Union, &o2)
        );
    }

    #[test]
    fn empty_inputs() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let e = PolygonSet::new();
        assert_eq!(
            clip(&a, &e, BoolOp::Union, &opts_seq()),
            dissolve(&a, &opts_seq())
        );
        assert!(clip(&a, &e, BoolOp::Intersection, &opts_seq()).is_empty());
        assert!(clip(&e, &e, BoolOp::Union, &opts_seq()).is_empty());
        let d = clip(&a, &e, BoolOp::Difference, &opts_seq());
        assert!((eo_area(&d) - 1.0).abs() < 1e-12);
        // Difference with empty subject.
        assert!(clip(&e, &a, BoolOp::Difference, &opts_seq()).is_empty());
    }

    #[test]
    fn stats_track_output_sensitivity() {
        // Diamonds so the crossings involve non-horizontal edges.
        let a = PolygonSet::from_xy(&[(1.0, 0.0), (2.0, 1.0), (1.0, 2.0), (0.0, 1.0)]);
        let b = a.translate(pt(1.0, 0.0));
        let (_, s) = clip_with_stats(&a, &b, BoolOp::Intersection, &opts_seq());
        assert_eq!(s.n_edges, 8);
        assert_eq!(s.k_intersections, 2);
        assert!(s.k_prime > 0); // edges split at interior scanlines
        assert_eq!(s.n_subedges, s.n_edges + s.k_prime);
        assert!(s.processor_bound() >= s.n_edges + s.k_intersections);
    }

    #[test]
    fn virtual_vertices_can_be_kept() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 0.5, 3.0, 1.5); // splits a's verticals
        let mut keep = opts_seq();
        keep.keep_virtual = true;
        let with_virtual = clip(&a, &b, BoolOp::Difference, &keep);
        let without = clip(&a, &b, BoolOp::Difference, &opts_seq());
        assert!(with_virtual.vertex_count() > without.vertex_count());
        assert!((eo_area(&with_virtual) - eo_area(&without)).abs() < 1e-9);
    }

    #[test]
    fn concave_star_against_square() {
        // A 5-pointed star (self-intersecting pentagram) against a square.
        let star: Vec<(f64, f64)> = (0..5)
            .map(|i| {
                let ang =
                    std::f64::consts::FRAC_PI_2 + (i as f64) * 4.0 * std::f64::consts::PI / 5.0;
                (ang.cos(), ang.sin())
            })
            .collect();
        let star = PolygonSet::from_xy(&star);
        let square = sq(-2.0, -2.0, 2.0, 2.0);
        let i = measure_op(&star, &square, BoolOp::Intersection, &opts_seq());
        let star_area = eo_area(&star);
        assert!((i - star_area).abs() < 1e-9, "star inside square: ∩ = star");
        let (out, stats) = clip_with_stats(&star, &square, BoolOp::Intersection, &opts_seq());
        // The pentagram has 5 self-crossings; the two on its nearly
        // horizontal chord (shoulder-to-shoulder, ulps of y-extent) are
        // handled by the horizontal reconstruction after vertex snapping
        // rather than as sweep crossings, so k counts the remaining three.
        assert!(stats.k_intersections >= 3, "pentagram self-intersections");
        assert!((eo_area(&out) - star_area).abs() < 1e-9);
    }

    // A budget trip must leave the scratch arena structurally valid: the
    // next clip through the same arena has to succeed and match a
    // fresh-arena run bit for bit. The dense cap sweep lands trips in
    // every phase — Round-A discovery, the crossing post-process, and the
    // incremental refinement rounds ≥ 2 (the workload runs several; see
    // the `incremental` equivalence suite) — so a patch round interrupted
    // halfway through its CSR splice is covered, not just clean-phase
    // boundaries.
    #[test]
    fn tripped_scratch_arena_stays_reusable() {
        use polyclip_datagen::degenerate::{shingled_strips, sliver_fan};
        let subject = shingled_strips(5, pt(-1.0, -1.0), 2.0, 2.0, 10, 1e-6);
        let clip_p = sliver_fan(6, pt(0.0, 0.0), 1.4, 8);
        let opts = ClipOptions::default();
        let baseline = try_clip_with_stats(&subject, &clip_p, BoolOp::Union, &opts).unwrap();
        assert!(
            baseline.stats.refine_rounds >= 3 && baseline.stats.refine_rounds_incremental >= 2,
            "workload must drive incremental refinement: {:?}",
            baseline.stats
        );

        let mut scratch = SweepScratch::new();
        let mut trips = 0usize;
        for cap in 1..=96u64 {
            let tight = ClipOptions {
                budget: ExecBudget {
                    max_intersections: Some(cap),
                    ..Default::default()
                },
                ..ClipOptions::default()
            };
            let gate = tight.budget.arm();
            match try_clip_with_stats_in(
                &subject,
                &clip_p,
                BoolOp::Union,
                &tight,
                &gate,
                &mut scratch,
            ) {
                Err(ClipError::BudgetExceeded { .. }) => trips += 1,
                Ok(_) => {}
                Err(e) => panic!("cap {cap}: unexpected error {e:?}"),
            }
            let clean_gate = opts.budget.arm();
            let reused = try_clip_with_stats_in(
                &subject,
                &clip_p,
                BoolOp::Union,
                &opts,
                &clean_gate,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(reused.result, baseline.result, "cap {cap}: output differs");
            assert_eq!(reused.stats, baseline.stats, "cap {cap}: stats differ");
        }
        assert!(
            trips >= 8,
            "cap sweep never tripped mid-run ({trips} trips)"
        );
    }

    #[test]
    fn measure_matches_stitched_area_on_random_quads() {
        let mut s = 0x5eedu64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 10_000) as f64 / 10_000.0
        };
        for trial in 0..30 {
            let quad = |rng: &mut dyn FnMut() -> f64| {
                PolygonSet::from_xy(&[
                    (rng() * 4.0, rng() * 4.0),
                    (rng() * 4.0, rng() * 4.0),
                    (rng() * 4.0, rng() * 4.0),
                    (rng() * 4.0, rng() * 4.0),
                ])
            };
            let a = quad(&mut rng);
            let b = quad(&mut rng);
            for op in [
                BoolOp::Intersection,
                BoolOp::Union,
                BoolOp::Difference,
                BoolOp::Xor,
            ] {
                let stitched = eo_area(&clip(&a, &b, op, &opts_seq()));
                let measured = measure_op(&a, &b, op, &opts_seq());
                assert!(
                    (stitched - measured).abs() < 1e-6 * (1.0 + measured.abs()),
                    "trial {trial} op {op:?}: stitched {stitched} vs measured {measured}"
                );
            }
        }
    }
}
