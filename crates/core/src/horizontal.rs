//! Horizontal boundary reconstruction between adjacent scanbeams.
//!
//! Two vertically adjacent scanbeams share a scanline. Where the kept region
//! of the upper beam extends over x-ranges the lower beam does not cover,
//! the shared scanline is a *bottom* boundary of the output (directed
//! rightward, interior above); where only the lower beam covers, it is a
//! *top* boundary (leftward, interior below); where both cover, the partial
//! polygons merge seamlessly — the shared border cancels, which is exactly
//! the paper's Figure 6 union of partial output polygons from adjacent
//! scanbeams, computed here as an interval symmetric difference.
//!
//! Interval endpoints originate from sub-edge coordinates that are
//! bit-identical on both sides of a scanline (see
//! [`polyclip_sweep::beams`]), so the symmetric difference is exact.

use polyclip_geom::{OrdF64, Point};

/// Horizontal boundary fragments on the scanline at height `y`, given the
/// kept intervals of the beam below (its top scanline) and the beam above
/// (its bottom scanline). Returned edges are directed interior-on-left.
pub fn horizontal_edges(below: &[(f64, f64)], above: &[(f64, f64)], y: f64) -> Vec<(Point, Point)> {
    // Coverage deltas at each x: +1/−1 per interval boundary, tracked
    // separately for the two sides.
    let mut ev: Vec<(OrdF64, i32, i32)> = Vec::with_capacity(2 * (below.len() + above.len()));
    for &(a, b) in below {
        if a < b {
            ev.push((OrdF64::new(a), 1, 0));
            ev.push((OrdF64::new(b), -1, 0));
        }
    }
    for &(a, b) in above {
        if a < b {
            ev.push((OrdF64::new(a), 0, 1));
            ev.push((OrdF64::new(b), 0, -1));
        }
    }
    if ev.is_empty() {
        return Vec::new();
    }
    ev.sort_unstable_by_key(|e| e.0);

    #[derive(PartialEq, Clone, Copy)]
    enum Status {
        Neither,
        BottomOfUpper, // only the beam above keeps: rightward edge
        TopOfLower,    // only the beam below keeps: leftward edge
    }

    let mut out = Vec::new();
    let (mut nb, mut na) = (0i32, 0i32);
    let mut run_start = ev[0].0;
    let mut run_status = Status::Neither;
    let mut i = 0;
    while i < ev.len() {
        let x = ev[i].0;
        // Apply all deltas at this x.
        while i < ev.len() && ev[i].0 == x {
            nb += ev[i].1;
            na += ev[i].2;
            i += 1;
        }
        let status = match (nb > 0, na > 0) {
            (false, true) => Status::BottomOfUpper,
            (true, false) => Status::TopOfLower,
            _ => Status::Neither,
        };
        if status != run_status {
            emit(&mut out, run_status, run_start.get(), x.get(), y);
            run_start = x;
            run_status = status;
        }
    }
    debug_assert!(run_status == Status::Neither, "unbalanced interval deltas");

    #[inline]
    fn emit(out: &mut Vec<(Point, Point)>, status: Status, x0: f64, x1: f64, y: f64) {
        if x0 >= x1 {
            return;
        }
        match status {
            Status::Neither => {}
            // Interior above → travel rightward keeps it on the left.
            Status::BottomOfUpper => out.push((Point::new(x0, y), Point::new(x1, y))),
            // Interior below → travel leftward.
            Status::TopOfLower => out.push((Point::new(x1, y), Point::new(x0, y))),
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(Point, Point)]) -> Vec<(f64, f64, f64, f64)> {
        v.iter().map(|(a, b)| (a.x, a.y, b.x, b.y)).collect()
    }

    #[test]
    fn bottom_of_a_fresh_region() {
        // Nothing below, one interval above → rightward bottom edge.
        let e = horizontal_edges(&[], &[(1.0, 3.0)], 5.0);
        assert_eq!(pts(&e), vec![(1.0, 5.0, 3.0, 5.0)]);
    }

    #[test]
    fn top_of_a_closing_region() {
        let e = horizontal_edges(&[(1.0, 3.0)], &[], 5.0);
        assert_eq!(pts(&e), vec![(3.0, 5.0, 1.0, 5.0)]);
    }

    #[test]
    fn perfectly_matching_intervals_cancel() {
        let e = horizontal_edges(&[(1.0, 3.0)], &[(1.0, 3.0)], 5.0);
        assert!(e.is_empty());
    }

    #[test]
    fn partial_overlap_emits_both_kinds() {
        // Below covers [0,2], above covers [1,4].
        let e = horizontal_edges(&[(0.0, 2.0)], &[(1.0, 4.0)], 1.0);
        // [0,1): top of lower (leftward); [2,4): bottom of upper (rightward).
        assert_eq!(e.len(), 2);
        assert!(pts(&e).contains(&(1.0, 1.0, 0.0, 1.0)));
        assert!(pts(&e).contains(&(2.0, 1.0, 4.0, 1.0)));
    }

    #[test]
    fn multiple_intervals_and_shared_endpoints() {
        // Below: [0,1] and [2,3]; above: [0,3].
        let e = horizontal_edges(&[(0.0, 1.0), (2.0, 3.0)], &[(0.0, 3.0)], 0.0);
        // Only the gap [1,2] is a fresh bottom edge.
        assert_eq!(pts(&e), vec![(1.0, 0.0, 2.0, 0.0)]);
    }

    #[test]
    fn zero_length_intervals_are_ignored() {
        let e = horizontal_edges(&[(1.0, 1.0)], &[(2.0, 2.0)], 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn adjacent_runs_coalesce() {
        // Above: [0,1] and [1,2] — must come out as one edge [0,2].
        let e = horizontal_edges(&[], &[(0.0, 1.0), (1.0, 2.0)], 0.0);
        assert_eq!(pts(&e), vec![(0.0, 0.0, 2.0, 0.0)]);
    }

    #[test]
    fn nested_below_intervals() {
        // Below [0,4] plus duplicate cover [1,2] (overlap counts, not parity).
        let e = horizontal_edges(&[(0.0, 4.0), (1.0, 2.0)], &[(0.0, 4.0)], 0.0);
        assert!(e.is_empty());
    }
}
