//! Input sanitizer: canonicalize arbitrary polygon sets before clipping.
//!
//! External data (WKT/GeoJSON exports, digitized maps, fuzzer output) is
//! routinely *dirty*: rings closed by repeating the first vertex, runs of
//! duplicate points, collinear-redundant vertices left by previous
//! simplification passes, hairline spikes where a digitizer doubled back,
//! and zero-area contours. The sweep engine tolerates most of this, but
//! every redundant vertex costs events and every spike risks a sliver in
//! the output. This module repairs those defects up front, and — unlike a
//! silent "cleanup" — **counts every repair** in a [`SanitizeReport`] so
//! the engine can surface a [`Degradation::InputRepaired`] and strict-mode
//! callers can reject input that needed surgery.
//!
//! Two deliberate non-goals, both load-bearing:
//!
//! * **Bow-ties are preserved.** A self-intersecting contour whose lobes
//!   cancel (zero *signed* area, nonzero even-odd area) encloses area under
//!   both fill rules the engine supports; culling it would change the
//!   answer. Only contours whose vertices are *all collinear* — which
//!   provably bound no area under any fill rule — are culled.
//! * **The engine's front door never reorients.** Sweep edges are
//!   y-normalized, so orientation is invisible under even-odd but semantic
//!   under nonzero winding, and callers (e.g. the `donut` generator)
//!   legitimately emit holes in either direction. Orientation
//!   normalization is opt-in via [`SanitizeOptions::reorient`], used by the
//!   standalone [`sanitize_set`] entry point for callers who want canonical
//!   outer-CCW / hole-CW output.
//!
//! Contours that the engine's cheap degeneracy gate already handles
//! (fewer than three vertices, zero-extent bounding box — see
//! [`crate::validate::is_degenerate`]) pass through untouched so that gate
//! keeps reporting them as [`Degradation::SanitizedInput`] exactly as
//! before.
//!
//! [`Degradation::InputRepaired`]: crate::resilience::Degradation::InputRepaired
//! [`Degradation::SanitizedInput`]: crate::resilience::Degradation::SanitizedInput

use crate::validate::is_degenerate;
use polyclip_geom::{orient2d, Contour, Orientation, Point, PolygonSet, EPS_COLLINEAR_REL};
use std::borrow::Cow;
use std::fmt;

/// Knobs for [`sanitize_set`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SanitizeOptions {
    /// Normalize contour orientation by containment parity: contours at
    /// even depth (outers) become counterclockwise, odd depth (holes)
    /// clockwise. Defaults on for the standalone API; the engine's input
    /// gate runs with it **off** because orientation is semantic under
    /// nonzero winding.
    pub reorient: bool,
}

impl Default for SanitizeOptions {
    fn default() -> Self {
        SanitizeOptions { reorient: true }
    }
}

impl SanitizeOptions {
    /// The configuration the engine's input gate uses: vertex repairs
    /// only, never reorient.
    pub fn repairs_only() -> Self {
        SanitizeOptions { reorient: false }
    }
}

/// Tally of every repair [`sanitize_set`] performed. All-zero
/// (`is_clean()`) means the input was already canonical and was returned
/// borrowed, untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Rings closed by repeating their first vertex: the redundant closer
    /// was dropped (the closing edge is implicit).
    pub closers_dropped: usize,
    /// Consecutive duplicate vertices removed.
    pub duplicates_dropped: usize,
    /// Collinear-redundant vertices removed (vertex on the segment between
    /// its neighbours — carries no geometric information).
    pub collinear_dropped: usize,
    /// Spike vertices removed (the boundary doubles back through a
    /// sub-epsilon excursion that bounds no area).
    pub spikes_dropped: usize,
    /// Contours culled because every vertex was collinear: zero area under
    /// any fill rule.
    pub contours_dropped: usize,
    /// Contours reversed by orientation normalization
    /// ([`SanitizeOptions::reorient`]).
    pub contours_reoriented: usize,
}

impl SanitizeReport {
    /// Total number of individual repairs.
    pub fn total(&self) -> usize {
        self.closers_dropped
            + self.duplicates_dropped
            + self.collinear_dropped
            + self.spikes_dropped
            + self.contours_dropped
            + self.contours_reoriented
    }

    /// True when nothing needed repair.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut sep = "";
        let mut item = |f: &mut fmt::Formatter<'_>, n: usize, what: &str| {
            if n > 0 {
                let r = write!(f, "{sep}{n} {what}");
                sep = ", ";
                r
            } else {
                Ok(())
            }
        };
        item(f, self.closers_dropped, "ring closers")?;
        item(f, self.duplicates_dropped, "duplicate vertices")?;
        item(f, self.collinear_dropped, "collinear vertices")?;
        item(f, self.spikes_dropped, "spike vertices")?;
        item(f, self.contours_dropped, "zero-area contours")?;
        item(f, self.contours_reoriented, "reoriented contours")
    }
}

/// Canonicalize a polygon set, counting every repair.
///
/// Borrows the input untouched in the clean case (`Cow::Borrowed`) —
/// the common path is a single read-only scan — and clones only when at
/// least one repair is needed. See the module docs for what is (and
/// deliberately is not) repaired.
pub fn sanitize_set<'a>(
    p: &'a PolygonSet,
    opts: &SanitizeOptions,
) -> (Cow<'a, PolygonSet>, SanitizeReport) {
    let mut report = SanitizeReport::default();

    // Pass 1: read-only scan — does anything need repair?
    let needs_vertex_repair = p
        .contours()
        .iter()
        .any(|c| !skip_contour(c) && contour_needs_repair(c));
    if !needs_vertex_repair {
        if !opts.reorient {
            return (Cow::Borrowed(p), report);
        }
        let flips = orientation_flips(p.contours());
        if flips.is_empty() {
            return (Cow::Borrowed(p), report);
        }
        let mut owned = p.clone();
        for ci in flips {
            owned.contours_mut()[ci].reverse();
            report.contours_reoriented += 1;
        }
        return (Cow::Owned(owned), report);
    }

    // Pass 2: repair. Contours the cheap degeneracy gate already handles
    // pass through untouched; everything else gets the fixed-point vertex
    // repair, and contours reduced below a triangle (or left fully
    // collinear) are culled.
    let mut out: Vec<Contour> = Vec::with_capacity(p.len());
    for c in p.contours() {
        if skip_contour(c) {
            out.push(c.clone());
            continue;
        }
        match repair_contour(c, &mut report) {
            Some(fixed) => out.push(fixed),
            None => report.contours_dropped += 1,
        }
    }

    if opts.reorient {
        for ci in orientation_flips(&out) {
            out[ci].reverse();
            report.contours_reoriented += 1;
        }
    }

    let mut owned = PolygonSet::new();
    *owned.contours_mut() = out;
    (Cow::Owned(owned), report)
}

/// Contours the sanitizer must not touch: ones the cheap degeneracy gate
/// already handles, and ones carrying non-finite coordinates (NaN poisons
/// `orient2d` into reporting collinearity; rejecting non-finite input is
/// the engine gate's job, not a "repair").
fn skip_contour(c: &Contour) -> bool {
    is_degenerate(c) || c.first_non_finite().is_some()
}

/// Cheap read-only test: would [`repair_contour`] change this contour?
fn contour_needs_repair(c: &Contour) -> bool {
    let pts = c.points();
    let n = pts.len();
    let area_tol = near_cull_area_tol(pts);
    for i in 0..n {
        let p = pts[(i + n - 1) % n];
        let v = pts[i];
        let nx = pts[(i + 1) % n];
        if v == nx || removable_vertex(p, v, nx, area_tol).is_some() {
            return true;
        }
    }
    all_collinear(pts)
}

/// Why a vertex can be removed without changing the enclosed region.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Removal {
    Collinear,
    Spike,
}

/// Classify vertex `v` between cyclic neighbours `p` and `n`. NaN-safe:
/// every comparison fails closed (keep the vertex) on non-finite
/// intermediates.
///
/// `area_tol` caps the enclosed-area change a *near*-collinear cull may
/// cause (exact collinearity changes nothing and is always removable).
/// The angular test alone is not area-bounded: at the apex of a needle
/// triangle the adjacent edges are nearly antiparallel however much area
/// the needle encloses, and culling the apex would erase all of it.
fn removable_vertex(p: Point, v: Point, n: Point, area_tol: f64) -> Option<Removal> {
    if p == n {
        // The boundary goes p → v → p: a pure out-and-back excursion.
        return Some(Removal::Spike);
    }
    let pv = v - p;
    let vn = n - v;
    if orient2d(p, v, n) == Orientation::Collinear {
        // Exactly on the line through p and n: between them it is
        // redundant, beyond them it is the tip of a zero-width spike.
        let t = (v - p).dot(&(n - p));
        return if t >= 0.0 && t <= (n - p).norm2() {
            Some(Removal::Collinear)
        } else {
            Some(Removal::Spike)
        };
    }
    // Near-collinear with a direction reversal and a sub-epsilon area
    // footprint: a rounding-level spike. Both bounds only fire on
    // rounding-level deviations.
    if pv.dot(&vn) < 0.0
        && pv.cross(&vn).abs() <= EPS_COLLINEAR_REL * pv.norm() * vn.norm()
        && pv.cross(&vn).abs() * 0.5 <= area_tol
    {
        return Some(Removal::Spike);
    }
    None
}

/// Area-change budget for near-collinear culls on this ring: the rounding
/// noise floor of the ring's own shoelace sum. The *absolute* sum of the
/// shoelace terms bounds the cancellation error of the signed sum, so an
/// area feature below [`EPS_COLLINEAR_REL`] of it is not meaningfully
/// enclosed by these coordinates and may be culled; a needle's area sits
/// orders of magnitude above this floor and survives. (Anchoring to the
/// *signed* area instead would starve sliver rings — their total area is
/// itself rounding debris — and leave un-cullable self-crossing noise.)
fn near_cull_area_tol(pts: &[Point]) -> f64 {
    let n = pts.len();
    let gross: f64 = (0..n)
        .map(|i| {
            let (a, b) = (pts[i], pts[(i + 1) % n]);
            (a.x * b.y).abs() + (b.x * a.y).abs()
        })
        .sum();
    EPS_COLLINEAR_REL * 0.5 * gross
}

/// All vertices collinear (or fewer than three distinct directions): the
/// contour bounds zero area under any fill rule.
fn all_collinear(pts: &[Point]) -> bool {
    if pts.len() < 3 {
        return true;
    }
    let a = pts[0];
    let b = pts[1];
    pts[2..]
        .iter()
        .all(|&c| orient2d(a, b, c) == Orientation::Collinear)
}

/// Fixed-point vertex repair for one contour. Returns `None` when the
/// contour is culled (reduced below a triangle, or fully collinear).
fn repair_contour(c: &Contour, report: &mut SanitizeReport) -> Option<Contour> {
    let mut pts: Vec<Point> = c.points().to_vec();

    // Duplicate removal first, separately, so the closer (a ring closed by
    // repeating its first vertex) is counted as such rather than as a
    // generic duplicate.
    if pts.len() >= 2 && pts[pts.len() - 1] == pts[0] {
        pts.pop();
        report.closers_dropped += 1;
    }
    let before = pts.len();
    pts.dedup();
    if pts.len() >= 2 && pts[pts.len() - 1] == pts[0] {
        pts.pop();
    }
    report.duplicates_dropped += before - pts.len();

    // Fixed point: removing a spike tip can expose a new duplicate or a
    // new collinear triple at the join, so iterate until stable. Each
    // round removes at least one vertex, so this terminates. The area
    // budget is fixed up front: every cull stays within it, so the drift
    // over a whole repair is at most `n · area_tol` — still rounding
    // level.
    let area_tol = near_cull_area_tol(&pts);
    loop {
        if pts.len() < 3 || all_collinear(&pts) {
            return None;
        }
        let n = pts.len();
        let mut removed_at = None;
        for i in 0..n {
            let p = pts[(i + n - 1) % n];
            let v = pts[i];
            let nx = pts[(i + 1) % n];
            if let Some(kind) = removable_vertex(p, v, nx, area_tol) {
                match kind {
                    Removal::Collinear => report.collinear_dropped += 1,
                    Removal::Spike => report.spikes_dropped += 1,
                }
                removed_at = Some(i);
                break;
            }
        }
        match removed_at {
            Some(i) => {
                pts.remove(i);
                // Removing a spike tip leaves its two (equal) neighbours
                // adjacent; fold them immediately.
                let before = pts.len();
                pts.dedup();
                if pts.len() >= 2 && pts[pts.len() - 1] == pts[0] {
                    pts.pop();
                }
                report.duplicates_dropped += before - pts.len();
            }
            None => return Some(Contour::from_raw(pts)),
        }
    }
}

/// Indices of contours whose orientation disagrees with containment
/// parity (even depth → counterclockwise, odd depth → clockwise).
/// Zero-signed-area contours (bow-ties) have no meaningful orientation and
/// are skipped. Candidate containments are prefiltered by bounding box,
/// then confirmed with an even-odd point test.
fn orientation_flips(contours: &[Contour]) -> Vec<usize> {
    let boxes: Vec<_> = contours.iter().map(|c| c.bbox()).collect();
    let mut flips = Vec::new();
    for (i, c) in contours.iter().enumerate() {
        let area = c.signed_area();
        if area == 0.0 || !area.is_finite() || c.len() < 3 {
            continue;
        }
        let probe = c.points()[0];
        let depth = contours
            .iter()
            .enumerate()
            .filter(|&(j, o)| {
                j != i && boxes[j].contains(probe) && o.len() >= 3 && o.contains_even_odd(probe)
            })
            .count();
        let want_ccw = depth % 2 == 0;
        if (area > 0.0) != want_ccw {
            flips.push(i);
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;
    use polyclip_geom::point::pt;

    fn set(contours: Vec<Contour>) -> PolygonSet {
        let mut p = PolygonSet::new();
        *p.contours_mut() = contours;
        p
    }

    #[test]
    fn clean_input_is_borrowed_untouched() {
        let p = PolygonSet::from_contours(vec![rect(0.0, 0.0, 4.0, 4.0)]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::default());
        assert!(report.is_clean());
        assert!(matches!(out, Cow::Borrowed(_)));
    }

    #[test]
    fn bowtie_survives_sanitization() {
        // Zero signed area but nonzero even-odd area: must NOT be culled.
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let (out, report) = sanitize_set(&bow, &SanitizeOptions::default());
        assert!(report.is_clean());
        assert_eq!(out.len(), 1);
        assert_eq!(out.contours()[0].len(), 4);
    }

    #[test]
    fn ring_closer_and_duplicates_are_counted_separately() {
        let c = Contour::from_raw(vec![
            pt(0.0, 0.0),
            pt(4.0, 0.0),
            pt(4.0, 0.0), // duplicate
            pt(4.0, 4.0),
            pt(0.0, 4.0),
            pt(0.0, 0.0), // closer
        ]);
        let p = set(vec![c]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert_eq!(report.closers_dropped, 1);
        assert_eq!(report.duplicates_dropped, 1);
        assert_eq!(out.contours()[0].len(), 4);
    }

    #[test]
    fn collinear_redundant_vertex_is_removed() {
        let c = Contour::from_raw(vec![
            pt(0.0, 0.0),
            pt(2.0, 0.0), // on the segment (0,0)-(4,0)
            pt(4.0, 0.0),
            pt(4.0, 4.0),
            pt(0.0, 4.0),
        ]);
        let p = set(vec![c]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert_eq!(report.collinear_dropped, 1);
        assert_eq!(report.spikes_dropped, 0);
        assert_eq!(out.contours()[0].len(), 4);
        assert_eq!(out.contours()[0].signed_area(), 16.0);
    }

    #[test]
    fn spike_is_removed_and_area_preserved() {
        // A zero-width excursion from the top edge: 4,4 → 2,8 → lies
        // outside the chord, boundary doubles back through it.
        let c = Contour::from_raw(vec![
            pt(0.0, 0.0),
            pt(4.0, 0.0),
            pt(4.0, 4.0),
            pt(2.0, 4.0),
            pt(2.0, 8.0), // spike tip
            pt(2.0, 4.0), // exact retrace
            pt(0.0, 4.0),
        ]);
        let p = set(vec![c]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert!(report.spikes_dropped >= 1, "report: {report}");
        let fixed = &out.contours()[0];
        assert_eq!(fixed.signed_area(), 16.0);
        // The retrace partner collapses as a duplicate; 2,4 stays as a
        // collinear point only if still doubled — final ring is the rect
        // (2,4 becomes collinear-redundant and is dropped too).
        assert_eq!(fixed.len(), 4);
    }

    #[test]
    fn all_collinear_contour_is_culled() {
        // Diagonal line: nonzero bbox in both axes, so the cheap
        // degeneracy gate does NOT catch it — the sanitizer must.
        let line = Contour::from_raw(vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(3.0, 3.0), pt(2.0, 2.0)]);
        let p = set(vec![line, rect(5.0, 5.0, 6.0, 6.0)]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert_eq!(report.contours_dropped, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn degenerate_contours_pass_through_for_the_cheap_gate() {
        // Sub-3-vertex and zero-extent contours are the cheap gate's job;
        // the sanitizer must leave them (and its report) untouched.
        let two = Contour::from_raw(vec![pt(0.0, 0.0), pt(1.0, 0.0)]);
        let p = set(vec![two]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert!(report.is_clean());
        assert_eq!(out.len(), 1);
        assert_eq!(out.contours()[0].len(), 2);
    }

    #[test]
    fn reorient_normalizes_hole_direction() {
        let outer = rect(0.0, 0.0, 10.0, 10.0); // CCW
        let mut hole = rect(2.0, 2.0, 4.0, 4.0); // CCW — wrong for a hole
        assert!(outer.is_ccw() && hole.is_ccw());
        let p = set(vec![outer.clone(), hole.clone()]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::default());
        assert_eq!(report.contours_reoriented, 1);
        assert!(out.contours()[0].is_ccw());
        assert!(!out.contours()[1].is_ccw());

        // Already canonical: no flip, borrowed.
        hole.reverse();
        let canonical = set(vec![outer, hole]);
        let (out, report) = sanitize_set(&canonical, &SanitizeOptions::default());
        assert!(report.is_clean());
        assert!(matches!(out, Cow::Borrowed(_)));
    }

    #[test]
    fn repairs_only_never_reorients() {
        let outer = rect(0.0, 0.0, 10.0, 10.0);
        let hole = rect(2.0, 2.0, 4.0, 4.0); // CCW hole stays CCW
        let p = set(vec![outer, hole]);
        let (out, report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert!(report.is_clean());
        assert!(out.contours()[1].is_ccw());
    }

    #[test]
    fn nan_vertices_fail_closed() {
        // Non-finite coordinates must not be "repaired" away — the
        // engine's non-finite gate owns rejecting them.
        let c = Contour::from_raw(vec![
            pt(0.0, 0.0),
            pt(4.0, f64::NAN),
            pt(4.0, 4.0),
            pt(0.0, 4.0),
        ]);
        let p = set(vec![c]);
        let (out, _report) = sanitize_set(&p, &SanitizeOptions::repairs_only());
        assert_eq!(out.contours()[0].len(), 4);
    }

    #[test]
    fn report_renders_human_readably() {
        let r = SanitizeReport {
            closers_dropped: 1,
            spikes_dropped: 2,
            ..SanitizeReport::default()
        };
        assert_eq!(r.to_string(), "1 ring closers, 2 spike vertices");
        assert_eq!(r.total(), 3);
        assert_eq!(SanitizeReport::default().to_string(), "clean");
    }
}
