//! Layer overlay — clipping two *sets* of polygons (Section IV, last part).
//!
//! GIS workloads clip whole layers against each other (the paper's
//! real-world experiments: urban areas × state boundaries, two telecom GML
//! layers). The paper's approach: build the event list from the polygons'
//! MBR y-coordinates, partition it into `p` slabs with equal event counts,
//! assign polygons to slabs by MBR overlap — **replicating** polygons that
//! span several slabs, then eliminating redundant outputs — and run one
//! sequential plane-sweep clipper per slab.
//!
//! Two assignment strategies are provided:
//!
//! * [`SlabAssignment::Replicate`] — the paper's scheme: a candidate pair is
//!   processed in *every* slab its y-overlap touches, producing duplicate
//!   outputs that are removed in a post-pass;
//! * [`SlabAssignment::UniqueOwner`] — each pair is owned by exactly the
//!   slab containing `max(ymin_a, ymin_b)` (the bottom of its y-overlap), so
//!   no duplicates exist by construction. This is our documented
//!   improvement; the `ablation_slab_assignment` bench quantifies the
//!   redundant work the replication scheme performs.

use crate::algo2::{slab_boundaries, try_clip_pair_slabs, Algo2Result};
use crate::budget::{self, Gate};
use crate::classify::BoolOp;
use crate::engine::{clip, try_clip_with_stats_gated, ClipOptions};
use crate::resilience::{self, ClipError, Degradation, InputRole};
use polyclip_geom::{BBox, OrdF64, PolygonSet};
use polyclip_parprim::par_sort_dedup_gated;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A GIS layer: a collection of features, each a polygon set (so features
/// may carry holes or multiple rings).
#[derive(Clone, Debug, Default)]
pub struct Layer {
    /// The features of the layer.
    pub features: Vec<PolygonSet>,
}

impl Layer {
    /// Build a layer from features, dropping empty ones.
    pub fn new(features: Vec<PolygonSet>) -> Self {
        Layer {
            features: features.into_iter().filter(|f| !f.is_empty()).collect(),
        }
    }

    /// Number of features ("Polys" in the paper's Table III).
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the layer has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Total edge count ("Edges" in Table III).
    pub fn edge_count(&self) -> usize {
        self.features.iter().map(|f| f.edge_count()).sum()
    }

    /// Bounding box of the layer.
    pub fn bbox(&self) -> BBox {
        self.features
            .iter()
            .fold(BBox::EMPTY, |b, f| b.union(&f.bbox()))
    }

    /// All features merged into one polygon set (for whole-layer booleans).
    pub fn merged(&self) -> PolygonSet {
        let mut out = PolygonSet::new();
        for f in &self.features {
            out.extend(f.clone());
        }
        out
    }
}

/// How candidate pairs are assigned to slabs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SlabAssignment {
    /// The paper's replication scheme (duplicates removed afterwards).
    Replicate,
    /// Each pair owned by the slab containing the bottom of its y-overlap.
    #[default]
    UniqueOwner,
}

/// Result of a layer overlay.
#[derive(Clone, Debug, Default)]
pub struct OverlayResult {
    /// Non-empty per-pair outputs.
    pub features: Vec<PolygonSet>,
    /// MBR-overlapping candidate pairs examined.
    pub candidate_pairs: usize,
    /// Pair-tasks executed (> `candidate_pairs` under replication).
    pub tasks_executed: usize,
    /// Per-slab clip time (the Figure 11 load profile).
    pub per_slab_clip: Vec<Duration>,
    /// Time spent building candidate pairs and slab assignment.
    pub partition: Duration,
    /// End-to-end wall clock.
    pub total: Duration,
    /// Degradations absorbed across all slab workers, in slab order.
    pub degradations: Vec<Degradation>,
}

impl OverlayResult {
    /// Max/mean per-slab clip-time ratio (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_slab_clip.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.per_slab_clip.iter().map(Duration::as_secs_f64).sum();
        let avg = sum / self.per_slab_clip.len() as f64;
        if avg == 0.0 {
            return 1.0;
        }
        let max = self
            .per_slab_clip
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max);
        max / avg
    }
}

/// Reject layers carrying non-finite coordinates before their MBR events
/// enter any ordered structure. `contour`/`vertex` index into the first
/// offending feature.
fn gate_layer(layer: &Layer, role: InputRole) -> Result<(), ClipError> {
    for f in &layer.features {
        if let Some((contour, vertex)) = f.first_non_finite() {
            return Err(ClipError::NonFiniteInput {
                role,
                contour,
                vertex,
            });
        }
    }
    Ok(())
}

/// Run one overlay slab worker through the same recovery ladder as
/// Algorithm 2's slabs: attempt, retry, pristine-sequential fallback. The
/// `work` closure receives the engine options to use for that attempt (the
/// fallback strips the fault plan, which is what makes a recovered slab
/// bit-identical to an unfaulted run) and returns the slab's outputs plus
/// any engine degradations it observed.
/// The first attempt runs under the overlay's armed global gate; recovery
/// attempts (retry, pristine) run on the cancel-only `recovery` gate —
/// budget-exempt but interruptible, like Algorithm 2's ladder. Budget trips
/// and cancellation are typed errors and propagate immediately.
fn run_overlay_slab<T>(
    slab: usize,
    seq: &ClipOptions,
    gate: &Gate,
    recovery: &Gate,
    work: impl Fn(&ClipOptions, &Gate) -> Result<(T, Vec<Degradation>), ClipError>,
) -> Result<(T, Vec<Degradation>, Duration), ClipError> {
    let attempt_with = |opts: &ClipOptions, g: &Gate, attempt: u32| {
        catch_unwind(AssertUnwindSafe(|| {
            resilience::maybe_panic_slab(opts, slab, attempt);
            let t0 = Instant::now();
            work(opts, g).map(|(outs, degradations)| (outs, degradations, t0.elapsed()))
        }))
        .map_err(|p| resilience::panic_message(p.as_ref()))
    };

    let mut last_panic = String::new();
    for (attempt, g) in [(0u32, gate), (1u32, recovery)] {
        match attempt_with(seq, g, attempt) {
            Ok(Ok((outs, mut degradations, took))) => {
                if attempt > 0 {
                    degradations.push(Degradation::SlabRetry { slab });
                }
                return Ok((outs, degradations, took));
            }
            Ok(Err(e)) => return Err(e),
            Err(msg) => last_panic = msg,
        }
    }
    match attempt_with(&resilience::pristine(seq), recovery, 2) {
        Ok(Ok((outs, mut degradations, took))) => {
            degradations.push(Degradation::SlabFallback { slab });
            Ok((outs, degradations, took))
        }
        Ok(Err(e)) => Err(e),
        Err(msg) => Err(ClipError::SlabPanic {
            slab,
            message: if msg.is_empty() { last_panic } else { msg },
        }),
    }
}

/// Intersect two layers: pairwise intersection of MBR-overlapping features,
/// distributed over `n_slabs` slab workers.
///
/// Lenient wrapper over [`try_overlay_intersection`]: errors yield an
/// empty result.
pub fn overlay_intersection(
    a: &Layer,
    b: &Layer,
    n_slabs: usize,
    assignment: SlabAssignment,
    opts: &ClipOptions,
) -> OverlayResult {
    try_overlay_intersection(a, b, n_slabs, assignment, opts).unwrap_or_default()
}

/// Fallible layer intersection with per-slab panic isolation: each slab
/// worker runs under `catch_unwind` with the retry → pristine-fallback
/// ladder of [`try_clip_pair_slabs`](crate::algo2::try_clip_pair_slabs).
pub fn try_overlay_intersection(
    a: &Layer,
    b: &Layer,
    n_slabs: usize,
    assignment: SlabAssignment,
    opts: &ClipOptions,
) -> Result<OverlayResult, ClipError> {
    let t_start = Instant::now();
    // One armed gate for the whole overlay: every pair task on every slab
    // shares it, so the deadline spans the operation, not a single clip.
    let gate = opts.budget.arm();
    let recovery_gate = opts.budget.cancel_only().arm();
    budget::check(&gate)?;
    gate_layer(a, InputRole::Subject)?;
    gate_layer(b, InputRole::Clip)?;
    let seq = ClipOptions {
        parallel: false,
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };

    let t_part = Instant::now();
    let boxes_a: Vec<BBox> = a.features.iter().map(|f| f.bbox()).collect();
    let boxes_b: Vec<BBox> = b.features.iter().map(|f| f.bbox()).collect();
    let pairs = candidate_pairs(&boxes_a, &boxes_b);

    // Slab boundaries from the MBR event y's (the paper's event list),
    // sorted and deduplicated in parallel above the parprim cutoff.
    let ys: Vec<OrdF64> = par_sort_dedup_gated(
        boxes_a
            .iter()
            .chain(&boxes_b)
            .flat_map(|bb| [OrdF64::new(bb.ymin), OrdF64::new(bb.ymax)])
            .collect(),
        Some(&gate),
    );
    budget::check(&gate)?;
    let n_slabs = n_slabs.max(1);
    let boundaries = if ys.len() >= 2 {
        slab_boundaries(&ys, n_slabs)
    } else {
        vec![f64::NEG_INFINITY, f64::INFINITY]
    };
    let slabs = boundaries.len() - 1;

    // Assign pair tasks to slabs.
    let mut tasks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); slabs];
    for &(i, j) in &pairs {
        let (ba, bb) = (&boxes_a[i as usize], &boxes_b[j as usize]);
        let lo = ba.ymin.max(bb.ymin);
        let hi = ba.ymax.min(bb.ymax);
        match assignment {
            SlabAssignment::UniqueOwner => {
                tasks[slab_of(&boundaries, lo)].push((i, j));
            }
            SlabAssignment::Replicate => {
                for (s, t) in tasks.iter_mut().enumerate() {
                    if boundaries[s] <= hi && lo <= boundaries[s + 1] {
                        t.push((i, j));
                    }
                }
            }
        }
    }
    let partition = t_part.elapsed();
    let tasks_executed: usize = tasks.iter().map(Vec::len).sum();

    // Clip each slab's pair list sequentially; slabs in parallel, each
    // under the recovery ladder.
    type SlabOutput = (Vec<((u32, u32), PolygonSet)>, Vec<Degradation>, Duration);
    let slab_results: Vec<Result<SlabOutput, ClipError>> = tasks
        .par_iter()
        .enumerate()
        .map(|(slab, list)| {
            run_overlay_slab(slab, &seq, &gate, &recovery_gate, |engine_opts, g| {
                let mut degradations = Vec::new();
                let mut outs: Vec<((u32, u32), PolygonSet)> = Vec::with_capacity(list.len());
                for &(i, j) in list {
                    // Coarse per-pair checkpoint between engine calls.
                    budget::check(g)?;
                    let outcome = try_clip_with_stats_gated(
                        &a.features[i as usize],
                        &b.features[j as usize],
                        BoolOp::Intersection,
                        engine_opts,
                        g,
                    )?;
                    degradations.extend(outcome.degradations);
                    if !outcome.result.is_empty() {
                        outs.push(((i, j), outcome.result));
                    }
                }
                Ok((outs, degradations))
            })
        })
        .collect();

    // Collect, removing replicated duplicates (same pair id) — the paper's
    // "redundant output polygons … eliminated as a post-processing step".
    let mut per_slab_clip: Vec<Duration> = Vec::with_capacity(slab_results.len());
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut features = Vec::new();
    for r in slab_results {
        let (outs, slab_degradations, took) = r?;
        per_slab_clip.push(took);
        degradations.extend(slab_degradations);
        for (pair, out) in outs {
            if seen.insert(pair) {
                features.push(out);
            }
        }
    }

    Ok(OverlayResult {
        features,
        candidate_pairs: pairs.len(),
        tasks_executed,
        per_slab_clip,
        partition,
        total: t_start.elapsed(),
        degradations,
    })
}

/// Union of two layers: whole-layer boolean via the slab-partitioned
/// Algorithm 2.
///
/// Features are concatenated and evaluated under the **nonzero** fill rule,
/// so sibling features that overlap *within* a layer still merge (under
/// even-odd parity an overlap of two same-layer features would read as a
/// hole). Features must be consistently oriented (outer rings CCW, holes
/// CW), which every generator and engine output in this workspace is.
pub fn overlay_union(a: &Layer, b: &Layer, n_slabs: usize, opts: &ClipOptions) -> Algo2Result {
    try_overlay_union(a, b, n_slabs, opts).unwrap_or_default()
}

/// Fallible layer union; see [`overlay_union`]. Slab workers inherit
/// Algorithm 2's panic isolation via [`try_clip_pair_slabs`].
pub fn try_overlay_union(
    a: &Layer,
    b: &Layer,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Result<Algo2Result, ClipError> {
    let ma = a.merged();
    let mb = b.merged();
    if ma.is_empty() && mb.is_empty() {
        return Ok(Algo2Result::default());
    }
    // The budget (deadline and all) rides along untouched: Algorithm 2
    // arms it at its own entry, which is the public boundary here.
    let opts = ClipOptions {
        fill_rule: polyclip_geom::FillRule::NonZero,
        ..opts.clone()
    };
    try_clip_pair_slabs(&ma, &mb, BoolOp::Union, n_slabs, &opts)
}

/// Uniform-grid overlay intersection — the related-work baseline the paper
/// argues against ("a uniform grid based partitioning approach is discussed
/// in [19] … this works well only with good load distribution").
///
/// A `cells × cells` grid is superimposed; every candidate pair is owned by
/// the grid cell containing the bottom-left corner of its MBR overlap (so
/// no duplicates), and cells are processed in parallel. With spatially
/// skewed data most pairs land in few cells — the load imbalance the
/// paper's event-quantile slabs avoid; the `ablation_slab_assignment` bench
/// family quantifies the difference.
pub fn overlay_intersection_grid(
    a: &Layer,
    b: &Layer,
    cells: usize,
    opts: &ClipOptions,
) -> OverlayResult {
    let t_start = Instant::now();
    // Per-cell clips are lenient `clip` calls that each arm their own
    // budget, so re-arming a deadline per pair would be wrong: keep only
    // the cancel token for this ablation baseline.
    let seq = ClipOptions {
        parallel: false,
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };
    let t_part = Instant::now();
    let boxes_a: Vec<BBox> = a.features.iter().map(|f| f.bbox()).collect();
    let boxes_b: Vec<BBox> = b.features.iter().map(|f| f.bbox()).collect();
    let pairs = candidate_pairs(&boxes_a, &boxes_b);

    let world = a.bbox().union(&b.bbox());
    let cells = cells.max(1);
    let (cw, ch) = (
        (world.width() / cells as f64).max(f64::MIN_POSITIVE),
        (world.height() / cells as f64).max(f64::MIN_POSITIVE),
    );
    let cell_of = |x: f64, y: f64| -> usize {
        let cx = (((x - world.xmin) / cw) as usize).min(cells - 1);
        let cy = (((y - world.ymin) / ch) as usize).min(cells - 1);
        cy * cells + cx
    };
    let mut tasks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cells * cells];
    for &(i, j) in &pairs {
        let (ba, bb) = (&boxes_a[i as usize], &boxes_b[j as usize]);
        tasks[cell_of(ba.xmin.max(bb.xmin), ba.ymin.max(bb.ymin))].push((i, j));
    }
    let partition = t_part.elapsed();
    let tasks_executed = pairs.len();

    let cell_results: Vec<(Vec<PolygonSet>, Duration)> = tasks
        .par_iter()
        .map(|list| {
            let t0 = Instant::now();
            let outs: Vec<PolygonSet> = list
                .iter()
                .map(|&(i, j)| {
                    clip(
                        &a.features[i as usize],
                        &b.features[j as usize],
                        BoolOp::Intersection,
                        &seq,
                    )
                })
                .filter(|o| !o.is_empty())
                .collect();
            (outs, t0.elapsed())
        })
        .collect();

    let per_slab_clip: Vec<Duration> = cell_results.iter().map(|r| r.1).collect();
    let features: Vec<PolygonSet> = cell_results.into_iter().flat_map(|r| r.0).collect();

    OverlayResult {
        features,
        candidate_pairs: pairs.len(),
        tasks_executed,
        per_slab_clip,
        partition,
        total: t_start.elapsed(),
        degradations: Vec::new(),
    }
}

/// Erase overlay: each feature of `a` minus the union of its overlapping
/// `b` features (the GIS "erase" operation). Pair discovery and slab
/// distribution follow [`overlay_intersection`].
pub fn overlay_difference(
    a: &Layer,
    b: &Layer,
    n_slabs: usize,
    opts: &ClipOptions,
) -> OverlayResult {
    try_overlay_difference(a, b, n_slabs, opts).unwrap_or_default()
}

/// Fallible erase overlay; see [`overlay_difference`]. Slab workers run
/// under the same recovery ladder as [`try_overlay_intersection`].
pub fn try_overlay_difference(
    a: &Layer,
    b: &Layer,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Result<OverlayResult, ClipError> {
    let t_start = Instant::now();
    let gate = opts.budget.arm();
    let recovery_gate = opts.budget.cancel_only().arm();
    budget::check(&gate)?;
    gate_layer(a, InputRole::Subject)?;
    gate_layer(b, InputRole::Clip)?;
    let seq = ClipOptions {
        parallel: false,
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };
    let t_part = Instant::now();
    let boxes_a: Vec<BBox> = a.features.iter().map(|f| f.bbox()).collect();
    let boxes_b: Vec<BBox> = b.features.iter().map(|f| f.bbox()).collect();
    let pairs = candidate_pairs(&boxes_a, &boxes_b);

    // Group the b-partners of every a feature.
    let mut partners: Vec<Vec<u32>> = vec![Vec::new(); a.features.len()];
    for &(i, j) in &pairs {
        partners[i as usize].push(j);
    }

    // One task per a-feature, owned by the slab containing its MBR bottom.
    let ys: Vec<OrdF64> = par_sort_dedup_gated(
        boxes_a
            .iter()
            .filter(|bb| !bb.is_empty())
            .map(|bb| OrdF64::new(bb.ymin))
            .collect(),
        Some(&gate),
    );
    budget::check(&gate)?;
    let boundaries = if ys.len() >= 2 {
        slab_boundaries(&ys, n_slabs.max(1))
    } else {
        vec![f64::NEG_INFINITY, f64::INFINITY]
    };
    let slabs = boundaries.len() - 1;
    let mut tasks: Vec<Vec<u32>> = vec![Vec::new(); slabs];
    for (i, bb) in boxes_a.iter().enumerate() {
        if !bb.is_empty() {
            tasks[slab_of(&boundaries, bb.ymin)].push(i as u32);
        }
    }
    let partition = t_part.elapsed();

    type SlabOutput = (Vec<PolygonSet>, Vec<Degradation>, Duration);
    let slab_results: Vec<Result<SlabOutput, ClipError>> = tasks
        .par_iter()
        .enumerate()
        .map(|(slab, list)| {
            run_overlay_slab(slab, &seq, &gate, &recovery_gate, |engine_opts, g| {
                let mut degradations = Vec::new();
                let mut outs: Vec<PolygonSet> = Vec::with_capacity(list.len());
                for &i in list {
                    budget::check(g)?;
                    let fa = &a.features[i as usize];
                    if partners[i as usize].is_empty() {
                        outs.push(fa.clone());
                        continue;
                    }
                    // Subtract the union of overlapping b features.
                    let mut mask = PolygonSet::new();
                    for &j in &partners[i as usize] {
                        mask.extend(b.features[j as usize].clone());
                    }
                    let nz = ClipOptions {
                        fill_rule: polyclip_geom::FillRule::NonZero,
                        sanitize: false,
                        validate_output: false,
                        ..engine_opts.clone()
                    };
                    let outcome = try_clip_with_stats_gated(fa, &mask, BoolOp::Difference, &nz, g)?;
                    degradations.extend(outcome.degradations);
                    if !outcome.result.is_empty() {
                        outs.push(outcome.result);
                    }
                }
                Ok((outs, degradations))
            })
        })
        .collect();

    let mut per_slab_clip: Vec<Duration> = Vec::with_capacity(slab_results.len());
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut features: Vec<PolygonSet> = Vec::new();
    for r in slab_results {
        let (outs, slab_degradations, took) = r?;
        per_slab_clip.push(took);
        degradations.extend(slab_degradations);
        features.extend(outs);
    }
    Ok(OverlayResult {
        tasks_executed: features.len(),
        candidate_pairs: pairs.len(),
        features,
        per_slab_clip,
        partition,
        total: t_start.elapsed(),
        degradations,
    })
}

/// MBR-overlapping (a, b) feature pairs via a bottom-up interval sweep.
pub fn candidate_pairs(boxes_a: &[BBox], boxes_b: &[BBox]) -> Vec<(u32, u32)> {
    #[derive(Clone, Copy)]
    struct Item {
        ymin: f64,
        idx: u32,
        from_a: bool,
    }
    let mut items: Vec<Item> = Vec::with_capacity(boxes_a.len() + boxes_b.len());
    for (i, bb) in boxes_a.iter().enumerate() {
        if !bb.is_empty() {
            items.push(Item {
                ymin: bb.ymin,
                idx: i as u32,
                from_a: true,
            });
        }
    }
    for (j, bb) in boxes_b.iter().enumerate() {
        if !bb.is_empty() {
            items.push(Item {
                ymin: bb.ymin,
                idx: j as u32,
                from_a: false,
            });
        }
    }
    items.sort_unstable_by_key(|it| OrdF64::new(it.ymin));

    let mut active_a: Vec<u32> = Vec::new();
    let mut active_b: Vec<u32> = Vec::new();
    let mut out = Vec::new();
    for it in items {
        // Expire boxes that end below the incoming box.
        active_a.retain(|&i| boxes_a[i as usize].ymax >= it.ymin);
        active_b.retain(|&j| boxes_b[j as usize].ymax >= it.ymin);
        if it.from_a {
            let ba = &boxes_a[it.idx as usize];
            for &j in &active_b {
                let bb = &boxes_b[j as usize];
                if ba.xmin <= bb.xmax && bb.xmin <= ba.xmax {
                    out.push((it.idx, j));
                }
            }
            active_a.push(it.idx);
        } else {
            let bb = &boxes_b[it.idx as usize];
            for &i in &active_a {
                let ba = &boxes_a[i as usize];
                if ba.xmin <= bb.xmax && bb.xmin <= ba.xmax {
                    out.push((i, it.idx));
                }
            }
            active_b.push(it.idx);
        }
    }
    out
}

/// Slab index containing `y` (clamped to valid slabs).
fn slab_of(boundaries: &[f64], y: f64) -> usize {
    let n = boundaries.len() - 1;
    boundaries[1..n].partition_point(|&b| b <= y).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::eo_area;
    use polyclip_geom::contour::rect;

    fn grid_layer(nx: usize, ny: usize, cell: f64, size: f64, off: f64) -> Layer {
        let mut features = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                let x = off + i as f64 * cell;
                let y = off + j as f64 * cell;
                features.push(PolygonSet::from_contour(rect(x, y, x + size, y + size)));
            }
        }
        Layer::new(features)
    }

    #[test]
    fn candidate_pairs_match_bruteforce() {
        let a = grid_layer(4, 4, 1.0, 0.8, 0.0);
        let b = grid_layer(4, 4, 1.0, 0.8, 0.5);
        let boxes_a: Vec<BBox> = a.features.iter().map(|f| f.bbox()).collect();
        let boxes_b: Vec<BBox> = b.features.iter().map(|f| f.bbox()).collect();
        let mut got = candidate_pairs(&boxes_a, &boxes_b);
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, ba) in boxes_a.iter().enumerate() {
            for (j, bb) in boxes_b.iter().enumerate() {
                if ba.intersects(bb) {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn intersection_area_matches_for_both_assignments() {
        let a = grid_layer(5, 5, 1.0, 0.9, 0.0);
        let b = grid_layer(5, 5, 1.0, 0.9, 0.45);
        let opts = ClipOptions::sequential();
        // Ground truth: whole-layer intersection via the engine.
        let truth = eo_area(&clip(&a.merged(), &b.merged(), BoolOp::Intersection, &opts));
        for assignment in [SlabAssignment::UniqueOwner, SlabAssignment::Replicate] {
            for slabs in [1usize, 2, 4] {
                let r = overlay_intersection(&a, &b, slabs, assignment, &opts);
                let area: f64 = r.features.iter().map(eo_area).sum();
                assert!(
                    (area - truth).abs() < 1e-9,
                    "{assignment:?} slabs={slabs}: {area} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn replication_executes_more_tasks_but_same_output() {
        // Tall features spanning many slabs force replication overhead.
        // Offsetting layer B vertically creates distinct MBR events so the
        // slab partition actually produces several slabs.
        let mut feats = Vec::new();
        for i in 0..6 {
            let x = i as f64 * 2.0;
            feats.push(PolygonSet::from_contour(rect(x, 0.0, x + 1.5, 20.0)));
        }
        let a = Layer::new(feats.clone());
        let b = Layer::new(
            feats
                .iter()
                .map(|f| f.translate(polyclip_geom::Point::new(0.7, 1.0)))
                .collect(),
        );
        let opts = ClipOptions::sequential();
        let uo = overlay_intersection(&a, &b, 4, SlabAssignment::UniqueOwner, &opts);
        let rp = overlay_intersection(&a, &b, 4, SlabAssignment::Replicate, &opts);
        assert_eq!(uo.candidate_pairs, rp.candidate_pairs);
        assert!(rp.tasks_executed > uo.tasks_executed);
        let area_uo: f64 = uo.features.iter().map(eo_area).sum();
        let area_rp: f64 = rp.features.iter().map(eo_area).sum();
        assert!((area_uo - area_rp).abs() < 1e-9);
        assert_eq!(uo.features.len(), rp.features.len());
    }

    #[test]
    fn union_of_layers_dissolves_overlaps() {
        let a = grid_layer(3, 1, 1.0, 1.2, 0.0); // overlapping horizontally
        let b = Layer::new(vec![]);
        let r = overlay_union(&a, &b, 2, &ClipOptions::sequential());
        // Three 1.2-wide squares at x = 0,1,2 overlapping: union is one
        // contour spanning [0, 3.2] × [0, 1.2].
        assert_eq!(r.output.len(), 1);
        assert!((eo_area(&r.output) - 3.2 * 1.2).abs() < 1e-9);
    }

    #[test]
    fn empty_layers() {
        let e = Layer::default();
        let a = grid_layer(2, 2, 1.0, 0.5, 0.0);
        let r = overlay_intersection(
            &a,
            &e,
            4,
            SlabAssignment::UniqueOwner,
            &ClipOptions::sequential(),
        );
        assert!(r.features.is_empty());
        assert_eq!(r.candidate_pairs, 0);
        let u = overlay_union(&e, &e, 4, &ClipOptions::sequential());
        assert!(u.output.is_empty());
    }

    #[test]
    fn layer_statistics() {
        let a = grid_layer(3, 2, 1.0, 0.5, 0.0);
        assert_eq!(a.len(), 6);
        assert_eq!(a.edge_count(), 24);
        assert!(!a.is_empty());
        let bb = a.bbox();
        assert_eq!((bb.xmin, bb.ymin), (0.0, 0.0));
    }

    #[test]
    fn grid_backend_matches_slab_backend() {
        let a = grid_layer(5, 5, 1.0, 0.9, 0.0);
        let b = grid_layer(5, 5, 1.0, 0.9, 0.45);
        let opts = ClipOptions::sequential();
        let slab = overlay_intersection(&a, &b, 4, SlabAssignment::UniqueOwner, &opts);
        let grid = overlay_intersection_grid(&a, &b, 4, &opts);
        let area_s: f64 = slab.features.iter().map(eo_area).sum();
        let area_g: f64 = grid.features.iter().map(eo_area).sum();
        assert!((area_s - area_g).abs() < 1e-9);
        assert_eq!(slab.features.len(), grid.features.len());
        assert_eq!(slab.candidate_pairs, grid.candidate_pairs);
    }

    #[test]
    fn difference_erases_overlaps() {
        // a: row of squares; b: one band overlapping the middle of each.
        let a = grid_layer(4, 1, 2.0, 1.0, 0.0);
        let b = Layer::new(vec![PolygonSet::from_contour(rect(-1.0, 0.25, 9.0, 0.75))]);
        let opts = ClipOptions::sequential();
        let r = overlay_difference(&a, &b, 2, &opts);
        // Each unit square loses a 1 × 0.5 stripe.
        let area: f64 = r.features.iter().map(eo_area).sum();
        assert!((area - 4.0 * 0.5).abs() < 1e-9, "area = {area}");
        // Features with no partners pass through untouched.
        let far = Layer::new(vec![PolygonSet::from_contour(rect(100.0, 0.0, 101.0, 1.0))]);
        let r2 = overlay_difference(&far, &b, 2, &opts);
        assert_eq!(r2.features.len(), 1);
        assert!((eo_area(&r2.features[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn difference_with_multiple_overlapping_masks() {
        // Two b features overlapping each other over one a feature: the
        // nonzero-union mask must not double-cancel.
        let a = Layer::new(vec![PolygonSet::from_contour(rect(0.0, 0.0, 4.0, 4.0))]);
        let b = Layer::new(vec![
            PolygonSet::from_contour(rect(1.0, 1.0, 3.0, 3.0)),
            PolygonSet::from_contour(rect(2.0, 2.0, 3.5, 3.5)),
        ]);
        let r = overlay_difference(&a, &b, 1, &ClipOptions::sequential());
        let area: f64 = r.features.iter().map(eo_area).sum();
        // mask area = 4 + 2.25 − overlap 1 = 5.25 → 16 − 5.25 = 10.75.
        assert!((area - 10.75).abs() < 1e-9, "area = {area}");
    }

    #[test]
    fn slab_of_clamps() {
        let b = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(slab_of(&b, -5.0), 0);
        assert_eq!(slab_of(&b, 0.5), 0);
        assert_eq!(slab_of(&b, 1.0), 1);
        assert_eq!(slab_of(&b, 2.5), 2);
        assert_eq!(slab_of(&b, 99.0), 2);
    }
}
