//! Trapezoid decomposition and triangulation of boolean results.
//!
//! The scanbeam engine's kept spans *are* a vertical trapezoid decomposition
//! of the result region (the paper: "the intersection operation results in
//! convex output since the trapezoids are themselves convex in nature").
//! Exposing them directly serves the graphics use-case from the paper's
//! introduction — clipped geometry feeding rasterizers and GPU pipelines
//! wants triangles, not rings — and skips the stitching phase entirely.

use crate::classify::{classify_beam, BoolOp};
use crate::engine::{prepare, ClipOptions};
use polyclip_geom::{Point, PolygonSet};
use rayon::prelude::*;

/// One kept trapezoid: a scanbeam-aligned quad with horizontal top and
/// bottom. Degenerate sides (triangles) occur at local minima/maxima.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Trapezoid {
    /// Bottom scanline.
    pub y_bot: f64,
    /// Top scanline.
    pub y_top: f64,
    /// Left boundary x at the bottom / top scanline.
    pub xl: (f64, f64),
    /// Right boundary x at the bottom / top scanline.
    pub xr: (f64, f64),
}

impl Trapezoid {
    /// Signed area (non-negative for well-formed trapezoids).
    pub fn area(&self) -> f64 {
        ((self.xr.0 - self.xl.0) + (self.xr.1 - self.xl.1)) * 0.5 * (self.y_top - self.y_bot)
    }

    /// The corner points, counterclockwise from bottom-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.xl.0, self.y_bot),
            Point::new(self.xr.0, self.y_bot),
            Point::new(self.xr.1, self.y_top),
            Point::new(self.xl.1, self.y_top),
        ]
    }

    /// Split into at most two non-degenerate triangles.
    pub fn triangles(&self) -> Vec<[Point; 3]> {
        let [a, b, c, d] = self.corners();
        let mut out = Vec::with_capacity(2);
        if (b.x - a.x).abs() > 0.0 {
            out.push([a, b, c]);
        }
        if (c.x - d.x).abs() > 0.0 {
            out.push([a, c, d]);
        }
        // Both bases degenerate: the trapezoid has no area.
        out
    }
}

/// The trapezoid decomposition of a boolean result.
///
/// Runs the engine's preparation and classification but not the merge: the
/// output is the raw list of kept trapezoids, beam by beam, left to right.
pub fn trapezoids(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> Vec<Trapezoid> {
    let gate = crate::budget::Gate::unlimited();
    let Ok(Some(p)) = prepare(
        subject,
        clip_p,
        opts,
        &mut Default::default(),
        &gate,
        &mut polyclip_sweep::SweepScratch::new(),
    ) else {
        return Vec::new();
    };
    let beams = &p.beams;

    let per_beam = |i: usize| -> Vec<Trapezoid> {
        let o = classify_beam(
            beams.beam(i),
            beams.y_bot(i),
            beams.y_top(i),
            op,
            opts.fill_rule,
        );
        o.bottom
            .iter()
            .zip(&o.top)
            .map(|(&(bl, br), &(tl, tr))| Trapezoid {
                y_bot: beams.y_bot(i),
                y_top: beams.y_top(i),
                xl: (bl, tl),
                xr: (br, tr),
            })
            .collect()
    };
    if opts.parallel {
        (0..beams.n_beams())
            .into_par_iter()
            .flat_map_iter(per_beam)
            .collect()
    } else {
        (0..beams.n_beams()).flat_map(per_beam).collect()
    }
}

/// Triangulate a boolean result (fan-free, two triangles per trapezoid).
pub fn triangulate(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> Vec<[Point; 3]> {
    trapezoids(subject, clip_p, op, opts)
        .iter()
        .flat_map(Trapezoid::triangles)
        .collect()
}

/// Signed area of a triangle.
pub fn triangle_area(t: &[Point; 3]) -> f64 {
    ((t[1] - t[0]).cross(&(t[2] - t[0]))) * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::measure_op;
    use polyclip_geom::contour::rect;
    use polyclip_geom::FillRule;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    fn seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    #[test]
    fn trapezoid_areas_sum_to_the_measure() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 1.5), (3.0, 4.0)]);
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            let traps = trapezoids(&a, &b, op, &seq());
            let sum: f64 = traps.iter().map(Trapezoid::area).sum();
            let want = measure_op(&a, &b, op, &seq());
            assert!(
                (sum - want).abs() < 1e-9 * (1.0 + want),
                "{op:?}: {sum} vs {want}"
            );
        }
    }

    #[test]
    fn triangles_cover_the_same_area() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = PolygonSet::from_xy(&[(1.0, -0.5), (3.0, 1.0), (1.0, 3.0)]);
        let tris = triangulate(&a, &b, BoolOp::Intersection, &seq());
        let sum: f64 = tris.iter().map(triangle_area).sum();
        let want = measure_op(&a, &b, BoolOp::Intersection, &seq());
        assert!((sum - want).abs() < 1e-9 * (1.0 + want));
        // Every triangle is counterclockwise and non-degenerate.
        for t in &tris {
            assert!(triangle_area(t) > 0.0);
        }
    }

    #[test]
    fn square_decomposes_into_one_trapezoid() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let traps = trapezoids(&a, &PolygonSet::new(), BoolOp::Union, &seq());
        assert_eq!(traps.len(), 1);
        assert_eq!(traps[0].area(), 4.0);
        assert_eq!(traps[0].triangles().len(), 2);
    }

    #[test]
    fn triangle_tip_trapezoid_degenerates_to_one_triangle() {
        let tri = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)]);
        let traps = trapezoids(&tri, &PolygonSet::new(), BoolOp::Union, &seq());
        assert_eq!(traps.len(), 1);
        let t = traps[0].triangles();
        assert_eq!(t.len(), 1, "apex quad has a zero-width top");
        assert!((triangle_area(&t[0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bowtie_trapezoids_respect_parity() {
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let traps = trapezoids(&bow, &PolygonSet::new(), BoolOp::Union, &seq());
        let sum: f64 = traps.iter().map(Trapezoid::area).sum();
        // Even-odd area of the bow-tie: two lobes of area 1 each.
        assert!((sum - 2.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn nonzero_rule_flows_through() {
        let two =
            PolygonSet::from_contours(vec![rect(0.0, 0.0, 1.0, 1.0), rect(0.0, 0.0, 1.0, 1.0)]);
        let mut opts = seq();
        opts.fill_rule = FillRule::NonZero;
        let nz: f64 = trapezoids(&two, &PolygonSet::new(), BoolOp::Union, &opts)
            .iter()
            .map(Trapezoid::area)
            .sum();
        assert!((nz - 1.0).abs() < 1e-12);
        let eo: f64 = trapezoids(&two, &PolygonSet::new(), BoolOp::Union, &seq())
            .iter()
            .map(Trapezoid::area)
            .sum();
        assert_eq!(eo, 0.0);
    }

    #[test]
    fn parallel_equals_sequential() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 1.5), (3.0, 4.0)]);
        let s = trapezoids(&a, &b, BoolOp::Intersection, &seq());
        let p = trapezoids(&a, &b, BoolOp::Intersection, &ClipOptions::default());
        assert_eq!(s, p);
    }
}
