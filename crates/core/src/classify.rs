//! Per-scanbeam classification (Lemmas 1–3 and Step 3 of Algorithm 1).
//!
//! Inside one (crossing-free) scanbeam the active sub-edges, sorted left to
//! right, alternate between *left* and *right* boundaries of the filled
//! region (Lemma 1). Walking them while maintaining the subject/clip winding
//! state is the prefix-sum parity test of Lemma 3 evaluated left-to-right;
//! the spans where the boolean predicate holds are the *kept* trapezoids,
//! whose non-horizontal boundaries are emitted immediately and whose
//! horizontal extents are recorded for the inter-beam merge.

use polyclip_geom::{FillRule, Point};
use polyclip_sweep::{Source, SubEdge};

/// The boolean operation to evaluate (the paper's `op ∈ {∩, ∪, \}` plus
/// symmetric difference, which Vatti-family clippers support for free).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BoolOp {
    /// Region inside both inputs.
    Intersection,
    /// Region inside either input.
    Union,
    /// Region inside the subject but not the clip.
    Difference,
    /// Region inside exactly one input.
    Xor,
}

impl BoolOp {
    /// The keep predicate on (inside subject, inside clip).
    #[inline]
    pub fn keep(self, in_subject: bool, in_clip: bool) -> bool {
        match self {
            BoolOp::Intersection => in_subject && in_clip,
            BoolOp::Union => in_subject || in_clip,
            BoolOp::Difference => in_subject && !in_clip,
            BoolOp::Xor => in_subject != in_clip,
        }
    }
}

/// Classification result for one scanbeam.
#[derive(Clone, Debug, Default)]
pub struct BeamOutput {
    /// Non-horizontal boundary fragments, directed with the region interior
    /// on their left (left boundaries run top→bottom, right boundaries
    /// bottom→top — exactly the left/right labels of Lemma 1).
    pub edges: Vec<(Point, Point)>,
    /// Kept x-intervals on the bottom scanline.
    pub bottom: Vec<(f64, f64)>,
    /// Kept x-intervals on the top scanline.
    pub top: Vec<(f64, f64)>,
    /// Area of the kept trapezoids (used by the measure-only fast path).
    pub area: f64,
}

/// Classify one scanbeam.
///
/// `sub` must be sorted left-to-right (as produced by
/// [`polyclip_sweep::BeamSet`]) and crossing-free (Round B).
pub fn classify_beam(
    sub: &[SubEdge],
    y_bot: f64,
    y_top: f64,
    op: BoolOp,
    rule: FillRule,
) -> BeamOutput {
    let mut out = BeamOutput::default();
    let mut w_subject = 0i32;
    let mut w_clip = 0i32;
    let inside = |w: i32| match rule {
        FillRule::EvenOdd => w & 1 == 1,
        FillRule::NonZero => w != 0,
    };
    let mut keep = false;
    let mut open: Option<(f64, f64)> = None; // (xb, xt) of the left boundary
    let height = y_top - y_bot;

    for s in sub {
        match s.src {
            Source::Subject => {
                w_subject += delta(rule, s.winding);
            }
            Source::Clip => {
                w_clip += delta(rule, s.winding);
            }
        }
        let new_keep = op.keep(inside(w_subject), inside(w_clip));
        if new_keep != keep {
            if new_keep {
                // Entering a kept span: this sub-edge is a *left* boundary,
                // directed downward so the interior lies on its left.
                out.edges
                    .push((Point::new(s.xt, y_top), Point::new(s.xb, y_bot)));
                open = Some((s.xb, s.xt));
            } else {
                // Leaving: a *right* boundary, directed upward.
                out.edges
                    .push((Point::new(s.xb, y_bot), Point::new(s.xt, y_top)));
                let (ob, ot) = open.take().expect("leaving a span that never opened");
                // Residual crossings inside numerically degenerate
                // (hair-thin) beams can invert an interval; normalizing
                // keeps the interval endpoints — which are also vertical
                // fragment endpoints — consistent for the merge phase.
                out.bottom.push(norm(ob, s.xb));
                out.top.push(norm(ot, s.xt));
                out.area += ((s.xb - ob) + (s.xt - ot)) * 0.5 * height;
            }
            keep = new_keep;
        }
    }
    // A well-formed beam always closes: total winding returns to zero.
    debug_assert!(!keep, "unclosed kept span in scanbeam [{y_bot}, {y_top}]");
    out
}

/// Order an interval's endpoints (see the residual-crossing note above).
#[inline]
fn norm(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Winding contribution of one sub-edge: parity rules toggle by 1, nonzero
/// rules follow the original contour direction.
#[inline]
fn delta(rule: FillRule, winding: i8) -> i32 {
    match rule {
        FillRule::EvenOdd => 1,
        FillRule::NonZero => winding as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::PolygonSet;
    use polyclip_sweep::{collect_edges, event_ys, BeamSet, ForcedSplits, PartitionBackend};

    fn beams(a: &PolygonSet, b: &PolygonSet) -> (BeamSet, Vec<polyclip_sweep::InputEdge>) {
        let edges = collect_edges(a, b);
        let ys = event_ys(&edges, &[], false);
        let bs = BeamSet::build(
            &edges,
            ys,
            &ForcedSplits::empty(edges.len()),
            PartitionBackend::DirectScan,
            false,
        );
        (bs, edges)
    }

    #[test]
    fn keep_predicate_truth_table() {
        use BoolOp::*;
        assert!(Intersection.keep(true, true) && !Intersection.keep(true, false));
        assert!(Union.keep(true, false) && Union.keep(false, true) && !Union.keep(false, false));
        assert!(Difference.keep(true, false) && !Difference.keep(true, true));
        assert!(Xor.keep(true, false) && !Xor.keep(true, true) && !Xor.keep(false, false));
    }

    #[test]
    fn single_square_union_spans() {
        let sq = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let (bs, _) = beams(&sq, &PolygonSet::new());
        assert_eq!(bs.n_beams(), 1);
        let out = classify_beam(
            bs.beam(0),
            bs.y_bot(0),
            bs.y_top(0),
            BoolOp::Union,
            FillRule::EvenOdd,
        );
        assert_eq!(out.bottom, vec![(0.0, 2.0)]);
        assert_eq!(out.top, vec![(0.0, 2.0)]);
        assert_eq!(out.edges.len(), 2);
        assert!((out.area - 4.0).abs() < 1e-12);
        // Left boundary directed down, right boundary up.
        let down = &out.edges[0];
        assert!(down.0.y > down.1.y && down.0.x == 0.0);
        let up = &out.edges[1];
        assert!(up.0.y < up.1.y && up.0.x == 2.0);
    }

    #[test]
    fn overlapping_squares_intersection_area() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let b = PolygonSet::from_xy(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let (bs, _) = beams(&a, &b);
        // Events: 0,1,2,3 → three beams.
        assert_eq!(bs.n_beams(), 3);
        let mut area = 0.0;
        for i in 0..bs.n_beams() {
            let o = classify_beam(
                bs.beam(i),
                bs.y_bot(i),
                bs.y_top(i),
                BoolOp::Intersection,
                FillRule::EvenOdd,
            );
            area += o.area;
        }
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ops_disagree_only_where_expected() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let b = PolygonSet::from_xy(&[(1.0, 0.0), (3.0, 0.0), (3.0, 2.0), (1.0, 2.0)]);
        let (bs, _) = beams(&a, &b);
        let total = |op: BoolOp| -> f64 {
            (0..bs.n_beams())
                .map(|i| {
                    classify_beam(bs.beam(i), bs.y_bot(i), bs.y_top(i), op, FillRule::EvenOdd).area
                })
                .sum()
        };
        assert!((total(BoolOp::Intersection) - 2.0).abs() < 1e-12);
        assert!((total(BoolOp::Union) - 6.0).abs() < 1e-12);
        assert!((total(BoolOp::Difference) - 2.0).abs() < 1e-12);
        assert!((total(BoolOp::Xor) - 4.0).abs() < 1e-12);
        // Inclusion–exclusion: |A| + |B| = |A∪B| + |A∩B|.
        assert!((total(BoolOp::Union) + total(BoolOp::Intersection) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn left_right_labels_alternate() {
        // Lemma 1: within a beam the boundary fragments of the kept region
        // alternate left (down) and right (up).
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (6.0, 0.0), (6.0, 1.0), (0.0, 1.0)]);
        let b = PolygonSet::from_xy(&[(1.0, 0.0), (2.0, 0.0), (2.0, 1.0), (1.0, 1.0)]);
        let (bs, _) = beams(&a, &b);
        let o = classify_beam(
            bs.beam(0),
            bs.y_bot(0),
            bs.y_top(0),
            BoolOp::Difference,
            FillRule::EvenOdd,
        );
        // A \ B = two spans → L R L R.
        assert_eq!(o.bottom.len(), 2);
        assert_eq!(o.edges.len(), 4);
        for (i, e) in o.edges.iter().enumerate() {
            let goes_down = e.0.y > e.1.y;
            assert_eq!(goes_down, i % 2 == 0, "labels must alternate L,R,L,R");
        }
    }

    #[test]
    fn nonzero_vs_evenodd_on_doubly_wound_region() {
        // Two identical CCW squares as the subject: winding 2 inside.
        let a = PolygonSet::from_contours(vec![
            polyclip_geom::contour::rect(0.0, 0.0, 1.0, 1.0),
            polyclip_geom::contour::rect(0.0, 0.0, 1.0, 1.0),
        ]);
        let (bs, _) = beams(&a, &PolygonSet::new());
        let area = |rule: FillRule| -> f64 {
            (0..bs.n_beams())
                .map(|i| {
                    classify_beam(bs.beam(i), bs.y_bot(i), bs.y_top(i), BoolOp::Union, rule).area
                })
                .sum()
        };
        assert!((area(FillRule::EvenOdd) - 0.0).abs() < 1e-12);
        assert!((area(FillRule::NonZero) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_beam_is_empty() {
        let o = classify_beam(&[], 0.0, 1.0, BoolOp::Union, FillRule::EvenOdd);
        assert!(o.edges.is_empty() && o.bottom.is_empty() && o.area == 0.0);
    }
}
