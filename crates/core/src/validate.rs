//! Validation of clip outputs.
//!
//! The engine guarantees *canonical* output: contours are closed simple
//! rings, consistently oriented (outer counterclockwise, holes clockwise),
//! mutually non-crossing, and free of duplicate or collinear-redundant
//! vertices. This module checks those guarantees — used by the test suite
//! and available to downstream users who ingest polygons from elsewhere and
//! want to know whether they need a [`crate::engine::dissolve`] pass.

use polyclip_geom::{PolygonSet, SegmentIntersection};
use polyclip_sweep::{
    collect_edges, discover_intersections, event_ys, BeamSet, ForcedSplits, PartitionBackend,
};

/// A violation found by [`validate`].
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// A contour has fewer than 3 vertices.
    TooFewVertices {
        /// Contour index.
        contour: usize,
    },
    /// A contour has zero signed area.
    ZeroArea {
        /// Contour index.
        contour: usize,
    },
    /// Two consecutive vertices coincide.
    DuplicateVertex {
        /// Contour index.
        contour: usize,
        /// Vertex index within the contour.
        vertex: usize,
    },
    /// Two edges of the set cross transversally (self-intersection or
    /// contour-contour crossing).
    EdgesCross {
        /// Sweep-edge ids of the crossing pair.
        edges: (u32, u32),
    },
    /// Two edges overlap collinearly.
    EdgesOverlap,
}

impl Violation {
    /// Sort key: contour-bearing violations ordered by (contour, vertex),
    /// then edge-level ones (which have no contour index).
    fn sort_key(&self) -> (u8, usize, usize) {
        match *self {
            Violation::TooFewVertices { contour } => (0, contour, 0),
            Violation::ZeroArea { contour } => (0, contour, 1),
            Violation::DuplicateVertex { contour, vertex } => (0, contour, 2 + vertex),
            Violation::EdgesCross { edges } => (1, edges.0 as usize, edges.1 as usize),
            Violation::EdgesOverlap => (2, 0, 0),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TooFewVertices { contour } => {
                write!(f, "contour {contour} has fewer than 3 vertices")
            }
            Violation::ZeroArea { contour } => {
                write!(f, "contour {contour} has zero signed area")
            }
            Violation::DuplicateVertex { contour, vertex } => {
                write!(f, "contour {contour} repeats vertex {vertex}")
            }
            Violation::EdgesCross { edges } => {
                write!(f, "edges {} and {} cross", edges.0, edges.1)
            }
            Violation::EdgesOverlap => write!(f, "two edges overlap collinearly"),
        }
    }
}

impl std::error::Error for Violation {}

/// Report of a validation run.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All violations found (empty = canonical), sorted by contour index
    /// (per-contour checks first, then edge-level crossings/overlaps).
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// True when no violations were found.
    pub fn is_canonical(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validate a polygon set against the engine's output guarantees.
///
/// Crossing detection reuses the sweep's inversion discovery, so the check
/// is `O((n + k') log)` rather than quadratic.
pub fn validate(p: &PolygonSet) -> ValidationReport {
    let mut report = ValidationReport::default();

    for (ci, c) in p.contours().iter().enumerate() {
        if c.len() < 3 {
            report
                .violations
                .push(Violation::TooFewVertices { contour: ci });
            continue;
        }
        if c.signed_area() == 0.0 {
            report.violations.push(Violation::ZeroArea { contour: ci });
        }
        let pts = c.points();
        for v in 0..pts.len() {
            if pts[v] == pts[(v + 1) % pts.len()] {
                report.violations.push(Violation::DuplicateVertex {
                    contour: ci,
                    vertex: v,
                });
            }
        }
    }

    // Crossings among all edges of the set (output contours must not cross
    // themselves or each other).
    let edges = collect_edges(p, &PolygonSet::new());
    if edges.len() >= 2 {
        let ys = event_ys(&edges, &[], false);
        if ys.len() >= 2 {
            let beams = BeamSet::build(
                &edges,
                ys,
                &ForcedSplits::empty(edges.len()),
                PartitionBackend::DirectScan,
                false,
            );
            for ev in discover_intersections(&beams, &edges, false) {
                report.violations.push(Violation::EdgesCross {
                    edges: (ev.e1, ev.e2),
                });
            }
            // Collinear overlaps between distinct edges inside a beam.
            'outer: for b in 0..beams.n_beams() {
                let sub = beams.beam(b);
                for w in sub.windows(2) {
                    if w[0].xb == w[1].xb && w[0].xt == w[1].xt && w[0].edge_id != w[1].edge_id {
                        let (ea, eb) = (
                            edges[w[0].edge_id as usize].segment(),
                            edges[w[1].edge_id as usize].segment(),
                        );
                        if matches!(ea.intersect(&eb), SegmentIntersection::Overlap(..)) {
                            report.violations.push(Violation::EdgesOverlap);
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    report.violations.sort_by_key(|v| v.sort_key());
    report
}

/// Convenience: validate and assert canonical (for tests).
pub fn assert_canonical(p: &PolygonSet) {
    let r = validate(p);
    assert!(
        r.is_canonical(),
        "polygon set is not canonical: {:?}",
        &r.violations[..r.violations.len().min(5)]
    );
}

/// Check that a segment list forms closed loops (each vertex balanced) —
/// used to sanity-check fragment streams in tests.
pub fn fragments_balanced(frags: &[(polyclip_geom::Point, polyclip_geom::Point)]) -> bool {
    let mut deg: crate::stitch::PointMap<i64> = Default::default();
    for (a, b) in frags {
        *deg.entry((
            polyclip_geom::OrdF64::new(a.x),
            polyclip_geom::OrdF64::new(a.y),
        ))
        .or_default() += 1;
        *deg.entry((
            polyclip_geom::OrdF64::new(b.x),
            polyclip_geom::OrdF64::new(b.y),
        ))
        .or_default() -= 1;
    }
    deg.values().all(|&v| v == 0)
}

/// Degenerate-input hardening helper: drop zero-area and sub-3-vertex
/// contours from arbitrary external input before clipping.
///
/// Note: zero *signed* area includes self-intersecting contours whose lobes
/// cancel exactly (a symmetric bow-tie), which the engine handles and which
/// do enclose area under even-odd. The engine's own input gate therefore
/// uses the strictly conservative [`sanitize_counted`] instead; reach for
/// this function only when you know such contours are unwanted.
pub fn sanitize(p: &PolygonSet) -> PolygonSet {
    PolygonSet::from_contours(
        p.contours()
            .iter()
            .filter(|c| c.is_valid() && c.signed_area() != 0.0)
            .cloned()
            .collect(),
    )
}

/// Whether a contour provably cannot contribute area or sweep crossings:
/// fewer than three vertices, or a bounding box with zero width or height
/// (a point, or a purely horizontal/vertical sliver — its edges either
/// never enter the sweep or cancel pairwise).
///
/// Deliberately weaker than the zero-signed-area test of [`sanitize`]:
/// self-intersecting contours with cancelling lobes are *not* degenerate —
/// they enclose area under even-odd and must reach the engine.
pub fn is_degenerate(c: &polyclip_geom::Contour) -> bool {
    if c.len() < 3 {
        return true;
    }
    let bb = c.bbox();
    bb.xmin == bb.xmax || bb.ymin == bb.ymax
}

/// Copy-free input gate: drop [`is_degenerate`] contours, reporting how
/// many were dropped. Borrows the input untouched in the (overwhelmingly
/// common) clean case and clones only when something must be removed.
pub fn sanitize_counted(p: &PolygonSet) -> (std::borrow::Cow<'_, PolygonSet>, usize) {
    let dropped = p.contours().iter().filter(|c| is_degenerate(c)).count();
    if dropped == 0 {
        return (std::borrow::Cow::Borrowed(p), 0);
    }
    let clean = PolygonSet::from_contours(
        p.contours()
            .iter()
            .filter(|c| !is_degenerate(c))
            .cloned()
            .collect(),
    );
    (std::borrow::Cow::Owned(clean), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::BoolOp;
    use crate::engine::{clip, ClipOptions};
    use polyclip_geom::contour::rect;
    use polyclip_geom::Contour;

    #[test]
    fn clean_output_is_canonical() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.3), (3.0, 3.0), (0.5, 2.0)]);
        let b = PolygonSet::from_xy(&[(1.0, -1.0), (5.0, 1.0), (2.0, 4.0)]);
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            let out = clip(&a, &b, op, &ClipOptions::sequential());
            assert_canonical(&out);
        }
    }

    #[test]
    fn bowtie_is_flagged() {
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let r = validate(&bow);
        assert!(!r.is_canonical());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EdgesCross { .. })));
        // Dissolving canonicalizes it.
        let d = crate::engine::dissolve(&bow, &ClipOptions::sequential());
        assert_canonical(&d);
    }

    #[test]
    fn crossing_contours_are_flagged() {
        let p = PolygonSet::from_contours(vec![
            rect(0.0, 0.0, 2.0, 2.0),
            Contour::from_xy(&[(1.0, 1.0), (3.0, 1.2), (3.0, 3.0), (1.0, 2.8)]),
        ]);
        assert!(!validate(&p).is_canonical());
    }

    #[test]
    fn degenerate_contours_are_flagged_and_sanitized() {
        let mut p = PolygonSet::new();
        p.contours_mut()
            .push(Contour::from_xy(&[(0.0, 0.0), (1.0, 0.0)]));
        p.contours_mut().push(Contour::from_xy(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 2.0), // collinear: zero area
        ]));
        p.push(rect(5.0, 5.0, 6.0, 6.0));
        let r = validate(&p);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TooFewVertices { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ZeroArea { .. })));
        let clean = sanitize(&p);
        assert_eq!(clean.len(), 1);
        assert!(validate(&clean).is_canonical());
    }

    #[test]
    fn sanitize_counted_borrows_clean_input_and_keeps_bowties() {
        use polyclip_geom::point::pt;
        let clean = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        // Symmetric bow-tie: signed area 0, but even-odd area 2 — the
        // conservative gate must pass it through untouched (borrowed).
        let (gated, dropped) = sanitize_counted(&clean);
        assert_eq!(dropped, 0);
        assert!(matches!(gated, std::borrow::Cow::Borrowed(_)));

        let mut dirty = clean.clone();
        dirty
            .contours_mut()
            .push(Contour::from_xy(&[(0.0, 0.0), (1.0, 0.0)]));
        dirty
            .contours_mut()
            .push(Contour::new(vec![pt(5.0, 5.0), pt(5.0, 5.0), pt(5.0, 5.0)]));
        // Horizontal sliver: zero bbox height.
        dirty
            .contours_mut()
            .push(Contour::from_xy(&[(0.0, 7.0), (3.0, 7.0), (1.5, 7.0)]));
        let (gated, dropped) = sanitize_counted(&dirty);
        assert_eq!(dropped, 3);
        assert_eq!(gated.len(), 1);
    }

    #[test]
    fn violations_display_and_sort_by_contour() {
        let mut p = PolygonSet::new();
        p.push(rect(5.0, 5.0, 6.0, 6.0));
        p.contours_mut().push(Contour::from_xy(&[
            (0.0, 0.0),
            (1.0, 1.0),
            (2.0, 2.0), // collinear: zero area (contour 1)
        ]));
        p.contours_mut()
            .push(Contour::from_xy(&[(0.0, 0.0), (1.0, 0.0)])); // contour 2
        let r = validate(&p);
        let contours: Vec<_> = r
            .violations
            .iter()
            .filter_map(|v| match v {
                Violation::TooFewVertices { contour }
                | Violation::ZeroArea { contour }
                | Violation::DuplicateVertex { contour, .. } => Some(*contour),
                _ => None,
            })
            .collect();
        let mut sorted = contours.clone();
        sorted.sort_unstable();
        assert_eq!(contours, sorted);

        assert_eq!(
            Violation::ZeroArea { contour: 1 }.to_string(),
            "contour 1 has zero signed area"
        );
        assert_eq!(
            Violation::TooFewVertices { contour: 2 }.to_string(),
            "contour 2 has fewer than 3 vertices"
        );
        assert_eq!(
            Violation::EdgesCross { edges: (3, 7) }.to_string(),
            "edges 3 and 7 cross"
        );
        let err: Box<dyn std::error::Error> = Box::new(Violation::EdgesOverlap);
        assert_eq!(err.to_string(), "two edges overlap collinearly");
    }

    #[test]
    fn balanced_fragments_detector() {
        use polyclip_geom::point::pt;
        let closed = vec![
            (pt(0.0, 0.0), pt(1.0, 0.0)),
            (pt(1.0, 0.0), pt(0.5, 1.0)),
            (pt(0.5, 1.0), pt(0.0, 0.0)),
        ];
        assert!(fragments_balanced(&closed));
        let open = &closed[..2];
        assert!(!fragments_balanced(open));
    }

    #[test]
    fn overlapping_collinear_edges_flagged() {
        // Two rects sharing part of an edge: x=2 overlaps on y in [0.5, 1].
        let p = PolygonSet::from_contours(vec![rect(0.0, 0.0, 2.0, 1.0), rect(2.0, 0.5, 4.0, 1.5)]);
        let r = validate(&p);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::EdgesOverlap)));
    }
}
