//! Output-sensitive parallel polygon clipping — the core algorithms of
//! Puri & Prasad, *"Output-Sensitive Parallel Algorithm for Polygon
//! Clipping"*, ICPP 2014.
//!
//! # What lives here
//!
//! * [`engine`] — the scanbeam boolean engine (our from-scratch equivalent of
//!   Vatti's algorithm / the GPC library): Algorithm 1 of the paper, with a
//!   sequential mode and a fully parallel mode in which every phase
//!   (event sort, partition, intersection discovery, per-beam
//!   classification, merge) runs on rayon;
//! * [`classify`] — per-scanbeam region classification (Lemmas 1–3: edge
//!   labels alternate, contributing vertices by parity prefix sums);
//! * [`horizontal`] — reconstruction of horizontal boundary runs between
//!   adjacent scanbeams (the paper's Figure 6 merge, expressed as interval
//!   symmetric differences that cancel shared partial-polygon borders);
//! * [`stitch`] — cancellation of opposite boundary fragments and extraction
//!   of closed output contours, plus removal of the *virtual vertices* k'
//!   ("removed finally by array packing");
//! * [`algo2`] — the multi-threaded slab-partitioning clipper (Algorithm 2)
//!   with per-phase timers matching Figure 9;
//! * [`slabindex`] — the output-sensitive contour-to-slab binning pass that
//!   feeds each Algorithm-2 worker only the contours overlapping its slab;
//! * [`overlay`] — clipping two *sets* of polygons (GIS layers), with the
//!   paper's replication strategy and an improved unique-owner assignment;
//! * [`sanitize`] — the degeneracy-hardened front door: counted repair of
//!   dirty input (duplicate/collinear/spike vertices, zero-area contours)
//!   before it reaches the sweep;
//! * [`prepared`] — compile-once, clip-many: an immutable
//!   [`PreparedLayer`](prepared::PreparedLayer) freezing the subject-side
//!   work of Algorithm 2 for cross-request reuse, clipped concurrently with
//!   only query-side cost;
//! * [`budget`] — bounded execution: deadlines, cooperative cancellation,
//!   and work/memory budgets enforced at coarse pipeline checkpoints;
//! * [`oracle`] — cross-implementation differential verification: the
//!   [`ClipOracle`] trait over the engine and the independent
//!   Foster–Overfelt clipper, with a region-area comparator;
//! * [`stats`] — the n / k / k' instrumentation demonstrating output
//!   sensitivity.
//!
//! # Quick start
//!
//! ```
//! use polyclip_core::{clip, BoolOp, ClipOptions};
//! use polyclip_geom::PolygonSet;
//!
//! let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
//! let b = PolygonSet::from_xy(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
//! let out = clip(&a, &b, BoolOp::Intersection, &ClipOptions::default());
//! assert_eq!(out.contours().len(), 1);
//! assert!((out.contours()[0].area() - 1.0).abs() < 1e-9);
//! ```

pub mod algo2;
pub mod budget;
pub mod classify;
pub mod engine;
pub mod horizontal;
pub mod ops;
pub mod oracle;
pub mod overlay;
pub mod pram;
pub mod prepared;
pub mod resilience;
pub mod sanitize;
pub mod slabindex;
pub mod stats;
pub mod stitch;
pub mod tess;
pub mod validate;

pub use algo2::{
    clip_pair_slabs, clip_pair_slabs_backend, clip_pair_slabs_with, try_clip_pair_slabs,
    try_clip_pair_slabs_backend, try_clip_pair_slabs_with, Algo2Result, MergeStrategy, PhaseTimes,
};
pub use budget::{CancelToken, ExecBudget, MeterSnapshot, WorkMeter};
pub use classify::BoolOp;
pub use engine::{
    clip, clip_with_stats, dissolve, eo_area, measure_op, try_clip, try_clip_refs_with_stats,
    try_clip_with_stats, ClipOptions,
};
pub use ops::{intersection_all, subtract_all, union_all, xor_all};
pub use oracle::{
    compare_outputs, ClipOracle, DiffReport, FosterOverfeltOracle, OracleError, ScanbeamOracle,
    ORACLE_REL_TOL,
};
pub use overlay::{
    overlay_difference, overlay_intersection, overlay_intersection_grid, overlay_union,
    try_overlay_difference, try_overlay_intersection, try_overlay_union, Layer, OverlayResult,
    SlabAssignment,
};
pub use pram::{pram_cost, PhaseCost, PramCostModel};
pub use prepared::{clip_prepared, try_clip_prepared, try_clip_prepared_backend, PreparedLayer};
pub use resilience::{ClipError, ClipOutcome, Degradation, FaultPlan, InputRole, RepairRung};
pub use sanitize::{sanitize_set, SanitizeOptions, SanitizeReport};
pub use slabindex::{SlabEntry, SlabIndex};
pub use stats::ClipStats;
pub use stitch::stitch_counted;
pub use tess::{trapezoids, triangulate, Trapezoid};
pub use validate::{
    assert_canonical, is_degenerate, sanitize, sanitize_counted, validate, ValidationReport,
    Violation,
};
