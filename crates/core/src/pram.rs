//! PRAM cost accounting — empirical backing for the paper's
//! `O((n + k + k') log(n + k + k') / p)` bound.
//!
//! The engine's phases map one-to-one onto the paper's PRAM steps; this
//! module runs the preparation/classification pipeline while charging each
//! phase its **work** (total operations) and **span** (critical-path depth,
//! what an unbounded-processor PRAM pays). Brent's theorem then gives the
//! simulated p-processor time `T_p ≤ work/p + span`, which is the number the
//! paper's theory section predicts — and the `figures pram` harness tabulates
//! against instance size, intersection count k and partition overhead k'.
//!
//! Costs are in abstract comparison/operation units, not nanoseconds: the
//! point is the *scaling*, the output sensitivity, and the polylogarithmic
//! span.

use crate::classify::{classify_beam, BoolOp};
use crate::engine::{prepare, ClipOptions};
use crate::stats::ClipStats;
use polyclip_geom::PolygonSet;

/// Work/span charge of one PRAM phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseCost {
    /// Phase label (the paper's step numbering).
    pub name: &'static str,
    /// Total operations across all processors.
    pub work: f64,
    /// Critical-path length (time with unbounded processors).
    pub span: f64,
}

/// The cost model for one clipping instance.
#[derive(Clone, Debug, Default)]
pub struct PramCostModel {
    /// Per-phase charges, in pipeline order.
    pub phases: Vec<PhaseCost>,
    /// Instance statistics (n, k, k', …).
    pub stats: ClipStats,
}

impl PramCostModel {
    /// Total work over all phases.
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work).sum()
    }

    /// Total span (phases run in sequence).
    pub fn total_span(&self) -> f64 {
        self.phases.iter().map(|p| p.span).sum()
    }

    /// Brent's bound: simulated time on `p` processors.
    pub fn time_on(&self, p: usize) -> f64 {
        let p = p.max(1) as f64;
        self.phases.iter().map(|ph| ph.work / p + ph.span).sum()
    }

    /// The paper's processor count for logarithmic time: n + k + k'.
    pub fn paper_processors(&self) -> usize {
        self.stats.processor_bound()
    }

    /// Speedup of `p` processors over one (by the simulated times).
    pub fn speedup(&self, p: usize) -> f64 {
        self.time_on(1) / self.time_on(p)
    }
}

#[inline]
fn lg(x: usize) -> f64 {
    (x.max(2) as f64).log2()
}

/// Build the cost model for a clipping instance by running the pipeline and
/// charging each phase per the paper's analysis (§III-E).
pub fn pram_cost(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    opts: &ClipOptions,
) -> PramCostModel {
    let mut report = Default::default();
    let gate = crate::budget::Gate::unlimited();
    let Ok(Some(p)) = prepare(
        subject,
        clip_p,
        opts,
        &mut report,
        &gate,
        &mut polyclip_sweep::SweepScratch::new(),
    ) else {
        return PramCostModel::default();
    };
    let n = p.edges.len();
    let beams = &p.beams;
    let n_beams = beams.n_beams();
    let n_sub = beams.total_sub_edges();
    let k = p.k;

    let mut phases = Vec::new();

    // Step 1 — sort 2n event y's (Cole's merge sort: O(n log n) work,
    // O(log n) span; our practical sort has O(log² n) span).
    phases.push(PhaseCost {
        name: "step1_event_sort",
        work: 2.0 * n as f64 * lg(2 * n),
        span: lg(2 * n) * lg(2 * n),
    });

    // Step 2 — partition edges into beams: count-then-report allocation of
    // k' + n sub-edge slots, plus the beam-order sort.
    phases.push(PhaseCost {
        name: "step2_partition",
        work: n_sub as f64 * lg(n_sub) + n as f64 * lg(n_beams.max(2)),
        span: lg(n_sub) * lg(n_sub),
    });

    // Lemma 4 — per-beam inversion counting + output-sensitive reporting:
    // work Σ n_b log n_b + k, span max_b log² n_b (beams independent).
    let mut disc_work = 0.0;
    let mut disc_span: f64 = 0.0;
    for b in 0..n_beams {
        let nb = beams.beam(b).len();
        if nb > 1 {
            disc_work += nb as f64 * lg(nb);
            disc_span = disc_span.max(lg(nb) * lg(nb));
        }
    }
    phases.push(PhaseCost {
        name: "lemma4_discovery",
        work: disc_work + k as f64,
        span: disc_span + 1.0,
    });

    // Step 3 — classification: prefix-sum parity per beam (Lemma 3):
    // work Σ n_b, span max log n_b.
    let mut class_span: f64 = 0.0;
    let mut out_frags = 0usize;
    for b in 0..n_beams {
        let nb = beams.beam(b).len();
        class_span = class_span.max(lg(nb.max(2)));
        let o = classify_beam(
            beams.beam(b),
            beams.y_bot(b),
            beams.y_top(b),
            op,
            opts.fill_rule,
        );
        out_frags += o.edges.len() + o.bottom.len() * 2;
    }
    phases.push(PhaseCost {
        name: "step3_classification",
        work: n_sub as f64,
        span: class_span,
    });

    // Step 4 — merge: sort + cancel + stitch over the output fragments.
    phases.push(PhaseCost {
        name: "step4_merge",
        work: out_frags as f64 * lg(out_frags.max(2)),
        span: lg(out_frags.max(2)) * lg(out_frags.max(2)),
    });

    let stats = ClipStats {
        n_edges: n,
        n_events: beams.ys.len(),
        n_beams,
        k_intersections: k,
        k_prime: n_sub - n,
        n_subedges: n_sub,
        out_contours: 0,
        out_vertices: out_frags,
        refine_rounds: report.refine_rounds,
        refine_rounds_incremental: report.refine_rounds_incremental,
        beams_rebuilt: report.beams_rebuilt,
        residuals_accepted: report.residuals_accepted,
        slab_retries: 0,
        input_repairs: 0,
        output_repairs: 0,
        completed_slabs: 0,
        total_slabs: 0,
        prepared_reused: false,
    };
    PramCostModel { phases, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_datagen::synthetic_pair;
    use polyclip_geom::contour::rect;

    fn seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    #[test]
    fn brent_bound_is_monotone_in_processors() {
        let (a, b) = synthetic_pair(2_000, 3);
        let m = pram_cost(&a, &b, BoolOp::Intersection, &seq());
        let mut last = f64::INFINITY;
        for p in [1usize, 2, 4, 16, 64, 1 << 20] {
            let t = m.time_on(p);
            assert!(t <= last + 1e-9, "time must not increase with processors");
            last = t;
        }
        // With unbounded processors, time approaches the span.
        assert!((m.time_on(usize::MAX / 2) - m.total_span()).abs() < 1.0);
    }

    #[test]
    fn work_tracks_output_size_not_n_squared() {
        // Same n, different overlap: work grows with k, far below n².
        let (a, b) = synthetic_pair(4_000, 7);
        let far = b.translate(polyclip_geom::Point::new(100.0, 0.0));
        let m_far = pram_cost(&a, &far, BoolOp::Intersection, &seq());
        let m_near = pram_cost(&a, &b, BoolOp::Intersection, &seq());
        assert!(m_near.stats.k_intersections > m_far.stats.k_intersections);
        assert!(m_near.total_work() > m_far.total_work());
        // Output sensitivity: the work is orders of magnitude below the
        // Θ(n²)-processor bound of the prior art.
        let n = m_near.stats.n_edges as f64;
        assert!(m_near.total_work() < n * n / 10.0);
    }

    #[test]
    fn span_is_polylogarithmic() {
        let (a, b) = synthetic_pair(8_000, 11);
        let m = pram_cost(&a, &b, BoolOp::Union, &seq());
        let npk = m.paper_processors() as f64;
        // span ≤ c · log³(n+k+k') with a small constant.
        assert!(
            m.total_span() <= 8.0 * npk.log2().powi(3),
            "span {} vs bound {}",
            m.total_span(),
            8.0 * npk.log2().powi(3)
        );
    }

    #[test]
    fn speedup_approaches_work_over_span() {
        let (a, b) = synthetic_pair(2_000, 5);
        let m = pram_cost(&a, &b, BoolOp::Intersection, &seq());
        let max_speedup = m.total_work() / m.total_span();
        assert!(m.speedup(1 << 24) <= max_speedup + 1.0);
        assert!(m.speedup(2) > 1.2, "two processors must help");
    }

    #[test]
    fn empty_instance() {
        let m = pram_cost(
            &PolygonSet::new(),
            &PolygonSet::new(),
            BoolOp::Union,
            &seq(),
        );
        assert!(m.phases.is_empty());
        assert_eq!(m.time_on(4), 0.0);
    }

    #[test]
    fn phases_follow_paper_order() {
        let a = PolygonSet::from_contour(rect(0.0, 0.0, 2.0, 2.0));
        let b = PolygonSet::from_contour(rect(1.0, 1.0, 3.0, 3.0));
        let m = pram_cost(&a, &b, BoolOp::Intersection, &seq());
        let names: Vec<&str> = m.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "step1_event_sort",
                "step2_partition",
                "lemma4_discovery",
                "step3_classification",
                "step4_merge"
            ]
        );
        for ph in &m.phases {
            assert!(ph.work >= 0.0 && ph.span >= 0.0);
        }
    }
}
