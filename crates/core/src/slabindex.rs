//! The slab index — output-sensitive contour binning for Algorithm 2.
//!
//! The naive partition phase hands **every** slab worker the full inputs
//! and lets `band_clip` skip non-overlapping contours, so partitioning costs
//! O(n·p) bbox tests plus p full scans. This module replaces that with one
//! shared pass: every contour is binned into the *contiguous* range of slabs
//! its y-extent overlaps (two binary searches of `bbox.ymin/ymax` against
//! the sorted slab boundaries), and the per-slab buckets are laid out with
//! the paper's count → prefix-sum → fill pattern
//! ([`polyclip_parprim::scatter_offsets`] / [`polyclip_parprim::par_count_then_fill`]),
//! so the pass itself is parallel and allocation-tight. Each worker then
//! touches only its own bucket: O(n + Σ overlaps) total partition work.
//!
//! Each entry also records whether the contour lies **fully inside** its
//! slab — those contours are handed to the engine by reference, with no
//! clipping and no deep clone; only boundary-crossing contours go through
//! the Sutherland–Hodgman band clip.

use polyclip_geom::{Contour, PolygonSet};
use polyclip_parprim::{par_count_then_fill, par_inclusive_scan, par_merge_sort, scatter_offsets};
use rayon::prelude::*;

/// One (slab, contour) incidence. `contour` is the global contour id:
/// subject contours first (in input order), then clip contours.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabEntry {
    /// Slab this entry belongs to.
    pub slab: u32,
    /// Global contour id (subject contours, then clip contours).
    pub contour: u32,
    /// The contour's y-extent lies fully inside the slab's closed band:
    /// pass it by reference, no clipping needed.
    pub inside: bool,
}

/// Contiguous slab span of one contour, with its cached y-extent.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Span {
    lo: u32,
    hi: u32, // inclusive; lo > hi encodes "overlaps nothing"
    ymin: f64,
    ymax: f64,
}

impl Span {
    pub(crate) const NONE: Span = Span {
        lo: 1,
        hi: 0,
        ymin: 0.0,
        ymax: 0.0,
    };

    /// The slab span of a contour with vertical extent `[ymin, ymax]`
    /// against strictly increasing slab `boundaries`. Slab s overlaps iff
    /// `boundaries[s] <= ymax && boundaries[s+1] >= ymin` (the closed-band
    /// semantics of `band_clip` / [`polyclip_geom::BBox::y_overlaps`]);
    /// both conditions are half-open ranges of s, so the overlapping slabs
    /// form one contiguous run found by two binary searches.
    pub(crate) fn of_extent(ymin: f64, ymax: f64, boundaries: &[f64]) -> Span {
        let slabs = boundaries.len() - 1;
        if ymin > ymax {
            return Span::NONE;
        }
        let hi_count = boundaries[..slabs].partition_point(|&b| b <= ymax);
        let lo = boundaries[1..=slabs].partition_point(|&b| b < ymin);
        if hi_count == 0 || lo >= slabs || lo > hi_count - 1 {
            return Span::NONE;
        }
        Span {
            lo: lo as u32,
            hi: (hi_count - 1) as u32,
            ymin,
            ymax,
        }
    }

    /// The inclusive slab range `(lo, hi)` this span covers, or `None` if
    /// the contour overlaps no slab.
    #[inline]
    pub(crate) fn range(&self) -> Option<(usize, usize)> {
        if self.lo > self.hi {
            None
        } else {
            Some((self.lo as usize, self.hi as usize))
        }
    }

    #[inline]
    fn len(&self) -> usize {
        if self.lo > self.hi {
            0
        } else {
            (self.hi - self.lo + 1) as usize
        }
    }
}

/// CSR-layout bucketing of both inputs' contours into slabs, borrowing the
/// inputs it indexes. Built once per Algorithm-2 run and shared (immutably)
/// by all slab workers.
#[derive(Debug)]
pub struct SlabIndex<'a> {
    subject: &'a PolygonSet,
    clip: &'a PolygonSet,
    /// Entries sorted by (slab, contour): each slab's bucket lists its
    /// overlapping contours in global contour order, which reproduces the
    /// subject-then-clip input order bit-for-bit.
    entries: Vec<SlabEntry>,
    /// `bucket_start[s] .. bucket_start[s + 1]` delimits slab `s`'s bucket.
    bucket_start: Vec<usize>,
    n_subject: usize,
}

impl<'a> SlabIndex<'a> {
    /// Bin every contour of both inputs into the slabs its y-extent
    /// overlaps. `boundaries` are the sorted slab boundaries from
    /// [`crate::algo2::slab_boundaries`] (`boundaries.len() - 1` slabs).
    ///
    /// Overlap uses the same closed-band semantics as `band_clip`
    /// ([`polyclip_geom::BBox::y_overlaps`]): a contour touching a boundary
    /// lands in both adjacent slabs, exactly like the full-scan path.
    pub fn build(subject: &'a PolygonSet, clip: &'a PolygonSet, boundaries: &[f64]) -> Self {
        let n_subject = subject.contours().len();
        let n = n_subject + clip.contours().len();
        if boundaries.len() < 2 || n == 0 {
            return Self::from_spans(subject, clip, Vec::new(), boundaries);
        }

        let contour_at = |i: usize| -> &Contour {
            if i < n_subject {
                &subject.contours()[i]
            } else {
                &clip.contours()[i - n_subject]
            }
        };

        // Pass 1 (parallel): per-contour slab span by binary search of the
        // contour's y-extent against the sorted boundaries
        // ([`Span::of_extent`]). The prepared-layer path skips this pass by
        // feeding [`Self::from_spans`] cached extents instead.
        let spans: Vec<Span> = (0..n)
            .into_par_iter()
            .map(|i| {
                let bb = contour_at(i).bbox();
                if bb.is_empty() {
                    return Span::NONE;
                }
                Span::of_extent(bb.ymin, bb.ymax, boundaries)
            })
            .collect();
        Self::from_spans(subject, clip, spans, boundaries)
    }

    /// Assemble the CSR bucketing from precomputed per-contour slab spans
    /// (subject contours first, then clip contours, in input order) — the
    /// shared tail of [`Self::build`] and the prepared-layer clip path,
    /// which derives subject spans from extents frozen at build time.
    pub(crate) fn from_spans(
        subject: &'a PolygonSet,
        clip: &'a PolygonSet,
        spans: Vec<Span>,
        boundaries: &[f64],
    ) -> Self {
        let slabs = boundaries.len().saturating_sub(1);
        let n_subject = subject.contours().len();
        let n = n_subject + clip.contours().len();
        if slabs == 0 || n == 0 || spans.is_empty() {
            return SlabIndex {
                subject,
                clip,
                entries: Vec::new(),
                bucket_start: vec![0; slabs + 1],
                n_subject,
            };
        }
        debug_assert_eq!(spans.len(), n);

        // Pass 2 (parallel): emit one entry per (slab, contour) incidence
        // into an exactly-sized array via count → prefix-sum → fill, then
        // establish the per-slab CSR layout with a parallel merge sort on
        // the total (slab, contour) key — deterministic for any thread
        // count, and contour order inside a bucket matches input order.
        let mut entries: Vec<SlabEntry> = par_count_then_fill(
            n,
            |i| spans[i].len(),
            |i, dst| {
                let sp = &spans[i];
                for (k, s) in (sp.lo..=sp.hi).enumerate() {
                    let (blo, bhi) = (boundaries[s as usize], boundaries[s as usize + 1]);
                    dst[k] = SlabEntry {
                        slab: s,
                        contour: i as u32,
                        inside: sp.ymin >= blo && sp.ymax <= bhi,
                    };
                }
            },
        );
        par_merge_sort(&mut entries, |a, b| {
            (a.slab, a.contour).cmp(&(b.slab, b.contour))
        });

        // Bucket offsets: per-slab counts from the span difference array,
        // prefix-summed (the paper's output-sensitive allocation step).
        let mut diff = vec![0i64; slabs + 1];
        for sp in &spans {
            if sp.lo <= sp.hi {
                diff[sp.lo as usize] += 1;
                diff[sp.hi as usize + 1] -= 1;
            }
        }
        let counts: Vec<usize> = par_inclusive_scan(&diff[..slabs], |a, b| a + b)
            .into_iter()
            .map(|c| c as usize)
            .collect();
        let (mut bucket_start, total) = scatter_offsets(&counts);
        bucket_start.push(total);
        debug_assert_eq!(total, entries.len());

        SlabIndex {
            subject,
            clip,
            entries,
            bucket_start,
            n_subject,
        }
    }

    /// Number of slabs indexed.
    pub fn n_slabs(&self) -> usize {
        self.bucket_start.len() - 1
    }

    /// Total number of (slab, contour) incidences — the Σ overlaps term of
    /// the partition cost.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no contour overlaps any slab.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The contours overlapping slab `s`, in global contour order.
    pub fn slab(&self, s: usize) -> &[SlabEntry] {
        &self.entries[self.bucket_start[s]..self.bucket_start[s + 1]]
    }

    /// Whether a global contour id refers to the subject input.
    pub fn is_subject(&self, contour: u32) -> bool {
        (contour as usize) < self.n_subject
    }

    /// Resolve a global contour id back to the borrowed input contour.
    pub fn contour(&self, id: u32) -> &'a Contour {
        let i = id as usize;
        if i < self.n_subject {
            &self.subject.contours()[i]
        } else {
            &self.clip.contours()[i - self.n_subject]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::slab_boundaries;
    use polyclip_geom::contour::rect;
    use polyclip_geom::OrdF64;

    fn boundaries_of(sets: &[&PolygonSet], n_slabs: usize) -> Vec<f64> {
        let mut ys: Vec<OrdF64> = sets
            .iter()
            .flat_map(|p| p.contours())
            .flat_map(|c| c.points().iter().map(|p| OrdF64::new(p.y)))
            .collect();
        ys.sort_unstable();
        ys.dedup();
        slab_boundaries(&ys, n_slabs)
    }

    /// Oracle: the contours band_clip would touch for this slab.
    fn naive_slab(subject: &PolygonSet, clip: &PolygonSet, lo: f64, hi: f64) -> Vec<(u32, bool)> {
        subject
            .contours()
            .iter()
            .chain(clip.contours())
            .enumerate()
            .filter(|(_, c)| c.bbox().y_overlaps(lo, hi))
            .map(|(i, c)| (i as u32, c.bbox().inside_band(lo, hi)))
            .collect()
    }

    fn xorshift(mut s: u64) -> impl FnMut() -> u64 {
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn matches_naive_scan_on_random_contours() {
        let mut rng = xorshift(0xc0ffee);
        for trial in 0..20 {
            let mut make = |k: usize| {
                let contours = (0..k)
                    .map(|_| {
                        let x0 = (rng() % 100) as f64 * 0.1;
                        let y0 = (rng() % 100) as f64 * 0.1;
                        let w = 0.1 + (rng() % 30) as f64 * 0.1;
                        let h = 0.1 + (rng() % 60) as f64 * 0.1;
                        rect(x0, y0, x0 + w, y0 + h)
                    })
                    .collect();
                PolygonSet::from_contours(contours)
            };
            let a = make(1 + (trial % 5));
            let b = make(1 + (trial % 7));
            for n_slabs in [1usize, 2, 4, 8] {
                let boundaries = boundaries_of(&[&a, &b], n_slabs);
                if boundaries.len() < 2 {
                    continue;
                }
                let ix = SlabIndex::build(&a, &b, &boundaries);
                assert_eq!(ix.n_slabs(), boundaries.len() - 1);
                for s in 0..ix.n_slabs() {
                    let got: Vec<(u32, bool)> =
                        ix.slab(s).iter().map(|e| (e.contour, e.inside)).collect();
                    let want = naive_slab(&a, &b, boundaries[s], boundaries[s + 1]);
                    assert_eq!(got, want, "trial {trial} slabs {n_slabs} slab {s}");
                }
            }
        }
    }

    #[test]
    fn boundary_touching_contour_lands_in_both_slabs() {
        let a = PolygonSet::from_contour(rect(0.0, 0.0, 1.0, 4.0));
        let b = PolygonSet::from_contour(rect(0.0, 2.0, 1.0, 3.0)); // ymin on seam
        let boundaries = [0.0, 2.0, 4.0];
        let ix = SlabIndex::build(&a, &b, &boundaries);
        // b touches y=2: present in slab 0 (closed band) and slab 1.
        assert!(ix.slab(0).iter().any(|e| e.contour == 1));
        assert!(ix.slab(1).iter().any(|e| e.contour == 1));
        // a crosses the seam: in both, inside neither.
        for s in 0..2 {
            let e = ix.slab(s).iter().find(|e| e.contour == 0).unwrap();
            assert!(!e.inside);
        }
        // b is fully inside slab 1 ([2,4]) but only touches slab 0.
        assert!(ix.slab(1).iter().find(|e| e.contour == 1).unwrap().inside);
        assert!(!ix.slab(0).iter().find(|e| e.contour == 1).unwrap().inside);
        assert!(ix.is_subject(0));
        assert!(!ix.is_subject(1));
        assert_eq!(ix.len(), 4);
    }

    #[test]
    fn empty_inputs_and_no_boundaries_are_safe() {
        let e = PolygonSet::new();
        let ix = SlabIndex::build(&e, &e, &[]);
        assert_eq!(ix.n_slabs(), 0);
        assert!(ix.is_empty());
        let a = PolygonSet::from_contour(rect(0.0, 0.0, 1.0, 1.0));
        let ix = SlabIndex::build(&a, &e, &[0.0, 1.0]);
        assert_eq!(ix.n_slabs(), 1);
        assert_eq!(ix.slab(0).len(), 1);
        assert!(ix.slab(0)[0].inside);
    }
}
