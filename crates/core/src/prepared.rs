//! Compile-once, clip-many prepared geometry for cross-request reuse.
//!
//! Every Algorithm-2 call re-derives the same subject-side state from raw
//! contours: sanitization, the sorted event schedule, per-contour bounding
//! extents, the contour→slab binning. When one base layer (a country map, a
//! zoning layer) is clipped millions of times against small queries — the
//! service workload `polyclip-serve` targets — all of that work is
//! redundant after the first call. [`PreparedLayer`] freezes it once,
//! behind an `Arc`, and [`clip_prepared`] performs only the query-side
//! work per call:
//!
//! * **frozen at build** (immutable, shared): the sanitized subject
//!   contours and their repair record, the sorted deduplicated subject
//!   event schedule, per-contour y-extents (the input to slab binning),
//!   and the subject bounding box;
//! * **per call** (query-sized): query sanitization, the query's event
//!   y's merged into the frozen schedule by order-statistic selection
//!   (no re-sort of the subject side), slab-span binning of both sides
//!   from cached extents ([`SlabIndex::from_spans`] — the pass that
//!   re-reads every subject vertex on the cold path is skipped), band
//!   clipping, the per-slab scanbeam runs, and the merge;
//! * **pooled across calls**: [`SweepScratch`] arenas — the beam-schedule
//!   / sub-edge / segment-tree skeletons a worker allocates are returned
//!   to the layer's pool and checked out by the next clip, so the
//!   steady-state request allocates almost nothing. Checkout re-baselines
//!   the arena's high-water mark, keeping
//!   [`PhaseTimes::arena_hwm_bytes`](crate::algo2::PhaseTimes) a
//!   *per-call* peak.
//!
//! Because the slab boundaries the cold path derives from the *combined*
//! event schedule are reproduced here exactly (the merged quantiles are
//! computed by two-array selection over the frozen and query schedules),
//! every slab worker sees bit-identical inputs, and the output is
//! bit-identical to the cold [`try_clip_pair_slabs_backend`] — asserted by
//! the `prepared` proptest and by `bench_prepared` before any timing is
//! recorded.
//!
//! The one divergence is *work*, not output: a slab whose bucket provably
//! cannot contribute — an intersection with no query contours in the slab,
//! or an empty bucket — is recorded as completed without running the
//! engine. Its partial output is empty either way; the cold path spends
//! engine time discovering that, the prepared path does not. Stats
//! counters (`n_edges`, `k_intersections`, …) therefore reflect the
//! reduced work.
//!
//! ```
//! use polyclip_core::prepared::{clip_prepared, PreparedLayer};
//! use polyclip_core::{BoolOp, ClipOptions};
//! use polyclip_geom::PolygonSet;
//!
//! let base = PolygonSet::from_xy(&[(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)]);
//! let layer = PreparedLayer::build(&base, &ClipOptions::default()).unwrap();
//! for i in 0..4 {
//!     let q = PolygonSet::from_xy(&[
//!         (i as f64, 1.0), (i as f64 + 1.0, 1.0),
//!         (i as f64 + 1.0, 2.0), (i as f64, 2.0),
//!     ]);
//!     let r = clip_prepared(&layer, &q, BoolOp::Intersection, 4, &ClipOptions::default());
//!     assert_eq!(r.output.len(), 1);
//!     assert!(r.times.prepared_reused);
//! }
//! ```

use crate::algo2::{
    drive_single_slab, drive_slabs, Algo2Result, MergeStrategy, PartitionBackend, SlabDrive,
};
use crate::budget;
use crate::classify::BoolOp;
use crate::engine::ClipOptions;
use crate::resilience::{ClipError, Degradation, InputRole};
use crate::sanitize::{sanitize_set, SanitizeOptions};
use crate::slabindex::{SlabIndex, Span};
use polyclip_geom::{BBox, OrdF64, PolygonSet};
use polyclip_parprim::par_sort_dedup_gated;
use polyclip_sweep::SweepScratch;
use rayon::prelude::*;
use std::borrow::Cow;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default cap on arenas kept warm between clips; beyond this the pool
/// stops growing and surplus arenas are dropped on check-in (bounds
/// steady-state memory under a concurrency spike). Override per layer with
/// [`PreparedLayer::build_with_pool_limit`].
const MAX_POOLED_ARENAS: usize = 16;

/// An immutable, `Send + Sync` snapshot of everything about a subject layer
/// that does not depend on the query: build once (in parallel), share
/// behind an [`Arc`], clip concurrently with [`clip_prepared`] /
/// [`try_clip_prepared`]. See the module docs for the frozen / per-call
/// split.
#[derive(Debug)]
pub struct PreparedLayer {
    /// The subject as every clip will see it (sanitized iff the build
    /// options asked for it).
    subject: PolygonSet,
    /// The input-repair record from build-time sanitization, replayed into
    /// every clip's degradation report exactly as the cold path would
    /// produce it.
    repairs: usize,
    degradation: Option<Degradation>,
    /// Sorted, deduplicated event y's of the subject — the frozen half of
    /// the Step-1 schedule.
    ys: Vec<OrdF64>,
    /// Per-contour y-extent `(ymin, ymax)`, in contour order;
    /// `(INFINITY, NEG_INFINITY)` marks an empty bbox. The input to
    /// per-call slab binning.
    extents: Vec<(f64, f64)>,
    /// Bounding box of the whole subject.
    bbox: BBox,
    /// Wall clock the build consumed — reported on every clip as
    /// [`PhaseTimes::prepare_build`](crate::algo2::PhaseTimes) so callers
    /// can account amortization.
    build_time: Duration,
    /// Warm [`SweepScratch`] arenas shared by all clips on this layer.
    pool: Mutex<Vec<SweepScratch>>,
    /// Check-in cap for the pool: surplus arenas beyond this are dropped.
    /// A checkout against an empty pool always makes a fresh arena, so an
    /// undersized pool costs allocations, never progress.
    pool_limit: usize,
}

impl PreparedLayer {
    /// Freeze a subject layer: reject non-finite input, sanitize (honoring
    /// `opts.sanitize`), sort the event schedule and cache per-contour
    /// extents — all in parallel on the current rayon pool. The returned
    /// layer is immutable; clip it with [`clip_prepared`] using the *same*
    /// sanitize setting for bit-identity with the cold path.
    pub fn build(subject: &PolygonSet, opts: &ClipOptions) -> Result<Arc<Self>, ClipError> {
        Self::build_with_pool_limit(subject, opts, MAX_POOLED_ARENAS)
    }

    /// [`build`](Self::build) with an explicit scratch-pool check-in cap.
    /// `0` disables pooling entirely (every clip allocates fresh arenas);
    /// a cap below the expected concurrency still serves every request —
    /// checkouts against an empty pool fall back to fresh arenas — it just
    /// trades allocations for memory. The default cap is 16.
    pub fn build_with_pool_limit(
        subject: &PolygonSet,
        opts: &ClipOptions,
        pool_limit: usize,
    ) -> Result<Arc<Self>, ClipError> {
        let t0 = Instant::now();
        let gate = opts.budget.arm();
        budget::check(&gate)?;
        if let Some((contour, vertex)) = subject.first_non_finite() {
            return Err(ClipError::NonFiniteInput {
                role: InputRole::Subject,
                contour,
                vertex,
            });
        }

        let mut repairs = 0usize;
        let mut degradation = None;
        let subject = if opts.sanitize {
            let (s, rep) = sanitize_set(subject, &SanitizeOptions::repairs_only());
            if !rep.is_clean() {
                repairs = rep.total();
                degradation = Some(Degradation::InputRepaired {
                    role: InputRole::Subject,
                    repairs: rep,
                });
            }
            s.into_owned()
        } else {
            subject.clone()
        };

        let ys: Vec<OrdF64> = par_sort_dedup_gated(
            subject
                .contours()
                .iter()
                .flat_map(|c| c.points().iter().map(|p| OrdF64::new(p.y)))
                .collect(),
            Some(&gate),
        );
        budget::check(&gate)?;

        let extents: Vec<(f64, f64)> = subject
            .contours()
            .par_iter()
            .map(|c| {
                let bb = c.bbox();
                if bb.is_empty() {
                    (f64::INFINITY, f64::NEG_INFINITY)
                } else {
                    (bb.ymin, bb.ymax)
                }
            })
            .collect();
        let bbox = subject.bbox();

        Ok(Arc::new(PreparedLayer {
            subject,
            repairs,
            degradation,
            ys,
            extents,
            bbox,
            build_time: t0.elapsed(),
            pool: Mutex::new(Vec::new()),
            pool_limit,
        }))
    }

    /// The frozen subject, as every clip sees it.
    pub fn subject(&self) -> &PolygonSet {
        &self.subject
    }

    /// Distinct event scanlines in the frozen schedule.
    pub fn event_count(&self) -> usize {
        self.ys.len()
    }

    /// Input repairs the build-time sanitizer performed.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Bounding box of the frozen subject.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Wall clock the build consumed.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Arenas currently parked in the scratch pool (diagnostics).
    pub fn pooled_arenas(&self) -> usize {
        self.lock_pool().len()
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, Vec<SweepScratch>> {
        // The lock only guards a Vec push/pop; a thread that panicked while
        // holding it cannot have left the Vec inconsistent.
        self.pool.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Check a warm arena out of the pool (or make a fresh one), with its
    /// high-water mark re-baselined so the caller observes a per-call peak.
    fn checkout(&self) -> SweepScratch {
        let mut s = self.lock_pool().pop().unwrap_or_default();
        s.reset_high_water();
        s
    }

    /// Return an arena to the pool for the next clip.
    fn checkin(&self, s: SweepScratch) {
        let mut pool = self.lock_pool();
        if pool.len() < self.pool_limit {
            pool.push(s);
        }
    }
}

/// The `k`-th smallest element (0-based) of the union of two individually
/// sorted, strictly increasing, mutually disjoint arrays — O(log) binary
/// search for the partition point, no merged array materialized. This is
/// how the prepared path reads quantiles of the combined event schedule
/// without re-sorting the frozen side.
fn select_merged(a: &[OrdF64], b: &[OrdF64], k: usize) -> f64 {
    debug_assert!(k < a.len() + b.len());
    // Find the number of elements taken from `a` among the k smallest: the
    // unique i in [max(0, k - |b|), min(k, |a|)] with a[i-1] < b[k-i] and
    // b[k-i-1] < a[i] (guards at the ends). Disjointness makes every
    // comparison strict, so the partition is unique.
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        if j > 0 && i < a.len() && a[i] < b[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let (i, j) = (lo, k - lo);
    match (a.get(i), b.get(j)) {
        (Some(x), Some(y)) => x.get().min(y.get()),
        (Some(x), None) => x.get(),
        (None, Some(y)) => y.get(),
        (None, None) => unreachable!("k < |a| + |b|"),
    }
}

/// [`crate::algo2::slab_boundaries`] over the *virtual* merge of the frozen
/// subject schedule `a` and the query-only schedule `b` (sorted, disjoint
/// from `a`): same first/last elements, same interior quantile indices,
/// same duplicate-collapse rule — bit-identical boundaries to the cold
/// path's, computed in O(p log(|a| + |b|)).
fn merged_boundaries(a: &[OrdF64], b: &[OrdF64], n_slabs: usize) -> Vec<f64> {
    let m = a.len() + b.len();
    if m == 0 {
        return Vec::new();
    }
    let mut out: Vec<f64> = Vec::with_capacity(n_slabs + 1);
    let mut prev = select_merged(a, b, 0);
    out.push(prev);
    for i in 1..n_slabs {
        let y = select_merged(a, b, i * (m - 1) / n_slabs);
        if y > prev {
            out.push(y);
            prev = y;
        }
    }
    let last = select_merged(a, b, m - 1);
    if last > prev {
        out.push(last);
    }
    out
}

/// Clip a query polygon against a prepared layer — the lenient wrapper
/// over [`try_clip_prepared`]: errors yield an empty result.
pub fn clip_prepared(
    layer: &PreparedLayer,
    query: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Algo2Result {
    try_clip_prepared(layer, query, op, n_slabs, opts).unwrap_or_default()
}

/// Fallible prepared clip on the default merge strategy and partition
/// backend. Bit-identical in output to
/// [`try_clip_pair_slabs_backend`](crate::algo2::try_clip_pair_slabs_backend)
/// called with `(layer.subject(), query)` under the same options.
pub fn try_clip_prepared(
    layer: &PreparedLayer,
    query: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Result<Algo2Result, ClipError> {
    try_clip_prepared_backend(
        layer,
        query,
        op,
        n_slabs,
        opts,
        MergeStrategy::Sequential,
        PartitionBackend::default(),
    )
}

/// The fully-explicit prepared clip: merge strategy and partition backend.
///
/// Performs only query-side work (see the module docs), then hands the
/// fan-out to the same slab driver as the cold path, with two provenance
/// marks in the result: [`PhaseTimes::prepared_reused`] is true and
/// [`PhaseTimes::prepare_build`] carries the layer's one-time build cost
/// (both under [`crate::algo2::PhaseTimes`]).
pub fn try_clip_prepared_backend(
    layer: &PreparedLayer,
    query: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
    merge_strategy: MergeStrategy,
    backend: PartitionBackend,
) -> Result<Algo2Result, ClipError> {
    let t_start = Instant::now();
    // Same arming discipline as the cold path: the budget becomes absolute
    // here, per-call — concurrent clips on one layer each get their own
    // gate, meter and cancel scope.
    let gate = opts.budget.arm();
    let recovery_gate = opts.budget.cancel_only().arm();
    budget::check(&gate)?;
    if let Some((contour, vertex)) = query.first_non_finite() {
        return Err(ClipError::NonFiniteInput {
            role: InputRole::Clip,
            contour,
            vertex,
        });
    }

    // Query-side sanitization only; the subject's repairs were performed at
    // build time and their record is replayed here, in the same
    // subject-then-clip order the cold path reports.
    let t_san = Instant::now();
    let mut pre_degradations: Vec<Degradation> = Vec::new();
    let mut pre_repairs = 0usize;
    if opts.sanitize {
        pre_repairs += layer.repairs;
        if let Some(d) = &layer.degradation {
            pre_degradations.push(d.clone());
        }
    }
    let query_gate = if opts.sanitize {
        let (q, rep) = sanitize_set(query, &SanitizeOptions::repairs_only());
        if !rep.is_clean() {
            pre_repairs += rep.total();
            pre_degradations.push(Degradation::InputRepaired {
                role: InputRole::Clip,
                repairs: rep,
            });
        }
        q
    } else {
        Cow::Borrowed(query)
    };
    let query = &*query_gate;
    let t_sanitize = t_san.elapsed();

    let seq = ClipOptions {
        parallel: false,
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };

    // Step 1, query side only: the query's event y's that are not already
    // on the frozen schedule. The combined schedule is then read by
    // order-statistic selection — the frozen side is never re-sorted.
    let mut extra: Vec<OrdF64> = query
        .contours()
        .iter()
        .flat_map(|c| c.points().iter().map(|p| OrdF64::new(p.y)))
        .collect();
    extra.sort_unstable();
    extra.dedup();
    extra.retain(|y| layer.ys.binary_search(y).is_err());
    budget::check(&gate)?;

    let merged_len = layer.ys.len() + extra.len();
    let drive = SlabDrive {
        subject: &layer.subject,
        clip_p: query,
        op,
        opts,
        seq: &seq,
        gate: &gate,
        recovery_gate: &recovery_gate,
        pre_repairs,
        pre_degradations,
        t_start,
        t_sanitize,
        prepare_build: layer.build_time,
        prepared_reused: true,
    };

    if merged_len < 2 || n_slabs <= 1 {
        let mut scratch = layer.checkout();
        let r = drive_single_slab(drive, &mut scratch);
        layer.checkin(scratch);
        return r;
    }

    let boundaries = merged_boundaries(&layer.ys, &extra, n_slabs);
    let slabs = boundaries.len() - 1;

    // Slab spans for both sides without touching a single subject vertex:
    // the subject from its frozen extents, the query from fresh bboxes.
    let t_ix = Instant::now();
    let n_query = query.contours().len();
    let mut spans: Vec<Span> = Vec::with_capacity(layer.extents.len() + n_query);
    for &(ymin, ymax) in &layer.extents {
        spans.push(Span::of_extent(ymin, ymax, &boundaries));
    }
    for c in query.contours() {
        let bb = c.bbox();
        spans.push(if bb.is_empty() {
            Span::NONE
        } else {
            Span::of_extent(bb.ymin, bb.ymax, &boundaries)
        });
    }

    // Query-side pruning: count subject and query contours per slab (by
    // difference arrays over the spans) and mark the slabs whose partial
    // output is provably empty. An intersection needs both sides present;
    // any op needs at least one. Skipped slabs are completed without
    // running the engine — same output, less work (see module docs).
    let mut subject_diff = vec![0i64; slabs + 1];
    let mut query_diff = vec![0i64; slabs + 1];
    for (i, sp) in spans.iter().enumerate() {
        if let Some((lo, hi)) = sp.range() {
            let diff = if i < layer.extents.len() {
                &mut subject_diff
            } else {
                &mut query_diff
            };
            diff[lo] += 1;
            diff[hi + 1] -= 1;
        }
    }
    let mut skip = vec![false; slabs];
    let (mut s_run, mut q_run) = (0i64, 0i64);
    for (s, flag) in skip.iter_mut().enumerate() {
        s_run += subject_diff[s];
        q_run += query_diff[s];
        *flag = match op {
            BoolOp::Intersection => s_run == 0 || q_run == 0,
            _ => s_run == 0 && q_run == 0,
        };
    }

    let index = match backend {
        PartitionBackend::SlabIndex => Some(SlabIndex::from_spans(
            &layer.subject,
            query,
            spans,
            &boundaries,
        )),
        PartitionBackend::FullScan => None,
    };
    let t_index = t_ix.elapsed();

    drive_slabs(
        drive,
        &boundaries,
        index.as_ref(),
        Some(&skip),
        t_index,
        merge_strategy,
        || layer.checkout(),
        |s| layer.checkin(s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo2::{slab_boundaries, try_clip_pair_slabs_backend};
    use crate::engine::eo_area;
    use polyclip_geom::contour::rect;

    fn seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    #[test]
    fn layer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedLayer>();
        assert_send_sync::<Arc<PreparedLayer>>();
    }

    #[test]
    fn select_merged_matches_materialized_merge() {
        let a: Vec<OrdF64> = [0.0, 1.5, 2.0, 7.0, 9.0]
            .iter()
            .map(|&y| OrdF64::new(y))
            .collect();
        let b: Vec<OrdF64> = [-1.0, 0.5, 3.0, 8.0, 10.0, 11.0]
            .iter()
            .map(|&y| OrdF64::new(y))
            .collect();
        let mut merged: Vec<OrdF64> = a.iter().chain(&b).copied().collect();
        merged.sort_unstable();
        for (k, want) in merged.iter().enumerate() {
            assert_eq!(select_merged(&a, &b, k), want.get(), "k = {k}");
        }
        // One side empty, both directions.
        for k in 0..a.len() {
            assert_eq!(select_merged(&a, &[], k), a[k].get());
            assert_eq!(select_merged(&[], &a, k), a[k].get());
        }
    }

    #[test]
    fn merged_boundaries_match_slab_boundaries_of_the_union() {
        let a: Vec<OrdF64> = (0..40).map(|i| OrdF64::new(i as f64 * 0.7)).collect();
        let b: Vec<OrdF64> = (0..17)
            .map(|i| OrdF64::new(i as f64 * 1.31 + 0.05))
            .collect();
        let mut merged: Vec<OrdF64> = a.iter().chain(&b).copied().collect();
        merged.sort_unstable();
        merged.dedup();
        for p in [1usize, 2, 3, 4, 8, 64] {
            assert_eq!(
                merged_boundaries(&a, &b, p),
                slab_boundaries(&merged, p),
                "p = {p}"
            );
        }
    }

    #[test]
    fn prepared_matches_cold_on_offset_squares() {
        let a = sq(0.0, 0.0, 4.0, 12.0);
        let layer = PreparedLayer::build(&a, &seq()).unwrap();
        let b = sq(1.0, 1.0, 5.0, 11.0);
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            for p in [1usize, 2, 4, 8] {
                let cold = try_clip_pair_slabs_backend(
                    &a,
                    &b,
                    op,
                    p,
                    &seq(),
                    MergeStrategy::Sequential,
                    PartitionBackend::SlabIndex,
                )
                .unwrap();
                let warm = try_clip_prepared(&layer, &b, op, p, &seq()).unwrap();
                assert_eq!(cold.output, warm.output, "op {op:?} p {p}");
                assert_eq!(cold.slabs, warm.slabs, "op {op:?} p {p}");
                assert!(warm.times.prepared_reused);
                assert!(!cold.times.prepared_reused);
            }
        }
    }

    #[test]
    fn intersection_skips_query_free_slabs() {
        // Subject spans y ∈ [0, 16]; a tiny query in the bottom corner. At
        // p = 8 most slabs hold no query contour and must be skipped: their
        // clip time is exactly zero and the result is still exact.
        let mut contours = Vec::new();
        for i in 0..16 {
            contours.push(rect(0.0, i as f64, 4.0, i as f64 + 0.9));
        }
        let a = PolygonSet::from_contours(contours);
        let layer = PreparedLayer::build(&a, &seq()).unwrap();
        let q = sq(0.5, 0.1, 1.5, 0.8);
        let warm = try_clip_prepared(&layer, &q, BoolOp::Intersection, 8, &seq()).unwrap();
        let cold = try_clip_pair_slabs_backend(
            &a,
            &q,
            BoolOp::Intersection,
            8,
            &seq(),
            MergeStrategy::Sequential,
            PartitionBackend::SlabIndex,
        )
        .unwrap();
        assert_eq!(warm.output, cold.output);
        assert!((eo_area(&warm.output) - 0.7).abs() < 1e-9);
        let skipped = warm
            .times
            .per_slab_clip
            .iter()
            .filter(|d| **d == Duration::ZERO)
            .count();
        assert!(
            skipped >= warm.slabs / 2,
            "skipped {skipped}/{}",
            warm.slabs
        );
        // All slabs count as completed; none were lost.
        assert_eq!(warm.stats.completed_slabs, warm.slabs);
    }

    #[test]
    fn build_records_sanitizer_repairs_and_replays_them() {
        use polyclip_geom::{Contour, Point};
        // Duplicate vertex: the sanitizer repairs it at build time, and
        // every prepared clip replays the same degradation the cold path
        // reports.
        let dirty = PolygonSet::from_contours(vec![Contour::from_raw(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])]);
        let opts = ClipOptions::default();
        let layer = PreparedLayer::build(&dirty, &opts).unwrap();
        assert!(layer.repairs() > 0);
        let q = sq(1.0, 1.0, 3.0, 3.0);
        let warm = try_clip_prepared(&layer, &q, BoolOp::Intersection, 4, &opts).unwrap();
        let cold = try_clip_pair_slabs_backend(
            &dirty,
            &q,
            BoolOp::Intersection,
            4,
            &opts,
            MergeStrategy::Sequential,
            PartitionBackend::SlabIndex,
        )
        .unwrap();
        assert_eq!(warm.output, cold.output);
        assert_eq!(warm.degradations, cold.degradations);
        assert_eq!(warm.stats.input_repairs, cold.stats.input_repairs);
    }

    #[test]
    fn build_rejects_non_finite_subject() {
        let bad = PolygonSet::from_xy(&[(0.0, 0.0), (f64::NAN, 1.0), (1.0, 1.0)]);
        assert!(matches!(
            PreparedLayer::build(&bad, &seq()),
            Err(ClipError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn clip_rejects_non_finite_query() {
        let layer = PreparedLayer::build(&sq(0.0, 0.0, 1.0, 1.0), &seq()).unwrap();
        let bad = PolygonSet::from_xy(&[(0.0, 0.0), (f64::INFINITY, 1.0), (1.0, 1.0)]);
        assert!(matches!(
            try_clip_prepared(&layer, &bad, BoolOp::Union, 4, &seq()),
            Err(ClipError::NonFiniteInput {
                role: InputRole::Clip,
                ..
            })
        ));
    }

    #[test]
    fn scratch_pool_is_reused_across_clips() {
        let layer = PreparedLayer::build(&sq(0.0, 0.0, 4.0, 12.0), &seq()).unwrap();
        assert_eq!(layer.pooled_arenas(), 0);
        let q = sq(1.0, 1.0, 3.0, 11.0);
        clip_prepared(&layer, &q, BoolOp::Intersection, 4, &seq());
        let after_first = layer.pooled_arenas();
        assert!(after_first >= 1);
        // The second clip checks arenas back out and returns them.
        let r = clip_prepared(&layer, &q, BoolOp::Intersection, 4, &seq());
        assert!(layer.pooled_arenas() >= 1);
        assert!(
            r.times.arena_reused_bytes > 0,
            "arena capacity must be replayed"
        );
    }

    #[test]
    fn empty_query_yields_empty_intersection_and_full_union() {
        let a = sq(0.0, 0.0, 4.0, 12.0);
        let layer = PreparedLayer::build(&a, &seq()).unwrap();
        let empty = PolygonSet::new();
        let i = clip_prepared(&layer, &empty, BoolOp::Intersection, 4, &seq());
        assert!(i.output.is_empty());
        let u = clip_prepared(&layer, &empty, BoolOp::Union, 4, &seq());
        assert!((eo_area(&u.output) - 48.0).abs() < 1e-9);
        // Cold twin agrees bit-for-bit.
        let cold_u = try_clip_pair_slabs_backend(
            &a,
            &empty,
            BoolOp::Union,
            4,
            &seq(),
            MergeStrategy::Sequential,
            PartitionBackend::SlabIndex,
        )
        .unwrap();
        assert_eq!(u.output, cold_u.output);
    }

    #[test]
    fn full_scan_backend_matches_indexed_backend_prepared() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.3), (5.0, 9.7), (0.5, 10.0)]);
        let layer = PreparedLayer::build(&a, &seq()).unwrap();
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 4.0), (3.0, 11.0), (1.0, 5.0)]);
        for op in [BoolOp::Intersection, BoolOp::Union, BoolOp::Xor] {
            for p in [2usize, 4, 8] {
                let full = try_clip_prepared_backend(
                    &layer,
                    &b,
                    op,
                    p,
                    &seq(),
                    MergeStrategy::Sequential,
                    PartitionBackend::FullScan,
                )
                .unwrap();
                let ix = try_clip_prepared_backend(
                    &layer,
                    &b,
                    op,
                    p,
                    &seq(),
                    MergeStrategy::Sequential,
                    PartitionBackend::SlabIndex,
                )
                .unwrap();
                assert_eq!(full.output, ix.output, "op {op:?} p {p}");
            }
        }
    }
}
