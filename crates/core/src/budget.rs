//! Bounded execution: deadlines, cooperative cancellation, and work budgets.
//!
//! The paper's output-sensitive bound promises work proportional to the `k`
//! intersections actually present — but an adversarial (or merely ugly)
//! input can drive `k` toward `n²`, and a clipping service cannot let one
//! request pin every core until it finishes or OOMs. [`ExecBudget`], carried
//! by [`ClipOptions::budget`](crate::ClipOptions::budget), bounds a clip
//! four ways:
//!
//! * **deadline** — a wall-clock allowance, converted to an absolute
//!   [`Instant`] exactly once at the public API boundary (nested internal
//!   calls share the armed gate, so the clock can never be reset);
//! * **cancellation** — a cloneable [`CancelToken`] another thread can fire;
//!   the pipeline observes it at its next checkpoint;
//! * **work limits** — `max_intersections` / `max_output_vertices`, enforced
//!   against the lock-free [`WorkMeter`] *before* the corresponding `O(k)`
//!   allocation is made (count-then-report lets us refuse the report phase);
//! * **partial results** — with `allow_partial`, Algorithm 2 returns the
//!   union of the slabs that finished before the budget blew, marked by
//!   [`Degradation::PartialResult`](crate::Degradation::PartialResult) and
//!   by `completed_slabs < total_slabs` in [`ClipStats`](crate::ClipStats);
//!   strict mode rejects as usual.
//!
//! Checkpoints are deliberately coarse — per scanbeam, per merge block, per
//! segment-tree batch, per slab — so the unarmed/unlimited path stays within
//! noise (<1 % on the `gis_multi` benchmark; see `bench_algo2`'s
//! `budget_overhead` column). A blown budget surfaces as
//! [`ClipError::DeadlineExceeded`], [`ClipError::BudgetExceeded`], or
//! [`ClipError::Cancelled`]; no partially-built geometry ever escapes an
//! API boundary.
//!
//! Recovery paths (the output repair ladder, the slab retry→pristine ladder)
//! deliberately run *budget-exempt but still cancellable*: re-arming a
//! deadline for a retry would double the latency allowance, and a slab
//! whose watchdog deadline fired must be retried without it to make
//! progress. N-ary ops ([`union_all`](crate::union_all) etc.) arm the
//! budget per binary clip and additionally short-circuit their reduction
//! when the cancel token fires.

use crate::resilience::ClipError;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use polyclip_parprim::{CancelToken, Gate, MeterSnapshot, TripReason, WorkMeter};

/// Execution budget for one clipping operation. The default is unlimited:
/// no deadline, no work caps, a cancel token nobody fires — and in that
/// state the pipeline's output is bit-identical to a build without the
/// budget machinery (enforced by proptest).
#[derive(Clone, Debug, Default)]
pub struct ExecBudget {
    /// Wall-clock allowance for the whole operation. Converted to an
    /// absolute deadline when the public entry point arms the budget.
    pub deadline: Option<Duration>,
    /// Cap on intersection pairs discovered (the output-sensitive `k`,
    /// counted across refinement rounds and residual re-discoveries).
    pub max_intersections: Option<u64>,
    /// Cap on output fragments gathered before stitching (each contributes
    /// at most two output vertices).
    pub max_output_vertices: Option<u64>,
    /// Cooperative cancellation token; clone it and call
    /// [`CancelToken::cancel`] from any thread.
    pub cancel: CancelToken,
    /// Let Algorithm 2 return the union of completed slabs when the budget
    /// blows mid-run (marked [`Degradation::PartialResult`]
    /// (crate::Degradation::PartialResult), rejected by strict mode)
    /// instead of discarding all finished work. Cancellation always
    /// discards: the caller asked to stop, not to salvage.
    pub allow_partial: bool,
}

impl ExecBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        ExecBudget {
            deadline: Some(deadline),
            ..Default::default()
        }
    }

    /// True when no deadline or work cap is configured (the token may still
    /// be cancelled — that is always honoured).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_intersections.is_none()
            && self.max_output_vertices.is_none()
    }

    /// Convert the budget into an armed [`Gate`] with a fresh meter.
    /// Called exactly once per public entry point: the relative deadline
    /// becomes absolute *here*, so internal re-entries (slab workers,
    /// repair rungs) that receive the gate by reference can never reset
    /// the clock.
    pub(crate) fn arm(&self) -> Gate {
        Gate::new(
            self.cancel.clone(),
            self.deadline.map(|d| Instant::now() + d),
            self.max_intersections,
            self.max_output_vertices,
            Arc::new(WorkMeter::new()),
        )
    }

    /// The budget handed to recovery re-derivations (output repair ladder,
    /// slab retry→pristine ladder): keeps the cancel token — recovery must
    /// stay interruptible — but drops the deadline and work caps, which the
    /// failing attempt already consumed. Re-arming them would either double
    /// the allowance or make recovery impossible.
    pub(crate) fn cancel_only(&self) -> ExecBudget {
        ExecBudget {
            cancel: self.cancel.clone(),
            ..Default::default()
        }
    }
}

/// Map a gate trip to its typed error, capturing the meter for context.
pub(crate) fn trip_error(reason: TripReason, gate: &Gate) -> ClipError {
    match reason {
        TripReason::Cancelled => ClipError::Cancelled,
        TripReason::DeadlineExceeded => ClipError::DeadlineExceeded,
        TripReason::BudgetExceeded => ClipError::BudgetExceeded {
            work: gate.meter().snapshot(),
        },
    }
}

/// Run a full gate checkpoint, converting a trip into its typed error.
pub(crate) fn check(gate: &Gate) -> Result<(), ClipError> {
    match gate.checkpoint() {
        Some(reason) => Err(trip_error(reason, gate)),
        None => Ok(()),
    }
}

/// Is this error a deadline/work-budget trip (as opposed to cancellation or
/// a geometry error)? Budget trips are the only errors eligible for the
/// partial-result path and for the slab watchdog's retry.
pub(crate) fn is_budget_trip(e: &ClipError) -> bool {
    matches!(
        e,
        ClipError::DeadlineExceeded | ClipError::BudgetExceeded { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ExecBudget::default();
        assert!(b.is_unlimited());
        assert!(!b.cancel.is_cancelled());
        let gate = b.arm();
        assert_eq!(gate.checkpoint(), None);
    }

    #[test]
    fn arm_converts_duration_to_absolute_deadline() {
        let b = ExecBudget::with_deadline(Duration::ZERO);
        assert!(!b.is_unlimited());
        let gate = b.arm();
        assert_eq!(gate.checkpoint(), Some(TripReason::DeadlineExceeded));
        assert!(matches!(check(&gate), Err(ClipError::DeadlineExceeded)));
    }

    #[test]
    fn cancel_only_keeps_token_drops_limits() {
        let b = ExecBudget {
            deadline: Some(Duration::ZERO),
            max_intersections: Some(1),
            max_output_vertices: Some(1),
            allow_partial: true,
            ..Default::default()
        };
        let r = b.cancel_only();
        assert!(r.is_unlimited());
        assert!(!r.allow_partial);
        b.cancel.cancel();
        assert!(r.cancel.is_cancelled(), "token is shared");
    }

    #[test]
    fn budget_trip_classification() {
        assert!(is_budget_trip(&ClipError::DeadlineExceeded));
        assert!(is_budget_trip(&ClipError::BudgetExceeded {
            work: MeterSnapshot::default()
        }));
        assert!(!is_budget_trip(&ClipError::Cancelled));
    }
}
