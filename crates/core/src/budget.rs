//! Bounded execution: deadlines, cooperative cancellation, and work budgets.
//!
//! The paper's output-sensitive bound promises work proportional to the `k`
//! intersections actually present — but an adversarial (or merely ugly)
//! input can drive `k` toward `n²`, and a clipping service cannot let one
//! request pin every core until it finishes or OOMs. [`ExecBudget`], carried
//! by [`ClipOptions::budget`](crate::ClipOptions::budget), bounds a clip
//! four ways:
//!
//! * **deadline** — a wall-clock allowance, converted to an absolute
//!   [`Instant`] exactly once at the public API boundary (nested internal
//!   calls share the armed gate, so the clock can never be reset);
//! * **cancellation** — a cloneable [`CancelToken`] another thread can fire;
//!   the pipeline observes it at its next checkpoint;
//! * **work limits** — `max_intersections` / `max_output_vertices`, enforced
//!   against the lock-free [`WorkMeter`] *before* the corresponding `O(k)`
//!   allocation is made (count-then-report lets us refuse the report phase);
//! * **partial results** — with `allow_partial`, Algorithm 2 returns the
//!   union of the slabs that finished before the budget blew, marked by
//!   [`Degradation::PartialResult`](crate::Degradation::PartialResult) and
//!   by `completed_slabs < total_slabs` in [`ClipStats`](crate::ClipStats);
//!   strict mode rejects as usual.
//!
//! Checkpoints are deliberately coarse — per scanbeam, per merge block, per
//! segment-tree batch, per slab — so the unarmed/unlimited path stays within
//! noise (<1 % on the `gis_multi` benchmark; see `bench_algo2`'s
//! `budget_overhead` column). A blown budget surfaces as
//! [`ClipError::DeadlineExceeded`], [`ClipError::BudgetExceeded`], or
//! [`ClipError::Cancelled`]; no partially-built geometry ever escapes an
//! API boundary.
//!
//! Recovery paths (the output repair ladder, the slab retry→pristine ladder)
//! deliberately run *budget-exempt but still cancellable*: re-arming a
//! deadline for a retry would double the latency allowance, and a slab
//! whose watchdog deadline fired must be retried without it to make
//! progress. N-ary ops ([`union_all`](crate::union_all) etc.) arm the
//! budget per binary clip and additionally short-circuit their reduction
//! when the cancel token fires.

use crate::resilience::ClipError;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use polyclip_parprim::{CancelToken, Gate, MeterSnapshot, TripReason, WorkMeter};

/// Execution budget for one clipping operation. The default is unlimited:
/// no deadline, no work caps, a cancel token nobody fires — and in that
/// state the pipeline's output is bit-identical to a build without the
/// budget machinery (enforced by proptest).
#[derive(Clone, Debug, Default)]
pub struct ExecBudget {
    /// Wall-clock allowance for the whole operation. Converted to an
    /// absolute deadline when the public entry point arms the budget.
    pub deadline: Option<Duration>,
    /// Cap on intersection pairs discovered (the output-sensitive `k`,
    /// counted across refinement rounds and residual re-discoveries).
    pub max_intersections: Option<u64>,
    /// Cap on output fragments gathered before stitching (each contributes
    /// at most two output vertices).
    pub max_output_vertices: Option<u64>,
    /// Cooperative cancellation token; clone it and call
    /// [`CancelToken::cancel`] from any thread.
    pub cancel: CancelToken,
    /// Let Algorithm 2 return the union of completed slabs when the budget
    /// blows mid-run (marked [`Degradation::PartialResult`]
    /// (crate::Degradation::PartialResult), rejected by strict mode)
    /// instead of discarding all finished work. Cancellation always
    /// discards: the caller asked to stop, not to salvage.
    pub allow_partial: bool,
    /// The anchor instant the relative [`deadline`](Self::deadline) counts
    /// from. `None` (the default) means "arm at the public entry point" —
    /// the clip call converts the duration to an absolute deadline when it
    /// starts, exactly once. A service that admits a request into a queue
    /// should call [`arm_now`](Self::arm_now) at admission instead, so time
    /// spent queued counts against the deadline and a retry derived with
    /// [`tighten`](Self::tighten) can never outlive the original promise.
    pub armed_at: Option<Instant>,
}

impl ExecBudget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        ExecBudget {
            deadline: Some(deadline),
            ..Default::default()
        }
    }

    /// True when no deadline or work cap is configured (the token may still
    /// be cancelled — that is always honoured).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_intersections.is_none()
            && self.max_output_vertices.is_none()
    }

    /// Anchor the deadline clock at this instant (idempotent: the first
    /// call wins, matching the arm-once discipline of the clip entry
    /// points). Call this when a request is *admitted* rather than when it
    /// is *executed*, so queue wait burns the same allowance the caller was
    /// promised; [`remaining`](Self::remaining) and
    /// [`tighten`](Self::tighten) then measure against that promise.
    pub fn arm_now(&mut self) {
        if self.armed_at.is_none() {
            self.armed_at = Some(Instant::now());
        }
    }

    /// The absolute instant this budget's deadline expires, if it has both
    /// a deadline and an anchor ([`arm_now`](Self::arm_now) or a clip entry
    /// arming it).
    pub fn expires_at(&self) -> Option<Instant> {
        match (self.deadline, self.armed_at) {
            (Some(d), Some(t0)) => Some(t0 + d),
            _ => None,
        }
    }

    /// Wall-clock allowance still unspent: the full deadline when unarmed,
    /// the deadline minus time already elapsed since [`arm_now`]
    /// (Self::arm_now) once armed (saturating at zero), `None` when no
    /// deadline is configured.
    pub fn remaining(&self) -> Option<Duration> {
        let d = self.deadline?;
        Some(match self.armed_at {
            Some(t0) => (t0 + d).saturating_duration_since(Instant::now()),
            None => d,
        })
    }

    /// Derive the budget for a retry attempt: `frac` of the *remaining*
    /// allowance (not the original duration — the failed attempt already
    /// spent its share), anchored at the current instant so the invariant
    /// `retry.expires_at() <= original.expires_at()` holds however long the
    /// first attempt ran. Work caps are scaled by `frac` too (floored at 1
    /// so a retry can always do *some* work); the cancel token is shared —
    /// cancelling the request cancels its retry. `frac` is clamped to
    /// `(0, 1]`.
    pub fn tighten(&self, frac: f64) -> ExecBudget {
        let frac = if frac.is_finite() {
            frac.clamp(f64::EPSILON, 1.0)
        } else {
            1.0
        };
        let scale_cap = |c: Option<u64>| c.map(|c| ((c as f64 * frac) as u64).max(1));
        // One clock read for both the remaining-time measurement and the
        // new anchor, so `anchor + remaining * frac` can never land past
        // the original expiry even at frac = 1.
        let now = Instant::now();
        let remaining = self.deadline.map(|d| match self.armed_at {
            Some(t0) => (t0 + d).saturating_duration_since(now),
            None => d,
        });
        ExecBudget {
            deadline: remaining.map(|r| r.mul_f64(frac)),
            max_intersections: scale_cap(self.max_intersections),
            max_output_vertices: scale_cap(self.max_output_vertices),
            cancel: self.cancel.clone(),
            allow_partial: self.allow_partial,
            armed_at: Some(now),
        }
    }

    /// Convert the budget into an armed [`Gate`] with a fresh meter.
    /// Called exactly once per public entry point: the relative deadline
    /// becomes absolute *here* (anchored at [`armed_at`](Self::armed_at)
    /// when the caller pre-armed the budget at admission), so internal
    /// re-entries (slab workers, repair rungs) that receive the gate by
    /// reference can never reset the clock.
    pub(crate) fn arm(&self) -> Gate {
        Gate::new(
            self.cancel.clone(),
            self.deadline
                .map(|d| self.armed_at.unwrap_or_else(Instant::now) + d),
            self.max_intersections,
            self.max_output_vertices,
            Arc::new(WorkMeter::new()),
        )
    }

    /// The budget handed to recovery re-derivations (output repair ladder,
    /// slab retry→pristine ladder): keeps the cancel token — recovery must
    /// stay interruptible — but drops the deadline and work caps, which the
    /// failing attempt already consumed. Re-arming them would either double
    /// the allowance or make recovery impossible.
    pub(crate) fn cancel_only(&self) -> ExecBudget {
        ExecBudget {
            cancel: self.cancel.clone(),
            ..Default::default()
        }
    }
}

/// Map a gate trip to its typed error, capturing the meter for context.
pub(crate) fn trip_error(reason: TripReason, gate: &Gate) -> ClipError {
    match reason {
        TripReason::Cancelled => ClipError::Cancelled,
        TripReason::DeadlineExceeded => ClipError::DeadlineExceeded,
        TripReason::BudgetExceeded => ClipError::BudgetExceeded {
            work: gate.meter().snapshot(),
        },
    }
}

/// Run a full gate checkpoint, converting a trip into its typed error.
pub(crate) fn check(gate: &Gate) -> Result<(), ClipError> {
    match gate.checkpoint() {
        Some(reason) => Err(trip_error(reason, gate)),
        None => Ok(()),
    }
}

/// Is this error a deadline/work-budget trip (as opposed to cancellation or
/// a geometry error)? Budget trips are the only errors eligible for the
/// partial-result path and for the slab watchdog's retry.
pub(crate) fn is_budget_trip(e: &ClipError) -> bool {
    matches!(
        e,
        ClipError::DeadlineExceeded | ClipError::BudgetExceeded { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ExecBudget::default();
        assert!(b.is_unlimited());
        assert!(!b.cancel.is_cancelled());
        let gate = b.arm();
        assert_eq!(gate.checkpoint(), None);
    }

    #[test]
    fn arm_converts_duration_to_absolute_deadline() {
        let b = ExecBudget::with_deadline(Duration::ZERO);
        assert!(!b.is_unlimited());
        let gate = b.arm();
        assert_eq!(gate.checkpoint(), Some(TripReason::DeadlineExceeded));
        assert!(matches!(check(&gate), Err(ClipError::DeadlineExceeded)));
    }

    #[test]
    fn cancel_only_keeps_token_drops_limits() {
        let b = ExecBudget {
            deadline: Some(Duration::ZERO),
            max_intersections: Some(1),
            max_output_vertices: Some(1),
            allow_partial: true,
            ..Default::default()
        };
        let r = b.cancel_only();
        assert!(r.is_unlimited());
        assert!(!r.allow_partial);
        b.cancel.cancel();
        assert!(r.cancel.is_cancelled(), "token is shared");
    }

    #[test]
    fn tighten_never_exceeds_original_deadline() {
        // The arm-once audit: arming converts Duration → absolute Instant,
        // so a retry that cloned the budget and re-armed the *original*
        // duration would run until first-attempt-time + deadline — past the
        // caller's promise. `tighten` must derive from the remaining time.
        let mut original = ExecBudget::with_deadline(Duration::from_millis(50));
        original.arm_now();
        let original_expiry = original.expires_at().expect("armed with deadline");
        std::thread::sleep(Duration::from_millis(20));
        for frac in [0.25, 0.5, 0.9, 1.0, 7.3, f64::NAN] {
            let retry = original.tighten(frac);
            let retry_expiry = retry.expires_at().expect("tighten keeps the deadline");
            assert!(
                retry_expiry <= original_expiry,
                "frac {frac}: retry expires {:?} after the original",
                retry_expiry - original_expiry
            );
        }
        // The naive re-arm (what tighten exists to prevent) would blow it.
        let naive = Instant::now() + original.deadline.unwrap();
        assert!(naive > original_expiry);
    }

    #[test]
    fn tighten_after_expiry_yields_a_spent_budget() {
        let mut b = ExecBudget::with_deadline(Duration::from_millis(1));
        b.arm_now();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let retry = b.tighten(0.5);
        // The retried gate trips immediately: no time was left to grant.
        let gate = retry.arm();
        assert_eq!(gate.checkpoint(), Some(TripReason::DeadlineExceeded));
    }

    #[test]
    fn tighten_scales_caps_and_shares_the_cancel_token() {
        let b = ExecBudget {
            max_intersections: Some(100),
            max_output_vertices: Some(7),
            allow_partial: true,
            ..Default::default()
        };
        let t = b.tighten(0.5);
        assert_eq!(t.max_intersections, Some(50));
        assert_eq!(t.max_output_vertices, Some(3));
        assert!(t.allow_partial);
        assert_eq!(t.deadline, None, "no deadline to tighten");
        b.cancel.cancel();
        assert!(t.cancel.is_cancelled(), "token is shared");
        // Caps floor at 1: a retry can always attempt some work.
        let tiny = ExecBudget {
            max_intersections: Some(1),
            ..Default::default()
        }
        .tighten(0.1);
        assert_eq!(tiny.max_intersections, Some(1));
    }

    #[test]
    fn arm_now_is_idempotent_and_anchors_the_gate() {
        let mut b = ExecBudget::with_deadline(Duration::from_millis(500));
        assert_eq!(b.remaining(), Some(Duration::from_millis(500)));
        b.arm_now();
        let first = b.armed_at.unwrap();
        std::thread::sleep(Duration::from_millis(2));
        b.arm_now();
        assert_eq!(b.armed_at, Some(first), "first arm wins");
        assert!(b.remaining().unwrap() < Duration::from_millis(500));
        // A pre-armed budget whose allowance has fully elapsed trips the
        // gate even though the clip call itself just started.
        let mut spent = ExecBudget::with_deadline(Duration::from_millis(1));
        spent.arm_now();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(spent.arm().checkpoint(), Some(TripReason::DeadlineExceeded));
    }

    #[test]
    fn budget_trip_classification() {
        assert!(is_budget_trip(&ClipError::DeadlineExceeded));
        assert!(is_budget_trip(&ClipError::BudgetExceeded {
            work: MeterSnapshot::default()
        }));
        assert!(!is_budget_trip(&ClipError::Cancelled));
    }
}
