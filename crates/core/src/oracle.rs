//! Cross-implementation verification oracles.
//!
//! Every equivalence test in this workspace ultimately compared the
//! scanbeam engine against *itself* (slab-index vs full-scan, prepared vs
//! cold, parallel vs sequential) — a shared-code bug passes all of them.
//! This module turns that self-consistency pyramid into genuine
//! cross-implementation verification: a [`ClipOracle`] trait with two
//! structurally unrelated implementations,
//!
//! * [`ScanbeamOracle`] — the production engine (Algorithm 2 over the
//!   scanbeam sweep), in any backend/parallelism/prepared configuration;
//! * [`FosterOverfeltOracle`] — the independent Foster–Overfelt clipper
//!   from [`polyclip_seqclip::foster_overfelt`], which shares **no**
//!   sweep, partition, dissolve, or stitching code with the engine;
//!
//! plus the comparator that makes differential testing meaningful:
//! [`compare_outputs`], built on `geom::measure`'s band-integration
//! areas. Two correct clippers legitimately emit different vertex
//! sequences (ring rotation, orientation, collinear vertices, hole
//! decomposition), so outputs are compared as *regions* — the symmetric
//! difference of their even-odd interiors must be (near) zero — rather
//! than as vertex lists. The measure itself is a third independent code
//! path (plain band decomposition), so a disagreement cannot be explained
//! away by the comparator sharing a bug with either clipper.
//!
//! See `DESIGN.md` §4.11 for the rationale and the known non-goals
//! (self-intersecting inputs, nonzero fill rule).

use polyclip_geom::predicates::orient2d_sign;
use polyclip_geom::{region_area, symmetric_difference_area, Point, PolygonSet, EPS_COLLINEAR_REL};
use polyclip_seqclip::{fo_clip, FoOp};

use crate::algo2::{MergeStrategy, PartitionBackend};
use crate::classify::BoolOp;
use crate::engine::ClipOptions;
use crate::prepared::PreparedLayer;
use crate::resilience::ClipError;

/// Relative area tolerance for differential comparisons: outputs agree
/// when `sym_diff ≤ tol · (1 + max(area_a, area_b))`. The slack absorbs
/// floating-point rounding in intersection placement (each clipper rounds
/// its crossing coordinates independently), not algorithmic error —
/// disagreements from wrong topology are orders of magnitude larger.
pub const ORACLE_REL_TOL: f64 = 1e-9;

/// Why an oracle declined or failed a clip request.
#[derive(Debug, Clone)]
pub enum OracleError {
    /// The input is outside the oracle's supported class (e.g. the
    /// Foster–Overfelt oracle on a self-intersecting set). Differential
    /// harnesses should *skip*, not fail, these cases.
    Unsupported(&'static str),
    /// The underlying clipper returned a typed error.
    Failed(ClipError),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Unsupported(why) => write!(f, "unsupported input: {why}"),
            OracleError::Failed(e) => write!(f, "clip failed: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A clipping implementation that can serve as one side of a
/// differential check.
pub trait ClipOracle {
    /// Short stable name for reports and bench artifacts.
    fn name(&self) -> &'static str;

    /// Whether this oracle's correctness contract covers these inputs.
    /// Returning `false` means a differential harness must skip the case,
    /// not that the clip would crash.
    fn supports(&self, _subject: &PolygonSet, _clip: &PolygonSet) -> bool {
        true
    }

    /// Perform the boolean operation.
    fn clip(
        &self,
        subject: &PolygonSet,
        clip: &PolygonSet,
        op: BoolOp,
    ) -> Result<PolygonSet, OracleError>;
}

/// How the [`ScanbeamOracle`] drives the engine.
#[derive(Clone, Copy, Debug)]
enum EngineMode {
    /// Cold Algorithm-2 run with the given partition backend.
    Backend(PartitionBackend),
    /// Freeze the subject into a [`PreparedLayer`], then clip the query
    /// against it — exercises the prepared fast path end to end.
    Prepared,
}

/// The production scanbeam engine as an oracle, in a fixed configuration
/// (backend or prepared path, slab count, options).
pub struct ScanbeamOracle {
    name: &'static str,
    mode: EngineMode,
    n_slabs: usize,
    opts: ClipOptions,
}

impl ScanbeamOracle {
    /// Cold engine run over `backend` with `n_slabs` slabs.
    pub fn new(backend: PartitionBackend, n_slabs: usize) -> Self {
        let name = match backend {
            PartitionBackend::FullScan => "scanbeam-fullscan",
            PartitionBackend::SlabIndex => "scanbeam-slabindex",
        };
        ScanbeamOracle {
            name,
            mode: EngineMode::Backend(backend),
            n_slabs,
            opts: ClipOptions::default(),
        }
    }

    /// Prepared-layer path: build once from the subject, clip the query.
    pub fn prepared(n_slabs: usize) -> Self {
        ScanbeamOracle {
            name: "scanbeam-prepared",
            mode: EngineMode::Prepared,
            n_slabs,
            opts: ClipOptions::default(),
        }
    }

    /// Replace the engine options (sanitize/budget/fault settings).
    pub fn with_options(mut self, opts: ClipOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Slab count the oracle runs with.
    pub fn n_slabs(&self) -> usize {
        self.n_slabs
    }
}

impl ClipOracle for ScanbeamOracle {
    fn name(&self) -> &'static str {
        self.name
    }

    fn clip(
        &self,
        subject: &PolygonSet,
        clip: &PolygonSet,
        op: BoolOp,
    ) -> Result<PolygonSet, OracleError> {
        match self.mode {
            EngineMode::Backend(backend) => crate::algo2::try_clip_pair_slabs_backend(
                subject,
                clip,
                op,
                self.n_slabs,
                &self.opts,
                MergeStrategy::Sequential,
                backend,
            )
            .map(|r| r.output)
            .map_err(OracleError::Failed),
            EngineMode::Prepared => {
                let layer =
                    PreparedLayer::build(subject, &self.opts).map_err(OracleError::Failed)?;
                crate::prepared::try_clip_prepared(&layer, clip, op, self.n_slabs, &self.opts)
                    .map(|r| r.output)
                    .map_err(OracleError::Failed)
            }
        }
    }
}

/// The independent Foster–Overfelt clipper as an oracle.
///
/// Its correctness contract covers arbitrary *exact* cross-set
/// degeneracies (shared vertices, vertices on edges, collinear overlaps
/// between subject and clip) but requires each input *set* to be
/// internally clean — no boundary self-crossings (proper, or degenerate
/// through a touch point whose passage wedges interleave), no collinear
/// overlap between edges of the same set, and no within-set touch point
/// that also lies on the *other* set's boundary. A purely within-set
/// *bounce* (a pinched ring, two rings kissing at a corner) never enters
/// the labeling graph (partner links are only materialized at cross-set
/// incidences), but the graph links at most one partner node per
/// geometric point, so a point where three boundary features meet — two
/// from one set, one from the other — is unrepresentable.
/// All *distinct* features must additionally be separated by more than
/// rounding scale: two edges a sub-rounding distance apart (closer than
/// [`EPS_COLLINEAR_REL`] relative to edge length, yet not exactly
/// touching) make independently computed intersection coordinates
/// collapse onto each other or sort out of order, which no amount of
/// exact labeling can repair. Exact contact is in contract, near-contact
/// is not. [`supports`](ClipOracle::supports) screens for all of this
/// with exact predicates plus the single named near-miss tolerance.
#[derive(Default)]
pub struct FosterOverfeltOracle;

/// One ring edge with enough identity to decide geometric adjacency:
/// consecutive edges of the same ring legitimately share one endpoint;
/// any other contact within a set is a self-touching boundary.
#[derive(Clone, Copy)]
struct RingEdge {
    a: Point,
    b: Point,
    ring: usize,
    idx: usize,
    ring_len: usize,
}

impl RingEdge {
    /// Consecutive edges of the same ring (including the wrap-around).
    fn adjacent(&self, other: &RingEdge) -> bool {
        self.ring == other.ring
            && ((self.idx + 1) % self.ring_len == other.idx
                || (other.idx + 1) % other.ring_len == self.idx)
    }
}

impl FosterOverfeltOracle {
    /// The set's rings with consecutive duplicate points (and a repeated
    /// closing point) collapsed, so edge-index adjacency below matches
    /// geometric adjacency; `None` on non-finite input.
    fn clean_rings(set: &PolygonSet) -> Option<Vec<Vec<Point>>> {
        let mut rings: Vec<Vec<Point>> = Vec::new();
        for c in set.contours() {
            let mut pts: Vec<Point> = Vec::with_capacity(c.len());
            for &p in c.points() {
                if !p.is_finite() {
                    return None;
                }
                if pts.last() != Some(&p) {
                    pts.push(p);
                }
            }
            while pts.len() > 1 && pts.first() == pts.last() {
                pts.pop();
            }
            if pts.len() >= 2 {
                rings.push(pts);
            }
        }
        Some(rings)
    }

    /// Flatten cleaned rings into edges tagged with ring identity.
    fn ring_edges(rings: &[Vec<Point>]) -> Vec<RingEdge> {
        let mut edges: Vec<RingEdge> = Vec::new();
        for (ring, pts) in rings.iter().enumerate() {
            let n = pts.len();
            for idx in 0..n {
                edges.push(RingEdge {
                    a: pts[idx],
                    b: pts[(idx + 1) % n],
                    ring,
                    idx,
                    ring_len: n,
                });
            }
        }
        edges
    }

    /// Screen one edge set for within-set crossings, overlaps and
    /// near-misses, collecting the points where non-adjacent edges of the
    /// set *exactly touch*. A touch is tolerated only when the boundary
    /// *bounces* there — the two passages through the point have
    /// non-interleaving direction wedges (a pinched ring, two rings
    /// kissing at a corner). A touch where the passages interleave is a
    /// degenerate self-*crossing* (e.g. a T-junction the boundary passes
    /// through): the ring is not simple, its even-odd region differs from
    /// what ring-by-ring tracing sees, and the oracle cannot be trusted
    /// on it. Returns `None` when the set is dirty (crossing — proper or
    /// through a touch point — overlap, sub-rounding near-miss, or a
    /// point shared by more than two passages).
    fn within_set_contacts(rings: &[Vec<Point>], edges: &[RingEdge]) -> Option<Vec<Point>> {
        let mut touches: Vec<Point> = Vec::new();
        for (k, ea) in edges.iter().enumerate() {
            let (a0, a1) = (ea.a, ea.b);
            for eb in edges.iter().skip(k + 1) {
                let (b0, b1) = (eb.a, eb.b);
                if bbox_apart(a0, a1, b0, b1) {
                    continue;
                }
                let o1 = orient2d_sign(b0, b1, a0);
                let o2 = orient2d_sign(b0, b1, a1);
                let o3 = orient2d_sign(a0, a1, b0);
                let o4 = orient2d_sign(a0, a1, b1);
                // Proper interior crossing: boundary self-intersection.
                if o1 * o2 < 0.0 && o3 * o4 < 0.0 {
                    return None;
                }
                // Collinear overlap of positive length (shared endpoints
                // of adjacent ring edges have zero-length overlap and
                // pass; doubled-back spikes do not).
                if o1 == 0.0 && o2 == 0.0 && overlap_positive(a0, a1, b0, b1) {
                    return None;
                }
                // Distinct features below rounding scale.
                if near_miss(a0, a1, b0, b1) {
                    return None;
                }
                // Exact touch between non-adjacent edges: two stretches
                // of boundary meeting at a point.
                if !ea.adjacent(eb) {
                    for (p, s0, s1) in [(a0, b0, b1), (a1, b0, b1), (b0, a0, a1), (b1, a0, a1)] {
                        if on_segment_exact(p, s0, s1) && !touches.contains(&p) {
                            touches.push(p);
                        }
                    }
                }
            }
        }
        for &p in &touches {
            let passages = passages_through(rings, p);
            if passages.len() != 2 || passages_interleave(passages[0], passages[1]) {
                return None;
            }
        }
        Some(touches)
    }

    /// Screen two edge sets against each other. Exact contact and proper
    /// crossings between the sets are the oracle's bread and butter; only
    /// sub-rounding *near*-contact is out of contract.
    fn edges_cleanly_separated(ea: &[RingEdge], eb: &[RingEdge]) -> bool {
        for a in ea {
            for b in eb {
                if bbox_apart(a.a, a.b, b.a, b.b) {
                    continue;
                }
                if near_miss(a.a, a.b, b.a, b.b) {
                    return false;
                }
            }
        }
        true
    }
}

/// Loose bbox rejection: padded by the near-miss tolerance so pairs that
/// are disjoint but within rounding scale of touching still get screened.
#[inline]
fn bbox_apart(a0: Point, a1: Point, b0: Point, b1: Point) -> bool {
    let pad = near_tol(a0, a1, b0, b1);
    a0.x.max(a1.x) + pad < b0.x.min(b1.x)
        || b0.x.max(b1.x) + pad < a0.x.min(a1.x)
        || a0.y.max(a1.y) + pad < b0.y.min(b1.y)
        || b0.y.max(b1.y) + pad < a0.y.min(a1.y)
}

/// The scale below which two distinct features are "at rounding level":
/// [`EPS_COLLINEAR_REL`] relative to the longer edge of the pair.
#[inline]
fn near_tol(a0: Point, a1: Point, b0: Point, b1: Point) -> f64 {
    EPS_COLLINEAR_REL * a0.dist(&a1).max(b0.dist(&b1))
}

/// Exactly on the closed segment: robust collinearity plus a dominant-axis
/// interval test (no floating-point distance involved).
fn on_segment_exact(p: Point, s0: Point, s1: Point) -> bool {
    if orient2d_sign(s0, s1, p) != 0.0 {
        return false;
    }
    let horizontal = (s1.x - s0.x).abs() >= (s1.y - s0.y).abs();
    let key = |q: Point| if horizontal { q.x } else { q.y };
    let (lo, hi) = minmax(key(s0), key(s1));
    lo <= key(p) && key(p) <= hi
}

/// Distance from `p` to the closed segment `[s0, s1]`.
fn point_seg_dist(p: Point, s0: Point, s1: Point) -> f64 {
    let (dx, dy) = (s1.x - s0.x, s1.y - s0.y);
    let len2 = dx * dx + dy * dy;
    let t = if len2 > 0.0 {
        (((p.x - s0.x) * dx + (p.y - s0.y) * dy) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    p.dist(&Point::new(s0.x + t * dx, s0.y + t * dy))
}

/// Two segments closer than rounding scale without *exactly* touching.
///
/// Exact contact (shared endpoint, endpoint on the other segment, proper
/// crossing, collinear overlap) is decided by robust predicates and is in
/// the oracle's contract. What is not repairable is a pair of *distinct*
/// features so close that independently rounded intersection points
/// collapse — e.g. two parallel edges 5·10⁻¹⁷ apart, both crossed by a
/// third: the two computed crossings land on the same coordinates and the
/// refinement's ordering assumptions break down.
fn near_miss(a0: Point, a1: Point, b0: Point, b1: Point) -> bool {
    let o1 = orient2d_sign(b0, b1, a0);
    let o2 = orient2d_sign(b0, b1, a1);
    let o3 = orient2d_sign(a0, a1, b0);
    let o4 = orient2d_sign(a0, a1, b1);
    // Proper crossings are generic; exact touches are in contract.
    if o1 * o2 < 0.0 && o3 * o4 < 0.0 {
        return false;
    }
    if on_segment_exact(a0, b0, b1)
        || on_segment_exact(a1, b0, b1)
        || on_segment_exact(b0, a0, a1)
        || on_segment_exact(b1, a0, a1)
    {
        return false;
    }
    // Non-crossing, non-touching segments: the gap is attained at an
    // endpoint, so four point-to-segment distances suffice.
    let gap = point_seg_dist(a0, b0, b1)
        .min(point_seg_dist(a1, b0, b1))
        .min(point_seg_dist(b0, a0, a1))
        .min(point_seg_dist(b1, a0, a1));
    gap < near_tol(a0, a1, b0, b1)
}

/// Does `p` lie exactly on any edge of the set?
fn on_boundary(p: Point, edges: &[RingEdge]) -> bool {
    edges.iter().any(|e| on_segment_exact(p, e.a, e.b))
}

/// All passages of the set's boundary through point `p`: a ring vertex at
/// `p` contributes its two incident directions, an edge with `p` strictly
/// interior contributes its two half-edge directions (antiparallel).
/// Directions point away from `p`.
fn passages_through(rings: &[Vec<Point>], p: Point) -> Vec<(Point, Point)> {
    let mut passages = Vec::new();
    for pts in rings {
        let n = pts.len();
        for i in 0..n {
            if pts[i] == p {
                passages.push((pts[(i + n - 1) % n] - p, pts[(i + 1) % n] - p));
            }
        }
        for i in 0..n {
            let (a, b) = (pts[i], pts[(i + 1) % n]);
            if a != p && b != p && on_segment_exact(p, a, b) {
                passages.push((a - p, b - p));
            }
        }
    }
    passages
}

/// Do the direction wedges of two boundary passages through a common
/// point interleave cyclically? Interleaved wedges mean the two boundary
/// stretches *cross* at the point (the region flips on each side);
/// non-interleaved wedges are a bounce (a pinch, a corner kiss). Exactly
/// coincident directions cannot reach here — a positive-length collinear
/// overlap is rejected before passage classification — so the strict
/// sector tests below are total.
fn passages_interleave(a: (Point, Point), b: (Point, Point)) -> bool {
    in_ccw_sector(a.0, a.1, b.0) != in_ccw_sector(a.0, a.1, b.1)
}

/// Is direction `c` strictly inside the CCW angular sector from `a` to
/// `b`? When `a` and `b` are antiparallel the sector is the open
/// half-plane to the left of `a`.
fn in_ccw_sector(a: Point, b: Point, c: Point) -> bool {
    let cross = |u: Point, v: Point| u.x * v.y - u.y * v.x;
    let ab = cross(a, b);
    if ab > 0.0 {
        cross(a, c) > 0.0 && cross(c, b) > 0.0
    } else if ab < 0.0 {
        cross(a, c) > 0.0 || cross(c, b) > 0.0
    } else {
        cross(a, c) > 0.0
    }
}

/// Do two collinear segments overlap over a positive length?
fn overlap_positive(a0: Point, a1: Point, b0: Point, b1: Point) -> bool {
    let horizontal = (a1.x - a0.x).abs() >= (a1.y - a0.y).abs();
    let key = |p: Point| if horizontal { p.x } else { p.y };
    let (alo, ahi) = minmax(key(a0), key(a1));
    let (blo, bhi) = minmax(key(b0), key(b1));
    alo.max(blo) < ahi.min(bhi)
}

#[inline]
fn minmax(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl ClipOracle for FosterOverfeltOracle {
    fn name(&self) -> &'static str {
        "foster-overfelt"
    }

    fn supports(&self, subject: &PolygonSet, clip: &PolygonSet) -> bool {
        let (Some(rs), Some(rc)) = (Self::clean_rings(subject), Self::clean_rings(clip)) else {
            return false;
        };
        let es = Self::ring_edges(&rs);
        let ec = Self::ring_edges(&rc);
        let (Some(ts), Some(tc)) = (
            Self::within_set_contacts(&rs, &es),
            Self::within_set_contacts(&rc, &ec),
        ) else {
            return false;
        };
        Self::edges_cleanly_separated(&es, &ec)
            && !ts.iter().any(|&p| on_boundary(p, &ec))
            && !tc.iter().any(|&p| on_boundary(p, &es))
    }

    fn clip(
        &self,
        subject: &PolygonSet,
        clip: &PolygonSet,
        op: BoolOp,
    ) -> Result<PolygonSet, OracleError> {
        if !self.supports(subject, clip) {
            return Err(OracleError::Unsupported(
                "input set self-intersects or self-overlaps",
            ));
        }
        let fop = match op {
            BoolOp::Intersection => FoOp::Intersection,
            BoolOp::Union => FoOp::Union,
            BoolOp::Difference => FoOp::Difference,
            BoolOp::Xor => FoOp::Xor,
        };
        Ok(fo_clip(subject, clip, fop))
    }
}

/// Region-level comparison of two clip outputs.
#[derive(Clone, Copy, Debug)]
pub struct DiffReport {
    /// Band-integrated even-odd area of output `a`.
    pub area_a: f64,
    /// Band-integrated even-odd area of output `b`.
    pub area_b: f64,
    /// Area of the symmetric difference of the two regions.
    pub sym_diff_area: f64,
}

impl DiffReport {
    /// `sym_diff ≤ rel_tol · (1 + max(area))`: the `1 +` keeps the bound
    /// meaningful for near-empty outputs.
    pub fn within_tolerance(&self, rel_tol: f64) -> bool {
        self.sym_diff_area <= rel_tol * (1.0 + self.area_a.max(self.area_b))
    }
}

/// Compare two clip outputs as even-odd regions, using the independent
/// band-integration measures from `geom::measure`.
pub fn compare_outputs(a: &PolygonSet, b: &PolygonSet) -> DiffReport {
    DiffReport {
        area_a: region_area(a),
        area_b: region_area(b),
        sym_diff_area: symmetric_difference_area(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    #[test]
    fn oracles_agree_on_generic_overlap() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        let fo = FosterOverfeltOracle;
        for backend in [PartitionBackend::FullScan, PartitionBackend::SlabIndex] {
            let eng = ScanbeamOracle::new(backend, 4);
            for op in [
                BoolOp::Intersection,
                BoolOp::Union,
                BoolOp::Difference,
                BoolOp::Xor,
            ] {
                let x = eng.clip(&a, &b, op).unwrap();
                let y = fo.clip(&a, &b, op).unwrap();
                let d = compare_outputs(&x, &y);
                assert!(
                    d.within_tolerance(ORACLE_REL_TOL),
                    "{op:?} via {}: {d:?}",
                    eng.name()
                );
            }
        }
    }

    #[test]
    fn prepared_oracle_agrees_too() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        let eng = ScanbeamOracle::prepared(4);
        let fo = FosterOverfeltOracle;
        let x = eng.clip(&a, &b, BoolOp::Intersection).unwrap();
        let y = fo.clip(&a, &b, BoolOp::Intersection).unwrap();
        assert!(compare_outputs(&x, &y).within_tolerance(ORACLE_REL_TOL));
    }

    #[test]
    fn fo_supports_screens_self_intersections() {
        let fo = FosterOverfeltOracle;
        let clean = sq(0.0, 0.0, 2.0, 2.0);
        let bowtie = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!(fo.supports(&clean, &clean));
        assert!(!fo.supports(&bowtie, &clean));
        assert!(!fo.supports(&clean, &bowtie));
        assert!(matches!(
            fo.clip(&bowtie, &clean, BoolOp::Intersection),
            Err(OracleError::Unsupported(_))
        ));
        // Within-set collinear overlap (two stacked identical squares).
        let mut doubled = clean.clone();
        doubled.push(rect(0.0, 0.0, 2.0, 2.0));
        assert!(!fo.supports(&doubled, &clean));
        // Nested contours (holes) are fine.
        let mut ring = sq(0.0, 0.0, 4.0, 4.0);
        ring.push(rect(1.0, 1.0, 3.0, 3.0));
        assert!(fo.supports(&ring, &clean));
        // Point touches within a set are fine.
        let mut touching = sq(0.0, 0.0, 1.0, 1.0);
        touching.push(rect(1.0, 1.0, 2.0, 2.0));
        assert!(fo.supports(&touching, &clean));
    }

    #[test]
    fn tolerance_scales_with_area() {
        let d = DiffReport {
            area_a: 1e6,
            area_b: 1e6,
            sym_diff_area: 1e-4,
        };
        assert!(d.within_tolerance(1e-9));
        let d2 = DiffReport {
            area_a: 1.0,
            area_b: 1.0,
            sym_diff_area: 1e-4,
        };
        assert!(!d2.within_tolerance(1e-9));
    }
}
