//! Algorithm 2 — the multi-threaded slab-partitioning clipper.
//!
//! The practical algorithm of the paper's Section IV, for a pair of
//! (multi-)polygons:
//!
//! 1. sort the distinct vertex y's (Steps 1–2);
//! 2. compute the bounding rectangle of the union (Step 3);
//! 3. partition the y-range into `p` horizontal slabs containing roughly
//!    equal numbers of event points (the paper's load-balancing heuristic:
//!    "every thread gets roughly equal number of local event points");
//! 4. in parallel, clip both inputs to each slab (`rectangleClip`, realized
//!    by [`polyclip_seqclip::band_clip`]) and run the **sequential** scanbeam
//!    engine inside the slab (Steps 4–6; the paper plugs in GPC here, we
//!    plug in our GPC-equivalent);
//! 5. merge the per-slab partial outputs (Step 8): contours that touch a
//!    slab boundary are dissolved together — their shared boundary runs
//!    cancel — while interior contours pass through untouched.
//!
//! Per-phase wall-clock timers reproduce the partition/clip/merge breakdown
//! of the paper's Figure 9 and the per-slab load profile of Figure 11.
//!
//! Partitioning is **output-sensitive** by default: instead of every slab
//! worker scanning the full inputs (O(n·p) bbox tests), one shared
//! [`SlabIndex`] bins each contour into the contiguous range of slabs its
//! y-extent overlaps, and each worker touches only its own bucket —
//! O(n + Σ overlaps) total. Contours fully inside their slab are passed to
//! the engine by reference, without clipping or cloning; only
//! boundary-crossing contours go through the band clip, into a reusable
//! per-worker scratch buffer. [`PartitionBackend::FullScan`] keeps the
//! original scan path for ablation; both produce bit-identical results.

use crate::budget::{self, Gate, MeterSnapshot};
use crate::classify::BoolOp;
use crate::engine::{try_clip_refs_in, try_clip_with_stats_in, ClipOptions};
use crate::resilience::{self, ClipError, ClipOutcome, Degradation, InputRole};
use crate::slabindex::SlabIndex;
use crate::stats::ClipStats;
use polyclip_geom::{Contour, OrdF64, Point, PolygonSet};
use polyclip_parprim::par_sort_dedup_gated;
use polyclip_seqclip::{band_clip, band_clip_contour_into};
use polyclip_sweep::SweepScratch;
use rayon::prelude::*;
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Wall-clock phase breakdown of one Algorithm-2 run (Figure 9 / 11 data).
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Up-front input sanitization across both operands. Zero when
    /// [`ClipOptions::sanitize`] is off; a single read-only scan (no
    /// allocation) when the input is clean.
    pub sanitize: Duration,
    /// Shared slab-index build (contour binning). Zero on the
    /// [`PartitionBackend::FullScan`] path and on single-slab runs.
    pub index: Duration,
    /// Time each slab spent in `rectangleClip` (partitioning, Steps 4–5).
    pub per_slab_partition: Vec<Duration>,
    /// Time each slab spent clipping (Step 6) — the Figure 11 load profile.
    pub per_slab_clip: Vec<Duration>,
    /// Sequential merge time (Step 8).
    pub merge: Duration,
    /// Wall clock consumed by failed slab attempts before a recovery
    /// attempt succeeded (panicked attempts, watchdog-cancelled attempts).
    /// Kept out of [`PhaseTimes::per_slab_clip`] so the Figure-11 load
    /// profile and [`PhaseTimes::load_imbalance`] reflect only the work
    /// each slab's *successful* clip did.
    pub retry_total: Duration,
    /// End-to-end wall clock.
    pub total: Duration,
    /// Refinement rounds served by the incremental dirty-beam patch
    /// instead of a full scanbeam rebuild, summed across slab workers
    /// (mirrors [`ClipStats::refine_rounds_incremental`]).
    pub refine_rounds_incremental: usize,
    /// Dirty beams re-split across all incremental rounds and slabs
    /// (mirrors [`ClipStats::beams_rebuilt`]).
    pub beams_rebuilt: usize,
    /// High-water mark of sweep scratch-arena capacity observed on any
    /// single worker (bytes) — the steady-state memory cost of arena
    /// reuse.
    pub arena_hwm_bytes: u64,
    /// Cumulative bytes of arena capacity reused instead of freshly
    /// allocated, across all rounds and slabs — the allocator traffic the
    /// arenas removed.
    pub arena_reused_bytes: u64,
    /// Work-meter totals for the run (intersections found, events
    /// processed, output fragments gathered, peak scratch bytes) — the
    /// counters [`crate::ExecBudget`] limits are enforced against.
    pub work: MeterSnapshot,
    /// One-time build cost of the [`crate::prepared::PreparedLayer`] that
    /// served this call, for amortization accounting (how many clips pay
    /// off the compile). Zero on cold runs.
    pub prepare_build: Duration,
    /// True when this run reused a prepared layer's frozen subject-side
    /// state (sanitized contours, event schedule, contour extents) instead
    /// of recomputing it.
    pub prepared_reused: bool,
}

impl PhaseTimes {
    /// Mean partition time across slabs.
    pub fn partition_avg(&self) -> Duration {
        avg(&self.per_slab_partition)
    }

    /// Mean clip time across slabs.
    pub fn clip_avg(&self) -> Duration {
        avg(&self.per_slab_clip)
    }

    /// Total partition-phase work: the shared index build plus every slab's
    /// own partitioning time (the Figure 9 "partition" bar).
    pub fn partition_total(&self) -> Duration {
        self.index + self.per_slab_partition.iter().sum::<Duration>()
    }

    /// Total clip-phase work summed across slabs (the Figure 9 "clip" bar).
    pub fn clip_total(&self) -> Duration {
        self.per_slab_clip.iter().sum()
    }

    /// Max/mean clip-time ratio: 1.0 is perfect balance (Figure 11). A
    /// single slab (or none) is perfectly balanced by definition. Retry
    /// time ([`PhaseTimes::retry_total`]) is excluded: a slab that
    /// panicked or was watchdog-cancelled and then recovered would
    /// otherwise report its failed attempt as load.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_slab_clip.len() <= 1 {
            return 1.0;
        }
        let avg = self.clip_avg().as_secs_f64();
        if avg == 0.0 {
            return 1.0;
        }
        let max = self
            .per_slab_clip
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max);
        max / avg
    }
}

fn avg(v: &[Duration]) -> Duration {
    if v.is_empty() {
        return Duration::ZERO;
    }
    v.iter().sum::<Duration>() / v.len() as u32
}

/// Result of an Algorithm-2 run.
#[derive(Clone, Debug, Default)]
pub struct Algo2Result {
    /// The clipped polygon set.
    pub output: PolygonSet,
    /// Phase timers.
    pub times: PhaseTimes,
    /// Number of slabs actually used (≤ requested when few events exist).
    pub slabs: usize,
    /// Engine counters aggregated across the slab workers (sums, except
    /// `refine_rounds` which takes the per-slab maximum).
    pub stats: ClipStats,
    /// Degradations absorbed across all slabs, in slab order.
    pub degradations: Vec<Degradation>,
}

/// How Algorithm 2 fuses its per-slab partial outputs (Step 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MergeStrategy {
    /// One sequential pass over all partials — the paper's implementation.
    #[default]
    Sequential,
    /// Binary reduction tree over the slabs (the paper's Figure 6 /
    /// future-work parallel merge): `O(log p)` levels, merges within a
    /// level run concurrently.
    Tree,
}

/// How Algorithm 2 hands each slab worker its share of the inputs
/// (Steps 4–5). Both backends produce bit-identical results; `FullScan`
/// exists for ablation benchmarks and as the reference implementation the
/// equivalence tests check against.
///
/// Not to be confused with [`polyclip_sweep::PartitionBackend`]
/// ([`ClipOptions::backend`]), which selects the *scanbeam* edge-partition
/// structure inside the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartitionBackend {
    /// Every slab worker scans both full inputs and band-clips what
    /// overlaps: O(n) per slab, O(n·p) total — the original implementation.
    FullScan,
    /// One shared [`SlabIndex`] bins contours into slabs up front; each
    /// worker touches only its bucket, borrows fully-inside contours, and
    /// band-clips crossers into a reusable scratch buffer: O(n + Σ overlaps)
    /// total.
    #[default]
    SlabIndex,
}

/// One slab worker's contribution: its partial output plus everything the
/// aggregate needs (stats, degradations, phase timings).
#[derive(Default)]
pub(crate) struct SlabPartial {
    output: PolygonSet,
    stats: ClipStats,
    degradations: Vec<Degradation>,
    t_partition: Duration,
    t_clip: Duration,
    /// Time burned by attempts that failed (panic or watchdog trip) before
    /// this partial was produced; aggregated into
    /// [`PhaseTimes::retry_total`], never into the per-slab load profile.
    t_retry: Duration,
}

/// The gates a slab worker runs under.
struct SlabGates<'a> {
    /// First-attempt gate: the global gate's child carrying this slab's
    /// watchdog deadline (or the global gate itself when no watchdog
    /// applies). Shares the cancel token, meter and work limits.
    attempt: &'a Gate,
    /// The armed global gate — consulted after a slab-level trip to decide
    /// whether the whole run is over (global trip → propagate) or only the
    /// watchdog fired (global clean → re-ladder the slab).
    global: &'a Gate,
    /// Recovery gate for retry/pristine attempts: cancel-only. A slab whose
    /// watchdog deadline fired must be retried without it to make progress,
    /// and re-arming the work caps would double-charge rediscovered work —
    /// but recovery must stay interruptible.
    recovery: &'a Gate,
}

/// Run one slab through the recovery ladder.
///
/// Attempt 0 runs the configured engine under the slab's watchdog gate; if
/// the worker panics — or the watchdog deadline fires while the global gate
/// is still clean — attempt 1 retries the identical computation on the
/// cancel-only recovery gate (transient faults, one slow slab); if that
/// dies too, a final attempt re-runs the slab on the *pristine*
/// configuration — sequential, default partition backend, fault plan
/// stripped. The pristine attempt computes the same band on the same engine
/// family, so a successful fallback is bit-identical to an unfaulted run.
/// Only when all three attempts die does the slab surface
/// [`ClipError::SlabPanic`]. Cancellation and global budget trips always
/// propagate immediately: retrying cannot help, and the caller asked to
/// stop.
fn run_slab_ladder<F>(
    slab: usize,
    seq: &ClipOptions,
    gates: &SlabGates<'_>,
    scratch: &mut SweepScratch,
    body: F,
) -> Result<SlabPartial, ClipError>
where
    F: Fn(
        &ClipOptions,
        &Gate,
        &mut SweepScratch,
    ) -> Result<(ClipOutcome, Duration, Duration), ClipError>,
{
    // The arena stays structurally valid across failed attempts (taken
    // buffers are replaced by empty vectors), so retries and the pristine
    // fallback reuse whatever capacity the dead attempt established.
    let mut attempt_with =
        |opts: &ClipOptions,
         gate: &Gate,
         attempt: u32|
         -> Result<Result<(ClipOutcome, Duration, Duration), ClipError>, String> {
            catch_unwind(AssertUnwindSafe(|| {
                resilience::maybe_panic_slab(opts, slab, attempt);
                resilience::maybe_stall_slab(opts, slab, attempt);
                body(opts, gate, &mut *scratch)
            }))
            .map_err(|p| resilience::panic_message(p.as_ref()))
        };

    let finish = |outcome: ClipOutcome,
                  t_partition: Duration,
                  t_clip: Duration,
                  recovery: Option<Degradation>,
                  t_retry: Duration| {
        let mut degradations = outcome.degradations;
        let mut stats = outcome.stats;
        if let Some(d) = recovery {
            stats.slab_retries += 1;
            degradations.push(d);
        }
        SlabPartial {
            output: outcome.result,
            stats,
            degradations,
            t_partition,
            t_clip,
            t_retry,
        }
    };

    // Attempt 0: configured engine, watchdog gate.
    let mut t_retry = Duration::ZERO;
    let mut last_panic = String::new();
    let t0 = Instant::now();
    match attempt_with(seq, gates.attempt, 0) {
        Ok(Ok((outcome, t_partition, t_clip))) => {
            return Ok(finish(outcome, t_partition, t_clip, None, t_retry));
        }
        Ok(Err(e)) => {
            // Geometry errors are deterministic, cancellation is final; a
            // budget trip is re-ladderable only when it was this slab's
            // watchdog — a tripped global gate ends the whole run.
            if !budget::is_budget_trip(&e) {
                return Err(e);
            }
            if let Some(r) = gates.global.checkpoint() {
                return Err(budget::trip_error(r, gates.global));
            }
            t_retry += t0.elapsed();
        }
        Err(msg) => {
            last_panic = msg;
            t_retry += t0.elapsed();
        }
    }

    // Attempt 1: identical retry on the cancel-only recovery gate.
    let t1 = Instant::now();
    match attempt_with(seq, gates.recovery, 1) {
        Ok(Ok((outcome, t_partition, t_clip))) => {
            return Ok(finish(
                outcome,
                t_partition,
                t_clip,
                Some(Degradation::SlabRetry { slab }),
                t_retry,
            ));
        }
        // Deterministic under the recovery gate (no deadline or caps left
        // to trip): propagate, including cancellation.
        Ok(Err(e)) => return Err(e),
        Err(msg) => {
            if !msg.is_empty() {
                last_panic = msg;
            }
            t_retry += t1.elapsed();
        }
    }

    // Attempt 2: pristine sequential fallback, still cancellable.
    match attempt_with(&resilience::pristine(seq), gates.recovery, 2) {
        Ok(Ok((outcome, t_partition, t_clip))) => Ok(finish(
            outcome,
            t_partition,
            t_clip,
            Some(Degradation::SlabFallback { slab }),
            t_retry,
        )),
        Ok(Err(e)) => Err(e),
        Err(msg) => Err(ClipError::SlabPanic {
            slab,
            message: if msg.is_empty() { last_panic } else { msg },
        }),
    }
}

/// The [`PartitionBackend::FullScan`] slab body: band-clip both full inputs
/// (or clone them verbatim for an unbanded single-slab run), then clip.
#[allow(clippy::too_many_arguments)]
fn run_slab(
    slab: usize,
    band: Option<(f64, f64)>,
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    seq: &ClipOptions,
    gates: &SlabGates<'_>,
    scratch: &mut SweepScratch,
) -> Result<SlabPartial, ClipError> {
    run_slab_ladder(slab, seq, gates, scratch, |opts, gate, scratch| {
        let t0 = Instant::now();
        let (s_band, c_band): (Cow<'_, PolygonSet>, Cow<'_, PolygonSet>) = match band {
            Some((lo, hi)) => (
                Cow::Owned(band_clip(subject, lo, hi)),
                Cow::Owned(band_clip(clip_p, lo, hi)),
            ),
            // Unbanded single-slab run: the engine only reads the inputs,
            // so borrow them instead of deep-cloning both sets.
            None => (Cow::Borrowed(subject), Cow::Borrowed(clip_p)),
        };
        let t_partition = t0.elapsed();
        let t1 = Instant::now();
        try_clip_with_stats_in(&s_band, &c_band, op, opts, gate, scratch)
            .map(|outcome| (outcome, t_partition, t1.elapsed()))
    })
}

/// The [`PartitionBackend::SlabIndex`] slab body: walk only this slab's
/// bucket of the shared index. Fully-inside contours are borrowed with no
/// clipping; boundary crossers are band-clipped through one reusable
/// scratch buffer (a single allocation that grows to the largest contour
/// and is reused across the whole bucket). The resulting contour sequence
/// is exactly what `band_clip` would have produced — same contours, same
/// order, same validity filtering — so the engine sees a bit-identical
/// instance.
#[allow(clippy::too_many_arguments)]
fn run_slab_indexed(
    slab: usize,
    band: (f64, f64),
    index: &SlabIndex<'_>,
    op: BoolOp,
    seq: &ClipOptions,
    gates: &SlabGates<'_>,
    sweep_scratch: &mut SweepScratch,
) -> Result<SlabPartial, ClipError> {
    // Per-entry dispositions for the second pass. `PolygonSet::push` (the
    // full-scan path) silently drops invalid (< 3 point) contours, so the
    // same filter applies here to keep the instances identical.
    const SKIP: u32 = u32::MAX;
    const BORROW: u32 = u32::MAX - 1;
    run_slab_ladder(slab, seq, gates, sweep_scratch, |opts, gate, sweep| {
        let (lo, hi) = band;
        let entries = index.slab(slab);
        let t0 = Instant::now();
        let mut scratch: Vec<Point> = Vec::new();
        let mut arena: Vec<Contour> = Vec::new();
        let mut slots: Vec<u32> = Vec::with_capacity(entries.len());
        for e in entries {
            let c = index.contour(e.contour);
            if e.inside {
                slots.push(if c.is_valid() { BORROW } else { SKIP });
            } else {
                let clipped = band_clip_contour_into(c, lo, hi, &mut scratch);
                if clipped.is_valid() {
                    slots.push(arena.len() as u32);
                    arena.push(clipped);
                } else {
                    slots.push(SKIP);
                }
            }
        }
        let mut subject_refs: Vec<&Contour> = Vec::new();
        let mut clip_refs: Vec<&Contour> = Vec::new();
        for (e, &slot) in entries.iter().zip(&slots) {
            let c = match slot {
                SKIP => continue,
                BORROW => index.contour(e.contour),
                i => &arena[i as usize],
            };
            if index.is_subject(e.contour) {
                subject_refs.push(c);
            } else {
                clip_refs.push(c);
            }
        }
        let t_partition = t0.elapsed();
        let t1 = Instant::now();
        try_clip_refs_in(&subject_refs, &clip_refs, op, opts, gate, sweep)
            .map(|outcome| (outcome, t_partition, t1.elapsed()))
    })
}

/// Clip a pair of polygon sets with the slab-partitioned Algorithm 2.
///
/// `n_slabs` is the paper's `p` (one slab per thread); the per-slab work
/// runs on the current rayon pool. `opts` configures fill rule etc.; the
/// per-slab engine always runs sequentially, parallelism comes from the
/// slab fan-out, exactly as in the paper.
///
/// Lenient wrapper over [`try_clip_pair_slabs`]: errors (non-finite input,
/// a slab dead on every recovery attempt) yield an empty result.
pub fn clip_pair_slabs(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Algo2Result {
    clip_pair_slabs_with(
        subject,
        clip_p,
        op,
        n_slabs,
        opts,
        MergeStrategy::Sequential,
    )
}

/// [`clip_pair_slabs`] with an explicit Step-8 merge strategy.
pub fn clip_pair_slabs_with(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
    merge_strategy: MergeStrategy,
) -> Algo2Result {
    try_clip_pair_slabs_with(subject, clip_p, op, n_slabs, opts, merge_strategy).unwrap_or_default()
}

/// [`clip_pair_slabs_with`] with an explicit partition backend — the
/// lenient wrapper over [`try_clip_pair_slabs_backend`].
pub fn clip_pair_slabs_backend(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
    merge_strategy: MergeStrategy,
    backend: PartitionBackend,
) -> Algo2Result {
    try_clip_pair_slabs_backend(subject, clip_p, op, n_slabs, opts, merge_strategy, backend)
        .unwrap_or_default()
}

/// Fallible Algorithm 2 with per-slab panic isolation.
///
/// Every slab worker runs under `catch_unwind`; a panicked slab is retried
/// once and then recomputed on the pristine sequential engine (see
/// [`Degradation::SlabRetry`] / [`Degradation::SlabFallback`]). Errors are
/// typed: non-finite inputs are rejected up front, and a slab that dies on
/// every rung of the ladder surfaces as [`ClipError::SlabPanic`].
pub fn try_clip_pair_slabs(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
) -> Result<Algo2Result, ClipError> {
    try_clip_pair_slabs_with(
        subject,
        clip_p,
        op,
        n_slabs,
        opts,
        MergeStrategy::Sequential,
    )
}

/// [`try_clip_pair_slabs`] with an explicit Step-8 merge strategy, on the
/// default partition backend ([`PartitionBackend::SlabIndex`]).
pub fn try_clip_pair_slabs_with(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
    merge_strategy: MergeStrategy,
) -> Result<Algo2Result, ClipError> {
    try_clip_pair_slabs_backend(
        subject,
        clip_p,
        op,
        n_slabs,
        opts,
        merge_strategy,
        PartitionBackend::default(),
    )
}

/// The fully-explicit Algorithm-2 entry point: merge strategy *and*
/// partition backend. Both backends are bit-identical in output, stats and
/// degradations (asserted by the `equivalence` proptest); they differ only
/// in partition-phase cost and in [`PhaseTimes::index`].
#[allow(clippy::too_many_arguments)]
pub fn try_clip_pair_slabs_backend(
    subject: &PolygonSet,
    clip_p: &PolygonSet,
    op: BoolOp,
    n_slabs: usize,
    opts: &ClipOptions,
    merge_strategy: MergeStrategy,
    backend: PartitionBackend,
) -> Result<Algo2Result, ClipError> {
    let t_start = Instant::now();
    // Arm the budget exactly once, at this public boundary: the relative
    // deadline becomes absolute here, and every slab worker below shares
    // the gate (via per-slab watchdog children). The recovery gate keeps
    // only the cancel token — see [`SlabGates::recovery`].
    let gate = opts.budget.arm();
    let recovery_gate = opts.budget.cancel_only().arm();
    budget::check(&gate)?;
    // Non-finite coordinates would poison the event ordering below before
    // any slab worker (and its input gate) ever runs; reject them here.
    for (set, role) in [(subject, InputRole::Subject), (clip_p, InputRole::Clip)] {
        if let Some((contour, vertex)) = set.first_non_finite() {
            return Err(ClipError::NonFiniteInput {
                role,
                contour,
                vertex,
            });
        }
    }

    // Up-front sanitization of both operands (once, not per slab), so
    // every worker sees the repaired geometry and the repairs are reported
    // exactly once. Slab workers and the merge then run with sanitization
    // and output validation off: band clipping deliberately creates
    // exactly-collinear seam vertices that fragment cancellation depends
    // on, and the output ladder runs once on the merged result below.
    let t_san = Instant::now();
    let mut pre_degradations: Vec<Degradation> = Vec::new();
    let mut pre_repairs = 0usize;
    let repairs_only = crate::sanitize::SanitizeOptions::repairs_only();
    let (subject_gate, clip_gate) = if opts.sanitize {
        let (s, s_rep) = crate::sanitize::sanitize_set(subject, &repairs_only);
        if !s_rep.is_clean() {
            pre_repairs += s_rep.total();
            pre_degradations.push(Degradation::InputRepaired {
                role: InputRole::Subject,
                repairs: s_rep,
            });
        }
        let (c, c_rep) = crate::sanitize::sanitize_set(clip_p, &repairs_only);
        if !c_rep.is_clean() {
            pre_repairs += c_rep.total();
            pre_degradations.push(Degradation::InputRepaired {
                role: InputRole::Clip,
                repairs: c_rep,
            });
        }
        (s, c)
    } else {
        (
            std::borrow::Cow::Borrowed(subject),
            std::borrow::Cow::Borrowed(clip_p),
        )
    };
    let (subject, clip_p) = (&*subject_gate, &*clip_gate);
    let t_sanitize = t_san.elapsed();

    // Slab workers receive the armed gate explicitly; the budget carried in
    // their options is reduced to the cancel token so nothing downstream
    // can re-arm the deadline.
    let seq = ClipOptions {
        parallel: false,
        sanitize: false,
        validate_output: false,
        budget: opts.budget.cancel_only(),
        ..opts.clone()
    };

    // Steps 1–3: event schedule and bounding rectangle. Above the parprim
    // cutoff the sort-and-dedup runs on the rayon pool (parallel merge sort
    // + dedup-by-pack); below it, the classic sequential idiom.
    let ys: Vec<OrdF64> = par_sort_dedup_gated(
        subject
            .contours()
            .iter()
            .chain(clip_p.contours())
            .flat_map(|c| c.points().iter().map(|p| OrdF64::new(p.y)))
            .collect(),
        Some(&gate),
    );
    budget::check(&gate)?;

    let drive = SlabDrive {
        subject,
        clip_p,
        op,
        opts,
        seq: &seq,
        gate: &gate,
        recovery_gate: &recovery_gate,
        pre_repairs,
        pre_degradations,
        t_start,
        t_sanitize,
        prepare_build: Duration::ZERO,
        prepared_reused: false,
    };

    if ys.len() < 2 || n_slabs <= 1 {
        return drive_single_slab(drive, &mut SweepScratch::new());
    }

    // Equal-event-count slab boundaries over [ymin, ymax].
    let boundaries = slab_boundaries(&ys, n_slabs);

    // The shared binning pass (SlabIndex backend only): one parallel sweep
    // over both inputs replaces p full scans.
    let t_ix = Instant::now();
    let index = match backend {
        PartitionBackend::SlabIndex => Some(SlabIndex::build(subject, clip_p, &boundaries)),
        PartitionBackend::FullScan => None,
    };
    let t_index = if index.is_some() {
        t_ix.elapsed()
    } else {
        Duration::ZERO
    };

    drive_slabs(
        drive,
        &boundaries,
        index.as_ref(),
        None,
        t_index,
        merge_strategy,
        SweepScratch::new,
        drop,
    )
}

/// Everything the slab fan-out drivers need beyond the partition source:
/// the inputs as the workers will see them (already sanitized), armed
/// gates, per-worker options, pre-aggregated sanitize results, and the
/// provenance fields that end up in [`PhaseTimes`]. Shared by the cold
/// path ([`try_clip_pair_slabs_backend`]) and the prepared path
/// ([`crate::prepared::try_clip_prepared_backend`]).
pub(crate) struct SlabDrive<'a> {
    pub subject: &'a PolygonSet,
    pub clip_p: &'a PolygonSet,
    pub op: BoolOp,
    /// The caller's options (consulted for `validate_output`,
    /// `budget.allow_partial`).
    pub opts: &'a ClipOptions,
    /// Worker options: sequential, sanitize/validate off, cancel-only
    /// budget.
    pub seq: &'a ClipOptions,
    /// The armed global gate.
    pub gate: &'a Gate,
    /// The armed cancel-only recovery gate.
    pub recovery_gate: &'a Gate,
    pub pre_repairs: usize,
    pub pre_degradations: Vec<Degradation>,
    pub t_start: Instant,
    pub t_sanitize: Duration,
    pub prepare_build: Duration,
    pub prepared_reused: bool,
}

/// Degenerate instance or a single slab: one unbanded worker, still under
/// the recovery ladder (slab index 0). No watchdog — the slab IS the run,
/// so its deadline is the global one.
pub(crate) fn drive_single_slab(
    d: SlabDrive<'_>,
    scratch: &mut SweepScratch,
) -> Result<Algo2Result, ClipError> {
    let gates = SlabGates {
        attempt: d.gate,
        global: d.gate,
        recovery: d.recovery_gate,
    };
    let partial = run_slab(0, None, d.subject, d.clip_p, d.op, d.seq, &gates, scratch)?;
    let t_retry = partial.t_retry;
    let mut stats = partial.stats;
    stats.input_repairs += d.pre_repairs;
    stats.prepared_reused = d.prepared_reused;
    stats.completed_slabs = 1;
    stats.total_slabs = 1;
    let mut degradations = d.pre_degradations;
    degradations.extend(partial.degradations);
    let mut outcome = ClipOutcome {
        result: partial.output,
        stats,
        degradations,
    };
    if d.opts.validate_output {
        crate::engine::repair_output(d.subject, d.clip_p, d.op, d.opts, &mut outcome);
    }
    let work = d.gate.meter().snapshot();
    let times = PhaseTimes {
        sanitize: d.t_sanitize,
        index: Duration::ZERO,
        per_slab_partition: vec![Duration::ZERO],
        per_slab_clip: vec![partial.t_clip],
        merge: Duration::ZERO,
        retry_total: t_retry,
        total: d.t_start.elapsed(),
        refine_rounds_incremental: outcome.stats.refine_rounds_incremental,
        beams_rebuilt: outcome.stats.beams_rebuilt,
        arena_hwm_bytes: work.peak_scratch_bytes.max(scratch.high_water_bytes()),
        arena_reused_bytes: work.scratch_reused_bytes,
        work,
        prepare_build: d.prepare_build,
        prepared_reused: d.prepared_reused,
    };
    Ok(Algo2Result {
        output: outcome.result,
        times,
        slabs: 1,
        stats: outcome.stats,
        degradations: outcome.degradations,
    })
}

/// Steps 4–8: the slab fan-out, partial collection, merge and output
/// ladder, shared by the cold and prepared paths.
///
/// `index` selects the partition backend (`Some` = bucketed, `None` = full
/// scan). `skip[i]` marks slabs whose output is provably empty — the
/// prepared path's query-side pruning (an intersection in a slab without
/// query contours, or an empty bucket) — which are recorded as completed
/// with zero-duration partials instead of running the engine. `acquire` /
/// `release` supply each worker chunk's scratch arena: the cold path makes
/// a fresh arena per chunk, the prepared path checks arenas out of the
/// layer's cross-request pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_slabs<A, R>(
    d: SlabDrive<'_>,
    boundaries: &[f64],
    index: Option<&SlabIndex<'_>>,
    skip: Option<&[bool]>,
    t_index: Duration,
    merge_strategy: MergeStrategy,
    acquire: A,
    release: R,
) -> Result<Algo2Result, ClipError>
where
    A: Fn() -> SweepScratch + Sync,
    R: Fn(SweepScratch) + Sync,
{
    let slabs = boundaries.len() - 1;
    let (gate, recovery_gate) = (d.gate, d.recovery_gate);

    // The watchdog: derive each slab's deadline from the global allowance
    // and its estimated load share. A slab gets twice its fair share of the
    // remaining time (floored at the uniform 1/slabs share so tiny buckets
    // are not starved, capped at the global deadline) — generous enough
    // that balanced runs never trip it, tight enough that one runaway slab
    // is cancelled and re-laddered while its siblings finish.
    let entry_counts: Option<Vec<usize>> = index
        .as_ref()
        .map(|ix| (0..slabs).map(|i| ix.slab(i).len()).collect());
    let now = Instant::now();
    let slab_deadline = |i: usize| -> Option<Instant> {
        let deadline = gate.deadline()?;
        let remaining = deadline.saturating_duration_since(now);
        let uniform = 1.0 / slabs as f64;
        let share = match &entry_counts {
            Some(counts) => {
                let total: usize = counts.iter().sum();
                if total == 0 {
                    uniform
                } else {
                    counts[i] as f64 / total as f64
                }
            }
            None => uniform,
        };
        let frac = (2.0 * share.max(uniform)).min(1.0);
        Some(now + remaining.mul_f64(frac))
    };

    // Steps 4–6 per slab, in parallel, each under the recovery ladder.
    // Slabs are fanned out in contiguous chunks (about one per thread);
    // each chunk owns one scratch arena reused across its slabs, so a
    // worker's later slabs replay the capacity its first slab allocated.
    // Chunks are emitted in order, so `partials` stays in slab order.
    let chunk = slabs.div_ceil(rayon::current_num_threads().max(1)).max(1);
    let partials: Vec<Result<SlabPartial, ClipError>> = (0..slabs.div_ceil(chunk))
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut scratch = acquire();
            let out = (ci * chunk..((ci + 1) * chunk).min(slabs))
                .map(|i| {
                    if skip.is_some_and(|s| s[i]) {
                        return Ok(SlabPartial::default());
                    }
                    let band = (boundaries[i], boundaries[i + 1]);
                    let watchdog = gate.child_with_deadline(slab_deadline(i));
                    let gates = SlabGates {
                        attempt: &watchdog,
                        global: gate,
                        recovery: recovery_gate,
                    };
                    match &index {
                        Some(ix) => {
                            run_slab_indexed(i, band, ix, d.op, d.seq, &gates, &mut scratch)
                        }
                        None => run_slab(
                            i,
                            Some(band),
                            d.subject,
                            d.clip_p,
                            d.op,
                            d.seq,
                            &gates,
                            &mut scratch,
                        ),
                    }
                })
                .collect::<Vec<_>>();
            release(scratch);
            out
        })
        .collect();
    let mut parts: Vec<PolygonSet> = Vec::with_capacity(slabs);
    let mut per_slab_partition: Vec<Duration> = Vec::with_capacity(slabs);
    let mut per_slab_clip: Vec<Duration> = Vec::with_capacity(slabs);
    let mut retry_total = Duration::ZERO;
    let mut stats = ClipStats {
        input_repairs: d.pre_repairs,
        prepared_reused: d.prepared_reused,
        ..ClipStats::default()
    };
    let mut degradations: Vec<Degradation> = d.pre_degradations;
    // Partial-result collection: with `allow_partial`, slabs lost to a
    // deadline/work-budget trip are skipped and the survivors merged;
    // cancellation and geometry errors always end the run, as does a blown
    // budget in strict (default) mode or a run with zero finished slabs.
    let mut first_trip: Option<ClipError> = None;
    let mut lost_slabs = 0usize;
    for partial in partials {
        match partial {
            Ok(p) => {
                parts.push(p.output);
                per_slab_partition.push(p.t_partition);
                per_slab_clip.push(p.t_clip);
                retry_total += p.t_retry;
                stats.absorb(&p.stats);
                degradations.extend(p.degradations);
            }
            Err(e) => {
                if !d.opts.budget.allow_partial || !budget::is_budget_trip(&e) {
                    return Err(e);
                }
                lost_slabs += 1;
                if first_trip.is_none() {
                    first_trip = Some(e);
                }
            }
        }
    }
    let completed_slabs = slabs - lost_slabs;
    if completed_slabs == 0 {
        // Nothing to salvage: surface the first trip.
        return Err(first_trip.expect("no slabs and no error is impossible"));
    }
    stats.completed_slabs = completed_slabs;
    stats.total_slabs = slabs;
    if lost_slabs > 0 {
        degradations.push(Degradation::PartialResult {
            completed_slabs,
            total_slabs: slabs,
        });
    }

    // Step 8: merge partial outputs at the interior slab boundaries.
    let t_merge = Instant::now();
    let interior = &boundaries[1..boundaries.len() - 1];
    let output = match merge_strategy {
        MergeStrategy::Sequential => merge_slab_outputs(parts.into_iter(), interior, d.seq),
        MergeStrategy::Tree => merge_slab_outputs_tree(parts, interior, d.seq),
    };
    let merge = t_merge.elapsed();

    // Output ladder on the merged result (once, not per slab).
    let (output, stats, degradations) = if d.opts.validate_output {
        let mut outcome = ClipOutcome {
            result: output,
            stats,
            degradations,
        };
        crate::engine::repair_output(d.subject, d.clip_p, d.op, d.opts, &mut outcome);
        (outcome.result, outcome.stats, outcome.degradations)
    } else {
        (output, stats, degradations)
    };

    let work = gate.meter().snapshot();
    Ok(Algo2Result {
        output,
        times: PhaseTimes {
            sanitize: d.t_sanitize,
            index: t_index,
            per_slab_partition,
            per_slab_clip,
            merge,
            retry_total,
            total: d.t_start.elapsed(),
            refine_rounds_incremental: stats.refine_rounds_incremental,
            beams_rebuilt: stats.beams_rebuilt,
            arena_hwm_bytes: work.peak_scratch_bytes,
            arena_reused_bytes: work.scratch_reused_bytes,
            work,
            prepare_build: d.prepare_build,
            prepared_reused: d.prepared_reused,
        },
        slabs,
        stats,
        degradations,
    })
}

/// Slab boundaries with roughly equal event counts per slab; first and last
/// are the extreme event y's, interior boundaries are event quantiles.
/// Empty input yields no boundaries (no slabs to cut).
pub fn slab_boundaries(sorted_ys: &[OrdF64], n_slabs: usize) -> Vec<f64> {
    let m = sorted_ys.len();
    let Some(first) = sorted_ys.first() else {
        return Vec::new();
    };
    let mut b: Vec<f64> = Vec::with_capacity(n_slabs + 1);
    let mut prev = first.get();
    b.push(prev);
    for i in 1..n_slabs {
        let idx = i * (m - 1) / n_slabs;
        let y = sorted_ys[idx].get();
        if y > prev {
            b.push(y);
            prev = y;
        }
    }
    let last = sorted_ys[m - 1].get();
    if last > prev {
        b.push(last);
    }
    b
}

/// Fuse per-slab partial outputs (Step 8).
///
/// Strictly interior contours pass through untouched. Contours touching an
/// interior slab boundary are decomposed into directed edges; the
/// horizontal runs lying on a boundary are split at the union of both
/// sides' endpoints (band-clip cut vertices are bit-identical across the
/// seam, so after splitting, opposite runs cancel exactly); cancellation +
/// stitching then reassembles seamless contours. This is the paper's merge
/// of partial output polygons, done in O(touching · log) without re-running
/// the clipping engine.
pub fn merge_slab_outputs(
    parts: impl Iterator<Item = PolygonSet>,
    interior_boundaries: &[f64],
    opts: &ClipOptions,
) -> PolygonSet {
    use polyclip_geom::{OrdF64, Point};
    use std::collections::HashMap;

    let mut pass = PolygonSet::new();
    let mut touching: Vec<polyclip_geom::Contour> = Vec::new();
    for ps in parts {
        for c in ps.into_contours() {
            let bb = c.bbox();
            let touches = interior_boundaries
                .iter()
                .any(|&y| bb.ymin <= y && y <= bb.ymax);
            if touches {
                touching.push(c);
            } else {
                pass.push(c);
            }
        }
    }
    if touching.is_empty() {
        return pass;
    }

    let boundary_set: std::collections::HashSet<OrdF64> = interior_boundaries
        .iter()
        .map(|&y| OrdF64::new(y))
        .collect();

    // Decompose into directed edges; collect seam-run endpoints per
    // boundary so both sides split identically.
    let mut edges: Vec<(Point, Point)> = Vec::new();
    let mut seam_xs: HashMap<OrdF64, Vec<OrdF64>> = HashMap::new();
    for c in &touching {
        for e in c.edges() {
            if e.a.y == e.b.y && boundary_set.contains(&OrdF64::new(e.a.y)) {
                let xs = seam_xs.entry(OrdF64::new(e.a.y)).or_default();
                xs.push(OrdF64::new(e.a.x));
                xs.push(OrdF64::new(e.b.x));
            }
            edges.push((e.a, e.b));
        }
    }
    for xs in seam_xs.values_mut() {
        xs.sort_unstable();
        xs.dedup();
    }

    // Split every seam run at all seam endpoints inside it.
    let mut split_edges: Vec<(Point, Point)> = Vec::with_capacity(edges.len());
    for (a, b) in edges {
        let on_seam = a.y == b.y && boundary_set.contains(&OrdF64::new(a.y));
        if !on_seam {
            split_edges.push((a, b));
            continue;
        }
        let xs = &seam_xs[&OrdF64::new(a.y)];
        let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
        let start = xs.partition_point(|&x| x.get() <= lo);
        let mut prev = a;
        if a.x <= b.x {
            for &x in &xs[start..] {
                if x.get() >= hi {
                    break;
                }
                let m = Point::new(x.get(), a.y);
                split_edges.push((prev, m));
                prev = m;
            }
        } else {
            // Rightmost interior split first for a right-to-left run.
            let end = xs.partition_point(|&x| x.get() < hi);
            for &x in xs[start..end].iter().rev() {
                let m = Point::new(x.get(), a.y);
                split_edges.push((prev, m));
                prev = m;
            }
        }
        split_edges.push((prev, b));
    }

    let stitched = crate::stitch::stitch(split_edges, !opts.keep_virtual);
    pass.extend(PolygonSet::from_contours(stitched));
    pass
}

/// Parallel tree-reduction merge — the paper's Figure 6, which it leaves as
/// future work ("Step 8 … can be parallelized as illustrated in Fig. 6 for
/// stronger scaling"): partial outputs sit at the leaves of a binary tree;
/// each internal node merges its two children at the single slab boundary
/// separating them, and the `O(log p)` levels run concurrently within each
/// level.
///
/// Produces the same polygon set as [`merge_slab_outputs`] (asserted in
/// tests); the `ablation_tree_merge` bench compares the two.
pub fn merge_slab_outputs_tree(
    parts: Vec<PolygonSet>,
    interior_boundaries: &[f64],
    opts: &ClipOptions,
) -> PolygonSet {
    if parts.len() <= 1 {
        return parts.into_iter().next().unwrap_or_default();
    }
    debug_assert_eq!(parts.len(), interior_boundaries.len() + 1);
    // Pair up (partial, boundary-above) so each reduction level knows which
    // seams its merges dissolve.
    let mut level: Vec<(PolygonSet, Vec<f64>)> = parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let above = interior_boundaries.get(i).copied();
            (p, above.into_iter().collect())
        })
        .collect();
    while level.len() > 1 {
        level = level
            .par_chunks(2)
            .map(|pair| {
                if pair.len() == 1 {
                    return pair[0].clone();
                }
                let (a, seams_a) = &pair[0];
                let (b, seams_b) = &pair[1];
                // The seam joining the two halves is the last of `a`'s.
                let join = *seams_a.last().expect("non-top chunk has a seam");
                let merged = merge_slab_outputs([a.clone(), b.clone()].into_iter(), &[join], opts);
                // Seams still open after this node: b's trailing seam.
                (merged, seams_b.clone())
            })
            .collect();
    }
    level.into_iter().next().map(|(p, _)| p).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{eo_area, measure_op};
    use polyclip_geom::contour::rect;
    use polyclip_geom::{FillRule, Point};

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    fn seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    #[test]
    fn matches_engine_on_offset_squares_for_all_ops() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        for op in [
            BoolOp::Intersection,
            BoolOp::Union,
            BoolOp::Difference,
            BoolOp::Xor,
        ] {
            for slabs in [1usize, 2, 3, 7] {
                let r = clip_pair_slabs(&a, &b, op, slabs, &seq());
                let want = measure_op(&a, &b, op, &seq());
                let got = eo_area(&r.output);
                assert!(
                    (got - want).abs() < 1e-9,
                    "op {op:?} slabs {slabs}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn union_across_slabs_is_seamless() {
        // One tall rectangle cut by many slab boundaries must come back as a
        // single 4-vertex contour: the dissolve removes every seam.
        let a = sq(0.0, 0.0, 1.0, 10.0);
        let b = sq(0.25, 2.0, 0.75, 8.0); // strictly inside a
        let r = clip_pair_slabs(&a, &b, BoolOp::Union, 6, &seq());
        assert_eq!(r.output.len(), 1, "contours: {:?}", r.output.len());
        assert_eq!(r.output.contours()[0].len(), 4);
        assert!((eo_area(&r.output) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn interior_contours_bypass_the_merge() {
        // Small islands strictly inside slabs pass through without dissolve;
        // correctness must be unaffected.
        let mut contours = Vec::new();
        for i in 0..8 {
            let y = i as f64 * 3.0;
            contours.push(rect(0.0, y + 0.2, 1.0, y + 0.8));
        }
        let a = PolygonSet::from_contours(contours);
        let b = sq(-1.0, -1.0, 2.0, 25.0);
        let r = clip_pair_slabs(&a, &b, BoolOp::Intersection, 4, &seq());
        assert_eq!(r.output.len(), 8);
        assert!((eo_area(&r.output) - 8.0 * 0.6).abs() < 1e-9);
    }

    #[test]
    fn phase_times_are_populated() {
        let a = sq(0.0, 0.0, 4.0, 12.0);
        let b = sq(1.0, 1.0, 5.0, 11.0);
        let r = clip_pair_slabs(&a, &b, BoolOp::Intersection, 3, &seq());
        assert!(r.slabs >= 2);
        assert_eq!(r.times.per_slab_clip.len(), r.slabs);
        assert_eq!(r.times.per_slab_partition.len(), r.slabs);
        assert!(r.times.total >= r.times.merge);
        assert!(r.times.load_imbalance() >= 1.0);
    }

    #[test]
    fn degenerate_single_slab_falls_back_to_sequential() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(0.5, 0.5, 1.5, 1.5);
        let r = clip_pair_slabs(&a, &b, BoolOp::Intersection, 1, &seq());
        assert_eq!(r.slabs, 1);
        assert!((eo_area(&r.output) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn more_slabs_than_events_is_safe() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(0.5, 0.5, 1.5, 1.5);
        let r = clip_pair_slabs(&a, &b, BoolOp::Union, 64, &seq());
        assert!((eo_area(&r.output) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn concave_inputs_across_slabs() {
        // A comb-shaped subject spanning several slabs.
        let comb = PolygonSet::from_xy(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 6.0),
            (8.0, 6.0),
            (8.0, 2.0),
            (6.0, 2.0),
            (6.0, 6.0),
            (4.0, 6.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 6.0),
            (0.0, 6.0),
        ]);
        let b = sq(1.0, 1.0, 9.0, 5.0);
        for slabs in [2usize, 3, 5] {
            let r = clip_pair_slabs(&comb, &b, BoolOp::Intersection, slabs, &seq());
            let want = measure_op(&comb, &b, BoolOp::Intersection, &seq());
            assert!((eo_area(&r.output) - want).abs() < 1e-9, "slabs={slabs}");
        }
    }

    #[test]
    fn difference_result_has_correct_membership() {
        let a = sq(0.0, 0.0, 4.0, 8.0);
        let b = sq(1.0, 1.0, 3.0, 7.0);
        let r = clip_pair_slabs(&a, &b, BoolOp::Difference, 4, &seq());
        assert!(!r.output.contains(Point::new(2.0, 4.0), FillRule::EvenOdd));
        assert!(r.output.contains(Point::new(0.5, 4.0), FillRule::EvenOdd));
        assert!((eo_area(&r.output) - (32.0 - 12.0)).abs() < 1e-9);
    }

    #[test]
    fn tree_merge_equals_sequential_merge() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.3), (5.0, 9.7), (0.5, 10.0)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 4.0), (3.0, 11.0), (1.0, 5.0)]);
        for op in [BoolOp::Intersection, BoolOp::Union, BoolOp::Xor] {
            for slabs in [2usize, 3, 5, 8] {
                let s = clip_pair_slabs_with(&a, &b, op, slabs, &seq(), MergeStrategy::Sequential);
                let t = clip_pair_slabs_with(&a, &b, op, slabs, &seq(), MergeStrategy::Tree);
                assert!(
                    (eo_area(&s.output) - eo_area(&t.output)).abs() < 1e-9,
                    "op {op:?} slabs {slabs}"
                );
                assert_eq!(
                    s.output.len(),
                    t.output.len(),
                    "tree merge must dissolve every seam (op {op:?}, slabs {slabs})"
                );
            }
        }
    }

    #[test]
    fn tree_merge_seamless_single_contour() {
        // Same invariant as the sequential merge: a tall rectangle crossed
        // by many seams comes back as one 4-vertex contour.
        let a = sq(0.0, 0.0, 1.0, 10.0);
        let b = sq(0.25, 2.0, 0.75, 8.0);
        let r = clip_pair_slabs_with(&a, &b, BoolOp::Union, 6, &seq(), MergeStrategy::Tree);
        assert_eq!(r.output.len(), 1);
        assert_eq!(r.output.contours()[0].len(), 4);
    }

    #[test]
    fn slab_boundaries_of_empty_input_is_empty() {
        assert!(slab_boundaries(&[], 4).is_empty());
    }

    #[test]
    fn try_variant_matches_lenient_variant() {
        let a = sq(0.0, 0.0, 4.0, 8.0);
        let b = sq(1.0, 1.0, 3.0, 7.0);
        let r = try_clip_pair_slabs(&a, &b, BoolOp::Difference, 4, &seq()).unwrap();
        let l = clip_pair_slabs(&a, &b, BoolOp::Difference, 4, &seq());
        assert_eq!(r.output, l.output);
        assert!(r.degradations.is_empty());
        assert_eq!(r.stats.slab_retries, 0);
        assert!(r.stats.n_edges > 0, "per-slab stats must aggregate");
    }

    #[test]
    fn slab_boundaries_are_strictly_increasing() {
        let ys: Vec<OrdF64> = (0..100).map(|i| OrdF64::new((i / 10) as f64)).collect();
        let b = slab_boundaries(&ys, 8);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*b.first().unwrap(), 0.0);
        assert_eq!(*b.last().unwrap(), 9.0);
    }

    #[test]
    fn slab_boundaries_collapse_duplicate_heavy_quantiles() {
        // Inputs whose event y's are dominated by a few values: quantile
        // picks collide, and the boundaries must stay strictly increasing
        // with at most the requested number of slabs — never empty bands.
        for (distinct, reps, requested) in [
            (2usize, 50usize, 8usize),
            (3, 33, 16),
            (1, 100, 4),
            (5, 7, 64),
        ] {
            let ys: Vec<OrdF64> = (0..distinct * reps)
                .map(|i| OrdF64::new((i % distinct) as f64))
                .collect();
            let ys = par_sort_dedup_gated(ys, None);
            let b = slab_boundaries(&ys, requested);
            for w in b.windows(2) {
                assert!(w[0] < w[1], "distinct={distinct} requested={requested}");
            }
            let slabs = b.len().saturating_sub(1);
            assert!(
                slabs <= requested,
                "distinct={distinct}: {slabs} slabs > {requested} requested"
            );
            // Never more slabs than distinct event gaps.
            assert!(slabs <= distinct.saturating_sub(1));
            if distinct >= 2 {
                assert_eq!(*b.first().unwrap(), 0.0);
                assert_eq!(*b.last().unwrap(), (distinct - 1) as f64);
            }
        }
    }

    #[test]
    fn single_slab_is_perfectly_balanced() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(0.5, 0.5, 1.5, 1.5);
        let r = clip_pair_slabs(&a, &b, BoolOp::Intersection, 1, &seq());
        assert_eq!(r.slabs, 1);
        assert_eq!(r.times.load_imbalance(), 1.0);
        assert_eq!(r.times.index, Duration::ZERO);
        assert_eq!(r.times.partition_total(), Duration::ZERO);
        assert_eq!(r.times.clip_total(), r.times.per_slab_clip[0]);
    }

    #[test]
    fn phase_totals_sum_index_and_per_slab_times() {
        let t = PhaseTimes {
            sanitize: Duration::ZERO,
            index: Duration::from_millis(3),
            per_slab_partition: vec![Duration::from_millis(1), Duration::from_millis(2)],
            per_slab_clip: vec![Duration::from_millis(5), Duration::from_millis(7)],
            merge: Duration::from_millis(11),
            retry_total: Duration::ZERO,
            total: Duration::from_millis(29),
            ..Default::default()
        };
        assert_eq!(t.partition_total(), Duration::from_millis(6));
        assert_eq!(t.clip_total(), Duration::from_millis(12));
        assert!(t.load_imbalance() > 1.0);
    }

    #[test]
    fn full_scan_backend_matches_slab_index_backend() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.3), (5.0, 9.7), (0.5, 10.0)]);
        let b = PolygonSet::from_xy(&[(2.0, -1.0), (6.0, 4.0), (3.0, 11.0), (1.0, 5.0)]);
        for op in [BoolOp::Intersection, BoolOp::Union, BoolOp::Xor] {
            for slabs in [2usize, 4, 8] {
                let strategy = MergeStrategy::Sequential;
                let full = clip_pair_slabs_backend(
                    &a,
                    &b,
                    op,
                    slabs,
                    &seq(),
                    strategy,
                    PartitionBackend::FullScan,
                );
                let indexed = clip_pair_slabs_backend(
                    &a,
                    &b,
                    op,
                    slabs,
                    &seq(),
                    strategy,
                    PartitionBackend::SlabIndex,
                );
                assert_eq!(full.output, indexed.output, "op {op:?} slabs {slabs}");
                assert_eq!(full.stats, indexed.stats, "op {op:?} slabs {slabs}");
                assert_eq!(full.times.index, Duration::ZERO);
            }
        }
    }
}
