//! Merging boundary fragments into closed output contours (Steps 3.4 / 4).
//!
//! The classification and horizontal phases emit directed boundary
//! fragments with the region interior on their left. Merging is:
//!
//! 1. **cancellation** — fragments with identical geometry and opposite
//!    direction bound the same region from both sides of an internal seam
//!    (adjacent kept spans, adjacent slabs, duplicated collinear boundary);
//!    they annihilate pairwise. This is the paper's reduction-tree union of
//!    partial polygons, realized as one sort;
//! 2. **stitching** — remaining fragments form, at every vertex, a balanced
//!    set of incoming/outgoing edges. Walking from any fragment and always
//!    taking the sharpest left turn traces the face with interior on the
//!    left; repeating until all fragments are used yields all output
//!    contours (outers counterclockwise, holes clockwise);
//! 3. **virtual-vertex removal** — collinear chain vertices introduced by
//!    the scanbeam partition (the k' virtual vertices) are packed away,
//!    exactly as the paper prescribes ("removed finally by array packing").

use polyclip_geom::{orient2d, Contour, OrdF64, Orientation, Point, EPS_COLLINEAR_REL};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

type Key = (OrdF64, OrdF64);

#[inline]
fn key(p: Point) -> Key {
    (OrdF64::new(p.x), OrdF64::new(p.y))
}

/// Multiply-xor hasher for coordinate keys. Vertex coordinates are not
/// attacker-controlled hash-table keys, so the DoS protection of the
/// default SipHash only costs time here; this hasher makes the stitching
/// phase's adjacency map several times faster on large outputs.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // splitmix64-style mixing.
        let mut x = self.0 ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut x = self.0;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }
}

/// Hash map keyed by exact vertex coordinates with the fast hasher.
pub type PointMap<V> = HashMap<Key, V, BuildHasherDefault<FastHasher>>;

/// Remove opposite-direction duplicate fragments. Fragments with identical
/// geometry and direction are kept with their multiplicity (they can occur
/// at degenerate tangencies and still stitch correctly).
pub fn cancel_opposites(edges: &mut Vec<(Point, Point)>) {
    // Canonical form: (low endpoint, high endpoint, direction sign).
    let mut canon: Vec<(Key, Key, i8)> = edges
        .iter()
        .map(|&(a, b)| {
            let (ka, kb) = (key(a), key(b));
            if ka <= kb {
                (ka, kb, 1i8)
            } else {
                (kb, ka, -1i8)
            }
        })
        .collect();
    let mut order: Vec<usize> = (0..canon.len()).collect();
    order.sort_unstable_by(|&i, &j| canon[i].cmp(&canon[j]));

    let mut out: Vec<(Point, Point)> = Vec::with_capacity(edges.len());
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        let g = (canon[order[i]].0, canon[order[i]].1);
        let mut net = 0i32;
        while j < order.len() && (canon[order[j]].0, canon[order[j]].1) == g {
            net += canon[order[j]].2 as i32;
            j += 1;
        }
        if net != 0 {
            // Reconstruct |net| copies in the surviving direction.
            let (lo, hi) = g;
            let (pl, ph) = (
                Point::new(lo.0.get(), lo.1.get()),
                Point::new(hi.0.get(), hi.1.get()),
            );
            let e = if net > 0 { (pl, ph) } else { (ph, pl) };
            for _ in 0..net.abs() {
                out.push(e);
            }
        }
        i = j;
    }
    canon.clear();
    *edges = out;
}

/// Stitch directed fragments into closed contours, dropping collinear
/// (virtual) vertices when `simplify` is set.
///
/// Fragments must be interior-on-left and balanced at every vertex; in
/// release builds, fragments that cannot be closed into a loop (which only
/// happens on numerically inconsistent input) are dropped rather than
/// panicking. See [`stitch_counted`] when the caller needs to observe how
/// many fragments were dropped that way.
pub fn stitch(edges: Vec<(Point, Point)>, simplify: bool) -> Vec<Contour> {
    stitch_counted(edges, simplify).0
}

/// [`stitch`], additionally reporting the number of fragments consumed by
/// walks that failed to close. A non-zero count is the stitch-imbalance
/// signal recorded as a degradation by the fallible engine entry points:
/// the contours are still returned, but some boundary pieces are missing.
pub fn stitch_counted(mut edges: Vec<(Point, Point)>, simplify: bool) -> (Vec<Contour>, usize) {
    cancel_opposites(&mut edges);
    if edges.is_empty() {
        return (Vec::new(), 0);
    }

    // Outgoing adjacency per vertex.
    let mut adjacency: PointMap<Vec<u32>> =
        PointMap::with_capacity_and_hasher(edges.len(), Default::default());
    for (i, &(a, _)) in edges.iter().enumerate() {
        adjacency.entry(key(a)).or_default().push(i as u32);
    }
    let mut used = vec![false; edges.len()];

    let mut contours = Vec::new();
    let mut dropped = 0usize;
    for start in 0..edges.len() {
        if used[start] {
            continue;
        }
        let mut pts: Vec<Point> = Vec::new();
        let mut cur = start;
        let closed = loop {
            used[cur] = true;
            let (from, to) = edges[cur];
            pts.push(from);
            if to == edges[start].0 {
                break true; // back at the starting vertex
            }
            let d_in = to - from;
            let Some(next) = pick_next(&edges, &adjacency, &used, to, d_in) else {
                break false;
            };
            cur = next;
        };
        if closed && pts.len() >= 3 {
            let c = if simplify {
                simplify_collinear(pts)
            } else {
                Contour::new(pts)
            };
            if c.is_valid() && c.signed_area() != 0.0 {
                contours.push(c);
            }
        } else if !closed {
            // An unclosed walk indicates inconsistent input; its fragments
            // stay marked used so termination is guaranteed, and the count
            // surfaces as a stitch-imbalance degradation.
            dropped += pts.len();
        }
    }
    (contours, dropped)
}

/// The sharpest-left-turn successor: among unused fragments leaving `at`,
/// the one whose direction makes the largest counterclockwise turn from
/// `d_in` (U-turns rank highest, straight-on in the middle, sharp right
/// lowest). This keeps the traced face's interior consistently on the left.
fn pick_next(
    edges: &[(Point, Point)],
    adjacency: &PointMap<Vec<u32>>,
    used: &[bool],
    at: Point,
    d_in: Point,
) -> Option<usize> {
    let cands = adjacency.get(&key(at))?;
    let mut best: Option<(f64, usize)> = None;
    for &c in cands {
        let c = c as usize;
        if used[c] {
            continue;
        }
        let d_out = edges[c].1 - edges[c].0;
        let turn = d_in.cross(&d_out).atan2(d_in.dot(&d_out));
        // atan2(0, negative) == π for the exact U-turn: the maximum, as
        // desired. Tie-break by index for determinism.
        if best.is_none_or(|(bt, _)| turn > bt) {
            best = Some((turn, c));
        }
    }
    best.map(|(_, c)| c)
}

/// Near-collinearity for virtual-vertex removal: exactly collinear, or the
/// middle point deviates from the chord by a relative rounding-level amount
/// (virtual vertices are interpolated, so they sit within ulps of the
/// original edge, not exactly on it).
///
/// `area_tol` caps the enclosed-area change a *near*-collinear removal may
/// cause. The angular bound alone is not area-safe: every vertex of a
/// needle-shaped ring is near-collinear by angle at the ring's own scale,
/// and packing would erase the whole ring however much area it encloses.
#[inline]
fn removable(a: Point, b: Point, c: Point, area_tol: f64) -> bool {
    if orient2d(a, b, c) == Orientation::Collinear {
        return true;
    }
    let ab = b - a;
    let ac = c - a;
    let cross = ab.cross(&ac).abs();
    // |cross| = |ab||ac| sin θ; deviation of b from chord a-c ≈ cross/|ac|;
    // removing b changes the enclosed area by |cross| / 2.
    cross <= EPS_COLLINEAR_REL * ab.norm() * ac.norm() && cross * 0.5 <= area_tol
}

/// Area-change budget for near-collinear packing on this ring: the
/// rounding noise floor of the ring's own shoelace sum — the *absolute*
/// sum of the shoelace terms bounds the cancellation error of the signed
/// sum. Area features below [`EPS_COLLINEAR_REL`] of it are not
/// meaningfully enclosed by these coordinates and may be packed away; a
/// needle ring's area sits orders of magnitude above this floor and
/// survives. (Anchoring to the *signed* area would starve sliver rings,
/// whose total area is itself rounding debris.)
fn pack_area_tol(pts: &[Point]) -> f64 {
    let n = pts.len();
    let gross: f64 = (0..n)
        .map(|i| {
            let (a, b) = (pts[i], pts[(i + 1) % n]);
            (a.x * b.y).abs() + (b.x * a.y).abs()
        })
        .sum();
    EPS_COLLINEAR_REL * 0.5 * gross
}

/// Drop vertices that are (near-)collinear with their neighbours — the k'
/// virtual vertices introduced by scanbeam splitting ("removed finally by
/// array packing"). The tolerance only removes rounding-level deviations;
/// real geometry survives.
pub fn simplify_collinear(pts: Vec<Point>) -> Contour {
    let n = pts.len();
    if n < 3 {
        return Contour::new(pts);
    }
    let area_tol = pack_area_tol(&pts);
    let mut keep: Vec<Point> = Vec::with_capacity(n);
    for p in pts {
        keep.push(p);
        // Collapse the tail while the last three are collinear.
        while keep.len() >= 3 {
            let m = keep.len();
            if removable(keep[m - 3], keep[m - 2], keep[m - 1], area_tol) {
                keep.remove(m - 2);
            } else {
                break;
            }
        }
    }
    // Wrap-around: first and last vertices may also be collinear.
    loop {
        let m = keep.len();
        if m >= 3 && removable(keep[m - 2], keep[m - 1], keep[0], area_tol) {
            keep.pop();
            continue;
        }
        if m >= 3 && removable(keep[m - 1], keep[0], keep[1], area_tol) {
            keep.remove(0);
            continue;
        }
        break;
    }
    Contour::new(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::point::pt;

    fn e(ax: f64, ay: f64, bx: f64, by: f64) -> (Point, Point) {
        (pt(ax, ay), pt(bx, by))
    }

    #[test]
    fn cancellation_removes_opposite_pairs() {
        let mut edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 0.0, 0.0),
            e(0.0, 0.0, 0.0, 1.0),
        ];
        cancel_opposites(&mut edges);
        assert_eq!(edges, vec![e(0.0, 0.0, 0.0, 1.0)]);
    }

    #[test]
    fn cancellation_keeps_net_multiplicity() {
        let mut edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 0.0, 0.0),
        ];
        cancel_opposites(&mut edges);
        assert_eq!(edges, vec![e(0.0, 0.0, 1.0, 0.0)]);
    }

    #[test]
    fn stitch_single_square() {
        let edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 1.0, 1.0),
            e(1.0, 1.0, 0.0, 1.0),
            e(0.0, 1.0, 0.0, 0.0),
        ];
        let cs = stitch(edges, false);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].signed_area(), 1.0); // CCW: interior on the left
    }

    #[test]
    fn stitch_two_disjoint_triangles() {
        let edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 0.5, 1.0),
            e(0.5, 1.0, 0.0, 0.0),
            e(5.0, 0.0, 6.0, 0.0),
            e(6.0, 0.0, 5.5, 1.0),
            e(5.5, 1.0, 5.0, 0.0),
        ];
        let cs = stitch(edges, false);
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert!(c.signed_area() > 0.0);
        }
    }

    #[test]
    fn stitch_square_with_hole_orientations() {
        // Outer CCW square + inner CW square (hole): interior-on-left both.
        let edges = vec![
            e(0.0, 0.0, 4.0, 0.0),
            e(4.0, 0.0, 4.0, 4.0),
            e(4.0, 4.0, 0.0, 4.0),
            e(0.0, 4.0, 0.0, 0.0),
            // hole, clockwise
            e(1.0, 1.0, 1.0, 3.0),
            e(1.0, 3.0, 3.0, 3.0),
            e(3.0, 3.0, 3.0, 1.0),
            e(3.0, 1.0, 1.0, 1.0),
        ];
        let cs = stitch(edges, false);
        assert_eq!(cs.len(), 2);
        let areas: Vec<f64> = cs.iter().map(|c| c.signed_area()).collect();
        assert!(areas.iter().any(|&a| (a - 16.0).abs() < 1e-12));
        assert!(areas.iter().any(|&a| (a + 4.0).abs() < 1e-12));
    }

    #[test]
    fn shared_corner_resolved_into_two_contours() {
        // Two unit squares touching at (1,1): sharpest-left-turn tracing
        // must keep them as two separate faces, not a figure-eight.
        let edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 1.0, 1.0),
            e(1.0, 1.0, 0.0, 1.0),
            e(0.0, 1.0, 0.0, 0.0),
            e(1.0, 1.0, 2.0, 1.0),
            e(2.0, 1.0, 2.0, 2.0),
            e(2.0, 2.0, 1.0, 2.0),
            e(1.0, 2.0, 1.0, 1.0),
        ];
        let cs = stitch(edges, false);
        assert_eq!(cs.len(), 2);
        for c in &cs {
            assert!((c.signed_area() - 1.0).abs() < 1e-12);
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn simplify_removes_virtual_vertices() {
        let c = simplify_collinear(vec![
            pt(0.0, 0.0),
            pt(0.5, 0.0), // collinear on the bottom edge
            pt(1.0, 0.0),
            pt(1.0, 0.25),
            pt(1.0, 0.5), // collinear on the right edge
            pt(1.0, 1.0),
            pt(0.0, 1.0),
            pt(0.0, 0.5), // collinear on the left edge (wraps to first point)
        ]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.signed_area(), 1.0);
    }

    #[test]
    fn simplify_degenerates_to_empty() {
        // All points on one line: no polygon remains.
        let c = simplify_collinear(vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(2.0, 2.0), pt(3.0, 3.0)]);
        assert!(!c.is_valid());
    }

    #[test]
    fn stitched_output_is_simplified_when_requested() {
        let edges = vec![
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 2.0, 0.0), // split bottom edge
            e(2.0, 0.0, 2.0, 2.0),
            e(2.0, 2.0, 0.0, 2.0),
            e(0.0, 2.0, 0.0, 1.0),
            e(0.0, 1.0, 0.0, 0.0), // split left edge
        ];
        let cs = stitch(edges, true);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 4);
        assert_eq!(cs[0].signed_area(), 4.0);
    }

    #[test]
    fn fully_cancelling_input_produces_nothing() {
        let edges = vec![e(0.0, 0.0, 1.0, 1.0), e(1.0, 1.0, 0.0, 0.0)];
        assert!(stitch(edges, false).is_empty());
    }

    #[test]
    fn unclosed_walks_are_counted_and_closed_ones_survive() {
        let edges = vec![
            // A dead-ending two-fragment path: nothing leaves (1,1).
            e(0.0, 0.0, 1.0, 0.0),
            e(1.0, 0.0, 1.0, 1.0),
            // A complete unit square elsewhere.
            e(5.0, 0.0, 6.0, 0.0),
            e(6.0, 0.0, 6.0, 1.0),
            e(6.0, 1.0, 5.0, 1.0),
            e(5.0, 1.0, 5.0, 0.0),
        ];
        let (cs, dropped) = stitch_counted(edges, false);
        assert_eq!(cs.len(), 1);
        assert_eq!(dropped, 2);
        assert!((cs[0].signed_area() - 1.0).abs() < 1e-12);
    }
}
