//! N-ary operation conveniences on top of the binary engine.
//!
//! The paper's algorithm "can be extended to handle two sets of input
//! polygons"; GIS pipelines routinely chain further — union of many layers,
//! intersection of several masks. These helpers provide the common folds,
//! with the union fold arranged as a **parallel reduction tree** (the same
//! shape as the paper's Figure 6 merge): `O(log n)` tree depth, each level's
//! merges running concurrently on rayon.
//!
//! **Budget semantics.** These folds are lenient wrappers over [`clip`],
//! which arms [`ClipOptions::budget`] per *binary* operation — a deadline
//! bounds each clip in the chain, not the whole fold. The cancel token,
//! however, is shared across the chain: every fold polls it between nodes
//! and short-circuits to an empty result once it fires, so a long reduction
//! stops within one binary clip of cancellation.

use crate::classify::BoolOp;
use crate::engine::{clip, dissolve, ClipOptions};
use polyclip_geom::PolygonSet;

/// Union of many polygon sets via a parallel reduction tree.
///
/// Leaves hold the inputs; each internal node unions its two children.
/// Because union is associative, the result equals the left-to-right fold,
/// but the tree shape exposes parallelism and keeps intermediate results
/// small when inputs are spatially separated.
pub fn union_all(polys: &[PolygonSet], opts: &ClipOptions) -> PolygonSet {
    if opts.budget.cancel.is_cancelled() {
        return PolygonSet::new();
    }
    match polys.len() {
        0 => PolygonSet::new(),
        1 => dissolve(&polys[0], opts),
        _ => {
            let mid = polys.len() / 2;
            let (l, r) = if opts.parallel {
                rayon::join(
                    || union_all(&polys[..mid], opts),
                    || union_all(&polys[mid..], opts),
                )
            } else {
                (
                    union_all(&polys[..mid], opts),
                    union_all(&polys[mid..], opts),
                )
            };
            clip(&l, &r, BoolOp::Union, opts)
        }
    }
}

/// Intersection of many polygon sets (left fold; empty input → empty set).
///
/// The fold short-circuits as soon as the accumulator becomes empty — the
/// output-sensitive analogue for chains of masks.
pub fn intersection_all(polys: &[PolygonSet], opts: &ClipOptions) -> PolygonSet {
    let mut iter = polys.iter();
    let Some(first) = iter.next() else {
        return PolygonSet::new();
    };
    let mut acc = dissolve(first, opts);
    for p in iter {
        if acc.is_empty() || opts.budget.cancel.is_cancelled() {
            return PolygonSet::new();
        }
        acc = clip(&acc, p, BoolOp::Intersection, opts);
    }
    acc
}

/// Symmetric difference of many polygon sets (region covered by an odd
/// number of inputs). Associative, folded as a tree like [`union_all`].
pub fn xor_all(polys: &[PolygonSet], opts: &ClipOptions) -> PolygonSet {
    if opts.budget.cancel.is_cancelled() {
        return PolygonSet::new();
    }
    match polys.len() {
        0 => PolygonSet::new(),
        1 => dissolve(&polys[0], opts),
        _ => {
            let mid = polys.len() / 2;
            let (l, r) = if opts.parallel {
                rayon::join(
                    || xor_all(&polys[..mid], opts),
                    || xor_all(&polys[mid..], opts),
                )
            } else {
                (xor_all(&polys[..mid], opts), xor_all(&polys[mid..], opts))
            };
            clip(&l, &r, BoolOp::Xor, opts)
        }
    }
}

/// Subtract every `holes` entry from `base`: `base \ (h₁ ∪ h₂ ∪ …)`.
pub fn subtract_all(base: &PolygonSet, holes: &[PolygonSet], opts: &ClipOptions) -> PolygonSet {
    if holes.is_empty() {
        return dissolve(base, opts);
    }
    let mask = union_all(holes, opts);
    if opts.budget.cancel.is_cancelled() {
        return PolygonSet::new();
    }
    clip(base, &mask, BoolOp::Difference, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::eo_area;
    use polyclip_geom::contour::rect;
    use polyclip_geom::{FillRule, Point};

    fn sq(x: f64, y: f64, s: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x, y, x + s, y + s))
    }

    fn seq() -> ClipOptions {
        ClipOptions::sequential()
    }

    #[test]
    fn union_all_of_overlapping_row() {
        // Five unit squares stepping by 0.5: union is a 3 × 1 rectangle.
        let squares: Vec<PolygonSet> = (0..5).map(|i| sq(i as f64 * 0.5, 0.0, 1.0)).collect();
        for opts in [seq(), ClipOptions::default()] {
            let u = union_all(&squares, &opts);
            assert_eq!(u.len(), 1);
            assert!((eo_area(&u) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn union_matches_left_fold() {
        let polys: Vec<PolygonSet> = (0..7)
            .map(|i| sq((i % 3) as f64 * 0.7, (i / 3) as f64 * 0.8, 1.0))
            .collect();
        let tree = union_all(&polys, &seq());
        let mut fold = PolygonSet::new();
        for p in &polys {
            fold = clip(&fold, p, BoolOp::Union, &seq());
        }
        assert!((eo_area(&tree) - eo_area(&fold)).abs() < 1e-9);
    }

    #[test]
    fn intersection_all_shrinks_and_short_circuits() {
        let masks = vec![sq(0.0, 0.0, 4.0), sq(1.0, 1.0, 4.0), sq(2.0, 2.0, 4.0)];
        let i = intersection_all(&masks, &seq());
        // Overlap of the three: [2,4]x[2,4] ∩ [1,5]² ∩ [0,4]² = [2,4]².
        assert!((eo_area(&i) - 4.0).abs() < 1e-9);
        // Disjoint mask empties the chain.
        let mut masks2 = masks.clone();
        masks2.insert(1, sq(100.0, 100.0, 1.0));
        assert!(intersection_all(&masks2, &seq()).is_empty());
        assert!(intersection_all(&[], &seq()).is_empty());
    }

    #[test]
    fn xor_all_counts_parity() {
        // Three concentric squares: xor = outer ring ∪ innermost.
        let a = sq(0.0, 0.0, 6.0);
        let b = sq(1.0, 1.0, 4.0);
        let c = sq(2.0, 2.0, 2.0);
        let x = xor_all(&[a, b, c], &seq());
        // Areas: 36 − 16 + 4 = 24 under odd-coverage parity.
        assert!((eo_area(&x) - 24.0).abs() < 1e-9);
        assert!(x.contains(Point::new(0.5, 0.5), FillRule::EvenOdd)); // 1 cover
        assert!(!x.contains(Point::new(1.5, 1.5), FillRule::EvenOdd)); // 2 covers
        assert!(x.contains(Point::new(3.0, 3.0), FillRule::EvenOdd)); // 3 covers
    }

    #[test]
    fn subtract_all_carves_holes() {
        let base = sq(0.0, 0.0, 10.0);
        let holes = vec![sq(1.0, 1.0, 2.0), sq(5.0, 5.0, 2.0), sq(4.0, 1.0, 2.0)];
        let out = subtract_all(&base, &holes, &seq());
        assert!((eo_area(&out) - (100.0 - 12.0)).abs() < 1e-9);
        assert!(!out.contains(Point::new(2.0, 2.0), FillRule::EvenOdd));
        assert!(out.contains(Point::new(9.0, 9.0), FillRule::EvenOdd));
        // No holes: plain dissolve.
        let same = subtract_all(&base, &[], &seq());
        assert!((eo_area(&same) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_inputs_are_dissolved() {
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let u = union_all(std::slice::from_ref(&bow), &seq());
        crate::validate::assert_canonical(&u);
        assert!((eo_area(&u) - eo_area(&bow)).abs() < 1e-9);
    }
}
