//! Output-sensitivity instrumentation.
//!
//! The paper's complexity bound is `O((n + k + k') log(n + k + k') / p)`:
//! `n` input edges, `k` edge intersections, `k'` virtual vertices introduced
//! by the scanbeam partition. [`ClipStats`] reports each term for a clip run
//! so the benches can demonstrate that work scales with *output* size, not
//! with the worst case — the property that separates this algorithm from
//! Karinthi et al.'s Θ(n²)-processor algorithm.

/// Instance-size and output-size counters for one clipping run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClipStats {
    /// Non-horizontal input edges across both polygons (the paper's n).
    pub n_edges: usize,
    /// Distinct event scanlines in the final (Round B) schedule.
    pub n_events: usize,
    /// Scanbeams processed.
    pub n_beams: usize,
    /// Transversal edge intersections discovered (the paper's k).
    pub k_intersections: usize,
    /// Virtual vertices introduced by splitting edges at scanlines
    /// (the paper's k'): total sub-edges minus original edges.
    pub k_prime: usize,
    /// Total sub-edges processed across all scanbeams (n + k').
    pub n_subedges: usize,
    /// Output contours.
    pub out_contours: usize,
    /// Output vertices after virtual-vertex removal.
    pub out_vertices: usize,
    /// Crossing-refinement rounds the Round-B partition ran (1 = the
    /// first build was already crossing-free).
    pub refine_rounds: usize,
    /// Refinement rounds served by the incremental dirty-beam patch
    /// instead of a full scanbeam rebuild (at most `refine_rounds - 1`;
    /// 0 when `incremental_refine` is off or every round fell back).
    pub refine_rounds_incremental: usize,
    /// Dirty beams re-split across all incremental rounds; every other
    /// beam was carried over verbatim.
    pub beams_rebuilt: usize,
    /// Residual crossings accepted unresolved at the floating-point
    /// resolution limit (0 on numerically clean instances).
    pub residuals_accepted: usize,
    /// Slab workers that needed a retry or a sequential fallback after a
    /// panic (Algorithm 2 / overlay runs; always 0 for single-slab runs).
    pub slab_retries: usize,
    /// Individual input repairs the sanitizer performed across both
    /// operands (0 when the input was clean or sanitization was off).
    pub input_repairs: usize,
    /// Output self-repair ladder invocations (0 unless
    /// `validate_output` found violations).
    pub output_repairs: usize,
    /// Slabs whose clip finished within budget (Algorithm 2 / overlay
    /// runs; equals `total_slabs` unless the run returned a
    /// [`Degradation::PartialResult`](crate::Degradation::PartialResult)).
    pub completed_slabs: usize,
    /// Slabs the run was partitioned into (0 for single-slab engine runs;
    /// the slab driver sets both fields after merging).
    pub total_slabs: usize,
    /// This run reused a [`PreparedLayer`](crate::prepared::PreparedLayer)'s
    /// frozen subject-side state instead of recomputing it (mirrors
    /// [`PhaseTimes::prepared_reused`](crate::algo2::PhaseTimes)).
    pub prepared_reused: bool,
}

impl ClipStats {
    /// The paper's processor bound for logarithmic time: n + k + k'.
    pub fn processor_bound(&self) -> usize {
        self.n_edges + self.k_intersections + self.k_prime
    }

    /// Total work in the PRAM accounting: (n + k + k') · log(n + k + k').
    pub fn work_bound(&self) -> f64 {
        let m = self.processor_bound().max(2) as f64;
        m * m.log2()
    }

    /// Accumulate another run's counters into this one — used to fold
    /// per-slab engine statistics into a whole-instance aggregate
    /// (refinement rounds take the maximum; everything else sums).
    pub fn absorb(&mut self, other: &ClipStats) {
        self.n_edges += other.n_edges;
        self.n_events += other.n_events;
        self.n_beams += other.n_beams;
        self.k_intersections += other.k_intersections;
        self.k_prime += other.k_prime;
        self.n_subedges += other.n_subedges;
        self.out_contours += other.out_contours;
        self.out_vertices += other.out_vertices;
        self.refine_rounds = self.refine_rounds.max(other.refine_rounds);
        self.refine_rounds_incremental += other.refine_rounds_incremental;
        self.beams_rebuilt += other.beams_rebuilt;
        self.residuals_accepted += other.residuals_accepted;
        self.slab_retries += other.slab_retries;
        self.input_repairs += other.input_repairs;
        self.output_repairs += other.output_repairs;
        self.completed_slabs += other.completed_slabs;
        self.total_slabs += other.total_slabs;
        self.prepared_reused |= other.prepared_reused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_in_counters() {
        let a = ClipStats {
            n_edges: 100,
            k_intersections: 10,
            k_prime: 50,
            ..Default::default()
        };
        let b = ClipStats {
            n_edges: 100,
            k_intersections: 500,
            k_prime: 50,
            ..Default::default()
        };
        assert_eq!(a.processor_bound(), 160);
        assert!(b.processor_bound() > a.processor_bound());
        assert!(b.work_bound() > a.work_bound());
    }

    #[test]
    fn work_bound_defined_for_empty_instances() {
        let s = ClipStats::default();
        assert_eq!(s.processor_bound(), 0);
        assert!(s.work_bound() >= 0.0);
    }
}
