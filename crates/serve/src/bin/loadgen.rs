//! Open-loop load generator for `polyclip_serve`, emitting the
//! `BENCH_serve.json` artifact.
//!
//! ```sh
//! cargo run --release -p polyclip-serve --bin loadgen -- --spawn           # full run
//! cargo run --release -p polyclip-serve --bin loadgen -- --spawn --smoke   # CI smoke
//! cargo run --release -p polyclip-serve --bin loadgen -- --addr HOST:PORT  # external server
//! ```
//!
//! **Open loop**: arrivals follow a Poisson process at the offered rate
//! regardless of how the server is coping — the generator never waits for
//! a response before sending the next request. That is the arrival model
//! under which overload actually happens; a closed-loop client would
//! politely self-throttle and hide saturation.
//!
//! The run calibrates mean service time with a short closed-loop burst,
//! then drives ≥ 3 load points at multiples of the estimated capacity —
//! the last one past saturation, where the artifact must show shedding
//! engaging (`rejected > 0`) while the p99 of *completed* requests stays
//! bounded by the deadline distribution instead of growing with the queue.
//!
//! Traffic mix per request, deterministically seeded: priority 20% high /
//! 60% normal / 20% low; deadline 5× / 20× / 100× mean service time;
//! queries drawn from a 32-box pool over the layer's bbox (repeats are
//! what exercises the result cache).

use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_bench::{exit_after_artifact, flatten_layer, write_artifact};
use polyclip_serve::protocol::{render_clip_request, Priority};
use polyclip_serve::server::{ServeConfig, Server};
use rand::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    spawn: bool,
    smoke: bool,
    out: String,
    duration_ms: u64,
    workers: usize,
    queue_cap: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: None,
        spawn: false,
        smoke: false,
        out: "BENCH_serve.json".to_string(),
        duration_ms: 2_000,
        workers: 2,
        queue_cap: 64,
        seed: 7,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut num = |what: &str| -> f64 {
            it.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{what}: {e}"))
        };
        match flag.as_str() {
            "--addr" => a.addr = Some(it.next().expect("--addr needs a value").clone()),
            "--spawn" => a.spawn = true,
            "--smoke" => {
                a.smoke = true;
                a.duration_ms = 400;
            }
            "--out" => a.out = it.next().expect("--out needs a value").clone(),
            "--duration-ms" => a.duration_ms = num("--duration-ms") as u64,
            "--workers" => a.workers = num("--workers") as usize,
            "--queue-cap" => a.queue_cap = num("--queue-cap") as usize,
            "--seed" => a.seed = num("--seed") as u64,
            other => panic!("unknown flag {other}"),
        }
    }
    if a.addr.is_none() && !a.spawn {
        a.spawn = true; // no target given: self-host
    }
    a
}

/// Everything the reader thread learns about responses, shared with the
/// sender. Counters are cumulative; per-load-point numbers are deltas.
#[derive(Default)]
struct Collector {
    pending: Mutex<HashMap<u64, Instant>>,
    latencies_ms: Mutex<Vec<f64>>,
    ok: AtomicU64,
    cache_hits: AtomicU64,
    partial: AtomicU64,
    retried: AtomicU64,
    rejected: AtomicU64,
    rejected_shed: AtomicU64,
    errors: AtomicU64,
    admin: Mutex<HashMap<u64, Value>>,
}

impl Collector {
    fn absorb(&self, line: &str) {
        let Ok(doc) = Value::parse(line.trim_end()) else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let id = doc.get("id").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let sent_at = self.pending.lock().unwrap().remove(&id);
        match doc.get("status").and_then(|v| v.as_str()) {
            // Clip responses always carry queue_ms; admin responses never
            // do — that is the discriminator, not field names that might
            // collide.
            Some("ok") if doc.get("queue_ms").is_some() => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                if doc.get("cache_hit").and_then(|v| v.as_bool()) == Some(true) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                if doc.get("partial").and_then(|v| v.as_bool()) == Some(true) {
                    self.partial.fetch_add(1, Ordering::Relaxed);
                }
                if doc.get("retried").and_then(|v| v.as_bool()) == Some(true) {
                    self.retried.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(t0) = sent_at {
                    self.latencies_ms
                        .lock()
                        .unwrap()
                        .push(t0.elapsed().as_secs_f64() * 1e3);
                }
            }
            Some("ok") => {
                // Admin response (stats/info/shutdown): park for the rpc
                // waiter.
                self.admin.lock().unwrap().insert(id, doc);
            }
            Some("rejected") => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if doc.get("reason").and_then(|v| v.as_str()) == Some("shed") {
                    self.rejected_shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> [u64; 7] {
        [
            self.ok.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.partial.load(Ordering::Relaxed),
            self.retried.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.rejected_shed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        ]
    }
}

struct Client {
    stream: Mutex<TcpStream>,
    collector: Arc<Collector>,
    next_id: AtomicU64,
}

impl Client {
    fn connect(addr: &str, collector: Arc<Collector>, stop: Arc<AtomicBool>) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to server");
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone().expect("clone stream");
        {
            let collector = Arc::clone(&collector);
            read_half
                .set_read_timeout(Some(Duration::from_millis(100)))
                .expect("set read timeout");
            std::thread::spawn(move || {
                let mut reader = BufReader::new(read_half);
                let mut line = String::new();
                loop {
                    match reader.read_line(&mut line) {
                        Ok(0) => return,
                        Ok(_) => {
                            collector.absorb(&line);
                            line.clear();
                        }
                        // Timeout: a partial line may already sit in the
                        // buffer — keep it and let the next read finish it.
                        Err(_) => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                    }
                }
            });
        }
        Client {
            stream: Mutex::new(stream),
            collector,
            next_id: AtomicU64::new(1_000),
        }
    }

    fn send_raw(&self, line: &str) {
        self.stream
            .lock()
            .unwrap()
            .write_all(line.as_bytes())
            .expect("send request");
    }

    fn send_clip(&self, spec: &RequestSpec) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let line = render_clip_request(
            id,
            BoolOp::Intersection,
            "gis",
            spec.priority,
            spec.deadline_ms,
            &spec.query,
        );
        self.collector
            .pending
            .lock()
            .unwrap()
            .insert(id, Instant::now());
        self.send_raw(&line);
        id
    }

    /// Blocking admin round-trip (stats / info / shutdown).
    fn rpc(&self, op: &str, layer: Option<&str>) -> Value {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut kv = vec![("id", Value::Num(id as f64)), ("op", Value::Str(op.into()))];
        if let Some(layer) = layer {
            kv.push(("layer", Value::Str(layer.into())));
        }
        let mut line = Value::obj(kv).render_compact();
        line.push('\n');
        self.send_raw(&line);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(doc) = self.collector.admin.lock().unwrap().remove(&id) {
                return doc;
            }
            assert!(Instant::now() < deadline, "admin rpc \"{op}\" timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Wait until no sent request is unanswered (or the grace expires).
    fn drain(&self, grace: Duration) -> usize {
        let deadline = Instant::now() + grace;
        loop {
            let outstanding = self.collector.pending.lock().unwrap().len();
            if outstanding == 0 || Instant::now() >= deadline {
                // Whatever is still pending after the grace is lost;
                // forget it so the next load point starts clean.
                self.collector.pending.lock().unwrap().clear();
                return outstanding;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

struct RequestSpec {
    priority: Priority,
    deadline_ms: Option<f64>,
    query: Vec<(f64, f64)>,
}

/// The deterministic traffic model: query mix, priority mix, deadline
/// distribution. 30% of requests re-draw from a small hot pool (the
/// cache-hittable fraction); the rest are fresh boxes the server has
/// never seen, so most of the offered load does real engine work — a
/// pool small enough to live in cache would make "saturation" a no-op.
struct TrafficModel {
    hot_pool: Vec<Vec<(f64, f64)>>,
    bbox: (f64, f64, f64, f64),
    mean_service_ms: f64,
    rng: StdRng,
}

impl TrafficModel {
    fn new(bbox: (f64, f64, f64, f64), seed: u64) -> TrafficModel {
        let mut model = TrafficModel {
            hot_pool: Vec::new(),
            bbox,
            mean_service_ms: 1.0,
            rng: StdRng::seed_from_u64(seed),
        };
        model.hot_pool = (0..16).map(|_| model_box(&mut model)).collect();
        model
    }

    /// A fresh query box the server cannot have cached.
    fn fresh_box(&mut self) -> Vec<(f64, f64)> {
        model_box(self)
    }

    fn draw(&mut self) -> RequestSpec {
        let query = if self.rng.gen_bool(0.3) {
            let i = self.rng.gen_range(0..self.hot_pool.len());
            self.hot_pool[i].clone()
        } else {
            self.fresh_box()
        };
        let priority = match self.rng.gen_range(0.0..1.0) {
            p if p < 0.2 => Priority::High,
            p if p < 0.8 => Priority::Normal,
            _ => Priority::Low,
        };
        let mult = match self.rng.gen_range(0.0..1.0) {
            p if p < 0.3 => 5.0,
            p if p < 0.7 => 20.0,
            _ => 100.0,
        };
        RequestSpec {
            priority,
            deadline_ms: Some((self.mean_service_ms * mult).max(1.0)),
            query,
        }
    }

    /// Exponential interarrival gap for an offered rate (per second).
    fn gap(&mut self, rate_per_s: f64) -> Duration {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        Duration::from_secs_f64((-u.ln()) / rate_per_s)
    }
}

/// One random axis-aligned query box: 2–8% of the layer span per side.
fn model_box(m: &mut TrafficModel) -> Vec<(f64, f64)> {
    let (xmin, ymin, xmax, ymax) = m.bbox;
    let (w, h) = (xmax - xmin, ymax - ymin);
    let frac = m.rng.gen_range(0.02..0.08);
    let (qw, qh) = (w * frac, h * frac);
    let x0 = xmin + m.rng.gen_range(0.0..1.0) * (w - qw);
    let y0 = ymin + m.rng.gen_range(0.0..1.0) * (h - qh);
    vec![(x0, y0), (x0 + qw, y0), (x0 + qw, y0 + qh), (x0, y0 + qh)]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let args = parse_args();

    // Self-hosted mode: an in-process server on an ephemeral port — the
    // traffic still crosses a real TCP socket.
    let server = if args.spawn {
        let scale = if args.smoke { 0.002 } else { 0.01 };
        let gis = flatten_layer(1, scale, 1007);
        let layer = PreparedLayer::build_with_pool_limit(
            &gis,
            &ClipOptions::sequential(),
            args.workers.max(1),
        )
        .expect("layer build");
        let cfg = ServeConfig {
            workers: args.workers,
            queue_capacity: args.queue_cap,
            ..ServeConfig::default()
        };
        Some(Server::start(cfg, vec![("gis".into(), layer)], "127.0.0.1:0").expect("spawn server"))
    } else {
        None
    };
    let addr = match (&server, &args.addr) {
        (Some(s), _) => s.local_addr().to_string(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!(),
    };
    println!("driving {addr}");

    let collector = Arc::new(Collector::default());
    let stop = Arc::new(AtomicBool::new(false));
    let client = Client::connect(&addr, Arc::clone(&collector), Arc::clone(&stop));

    // Layer geometry, without out-of-band knowledge of the dataset.
    let info = client.rpc("info", Some("gis"));
    let f = |k: &str| info.get(k).and_then(|v| v.as_f64()).expect("info field");
    let mut model = TrafficModel::new((f("xmin"), f("ymin"), f("xmax"), f("ymax")), args.seed);

    // Closed-loop calibration: mean service time → capacity estimate.
    let calib_n = 24;
    for _ in 0..calib_n {
        // Fresh boxes with no deadline: calibration must measure the
        // engine's miss path, not the cache, and must not be shed.
        let spec = RequestSpec {
            priority: Priority::Normal,
            deadline_ms: None,
            query: model.fresh_box(),
        };
        client.send_clip(&spec);
        client.drain(Duration::from_secs(10));
    }
    let calib: Vec<f64> = std::mem::take(&mut *collector.latencies_ms.lock().unwrap());
    assert!(
        calib.len() >= calib_n / 2,
        "calibration got {} answers for {calib_n} requests",
        calib.len()
    );
    let mean_ms = calib.iter().sum::<f64>() / calib.len() as f64;
    model.mean_service_ms = mean_ms.max(0.05);
    let capacity_qps = args.workers as f64 / (model.mean_service_ms / 1e3);
    println!(
        "calibration: mean service {:.3}ms → est. capacity {:.0} QPS ({} workers)",
        model.mean_service_ms, capacity_qps, args.workers
    );

    // Three load points: comfortable, at capacity, past saturation.
    let multipliers = [0.5, 1.0, 2.5];
    let duration = Duration::from_millis(args.duration_ms);
    let mut points: Vec<Value> = Vec::new();
    for &m in &multipliers {
        let rate = (capacity_qps * m).clamp(5.0, 50_000.0);
        let before = collector.snapshot();
        let stats_before = client.rpc("stats", None);
        collector.latencies_ms.lock().unwrap().clear();

        let t0 = Instant::now();
        let mut sent = 0u64;
        let mut next = t0;
        while t0.elapsed() < duration {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
                continue;
            }
            let spec = model.draw();
            client.send_clip(&spec);
            sent += 1;
            next += model.gap(rate);
        }
        let lost = client.drain(Duration::from_secs(3));
        let elapsed = t0.elapsed().as_secs_f64();

        let after = collector.snapshot();
        let stats_after = client.rpc("stats", None);
        let d = |i: usize| (after[i] - before[i]) as f64;
        let sd = |k: &str| {
            stats_after.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0)
                - stats_before.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0)
        };
        let mut lat = collector.latencies_ms.lock().unwrap().clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (ok, rejected) = (d(0), d(4));
        let shed_rate = rejected / (sent as f64).max(1.0);
        println!(
            "load ×{m:<4} offered {:.0} QPS: sent {sent}, ok {ok:.0}, rejected {rejected:.0} \
             (shed rate {:.2}), p50 {:.2}ms, p99 {:.2}ms, cache hits {:.0}, partial {:.0}, lost {lost}",
            sent as f64 / elapsed,
            shed_rate,
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
            d(1),
            d(2),
        );
        points.push(Value::obj(vec![
            ("multiplier", Value::Num(m)),
            ("target_qps", Value::Num(rate)),
            ("offered_qps", Value::Num(sent as f64 / elapsed)),
            ("duration_s", Value::Num(elapsed)),
            ("sent", Value::Num(sent as f64)),
            ("ok", Value::Num(ok)),
            ("throughput_qps", Value::Num(ok / elapsed)),
            ("rejected", Value::Num(rejected)),
            ("rejected_shed", Value::Num(d(5))),
            ("shed_rate", Value::Num(shed_rate)),
            ("errors", Value::Num(d(6))),
            ("lost", Value::Num(lost as f64)),
            ("partial", Value::Num(d(2))),
            ("partial_rate", Value::Num(d(2) / (sent as f64).max(1.0))),
            ("retried", Value::Num(d(3))),
            ("cache_hits", Value::Num(d(1))),
            ("cache_hit_rate", Value::Num(d(1) / ok.max(1.0))),
            ("p50_ms", Value::Num(percentile(&lat, 0.50))),
            ("p90_ms", Value::Num(percentile(&lat, 0.90))),
            ("p99_ms", Value::Num(percentile(&lat, 0.99))),
            (
                "max_ms",
                Value::Num(lat.last().copied().unwrap_or(f64::NAN)),
            ),
            ("saturated", Value::Bool(rejected > 0.0)),
            ("server_doomed_dropped", Value::Num(sd("doomed_dropped"))),
            ("server_degrade_max", {
                Value::Num(
                    stats_after
                        .get("degrade_max")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                )
            }),
            ("server_worker_respawns", Value::Num(sd("worker_respawns"))),
        ]));
    }

    let final_stats = client.rpc("stats", None);
    if let Some(s) = server.as_ref() {
        client.rpc("shutdown", None);
        s.wait();
    }
    stop.store(true, Ordering::Relaxed);

    let doc = Value::obj(vec![
        ("bench", Value::Str("serve_loadgen".into())),
        ("layer", Value::Str("gis".into())),
        ("op", Value::Str("intersection".into())),
        ("workers", Value::Num(args.workers as f64)),
        ("queue_capacity", Value::Num(args.queue_cap as f64)),
        ("seed", Value::Num(args.seed as f64)),
        ("smoke", Value::Bool(args.smoke)),
        ("calibration_mean_ms", Value::Num(model.mean_service_ms)),
        ("est_capacity_qps", Value::Num(capacity_qps)),
        ("load_points", Value::Arr(points)),
        ("server_stats", final_stats),
    ]);
    exit_after_artifact(write_artifact(&args.out, &doc))
}
