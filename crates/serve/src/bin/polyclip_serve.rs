//! The clip server: builds prepared layers from the synthetic generators,
//! binds a TCP port, and serves line-delimited JSON clip requests until a
//! client sends the `shutdown` verb (or the process is killed).
//!
//! ```sh
//! cargo run --release -p polyclip-serve --bin polyclip_serve -- --addr 127.0.0.1:0
//! ```
//!
//! The first stdout line is `LISTENING <addr>` — scrape it to learn the
//! ephemeral port. Two layers are registered:
//!
//! * `gis` — the flattened Table III GIS layer (hundreds of small
//!   contours; the base-map regime [`PreparedLayer`] targets);
//! * `blob` — one giant smooth blob (dense, slab skipping can't help).
//!
//! Fault flags (`--fault-*`) require building with
//! `--features fault-injection`; without it they are rejected rather than
//! silently ignored — a resilience drill that silently doesn't drill is
//! worse than none.

use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;
use polyclip_bench::flatten_layer;
use polyclip_serve::faults::ServeFaultPlan;
use polyclip_serve::server::{ServeConfig, Server};
use std::io::Write as _;
use std::sync::Arc;

struct Args {
    addr: String,
    workers: usize,
    queue_cap: usize,
    cache_cap: usize,
    slabs: usize,
    scale: f64,
    n: usize,
    faults: ServeFaultPlan,
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 64,
        cache_cap: 256,
        slabs: 1,
        scale: 0.01,
        n: 10_000,
        faults: ServeFaultPlan::default(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let mut fault_flag_seen = false;
    while let Some(flag) = it.next() {
        let mut num = |what: &str| -> f64 {
            it.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{what}: {e}"))
        };
        match flag.as_str() {
            "--addr" => a.addr = it.next().expect("--addr needs a value").clone(),
            "--workers" => a.workers = num("--workers") as usize,
            "--queue-cap" => a.queue_cap = num("--queue-cap") as usize,
            "--cache-cap" => a.cache_cap = num("--cache-cap") as usize,
            "--slabs" => a.slabs = num("--slabs") as usize,
            "--scale" => a.scale = num("--scale"),
            "--n" => a.n = num("--n") as usize,
            "--fault-kill-after" => {
                a.faults.kill_after_jobs = Some(num("--fault-kill-after") as u64);
                fault_flag_seen = true;
            }
            "--fault-kill-count" => {
                a.faults.kill_count = num("--fault-kill-count") as u64;
                fault_flag_seen = true;
            }
            "--fault-stall-ms" => {
                a.faults.stall_pull_ms = num("--fault-stall-ms") as u64;
                fault_flag_seen = true;
            }
            "--fault-stall-pulls" => {
                a.faults.stall_pulls = num("--fault-stall-pulls") as u64;
                fault_flag_seen = true;
            }
            "--fault-corrupt-every" => {
                a.faults.corrupt_deadline_every = Some(num("--fault-corrupt-every") as u64);
                fault_flag_seen = true;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if fault_flag_seen && !cfg!(feature = "fault-injection") {
        panic!(
            "--fault-* flags need a build with --features fault-injection; \
             refusing to run a drill that cannot drill"
        );
    }
    a
}

fn main() {
    let args = parse_args();

    // Build the layers before binding: a server that accepts connections
    // must be ready to serve them.
    let opts = ClipOptions::sequential();
    let pool_limit = args.workers.max(1);
    let gis_set = flatten_layer(1, args.scale, 1007);
    let gis = PreparedLayer::build_with_pool_limit(&gis_set, &opts, pool_limit)
        .expect("gis layer build failed");
    let (blob_set, _) = synthetic_pair(args.n, 42);
    let blob = PreparedLayer::build_with_pool_limit(&blob_set, &opts, pool_limit)
        .expect("blob layer build failed");
    eprintln!(
        "layers ready: gis {} contours / {} events, blob {} vertices / {} events",
        gis.subject().len(),
        gis.event_count(),
        blob.subject().vertex_count(),
        blob.event_count()
    );

    let cfg = ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        cache_capacity: args.cache_cap,
        slabs: args.slabs,
        faults: args.faults,
        ..ServeConfig::default()
    };
    let layers: Vec<(String, Arc<PreparedLayer>)> =
        vec![("gis".into(), gis), ("blob".into(), blob)];
    let server = Server::start(cfg, layers, &args.addr).expect("bind failed");

    // The contract line CI and loadgen scrape; flush so pipes see it now.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("stdout flush");

    server.wait();
    eprintln!("server drained and stopped");
}
