//! The service executor: a TCP listener, per-connection reader threads,
//! and a hand-rolled worker pool draining the admission queue.
//!
//! Request lifecycle:
//!
//! ```text
//! reader thread                     worker pool
//! ─────────────                     ───────────
//! parse line
//! ├─ admin verb → answer inline
//! └─ clip:
//!    degradation ladder (shed?)
//!    circuit breaker (open?)
//!    admission queue (full? doomed?)──▶ pop (priority order)
//!                                      drop if deadline already passed
//!                                      cache begin (hit / lead / coalesce)
//!                                      execute under remaining budget
//!                                      ├─ ok → respond, cache, EWMA
//!                                      └─ err → retry once on a
//!                                         tightened budget, partials
//!                                         allowed → respond / error
//! ```
//!
//! Worker panics are contained per thread: the worker catches the unwind,
//! bumps a respawn counter, and re-enters its loop — the [`Flight`]
//! (single-flight) guard abandons any computation the panic interrupted,
//! so coalesced followers are never stranded. Graceful shutdown closes the
//! queue, drains what was admitted, and joins every pool thread.

use crate::admission::{AdmissionQueue, ServiceEstimator};
use crate::breaker::{BreakerDecision, CircuitBreaker};
use crate::cache::{hash_coords, CachedClip, Lookup, QueryKey, ResultCache};
use crate::degrade::{DegradeLadder, DegradeLevel};
use crate::faults::{FaultState, ServeFaultPlan};
use crate::protocol::{parse_request, ClipRequest, Priority, RejectReason, Request, Response};
use polyclip::prelude::*;
use polyclip_bench::json::Value;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Stable wire discriminant for a [`BoolOp`] (cache and EWMA key).
pub fn op_code(op: BoolOp) -> u8 {
    match op {
        BoolOp::Intersection => 0,
        BoolOp::Union => 1,
        BoolOp::Difference => 2,
        BoolOp::Xor => 3,
    }
}

/// Server tuning knobs. The defaults suit the integration tests; the bins
/// expose the interesting ones as flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admission-queue capacity across all priority classes.
    pub queue_capacity: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Slabs per clip. The pool's parallelism is across requests, so the
    /// default keeps each request single-slab.
    pub slabs: usize,
    /// Engine options template for every request (degradation rungs edit a
    /// per-request copy). `validate_output` starts on so ladder level 1
    /// has a real cost to shed.
    pub base_opts: ClipOptions,
    /// Degradation watermarks.
    pub ladder: DegradeLadder,
    /// Consecutive failures that trip a layer's breaker.
    pub breaker_threshold: u32,
    /// Base breaker cooldown (doubles per re-trip, capped at 32×).
    pub breaker_cooldown: Duration,
    /// EWMA prior for unseen (layer, op) service times.
    pub estimator_prior: Duration,
    /// Deterministic serve-layer faults (inert without `fault-injection`).
    pub faults: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            slabs: 1,
            base_opts: ClipOptions {
                validate_output: true,
                ..ClipOptions::sequential()
            },
            ladder: DegradeLadder::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            estimator_prior: Duration::from_millis(2),
            faults: ServeFaultPlan::default(),
        }
    }
}

/// Cumulative service counters, all monotone, all lock-free reads.
#[derive(Default)]
pub struct ServerStats {
    /// Clip requests parsed off the wire.
    pub received: AtomicU64,
    /// Clip requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Rejections, by reason.
    pub rejected_queue_full: AtomicU64,
    /// Rejected because the EWMA said the deadline was unmeetable.
    pub rejected_deadline: AtomicU64,
    /// Rejected by an open circuit breaker.
    pub rejected_breaker: AtomicU64,
    /// Shed (lowest priority under ladder level 3).
    pub rejected_shed: AtomicU64,
    /// Admitted but dropped unstarted at dequeue: deadline had passed.
    pub doomed_dropped: AtomicU64,
    /// Completed successfully (includes partial and retried successes).
    pub completed_ok: AtomicU64,
    /// Of the completed: carried a partial (salvaged-slab) result.
    pub completed_partial: AtomicU64,
    /// Of the completed: needed the tightened-budget retry.
    pub completed_retried: AtomicU64,
    /// Failed after the full retry ladder.
    pub failed: AtomicU64,
    /// Retry attempts launched.
    pub retries: AtomicU64,
    /// Worker panics contained and respawned.
    pub worker_respawns: AtomicU64,
    /// Malformed request lines answered with protocol errors.
    pub protocol_errors: AtomicU64,
    /// Highest degradation ladder level observed.
    pub degrade_max: AtomicU64,
}

impl ServerStats {
    fn note_level(&self, level: DegradeLevel) {
        self.degrade_max
            .fetch_max(level.as_u8() as u64, Ordering::Relaxed);
    }
}

struct RegisteredLayer {
    layer: Arc<PreparedLayer>,
    epoch: u64,
    breaker: CircuitBreaker,
}

struct Job {
    req: ClipRequest,
    out: Arc<ConnWriter>,
    /// Set by the deadline-corruption fault: treat as expired at dequeue.
    doomed: bool,
}

struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, resp: &Response) {
        let line = resp.to_line();
        // A vanished client is its own problem; the server moves on.
        let _ = self.stream.lock().unwrap().write_all(line.as_bytes());
    }
}

struct ServerInner {
    cfg: ServeConfig,
    layers: HashMap<String, RegisteredLayer>,
    queue: AdmissionQueue<Job>,
    estimator: ServiceEstimator,
    cache: Arc<ResultCache>,
    stats: ServerStats,
    fault_state: FaultState,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] then [`Server::wait`].
pub struct Server {
    inner: Arc<ServerInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port), register `layers`,
    /// and start the accept loop plus the worker pool.
    pub fn start(
        cfg: ServeConfig,
        layers: Vec<(String, Arc<PreparedLayer>)>,
        addr: &str,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = AdmissionQueue::new(cfg.queue_capacity, cfg.workers);
        let layers = layers
            .into_iter()
            .enumerate()
            .map(|(i, (name, layer))| {
                let entry = RegisteredLayer {
                    layer,
                    epoch: i as u64 + 1,
                    breaker: CircuitBreaker::new(
                        cfg.breaker_threshold,
                        cfg.breaker_cooldown,
                        cfg.breaker_cooldown * 32,
                    ),
                };
                (name, entry)
            })
            .collect();
        let inner = Arc::new(ServerInner {
            estimator: ServiceEstimator::new(cfg.estimator_prior, 0.2),
            cache: ResultCache::new(cfg.cache_capacity),
            queue,
            cfg,
            layers,
            stats: ServerStats::default(),
            fault_state: FaultState::default(),
            shutdown: AtomicBool::new(false),
            local_addr,
        });

        let mut threads = Vec::new();
        for w in 0..inner.cfg.workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("clip-worker-{w}"))
                    .spawn(move || worker_thread(&inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("clip-accept".into())
                    .spawn(move || accept_loop(&inner, listener))?,
            );
        }
        Ok(Server {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Begin graceful shutdown: stop accepting, drain the queue.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Join the accept loop and every worker (call after [`shutdown`],
    /// or after a client sent the `shutdown` verb).
    ///
    /// [`shutdown`]: Server::shutdown
    pub fn wait(&self) {
        let threads: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }

    /// Counter snapshot (exposed for tests; the wire gets the same data
    /// via the `stats` verb).
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// (hits, coalesced, misses) of the result cache.
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        self.inner.cache.counters()
    }
}

impl ServerInner {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn stats_doc(&self) -> Value {
        let s = &self.stats;
        let (hits, coalesced, misses) = self.cache.counters();
        let n = |a: &AtomicU64| Value::Num(a.load(Ordering::Relaxed) as f64);
        Value::obj(vec![
            ("received", n(&s.received)),
            ("accepted", n(&s.accepted)),
            ("rejected_queue_full", n(&s.rejected_queue_full)),
            ("rejected_deadline", n(&s.rejected_deadline)),
            ("rejected_breaker", n(&s.rejected_breaker)),
            ("rejected_shed", n(&s.rejected_shed)),
            ("doomed_dropped", n(&s.doomed_dropped)),
            ("completed_ok", n(&s.completed_ok)),
            ("completed_partial", n(&s.completed_partial)),
            ("completed_retried", n(&s.completed_retried)),
            ("failed", n(&s.failed)),
            ("retries", n(&s.retries)),
            ("worker_respawns", n(&s.worker_respawns)),
            ("protocol_errors", n(&s.protocol_errors)),
            ("degrade_max", n(&s.degrade_max)),
            ("cache_hits", Value::Num(hits as f64)),
            ("cache_coalesced", Value::Num(coalesced as f64)),
            ("cache_misses", Value::Num(misses as f64)),
            ("queue_depth", Value::Num(self.queue.depth() as f64)),
            ("faults_armed", Value::Bool(self.cfg.faults.any())),
        ])
    }
}

fn accept_loop(inner: &Arc<ServerInner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        // Readers are detached: they exit when their client hangs up.
        let _ = std::thread::Builder::new()
            .name("clip-conn".into())
            .spawn(move || connection_loop(&inner, stream));
    }
}

fn connection_loop(inner: &Arc<ServerInner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
    });
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client hung up
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(msg) => {
                inner.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: 0,
                    message: msg,
                });
            }
            Ok(Request::Stats { id }) => {
                writer.send(&Response::Admin {
                    id,
                    doc: inner.stats_doc(),
                });
            }
            Ok(Request::Info { id, layer }) => match inner.layers.get(&layer) {
                None => writer.send(&Response::Error {
                    id,
                    message: format!("unknown layer \"{layer}\""),
                }),
                Some(entry) => {
                    let bb = entry.layer.bbox();
                    writer.send(&Response::Admin {
                        id,
                        doc: Value::obj(vec![
                            ("layer", Value::Str(layer)),
                            ("epoch", Value::Num(entry.epoch as f64)),
                            ("xmin", Value::Num(bb.xmin)),
                            ("ymin", Value::Num(bb.ymin)),
                            ("xmax", Value::Num(bb.xmax)),
                            ("ymax", Value::Num(bb.ymax)),
                            ("events", Value::Num(entry.layer.event_count() as f64)),
                            (
                                "layer_contours",
                                Value::Num(entry.layer.subject().len() as f64),
                            ),
                        ]),
                    });
                }
            },
            Ok(Request::Shutdown { id }) => {
                writer.send(&Response::Admin {
                    id,
                    doc: Value::obj(vec![("stopping", Value::Bool(true))]),
                });
                inner.begin_shutdown();
                return;
            }
            Ok(Request::Clip(req)) => admit_clip(inner, req, &writer),
        }
    }
}

/// The admission pipeline (reader thread): ladder shed → breaker → queue.
fn admit_clip(inner: &Arc<ServerInner>, req: ClipRequest, writer: &Arc<ConnWriter>) {
    let stats = &inner.stats;
    stats.received.fetch_add(1, Ordering::Relaxed);
    let id = req.id;
    let Some(layer) = inner.layers.get(&req.layer) else {
        writer.send(&Response::Error {
            id,
            message: format!("unknown layer \"{}\"", req.layer),
        });
        return;
    };
    let est = inner.estimator.estimate(&req.layer, op_code(req.op));

    let level = inner.cfg.ladder.level(inner.queue.fill_fraction());
    stats.note_level(level);
    if level.sheds_low_priority() && req.priority == Priority::Low {
        stats.rejected_shed.fetch_add(1, Ordering::Relaxed);
        writer.send(&Response::Rejected {
            id,
            reason: RejectReason::Shed,
            retry_after_ms: inner.queue.estimated_queue_delay(est).as_secs_f64() * 1e3,
        });
        return;
    }

    match layer.breaker.admit(Instant::now()) {
        BreakerDecision::Reject(after) => {
            stats.rejected_breaker.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Rejected {
                id,
                reason: RejectReason::BreakerOpen,
                retry_after_ms: after.as_secs_f64() * 1e3,
            });
            return;
        }
        BreakerDecision::Allow | BreakerDecision::Probe => {}
    }

    let remaining = req.deadline_ms.map(|ms| Duration::from_secs_f64(ms / 1e3));
    let doomed = inner.fault_state.corrupts_deadline(&inner.cfg.faults);
    let priority = req.priority;
    let job = Job {
        req,
        out: Arc::clone(writer),
        doomed,
    };
    match inner.queue.try_admit(job, priority, remaining, est) {
        Ok(()) => {
            stats.accepted.fetch_add(1, Ordering::Relaxed);
        }
        Err((job, rej)) => {
            match rej.reason {
                RejectReason::QueueFull => &stats.rejected_queue_full,
                _ => &stats.rejected_deadline,
            }
            .fetch_add(1, Ordering::Relaxed);
            job.out.send(&Response::Rejected {
                id,
                reason: rej.reason,
                retry_after_ms: rej.retry_after.as_secs_f64() * 1e3,
            });
        }
    }
}

fn worker_thread(inner: &Arc<ServerInner>) {
    loop {
        let clean_exit = catch_unwind(AssertUnwindSafe(|| worker_loop(inner))).is_ok();
        if clean_exit {
            return; // queue closed and drained
        }
        inner.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
        if inner.shutdown.load(Ordering::SeqCst) && inner.queue.depth() == 0 {
            return;
        }
        // Respawn: the same OS thread re-enters the loop with fresh state.
    }
}

fn worker_loop(inner: &Arc<ServerInner>) {
    let mut jobs_done = 0u64;
    loop {
        inner.fault_state.maybe_stall_pull(&inner.cfg.faults);
        let Some(entry) = inner.queue.pop() else {
            return;
        };
        let queue_ms = entry.enqueued_at.elapsed().as_secs_f64() * 1e3;
        // A corrupted deadline expires "now": by the time process_job
        // re-reads the clock the job is already late.
        let expires_at = if entry.item.doomed {
            Some(Instant::now())
        } else {
            entry.expires_at
        };
        process_job(inner, entry.item, expires_at, queue_ms);
        jobs_done += 1;
        if inner
            .fault_state
            .should_kill_worker(&inner.cfg.faults, jobs_done)
        {
            panic!("fault-injection: worker killed after {jobs_done} jobs");
        }
    }
}

struct ExecOutcome {
    contours: usize,
    area: f64,
    partial: bool,
    retried: bool,
    degraded: Vec<String>,
    exec: Duration,
}

fn process_job(inner: &Arc<ServerInner>, job: Job, expires_at: Option<Instant>, queue_ms: f64) {
    let req = &job.req;
    let stats = &inner.stats;
    // Doomed work is dropped unstarted: running it can only make every
    // *other* deadline in the queue worse.
    if let Some(exp) = expires_at {
        if Instant::now() >= exp {
            stats.doomed_dropped.fetch_add(1, Ordering::Relaxed);
            job.out.send(&Response::Rejected {
                id: req.id,
                reason: RejectReason::DeadlineUnmeetable,
                retry_after_ms: 0.0,
            });
            return;
        }
    }
    let layer = &inner.layers[&req.layer];
    let key = QueryKey {
        epoch: layer.epoch,
        op: op_code(req.op),
        query_hash: hash_coords(
            req.query
                .contours()
                .iter()
                .flat_map(|c| c.points().iter().map(|p| (p.x, p.y))),
        ),
    };
    match inner.cache.begin(key) {
        Lookup::Hit(v, _waited) => {
            stats.completed_ok.fetch_add(1, Ordering::Relaxed);
            job.out.send(&Response::Ok {
                id: req.id,
                contours: v.contours,
                area: v.area,
                partial: false,
                cache_hit: true,
                retried: false,
                degraded: v.degraded,
                queue_ms,
                exec_ms: 0.0,
            });
        }
        Lookup::Lead(flight) => match execute(inner, layer, req, expires_at) {
            Ok(o) => {
                layer.breaker.on_success();
                if !o.partial && !o.retried {
                    inner.estimator.record(&req.layer, op_code(req.op), o.exec);
                    flight.complete(CachedClip {
                        contours: o.contours,
                        area: o.area,
                        degraded: o.degraded.clone(),
                    });
                } else {
                    // Overload-shaped answers must not outlive the
                    // overload that shaped them.
                    flight.abandon();
                }
                stats.completed_ok.fetch_add(1, Ordering::Relaxed);
                if o.partial {
                    stats.completed_partial.fetch_add(1, Ordering::Relaxed);
                }
                if o.retried {
                    stats.completed_retried.fetch_add(1, Ordering::Relaxed);
                }
                job.out.send(&Response::Ok {
                    id: req.id,
                    contours: o.contours,
                    area: o.area,
                    partial: o.partial,
                    cache_hit: false,
                    retried: o.retried,
                    degraded: o.degraded,
                    queue_ms,
                    exec_ms: o.exec.as_secs_f64() * 1e3,
                });
            }
            Err(message) => {
                flight.abandon();
                layer.breaker.on_failure(Instant::now());
                stats.failed.fetch_add(1, Ordering::Relaxed);
                job.out.send(&Response::Error {
                    id: req.id,
                    message,
                });
            }
        },
    }
}

/// Run the clip under the remaining budget; on failure, retry once on a
/// tightened budget with partial results allowed.
fn execute(
    inner: &Arc<ServerInner>,
    layer: &RegisteredLayer,
    req: &ClipRequest,
    expires_at: Option<Instant>,
) -> Result<ExecOutcome, String> {
    // The ladder level is re-read at execution time: load may have
    // changed while the job sat queued, and the level that matters is
    // the one the work runs under.
    let level = inner.cfg.ladder.level(inner.queue.fill_fraction());
    inner.stats.note_level(level);
    let mut opts = inner.cfg.base_opts.clone();
    level.apply(&mut opts);
    let now = Instant::now();
    if let Some(exp) = expires_at {
        opts.budget.deadline = Some(exp.saturating_duration_since(now));
    }
    opts.budget.arm_now();

    let attempt = |opts: &ClipOptions| -> Result<Algo2Result, String> {
        catch_unwind(AssertUnwindSafe(|| {
            try_clip_prepared(&layer.layer, &req.query, req.op, inner.cfg.slabs, opts)
        }))
        .map_err(|_| "engine panic escaped the slab ladder".to_string())?
        .map_err(|e| e.to_string())
    };

    let t0 = Instant::now();
    let first = attempt(&opts);
    let (res, retried) = match first {
        Ok(res) => (res, false),
        Err(first_err) => {
            layer.breaker.on_failure(Instant::now());
            inner.stats.retries.fetch_add(1, Ordering::Relaxed);
            // Retry on what's *left* of the deadline, scaled down so the
            // retry cannot immediately re-trip, with slab salvage on.
            let mut budget = opts.budget.tighten(0.5);
            budget.allow_partial = true;
            let retry_opts = ClipOptions {
                budget,
                validate_output: false,
                ..opts.clone()
            };
            match attempt(&retry_opts) {
                Ok(res) => (res, true),
                Err(second_err) => {
                    return Err(format!(
                        "failed after retry: {second_err} (first attempt: {first_err})"
                    ));
                }
            }
        }
    };
    let exec = t0.elapsed();

    let partial = res
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::PartialResult { .. }));
    let mut degraded: Vec<String> = res.degradations.iter().map(|d| d.to_string()).collect();
    if level > DegradeLevel::Normal || retried {
        degraded.push(
            Degradation::ServiceDegraded {
                level: level.as_u8(),
                retried,
            }
            .to_string(),
        );
    }
    Ok(ExecOutcome {
        contours: res.output.len(),
        area: eo_area(&res.output),
        partial,
        retried,
        degraded,
        exec,
    })
}
