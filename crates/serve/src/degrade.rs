//! The graceful-degradation ladder: trade answer quality for liveness,
//! one explicit rung at a time, as the admission queue fills.
//!
//! The load signal is queue fill fraction (depth / capacity) — it needs no
//! clock, no sampling window, and reacts the moment arrivals outpace
//! service. Three watermarks map it to a ladder level:
//!
//! | level | watermark | effect |
//! |---|---|---|
//! | 0 | —       | full service |
//! | 1 | `0.50`  | output validation disabled (skip the re-validation sweep) |
//! | 2 | `0.75`  | partial results forced (`allow_partial`: salvage completed slabs on budget blow) |
//! | 3 | `0.90`  | lowest-priority class shed at admission |
//!
//! Each level includes every effect below it. Any request executed at
//! level ≥ 1 carries a [`Degradation::ServiceDegraded`] rung in its
//! response — the service never quietly serves a degraded answer.

use polyclip::prelude::ClipOptions;

/// A rung on the ladder. Ordered: higher = more degraded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum DegradeLevel {
    /// Full service.
    #[default]
    Normal = 0,
    /// Output validation disabled.
    NoValidate = 1,
    /// Partial results forced on budget exhaustion.
    ForcePartial = 2,
    /// Low-priority traffic shed at admission.
    ShedLow = 3,
}

impl DegradeLevel {
    /// Numeric level for wire reporting.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Whether this level skips output validation.
    pub fn disables_validation(self) -> bool {
        self >= DegradeLevel::NoValidate
    }

    /// Whether this level forces `allow_partial`.
    pub fn forces_partial(self) -> bool {
        self >= DegradeLevel::ForcePartial
    }

    /// Whether this level sheds the lowest priority class.
    pub fn sheds_low_priority(self) -> bool {
        self >= DegradeLevel::ShedLow
    }

    /// Apply this level's effects to a request's engine options.
    pub fn apply(self, opts: &mut ClipOptions) {
        if self.disables_validation() {
            opts.validate_output = false;
        }
        if self.forces_partial() {
            opts.budget.allow_partial = true;
        }
    }
}

/// Watermark table mapping fill fraction to [`DegradeLevel`].
#[derive(Clone, Copy, Debug)]
pub struct DegradeLadder {
    /// Fill fractions at which levels 1, 2, 3 engage (ascending).
    pub watermarks: [f64; 3],
}

impl Default for DegradeLadder {
    fn default() -> Self {
        DegradeLadder {
            watermarks: [0.50, 0.75, 0.90],
        }
    }
}

impl DegradeLadder {
    /// The ladder level for a queue fill fraction. Pure: same fill, same
    /// level — the tests and the fault-injection harness rely on it.
    pub fn level(&self, fill: f64) -> DegradeLevel {
        let [w1, w2, w3] = self.watermarks;
        if fill >= w3 {
            DegradeLevel::ShedLow
        } else if fill >= w2 {
            DegradeLevel::ForcePartial
        } else if fill >= w1 {
            DegradeLevel::NoValidate
        } else {
            DegradeLevel::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_map_to_monotone_levels() {
        let l = DegradeLadder::default();
        assert_eq!(l.level(0.0), DegradeLevel::Normal);
        assert_eq!(l.level(0.49), DegradeLevel::Normal);
        assert_eq!(l.level(0.50), DegradeLevel::NoValidate);
        assert_eq!(l.level(0.75), DegradeLevel::ForcePartial);
        assert_eq!(l.level(0.90), DegradeLevel::ShedLow);
        assert_eq!(l.level(2.0), DegradeLevel::ShedLow);
        // Monotone in fill: more load never un-degrades.
        let mut prev = DegradeLevel::Normal;
        for i in 0..=100 {
            let lvl = l.level(i as f64 / 100.0);
            assert!(lvl >= prev);
            prev = lvl;
        }
    }

    #[test]
    fn levels_are_cumulative_and_apply_edits_options() {
        let mut opts = ClipOptions {
            validate_output: true,
            ..ClipOptions::sequential()
        };
        DegradeLevel::Normal.apply(&mut opts);
        assert!(opts.validate_output && !opts.budget.allow_partial);
        DegradeLevel::NoValidate.apply(&mut opts);
        assert!(!opts.validate_output && !opts.budget.allow_partial);
        assert!(DegradeLevel::ForcePartial.disables_validation());
        assert!(DegradeLevel::ShedLow.forces_partial());
        let mut opts2 = ClipOptions {
            validate_output: true,
            ..ClipOptions::sequential()
        };
        DegradeLevel::ShedLow.apply(&mut opts2);
        assert!(!opts2.validate_output && opts2.budget.allow_partial);
    }
}
