//! # polyclip-serve — a long-lived clip service that degrades, never dies
//!
//! The engine crates answer one question: *clip these polygons, correctly,
//! within this budget*. This crate answers the operational one: keep
//! answering that question for hours under an open-loop arrival stream that
//! does not care whether the fleet is keeping up. Five pillars
//! (DESIGN.md §4.10):
//!
//! 1. **Deadline-aware admission** ([`admission`]) — a bounded priority
//!    queue that rejects on *arrival* when the EWMA-estimated queue delay
//!    for the request's (op, layer) would already blow its deadline,
//!    returning a typed rejection with a `retry_after_ms` hint instead of
//!    letting doomed work poison the queue.
//! 2. **Circuit breaking + retry** ([`breaker`]) — budget-trip and panic
//!    failures are retried once on a [`tightened`](polyclip::prelude::ExecBudget::tighten)
//!    budget with partial results allowed; repeated failures trip a
//!    per-layer breaker that sheds load outright until a half-open probe
//!    succeeds.
//! 3. **Graceful degradation** ([`degrade`]) — watermarks on queue depth
//!    walk a ladder: disable output validation, force partial results,
//!    shed the lowest priority class. Every rung taken is surfaced to the
//!    client as a [`Degradation::ServiceDegraded`](polyclip::prelude::Degradation)
//!    in the response, never silently.
//! 4. **Result caching** ([`cache`]) — an LRU keyed on (layer epoch, op,
//!    query hash) with single-flight coalescing: concurrent identical
//!    queries compute once and share the answer.
//! 5. **Deterministic fault injection** ([`faults`], behind the
//!    `fault-injection` feature) — kill workers, stall queue pulls,
//!    corrupt deadlines, on a fixed schedule, so the recovery ladder is
//!    *tested*, not hoped for.
//!
//! The wire protocol ([`protocol`]) is line-delimited JSON over plain
//! `std::net` TCP; the executor ([`server`]) is a hand-rolled worker pool
//! with panic containment and respawn. No external dependencies.
//!
//! ```sh
//! cargo run --release -p polyclip-serve --bin polyclip_serve -- --addr 127.0.0.1:0
//! cargo run --release -p polyclip-serve --bin loadgen -- --spawn --smoke
//! ```

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod degrade;
pub mod faults;
pub mod protocol;
pub mod server;

pub use protocol::{Priority, RejectReason, Request, Response};
pub use server::{ServeConfig, Server, ServerStats};
