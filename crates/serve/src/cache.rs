//! LRU result cache with single-flight coalescing.
//!
//! Keyed on (layer epoch, op, query hash): a cache entry is valid exactly
//! as long as the prepared layer it was computed against — bumping the
//! epoch on layer reload invalidates every stale entry without a scan.
//!
//! **Single flight**: when N identical queries race, the first becomes the
//! *leader* and computes; the other N−1 block on the entry and reuse the
//! leader's answer — the engine runs once, not N times. A leader that
//! fails (or whose result is not cacheable, e.g. a partial answer produced
//! under overload) *abandons* the flight: one blocked follower is promoted
//! to leader and the rest keep waiting. Leaders are tracked by a guard
//! ([`Flight`]) whose `Drop` abandons the flight, so a panicking worker
//! can never strand its followers.
//!
//! Only clean, complete results are cached: a partial answer computed
//! under a blown budget must not be served after the overload clears.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: (layer epoch, op code, query-geometry hash).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QueryKey {
    /// Registration epoch of the layer the query ran against.
    pub epoch: u64,
    /// Boolean-op discriminant.
    pub op: u8,
    /// FNV-1a over the query's coordinate bits.
    pub query_hash: u64,
}

/// FNV-1a over the raw IEEE-754 bits of a coordinate list. Bit-exact
/// queries — the only kind a cache may unify — hash equal; everything
/// else is a miss.
pub fn hash_coords<I: IntoIterator<Item = (f64, f64)>>(coords: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for (x, y) in coords {
        step(x.to_bits());
        step(y.to_bits());
    }
    h
}

/// The cached answer for one key — the response-sized digest, not the
/// geometry (the service returns contour count + area checksums).
#[derive(Clone, Debug)]
pub struct CachedClip {
    /// Contours in the result.
    pub contours: usize,
    /// Even-odd area of the result.
    pub area: f64,
    /// Degradation descriptions the original run absorbed.
    pub degraded: Vec<String>,
}

struct CacheInner {
    map: HashMap<QueryKey, CachedClip>,
    // Front = least recently used. Touch = remove + push_back; entries
    // are small and capacity modest, so the O(n) remove is noise next to
    // a clip.
    lru: VecDeque<QueryKey>,
    inflight: HashMap<QueryKey, u32>,
}

/// The cache. All three counters are cumulative totals for stats.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    cv: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// Leadership guard for one in-flight computation. [`Flight::complete`]
/// publishes the result to cache and followers; dropping without
/// completing abandons the flight (promoting one follower to leader).
pub struct Flight {
    cache: Arc<ResultCache>,
    key: QueryKey,
    done: bool,
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// The answer was cached (or a coalesced leader produced it while we
    /// waited). The flag is true when this caller waited on another
    /// request's flight rather than hitting the map directly.
    Hit(CachedClip, bool),
    /// This caller is the leader and must compute, then
    /// [`Flight::complete`] or drop-to-abandon.
    Lead(Flight),
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                inflight: HashMap::new(),
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        })
    }

    /// Look up `key`; on miss, either become the leader or wait for the
    /// current one.
    pub fn begin(self: &Arc<Self>, key: QueryKey) -> Lookup {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            if let Some(v) = inner.map.get(&key).cloned() {
                if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                    inner.lru.remove(pos);
                    inner.lru.push_back(key);
                }
                if waited {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                return Lookup::Hit(v, waited);
            }
            if let Some(waiters) = inner.inflight.get_mut(&key) {
                *waiters += 1;
                waited = true;
                inner = self.cv.wait(inner).unwrap();
                // Re-check from the top: the leader either published
                // (map hit) or abandoned (we may now lead).
                if let Some(w) = inner.inflight.get_mut(&key) {
                    *w -= 1;
                }
                continue;
            }
            inner.inflight.insert(key, 0);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Lead(Flight {
                cache: Arc::clone(self),
                key,
                done: false,
            });
        }
    }

    fn publish(&self, key: QueryKey, value: CachedClip) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key, value).is_none() {
            inner.lru.push_back(key);
            while inner.lru.len() > self.capacity {
                if let Some(old) = inner.lru.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
        inner.inflight.remove(&key);
        drop(inner);
        self.cv.notify_all();
    }

    fn abandon(&self, key: QueryKey) {
        let mut inner = self.inner.lock().unwrap();
        inner.inflight.remove(&key);
        drop(inner);
        self.cv.notify_all();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, coalesced, misses) cumulative counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl Flight {
    /// Publish the leader's result: inserts into the LRU and releases
    /// every coalesced follower with a hit.
    pub fn complete(mut self, value: CachedClip) {
        self.done = true;
        self.cache.publish(self.key, value);
    }

    /// Explicitly abandon (non-cacheable result): followers are released
    /// and one of them re-leads. Dropping the guard does the same.
    pub fn abandon(mut self) {
        self.done = true;
        self.cache.abandon(self.key);
    }
}

impl Drop for Flight {
    fn drop(&mut self) {
        if !self.done {
            self.cache.abandon(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn key(h: u64) -> QueryKey {
        QueryKey {
            epoch: 1,
            op: 0,
            query_hash: h,
        }
    }

    fn clip(area: f64) -> CachedClip {
        CachedClip {
            contours: 1,
            area,
            degraded: Vec::new(),
        }
    }

    #[test]
    fn hash_distinguishes_bit_different_queries() {
        let a = hash_coords([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        let b = hash_coords([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0 + 1e-15)]);
        let c = hash_coords([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        // -0.0 and 0.0 are different bits, hence different cache lines.
        assert_ne!(hash_coords([(0.0, 0.0)]), hash_coords([(-0.0, 0.0)]));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let c = ResultCache::new(2);
        for h in 0..2u64 {
            let Lookup::Lead(f) = c.begin(key(h)) else {
                panic!("fresh key must lead")
            };
            f.complete(clip(h as f64));
        }
        // Touch key 0 so key 1 is now the LRU victim.
        assert!(matches!(c.begin(key(0)), Lookup::Hit(..)));
        let Lookup::Lead(f) = c.begin(key(2)) else {
            panic!("fresh key must lead")
        };
        f.complete(clip(2.0));
        assert_eq!(c.len(), 2);
        assert!(
            matches!(c.begin(key(0)), Lookup::Hit(..)),
            "recently used survived"
        );
        assert!(
            matches!(c.begin(key(1)), Lookup::Lead(_)),
            "LRU entry must have been evicted"
        );
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_queries() {
        let c = ResultCache::new(8);
        let Lookup::Lead(flight) = c.begin(key(9)) else {
            panic!("first caller must lead")
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || match c.begin(key(9)) {
                    Lookup::Hit(v, waited) => (v.area, waited),
                    Lookup::Lead(_) => panic!("follower must not lead while flight is live"),
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(30));
        flight.complete(clip(42.0));
        for f in followers {
            let (area, waited) = f.join().unwrap();
            assert_eq!(area, 42.0);
            assert!(waited, "followers must report coalescing");
        }
        let (hits, coalesced, misses) = c.counters();
        assert_eq!((hits, coalesced, misses), (0, 4, 1));
    }

    #[test]
    fn abandoned_flight_promotes_a_follower_to_leader() {
        let c = ResultCache::new(8);
        let Lookup::Lead(flight) = c.begin(key(5)) else {
            panic!("first caller must lead")
        };
        let follower = {
            let c = Arc::clone(&c);
            thread::spawn(move || match c.begin(key(5)) {
                Lookup::Lead(f) => {
                    f.complete(clip(7.0));
                    true
                }
                Lookup::Hit(..) => false,
            })
        };
        thread::sleep(Duration::from_millis(30));
        drop(flight); // leader dies without publishing
        assert!(
            follower.join().unwrap(),
            "a follower must inherit the flight after abandon"
        );
        assert!(matches!(c.begin(key(5)), Lookup::Hit(..)));
    }
}
