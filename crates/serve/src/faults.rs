//! Deterministic fault injection for the serving layer, mirroring the
//! engine's [`FaultPlan`](polyclip::prelude::FaultPlan) discipline: the
//! plan is plain data, always constructible, and **inert unless the
//! `fault-injection` cargo feature is enabled** — production builds carry
//! the fields but compile the behaviour out.
//!
//! Three faults, each keyed to deterministic counters rather than clocks
//! or randomness, so a test run either always trips or never does:
//!
//! * **worker kill** — a worker thread panics after completing its N-th
//!   job, at most `kill_count` workers fleet-wide. Exercises panic
//!   containment and respawn.
//! * **pull stall** — the first `stall_pulls` queue pulls sleep
//!   `stall_pull_ms` before popping. Backs the queue up on demand so the
//!   degradation watermarks engage on a workload that would otherwise be
//!   too fast to saturate.
//! * **deadline corruption** — every `corrupt_deadline_every`-th admitted
//!   clip request has its deadline zeroed *after* admission. Produces
//!   doomed-at-dequeue jobs deterministically, exercising the drop path.

use std::sync::atomic::{AtomicU64, Ordering};

/// The serve-layer fault plan. Default = no faults.
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    /// Panic a worker after it completes this many jobs.
    pub kill_after_jobs: Option<u64>,
    /// Fleet-wide cap on worker kills (0 with `kill_after_jobs` set means
    /// unlimited — every worker dies on schedule, forever).
    pub kill_count: u64,
    /// Sleep this long before each of the first `stall_pulls` queue pulls.
    pub stall_pull_ms: u64,
    /// How many pulls to stall.
    pub stall_pulls: u64,
    /// Zero the deadline of every N-th admitted clip request.
    pub corrupt_deadline_every: Option<u64>,
}

impl ServeFaultPlan {
    /// True when any fault is configured (used by stats reporting).
    pub fn any(&self) -> bool {
        self.kill_after_jobs.is_some()
            || (self.stall_pull_ms > 0 && self.stall_pulls > 0)
            || self.corrupt_deadline_every.is_some()
    }
}

/// Shared mutable fault state: the deterministic counters the plan's
/// triggers consume.
#[derive(Default)]
// The counters are only consumed when the feature compiles the triggers in.
#[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
pub struct FaultState {
    kills_done: AtomicU64,
    pulls_seen: AtomicU64,
    admitted_seen: AtomicU64,
}

impl FaultState {
    /// Workers killed so far (respawn accounting cross-checks this).
    pub fn kills(&self) -> u64 {
        self.kills_done.load(Ordering::Relaxed)
    }

    /// Decide whether the calling worker should die now, having just
    /// completed its `jobs_done`-th job. Consumes one kill credit.
    #[allow(unused_variables)]
    pub fn should_kill_worker(&self, plan: &ServeFaultPlan, jobs_done: u64) -> bool {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(n) = plan.kill_after_jobs {
                if jobs_done == n {
                    if plan.kill_count == 0 {
                        self.kills_done.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    // Claim a kill credit atomically; losers stay alive.
                    let mut cur = self.kills_done.load(Ordering::Relaxed);
                    while cur < plan.kill_count {
                        match self.kills_done.compare_exchange(
                            cur,
                            cur + 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => return true,
                            Err(seen) => cur = seen,
                        }
                    }
                }
            }
        }
        false
    }

    /// Stall the calling worker's queue pull if the plan says so.
    #[allow(unused_variables)]
    pub fn maybe_stall_pull(&self, plan: &ServeFaultPlan) {
        #[cfg(feature = "fault-injection")]
        {
            if plan.stall_pull_ms > 0 {
                let seq = self.pulls_seen.fetch_add(1, Ordering::Relaxed);
                if seq < plan.stall_pulls {
                    std::thread::sleep(std::time::Duration::from_millis(plan.stall_pull_ms));
                }
            }
        }
    }

    /// Whether this admitted request's deadline should be corrupted
    /// (zeroed). Counts admitted clip requests 1, 2, 3, …; fires on
    /// multiples of the plan's period.
    #[allow(unused_variables)]
    pub fn corrupts_deadline(&self, plan: &ServeFaultPlan) -> bool {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(every) = plan.corrupt_deadline_every {
                let seq = self.admitted_seen.fetch_add(1, Ordering::Relaxed) + 1;
                return every > 0 && seq.is_multiple_of(every);
            }
        }
        false
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn kill_credits_are_bounded_and_deterministic() {
        let plan = ServeFaultPlan {
            kill_after_jobs: Some(3),
            kill_count: 2,
            ..Default::default()
        };
        let st = FaultState::default();
        assert!(!st.should_kill_worker(&plan, 2));
        assert!(st.should_kill_worker(&plan, 3)); // worker A dies
        assert!(st.should_kill_worker(&plan, 3)); // worker B dies
        assert!(!st.should_kill_worker(&plan, 3)); // credits exhausted
        assert_eq!(st.kills(), 2);
    }

    #[test]
    fn deadline_corruption_fires_on_exact_multiples() {
        let plan = ServeFaultPlan {
            corrupt_deadline_every: Some(3),
            ..Default::default()
        };
        let st = FaultState::default();
        let fired: Vec<bool> = (0..6).map(|_| st.corrupts_deadline(&plan)).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
    }
}

#[cfg(all(test, not(feature = "fault-injection")))]
mod tests {
    use super::*;

    #[test]
    fn plans_are_inert_without_the_feature() {
        let plan = ServeFaultPlan {
            kill_after_jobs: Some(1),
            kill_count: 100,
            stall_pull_ms: 10_000,
            stall_pulls: u64::MAX,
            corrupt_deadline_every: Some(1),
        };
        let st = FaultState::default();
        assert!(!st.should_kill_worker(&plan, 1));
        assert!(!st.corrupts_deadline(&plan));
        let t0 = std::time::Instant::now();
        st.maybe_stall_pull(&plan);
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
    }
}
