//! Wire protocol: line-delimited JSON over TCP.
//!
//! One request per `\n`-terminated line in, one response line out,
//! correlated by `id` (responses may arrive out of order — the worker pool
//! finishes jobs as it finishes them). The document subset is exactly what
//! [`polyclip_bench::json`] parses and renders, so the server, the load
//! generator, and the bench artifacts share one schema.
//!
//! ```text
//! → {"id":7,"op":"intersection","layer":"gis","priority":1,
//!    "deadline_ms":50,"query":[[x0,y0],[x1,y1],...]}
//! ← {"id":7,"status":"ok","contours":3,"area":0.0912,"partial":false,
//!    "cache_hit":false,"retried":false,"degraded":[...],
//!    "queue_ms":0.4,"exec_ms":3.1}
//! ← {"id":9,"status":"rejected","reason":"queue_full","retry_after_ms":12.5}
//! ```
//!
//! Admin verbs (`"op":"stats"`, `"op":"info"`, `"op":"shutdown"`) bypass
//! the clip queue entirely: an operator must be able to inspect and stop an
//! overloaded server *because* it is overloaded.

use polyclip::prelude::{BoolOp, PolygonSet};
use polyclip_bench::json::Value;

/// Scheduling class carried by every clip request. Lower value = more
/// important. Under the deepest degradation rung the server sheds `Low`
/// outright.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Priority {
    /// Interactive / latency-sensitive traffic; shed last.
    High = 0,
    /// The default class.
    #[default]
    Normal = 1,
    /// Batch / best-effort traffic; shed first under overload.
    Low = 2,
}

impl Priority {
    /// Queue-bucket index (0 = most important).
    pub fn index(self) -> usize {
        self as usize
    }

    /// All classes, most important first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn from_num(x: f64) -> Priority {
        match x as i64 {
            0 => Priority::High,
            2 => Priority::Low,
            _ => Priority::Normal,
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// A clip query against a named prepared layer.
    Clip(ClipRequest),
    /// Snapshot of the server counters.
    Stats { id: u64 },
    /// Layer metadata (bbox, epoch) — what a load generator needs to craft
    /// queries without out-of-band knowledge of the dataset.
    Info { id: u64, layer: String },
    /// Graceful shutdown: stop accepting, drain, exit.
    Shutdown { id: u64 },
}

/// The clip variant of [`Request`].
#[derive(Clone, Debug)]
pub struct ClipRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Boolean operation to run.
    pub op: BoolOp,
    /// Name of the registered prepared layer to clip against.
    pub layer: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Client deadline in milliseconds, measured from arrival. `None`
    /// means the client will wait forever (admission still bounds the
    /// queue).
    pub deadline_ms: Option<f64>,
    /// Query polygon: one implicit-closed contour of (x, y) vertices.
    pub query: PolygonSet,
}

/// Why a request was turned away at the door.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The EWMA-estimated queue delay already exceeds the request's
    /// deadline: accepting it would only produce a late failure.
    DeadlineUnmeetable,
    /// The per-layer circuit breaker is open after repeated failures.
    BreakerOpen,
    /// The degradation ladder is shedding this priority class.
    Shed,
}

impl RejectReason {
    /// Wire tag for the rejection.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineUnmeetable => "deadline_unmeetable",
            RejectReason::BreakerOpen => "breaker_open",
            RejectReason::Shed => "shed",
        }
    }
}

/// A response line, ready to render.
#[derive(Clone, Debug)]
pub enum Response {
    /// The clip completed (possibly partial, possibly degraded).
    Ok {
        id: u64,
        /// Contours in the result.
        contours: usize,
        /// Even-odd area of the result (a cheap end-to-end checksum — the
        /// full geometry would dwarf every other byte on the wire; clients
        /// that need it can fetch it out of band).
        area: f64,
        /// True when the budget blew mid-run and completed slabs were
        /// salvaged.
        partial: bool,
        /// True when the answer came from the result cache (directly or by
        /// coalescing onto an in-flight twin).
        cache_hit: bool,
        /// True when the first attempt failed and the tightened-budget
        /// retry produced this answer.
        retried: bool,
        /// Human-readable degradations absorbed, engine rungs and service
        /// rungs alike.
        degraded: Vec<String>,
        /// Time spent queued before a worker picked the job up.
        queue_ms: f64,
        /// Time the engine spent on the request.
        exec_ms: f64,
    },
    /// Turned away at admission (or shed at dequeue once doomed).
    Rejected {
        id: u64,
        reason: RejectReason,
        /// Hint: when the queue is likely to have drained enough to accept
        /// a retry of this request.
        retry_after_ms: f64,
    },
    /// The request failed after the full retry ladder.
    Error { id: u64, message: String },
    /// Admin responses carry their document verbatim.
    Admin { id: u64, doc: Value },
}

impl Response {
    /// Correlation id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. }
            | Response::Rejected { id, .. }
            | Response::Error { id, .. }
            | Response::Admin { id, .. } => *id,
        }
    }

    /// Render as one `\n`-terminated wire line.
    pub fn to_line(&self) -> String {
        let doc = match self {
            Response::Ok {
                id,
                contours,
                area,
                partial,
                cache_hit,
                retried,
                degraded,
                queue_ms,
                exec_ms,
            } => Value::obj(vec![
                ("id", Value::Num(*id as f64)),
                ("status", Value::Str("ok".into())),
                ("contours", Value::Num(*contours as f64)),
                ("area", Value::Num(*area)),
                ("partial", Value::Bool(*partial)),
                ("cache_hit", Value::Bool(*cache_hit)),
                ("retried", Value::Bool(*retried)),
                (
                    "degraded",
                    Value::Arr(degraded.iter().map(|d| Value::Str(d.clone())).collect()),
                ),
                ("queue_ms", Value::Num(*queue_ms)),
                ("exec_ms", Value::Num(*exec_ms)),
            ]),
            Response::Rejected {
                id,
                reason,
                retry_after_ms,
            } => Value::obj(vec![
                ("id", Value::Num(*id as f64)),
                ("status", Value::Str("rejected".into())),
                ("reason", Value::Str(reason.as_str().into())),
                ("retry_after_ms", Value::Num(*retry_after_ms)),
            ]),
            Response::Error { id, message } => Value::obj(vec![
                ("id", Value::Num(*id as f64)),
                ("status", Value::Str("error".into())),
                ("message", Value::Str(message.clone())),
            ]),
            Response::Admin { id, doc } => {
                let mut kv = vec![
                    ("id".to_string(), Value::Num(*id as f64)),
                    ("status".to_string(), Value::Str("ok".into())),
                ];
                if let Value::Obj(fields) = doc {
                    kv.extend(fields.iter().cloned());
                }
                Value::Obj(kv)
            }
        };
        let mut line = doc.render_compact();
        line.push('\n');
        line
    }
}

/// Parse one request line. `Err` carries a human-readable reason that the
/// server echoes back as a protocol error (a malformed line must never
/// kill the connection silently).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc =
        Value::parse(line.trim_end()).map_err(|pos| format!("malformed JSON at byte {pos}"))?;
    let id = doc
        .get("id")
        .and_then(|v| v.as_f64())
        .map(|x| x as u64)
        .ok_or("missing numeric \"id\"")?;
    let op = doc
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or("missing string \"op\"")?;
    match op {
        "stats" => return Ok(Request::Stats { id }),
        "shutdown" => return Ok(Request::Shutdown { id }),
        "info" => {
            let layer = doc
                .get("layer")
                .and_then(|v| v.as_str())
                .ok_or("info requires \"layer\"")?
                .to_string();
            return Ok(Request::Info { id, layer });
        }
        _ => {}
    }
    let op = match op {
        "intersection" => BoolOp::Intersection,
        "union" => BoolOp::Union,
        "difference" => BoolOp::Difference,
        "xor" => BoolOp::Xor,
        other => return Err(format!("unknown op \"{other}\"")),
    };
    let layer = doc
        .get("layer")
        .and_then(|v| v.as_str())
        .ok_or("missing string \"layer\"")?
        .to_string();
    let priority = doc
        .get("priority")
        .and_then(|v| v.as_f64())
        .map(Priority::from_num)
        .unwrap_or_default();
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_f64()
                .ok_or("\"deadline_ms\" must be a finite number")?;
            if ms < 0.0 {
                return Err("\"deadline_ms\" must be non-negative".into());
            }
            Some(ms)
        }
    };
    let raw = doc
        .get("query")
        .and_then(|v| v.as_arr())
        .ok_or("missing array \"query\"")?;
    if raw.len() < 3 {
        return Err("\"query\" needs at least 3 vertices".into());
    }
    let mut pts = Vec::with_capacity(raw.len());
    for (i, pair) in raw.iter().enumerate() {
        let xy = pair.as_arr().ok_or("query vertices must be [x, y] pairs")?;
        match xy {
            [x, y] => {
                let (x, y) = (
                    x.as_f64()
                        .ok_or_else(|| format!("vertex {i}: non-finite x"))?,
                    y.as_f64()
                        .ok_or_else(|| format!("vertex {i}: non-finite y"))?,
                );
                pts.push((x, y));
            }
            _ => return Err("query vertices must be [x, y] pairs".into()),
        }
    }
    Ok(Request::Clip(ClipRequest {
        id,
        op,
        layer,
        priority,
        deadline_ms,
        query: PolygonSet::from_xy(&pts),
    }))
}

/// Render a clip request as one wire line (what `loadgen` sends).
pub fn render_clip_request(
    id: u64,
    op: BoolOp,
    layer: &str,
    priority: Priority,
    deadline_ms: Option<f64>,
    query: &[(f64, f64)],
) -> String {
    let op = match op {
        BoolOp::Intersection => "intersection",
        BoolOp::Union => "union",
        BoolOp::Difference => "difference",
        BoolOp::Xor => "xor",
    };
    let mut kv = vec![
        ("id", Value::Num(id as f64)),
        ("op", Value::Str(op.into())),
        ("layer", Value::Str(layer.into())),
        ("priority", Value::Num(priority.index() as f64)),
    ];
    if let Some(ms) = deadline_ms {
        kv.push(("deadline_ms", Value::Num(ms)));
    }
    kv.push((
        "query",
        Value::Arr(
            query
                .iter()
                .map(|&(x, y)| Value::Arr(vec![Value::Num(x), Value::Num(y)]))
                .collect(),
        ),
    ));
    let mut line = Value::obj(kv).render_compact();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_request_roundtrips_through_the_wire_format() {
        let line = render_clip_request(
            42,
            BoolOp::Intersection,
            "gis",
            Priority::Low,
            Some(25.0),
            &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)],
        );
        assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
        let req = parse_request(&line).expect("parse rendered request");
        let Request::Clip(c) = req else {
            panic!("expected a clip request")
        };
        assert_eq!(c.id, 42);
        assert_eq!(c.op, BoolOp::Intersection);
        assert_eq!(c.layer, "gis");
        assert_eq!(c.priority, Priority::Low);
        assert_eq!(c.deadline_ms, Some(25.0));
        assert_eq!(c.query.vertex_count(), 3);
    }

    #[test]
    fn malformed_lines_are_rejected_with_a_reason_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"op\":\"intersection\"}",                       // no id
            "{\"id\":1}",                                      // no op
            "{\"id\":1,\"op\":\"frobnicate\",\"layer\":\"g\"}", // unknown op
            "{\"id\":1,\"op\":\"union\",\"layer\":\"g\",\"query\":[[0,0],[1,0]]}", // 2 verts
            "{\"id\":1,\"op\":\"union\",\"layer\":\"g\",\"deadline_ms\":null,\"query\":[[0,0],[1,0],[1,1]]}",
        ] {
            assert!(parse_request(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn responses_render_one_line_each_and_echo_the_id() {
        let ok = Response::Ok {
            id: 7,
            contours: 2,
            area: 1.5,
            partial: false,
            cache_hit: true,
            retried: false,
            degraded: vec!["service degraded (level 1)".into()],
            queue_ms: 0.2,
            exec_ms: 3.0,
        };
        let rej = Response::Rejected {
            id: 8,
            reason: RejectReason::QueueFull,
            retry_after_ms: 12.5,
        };
        for r in [&ok, &rej] {
            let line = r.to_line();
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            let doc = polyclip_bench::json::Value::parse(line.trim_end()).unwrap();
            assert_eq!(doc.get("id").and_then(|v| v.as_f64()), Some(r.id() as f64));
        }
        let doc = polyclip_bench::json::Value::parse(rej.to_line().trim_end()).unwrap();
        assert_eq!(
            doc.get("reason").and_then(|v| v.as_str()),
            Some("queue_full")
        );
    }
}
