//! Per-layer circuit breaker with exponential-backoff cooldown.
//!
//! A layer whose requests keep failing (budget trips, engine panics) stops
//! being asked: after `trip_threshold` consecutive failures the breaker
//! opens and admission rejects the layer's traffic outright for a cooldown
//! period — failing fast costs a rejection line, failing slow costs a
//! worker. When the cooldown lapses the breaker goes **half-open**: exactly
//! one probe request is let through. If it succeeds the breaker closes and
//! the slate is clean; if it fails the breaker re-opens with the cooldown
//! doubled (capped), so a persistently sick layer converges to quiet
//! periodic probing instead of thundering retries.
//!
//! The clock is injected on every call (`now: Instant`) — state transitions
//! are a pure function of (state, event, now), which is what makes the
//! tests deterministic and fast.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker verdict for one arriving request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerDecision {
    /// Closed: normal traffic.
    Allow,
    /// Half-open: this request is the single probe. The caller **must**
    /// report its outcome via `on_success`/`on_failure` or the breaker
    /// stays half-open and rejects everything else.
    Probe,
    /// Open: reject, retry after the embedded hint.
    Reject(Duration),
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
        trips: u32,
    },
    HalfOpen {
        trips: u32,
        /// When the outstanding probe was released. If its outcome never
        /// comes back (probe dropped as doomed, connection died), a new
        /// probe is issued after a timeout rather than wedging the
        /// breaker half-open forever.
        since: Instant,
    },
}

/// One breaker, typically one per registered layer.
pub struct CircuitBreaker {
    state: Mutex<State>,
    trip_threshold: u32,
    base_cooldown: Duration,
    max_cooldown: Duration,
}

impl CircuitBreaker {
    /// `trip_threshold` consecutive failures open the breaker for
    /// `base_cooldown`, doubling per re-trip up to `max_cooldown`.
    pub fn new(trip_threshold: u32, base_cooldown: Duration, max_cooldown: Duration) -> Self {
        CircuitBreaker {
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            trip_threshold: trip_threshold.max(1),
            base_cooldown,
            max_cooldown: max_cooldown.max(base_cooldown),
        }
    }

    fn cooldown_for(&self, trips: u32) -> Duration {
        let factor = 1u32 << trips.min(16);
        (self.base_cooldown * factor).min(self.max_cooldown)
    }

    /// Decide the fate of a request arriving at `now`.
    pub fn admit(&self, now: Instant) -> BreakerDecision {
        let mut s = self.state.lock().unwrap();
        match *s {
            State::Closed { .. } => BreakerDecision::Allow,
            State::Open { until, trips } => {
                if now >= until {
                    *s = State::HalfOpen { trips, since: now };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Reject(until - now)
                }
            }
            // A probe is already in flight; everyone else waits a beat —
            // unless the probe's outcome has been missing long enough
            // that it evidently vanished, in which case re-probe.
            State::HalfOpen { trips, since } => {
                if now.saturating_duration_since(since) > self.base_cooldown * 4 {
                    *s = State::HalfOpen { trips, since: now };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Reject(self.base_cooldown)
                }
            }
        }
    }

    /// A request (or the half-open probe) completed successfully.
    pub fn on_success(&self) {
        *self.state.lock().unwrap() = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// A request (or the half-open probe) failed at `now`.
    pub fn on_failure(&self, now: Instant) {
        let mut s = self.state.lock().unwrap();
        *s = match *s {
            State::Closed {
                consecutive_failures,
            } => {
                let f = consecutive_failures + 1;
                if f >= self.trip_threshold {
                    State::Open {
                        until: now + self.cooldown_for(0),
                        trips: 1,
                    }
                } else {
                    State::Closed {
                        consecutive_failures: f,
                    }
                }
            }
            // The probe failed: re-open, longer.
            State::HalfOpen { trips, .. } | State::Open { trips, .. } => State::Open {
                until: now + self.cooldown_for(trips),
                trips: trips + 1,
            },
        };
    }

    /// True when the breaker is currently rejecting (open and cooling).
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(*self.state.lock().unwrap(), State::Open { until, .. } if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(3, Duration::from_millis(100), Duration::from_secs(5))
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let b = breaker();
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success(); // streak broken
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.admit(t0), BreakerDecision::Allow);
        b.on_failure(t0); // third consecutive: trip
        match b.admit(t0) {
            BreakerDecision::Reject(after) => assert!(after <= Duration::from_millis(100)),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn half_open_admits_exactly_one_probe_and_closes_on_success() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let after = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(after), BreakerDecision::Probe);
        // Second arrival while the probe is out: rejected.
        assert!(matches!(b.admit(after), BreakerDecision::Reject(_)));
        b.on_success();
        assert_eq!(b.admit(after), BreakerDecision::Allow);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
        b.on_failure(t1);
        // First trip cooled 100ms; the re-trip must cool 200ms.
        let BreakerDecision::Reject(after) = b.admit(t1) else {
            panic!("breaker must re-open after a failed probe")
        };
        assert!(
            after > Duration::from_millis(150),
            "cooldown did not double: {after:?}"
        );
        assert!(b.is_open(t1 + Duration::from_millis(150)));
        assert_eq!(
            b.admit(t1 + Duration::from_millis(250)),
            BreakerDecision::Probe
        );
    }

    #[test]
    fn vanished_probe_does_not_wedge_the_breaker() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
        // The probe's outcome never arrives (dropped as doomed, say).
        // Long after the probe timeout, a fresh probe must be issued.
        let t2 = t1 + Duration::from_secs(1);
        assert_eq!(b.admit(t2), BreakerDecision::Probe);
        b.on_success();
        assert_eq!(b.admit(t2), BreakerDecision::Allow);
    }

    #[test]
    fn cooldown_growth_is_capped() {
        let b = CircuitBreaker::new(1, Duration::from_millis(100), Duration::from_millis(400));
        let mut now = Instant::now();
        for _ in 0..10 {
            b.on_failure(now);
            // Walk time past the cooldown to earn the next probe.
            now += Duration::from_secs(1);
            assert_eq!(b.admit(now), BreakerDecision::Probe);
        }
        b.on_failure(now);
        let BreakerDecision::Reject(after) = b.admit(now) else {
            panic!("open breaker must reject")
        };
        assert!(after <= Duration::from_millis(400));
    }
}
