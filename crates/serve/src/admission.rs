//! Deadline-aware admission control: a bounded three-class priority queue
//! that turns work away at the door instead of letting it rot inside.
//!
//! Two rejection rules, both evaluated on *arrival*:
//!
//! * **capacity** — the queue holds at most `capacity` jobs across all
//!   priority classes; a full queue rejects immediately with a
//!   `retry_after` hint of roughly one drain slot;
//! * **deadline feasibility** — an EWMA of observed service time per
//!   (layer, op) estimates how long the jobs already queued will take to
//!   drain through `workers` workers; if that delay plus the request's own
//!   estimated service time already exceeds its deadline, the request is
//!   rejected *now*, when the client can still retry elsewhere, rather
//!   than after it has wasted a queue slot and a worker pull.
//!
//! Jobs that slip past both checks can still become doomed while queued
//! (estimates are estimates); workers drop those at dequeue — see
//! [`Entry::expires_at`].

use crate::protocol::{Priority, RejectReason};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Exponentially-weighted moving average of service time, keyed by
/// (layer, op). A fresh key starts from a configurable prior so the first
/// requests are not admitted blind.
pub struct ServiceEstimator {
    inner: Mutex<HashMap<(String, u8), f64>>,
    prior_s: f64,
    alpha: f64,
}

impl ServiceEstimator {
    /// `prior` seeds unseen (layer, op) keys; `alpha` is the EWMA weight
    /// of each new observation (0 < alpha ≤ 1).
    pub fn new(prior: Duration, alpha: f64) -> Self {
        ServiceEstimator {
            inner: Mutex::new(HashMap::new()),
            prior_s: prior.as_secs_f64(),
            alpha: alpha.clamp(f64::EPSILON, 1.0),
        }
    }

    /// Fold one observed service time into the (layer, op) estimate.
    pub fn record(&self, layer: &str, op: u8, observed: Duration) {
        let mut m = self.inner.lock().unwrap();
        let e = m.entry((layer.to_string(), op)).or_insert(self.prior_s);
        *e += self.alpha * (observed.as_secs_f64() - *e);
    }

    /// Current estimate for one (layer, op).
    pub fn estimate(&self, layer: &str, op: u8) -> Duration {
        let m = self.inner.lock().unwrap();
        Duration::from_secs_f64(
            m.get(&(layer.to_string(), op))
                .copied()
                .unwrap_or(self.prior_s)
                .max(0.0),
        )
    }
}

/// A queued job plus the scheduling metadata admission stamped on it.
pub struct Entry<T> {
    /// The job payload.
    pub item: T,
    /// Scheduling class it was admitted under.
    pub priority: Priority,
    /// When it entered the queue (queue-delay accounting).
    pub enqueued_at: Instant,
    /// Absolute client deadline. Workers drop the job unstarted once this
    /// passes — executing it could only produce a late answer.
    pub expires_at: Option<Instant>,
}

/// Why admission turned a request away, plus when to retry.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionReject {
    /// Which rule fired.
    pub reason: RejectReason,
    /// Estimated time until a retry could be admitted.
    pub retry_after: Duration,
}

struct QueueInner<T> {
    buckets: [VecDeque<Entry<T>>; 3],
    len: usize,
    closed: bool,
}

/// The bounded priority queue. `pop` serves strictly by class
/// (High before Normal before Low), FIFO within a class.
pub struct AdmissionQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
    capacity: usize,
    workers: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` jobs, drained by `workers`
    /// concurrent workers (used to convert queue depth into delay).
    pub fn new(capacity: usize, workers: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(QueueInner {
                buckets: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            workers: workers.max(1),
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Queue depth as a fraction of capacity — the load signal the
    /// degradation ladder watches.
    pub fn fill_fraction(&self) -> f64 {
        self.depth() as f64 / self.capacity as f64
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Estimated time for the current backlog to drain through the
    /// worker pool, assuming `est_service` per job.
    pub fn estimated_queue_delay(&self, est_service: Duration) -> Duration {
        let depth = self.depth() as f64;
        est_service.mul_f64(depth / self.workers as f64)
    }

    /// Admit or reject on arrival. `remaining` is the request's deadline
    /// measured from now (`None` = infinitely patient); `est_service` is
    /// the EWMA estimate for its (layer, op).
    pub fn try_admit(
        &self,
        item: T,
        priority: Priority,
        remaining: Option<Duration>,
        est_service: Duration,
    ) -> Result<(), (T, AdmissionReject)> {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return Err((
                item,
                AdmissionReject {
                    reason: RejectReason::QueueFull,
                    retry_after: Duration::ZERO,
                },
            ));
        }
        let drain_slot = est_service.mul_f64(1.0 / self.workers as f64);
        if q.len >= self.capacity {
            return Err((
                item,
                AdmissionReject {
                    reason: RejectReason::QueueFull,
                    retry_after: drain_slot,
                },
            ));
        }
        let queue_delay = est_service.mul_f64(q.len as f64 / self.workers as f64);
        if let Some(remaining) = remaining {
            if queue_delay + est_service > remaining {
                return Err((
                    item,
                    AdmissionReject {
                        reason: RejectReason::DeadlineUnmeetable,
                        retry_after: queue_delay,
                    },
                ));
            }
        }
        let now = Instant::now();
        q.buckets[priority.index()].push_back(Entry {
            item,
            priority,
            enqueued_at: now,
            expires_at: remaining.map(|r| now + r),
        });
        q.len += 1;
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Block until a job is available (highest class first) or the queue
    /// is closed *and* drained; `None` means a worker should exit.
    pub fn pop(&self) -> Option<Entry<T>> {
        let mut q = self.inner.lock().unwrap();
        loop {
            for b in q.buckets.iter_mut() {
                if let Some(e) = b.pop_front() {
                    q.len -= 1;
                    return Some(e);
                }
            }
            if q.closed {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// Stop admitting; wake every blocked worker. Already-queued jobs
    /// still drain (graceful shutdown finishes what it accepted).
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn full_queue_rejects_with_a_drain_slot_hint() {
        let q = AdmissionQueue::new(2, 1);
        assert!(q.try_admit(1, Priority::Normal, None, MS).is_ok());
        assert!(q.try_admit(2, Priority::Normal, None, MS).is_ok());
        let (item, rej) = q.try_admit(3, Priority::Normal, None, MS).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(rej.reason, RejectReason::QueueFull);
        assert!(rej.retry_after > Duration::ZERO);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn unmeetable_deadline_is_rejected_on_arrival() {
        let q = AdmissionQueue::new(64, 1);
        for i in 0..10 {
            q.try_admit(i, Priority::Normal, None, Duration::from_millis(10))
                .unwrap();
        }
        // 10 jobs × 10ms ahead of it through one worker: a 20ms deadline
        // is hopeless, a 1s deadline is fine.
        let (_, rej) = q
            .try_admit(
                99,
                Priority::Normal,
                Some(Duration::from_millis(20)),
                Duration::from_millis(10),
            )
            .unwrap_err();
        assert_eq!(rej.reason, RejectReason::DeadlineUnmeetable);
        assert!(rej.retry_after >= Duration::from_millis(50));
        q.try_admit(
            100,
            Priority::Normal,
            Some(Duration::from_secs(1)),
            Duration::from_millis(10),
        )
        .expect("a patient deadline must be admitted");
    }

    #[test]
    fn pop_serves_strictly_by_class_then_fifo() {
        let q = AdmissionQueue::new(16, 1);
        q.try_admit("low-1", Priority::Low, None, MS).unwrap();
        q.try_admit("norm-1", Priority::Normal, None, MS).unwrap();
        q.try_admit("high-1", Priority::High, None, MS).unwrap();
        q.try_admit("high-2", Priority::High, None, MS).unwrap();
        let order: Vec<&str> = (0..4).map(|_| q.pop().unwrap().item).collect();
        assert_eq!(order, ["high-1", "high-2", "norm-1", "low-1"]);
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains_the_backlog() {
        let q = Arc::new(AdmissionQueue::new(16, 2));
        q.try_admit(7, Priority::Normal, None, MS).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(e) = q.pop() {
                    seen.push(e.item);
                }
                seen
            })
        };
        // Give the worker a chance to drain the one job and block.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), vec![7]);
        assert!(q.try_admit(8, Priority::Normal, None, MS).is_err());
    }

    #[test]
    fn estimator_converges_toward_observations_and_is_keyed() {
        let est = ServiceEstimator::new(Duration::from_millis(5), 0.5);
        assert_eq!(est.estimate("gis", 0), Duration::from_millis(5));
        for _ in 0..12 {
            est.record("gis", 0, Duration::from_millis(20));
        }
        let e = est.estimate("gis", 0);
        assert!(e > Duration::from_millis(19) && e < Duration::from_millis(21));
        // Other keys keep the prior.
        assert_eq!(est.estimate("gis", 1), Duration::from_millis(5));
        assert_eq!(est.estimate("blob", 0), Duration::from_millis(5));
    }
}
