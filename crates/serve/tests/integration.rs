//! End-to-end service tests over a real TCP socket: every request in these
//! tests crosses the loopback interface, exercising the same reader
//! threads, admission pipeline, worker pool, and line framing production
//! traffic uses.

use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_serve::protocol::{render_clip_request, Priority};
use polyclip_serve::server::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A 4×4 square at the origin — area 16, trivially verifiable.
fn square_layer() -> Arc<PreparedLayer> {
    let base = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
    PreparedLayer::build(&base, &ClipOptions::sequential()).unwrap()
}

struct TestClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TestClient {
    fn connect(server: &Server) -> TestClient {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        TestClient { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
    }

    /// One request in, one response out (these tests are closed-loop, so
    /// ordering is deterministic).
    fn round_trip(&mut self, line: &str) -> Value {
        self.send(line);
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        Value::parse(resp.trim_end()).expect("parse response")
    }

    fn clip(
        &mut self,
        id: u64,
        layer: &str,
        priority: Priority,
        deadline_ms: Option<f64>,
        query: &[(f64, f64)],
    ) -> Value {
        self.round_trip(&render_clip_request(
            id,
            BoolOp::Intersection,
            layer,
            priority,
            deadline_ms,
            query,
        ))
    }
}

fn str_of<'a>(doc: &'a Value, key: &str) -> &'a str {
    doc.get(key).and_then(|v| v.as_str()).unwrap_or("")
}

fn num_of(doc: &Value, key: &str) -> f64 {
    doc.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing numeric field {key}"))
}

#[test]
fn clip_round_trip_with_cache_hit_on_the_second_ask() {
    let server = Server::start(
        ServeConfig::default(),
        vec![("sq".into(), square_layer())],
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = TestClient::connect(&server);

    // [1,3]² ∩ [0,4]² = [1,3]²: area 4.
    let q = [(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)];
    let r1 = c.clip(1, "sq", Priority::Normal, None, &q);
    assert_eq!(str_of(&r1, "status"), "ok", "got: {r1:?}");
    assert!((num_of(&r1, "area") - 4.0).abs() < 1e-9);
    assert_eq!(num_of(&r1, "contours"), 1.0);
    assert_eq!(r1.get("cache_hit").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(r1.get("partial").and_then(|v| v.as_bool()), Some(false));

    // The identical query must come from cache, bit-for-bit same answer.
    let r2 = c.clip(2, "sq", Priority::Normal, None, &q);
    assert_eq!(str_of(&r2, "status"), "ok");
    assert_eq!(r2.get("cache_hit").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(num_of(&r2, "area"), num_of(&r1, "area"));

    // A bit-different query is a miss, not a false share.
    let q3 = [(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0 + 1e-12)];
    let r3 = c.clip(3, "sq", Priority::Normal, None, &q3);
    assert_eq!(r3.get("cache_hit").and_then(|v| v.as_bool()), Some(false));

    let (hits, _coalesced, misses) = server.cache_counters();
    assert_eq!((hits, misses), (1, 2));

    server.shutdown();
    server.wait();
}

#[test]
fn admin_verbs_report_and_malformed_lines_get_typed_errors() {
    let server = Server::start(
        ServeConfig::default(),
        vec![("sq".into(), square_layer())],
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = TestClient::connect(&server);

    let info = c.round_trip("{\"id\":10,\"op\":\"info\",\"layer\":\"sq\"}\n");
    assert_eq!(str_of(&info, "status"), "ok");
    assert_eq!(num_of(&info, "xmax"), 4.0);
    assert_eq!(num_of(&info, "epoch"), 1.0);

    let r = c.clip(
        11,
        "sq",
        Priority::Normal,
        None,
        &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)],
    );
    assert_eq!(str_of(&r, "status"), "ok");

    let stats = c.round_trip("{\"id\":12,\"op\":\"stats\"}\n");
    assert_eq!(num_of(&stats, "received"), 1.0);
    assert_eq!(num_of(&stats, "completed_ok"), 1.0);
    assert_eq!(num_of(&stats, "queue_depth"), 0.0);

    // Malformed JSON and unknown layers answer with errors, and the
    // connection survives to serve the next line.
    let bad = c.round_trip("this is not json\n");
    assert_eq!(str_of(&bad, "status"), "error");
    let unknown = c.clip(
        13,
        "nope",
        Priority::Normal,
        None,
        &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)],
    );
    assert_eq!(str_of(&unknown, "status"), "error");
    assert!(str_of(&unknown, "message").contains("unknown layer"));
    let again = c.clip(
        14,
        "sq",
        Priority::Normal,
        None,
        &[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)],
    );
    assert_eq!(str_of(&again, "status"), "ok");

    server.shutdown();
    server.wait();
}

#[test]
fn zero_deadline_is_rejected_on_arrival_as_unmeetable() {
    let server = Server::start(
        ServeConfig::default(),
        vec![("sq".into(), square_layer())],
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = TestClient::connect(&server);

    // Estimated service time (the EWMA prior) already exceeds a 0ms
    // deadline: admission must reject rather than queue a doomed job.
    let r = c.clip(
        20,
        "sq",
        Priority::Normal,
        Some(0.0),
        &[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0)],
    );
    assert_eq!(str_of(&r, "status"), "rejected", "got: {r:?}");
    assert_eq!(str_of(&r, "reason"), "deadline_unmeetable");
    assert!(r.get("retry_after_ms").and_then(|v| v.as_f64()).is_some());

    // A patient twin of the same request sails through.
    let ok = c.clip(
        21,
        "sq",
        Priority::Normal,
        Some(10_000.0),
        &[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0)],
    );
    assert_eq!(str_of(&ok, "status"), "ok");

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_verb_drains_and_stops_the_server() {
    let server = Server::start(
        ServeConfig::default(),
        vec![("sq".into(), square_layer())],
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = TestClient::connect(&server);
    let r = c.clip(
        30,
        "sq",
        Priority::High,
        None,
        &[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)],
    );
    assert_eq!(str_of(&r, "status"), "ok");
    let bye = c.round_trip("{\"id\":31,\"op\":\"shutdown\"}\n");
    assert_eq!(bye.get("stopping").and_then(|v| v.as_bool()), Some(true));
    // wait() must return: accept loop unblocked, workers drained. The
    // test harness timeout is the failure detector here.
    server.wait();
}

#[test]
fn concurrent_connections_each_get_their_own_answers() {
    let server = Arc::new(
        Server::start(
            ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            },
            vec![("sq".into(), square_layer())],
            "127.0.0.1:0",
        )
        .unwrap(),
    );
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut c = TestClient::connect(&server);
                for i in 0..10u64 {
                    // Distinct query per (thread, i): distinct area.
                    let w = 0.5 + (t as f64) * 0.25 + (i as f64) * 0.01;
                    let q = [(0.0, 0.0), (w, 0.0), (w, w), (0.0, w)];
                    let r = c.clip(t * 100 + i, "sq", Priority::Normal, None, &q);
                    assert_eq!(str_of(&r, "status"), "ok");
                    assert!(
                        (num_of(&r, "area") - w * w).abs() < 1e-9,
                        "thread {t} iter {i}: wrong area"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    server.wait();
}
