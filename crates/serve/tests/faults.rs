//! Deterministic overload and failure drills over a real socket, behind
//! the `fault-injection` feature. Each test drives one rung of the serving
//! resilience ladder with counter-keyed faults (no clocks, no randomness
//! in the trigger), so the observed behaviour is reproducible:
//!
//! * budget failures → tightened-budget **retry** → salvaged **partial**;
//! * repeated failures → **circuit breaker** opens, probe half-closes it;
//! * stalled workers → queue backup → degradation rungs → **shed**;
//! * worker kills → panic containment and respawn, no lost responses;
//! * corrupted deadlines → doomed jobs dropped unstarted at dequeue.
#![cfg(feature = "fault-injection")]

use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_serve::faults::ServeFaultPlan;
use polyclip_serve::protocol::{render_clip_request, Priority};
use polyclip_serve::server::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Three disjoint squares along x: slab partitioning at p=3 puts one per
/// slab, and a long thin query crossing all three meets their edges in a
/// known pattern — 2 crossings in the end squares (the query starts and
/// ends inside them), 4 in the straddled middle one.
fn three_squares() -> Arc<PreparedLayer> {
    let sq = |x0: f64| {
        polyclip::geom::Contour::from_xy(&[(x0, 0.0), (x0 + 2.0, 0.0), (x0 + 2.0, 2.0), (x0, 2.0)])
    };
    let set = PolygonSet::from_contours(vec![sq(0.0), sq(4.0), sq(10.0)]);
    PreparedLayer::build(&set, &ClipOptions::sequential()).unwrap()
}

/// The query that spans all three squares. Slightly slanted: axis-aligned
/// edges would intersect the squares exactly on event scanlines (virtual
/// vertices, not transversal crossings) and never charge the intersection
/// meter the budget tests below cap.
const SPAN_Q: [(f64, f64); 4] = [(1.0, 0.4), (11.0, 0.6), (11.0, 1.6), (1.0, 1.4)];

/// A query far outside the layer's bbox: zero crossings, so it succeeds
/// under any intersection cap (the breaker-probe traffic).
const FAR_Q: [(f64, f64); 4] = [(50.0, 50.0), (51.0, 50.0), (51.0, 51.0), (50.0, 51.0)];

struct TestClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TestClient {
    fn connect(server: &Server) -> TestClient {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        TestClient { stream, reader }
    }

    fn send_clip(
        &mut self,
        id: u64,
        priority: Priority,
        deadline_ms: Option<f64>,
        q: &[(f64, f64)],
    ) {
        let line = render_clip_request(id, BoolOp::Intersection, "sq3", priority, deadline_ms, q);
        self.stream.write_all(line.as_bytes()).expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        Value::parse(resp.trim_end()).expect("parse response")
    }

    /// Closed-loop round trip: deterministic admission/execution order.
    fn clip(
        &mut self,
        id: u64,
        priority: Priority,
        deadline_ms: Option<f64>,
        q: &[(f64, f64)],
    ) -> Value {
        self.send_clip(id, priority, deadline_ms, q);
        self.recv()
    }
}

fn status_of(doc: &Value) -> &str {
    doc.get("status").and_then(|v| v.as_str()).unwrap_or("")
}

fn reason_of(doc: &Value) -> &str {
    doc.get("reason").and_then(|v| v.as_str()).unwrap_or("")
}

fn flag(doc: &Value, key: &str) -> bool {
    doc.get(key).and_then(|v| v.as_bool()).unwrap_or(false)
}

/// The meter charge the span query incurs against this layer (the
/// output-sensitive k), probed with an uncapped run so the caps below can
/// be derived proportionally instead of hard-coding counter internals.
fn probe_k(layer: &Arc<PreparedLayer>) -> u64 {
    let q = PolygonSet::from_xy(&SPAN_Q);
    let r = try_clip_prepared(
        layer,
        &q,
        BoolOp::Intersection,
        3,
        &ClipOptions::sequential(),
    )
    .expect("probe clip");
    assert!(
        r.stats.k_intersections >= 6,
        "span query must cross all squares (k = {})",
        r.stats.k_intersections
    );
    r.stats.k_intersections as u64
}

/// Rung 1+2 of the ladder: a budget cap the full query cannot meet makes
/// the first attempt fail; the serve-layer retry (tightened budget,
/// partials allowed) salvages the completed slabs and answers `partial`.
#[test]
fn budget_failure_retries_and_salvages_a_partial_result() {
    let layer = three_squares();
    // First-attempt cap: ¾k trips on the last square. Retry cap: ⅜k —
    // room for the first square's crossings (¼k) but not the middle one's,
    // so exactly the leading slab survives salvage.
    let k = probe_k(&layer);
    let cfg = ServeConfig {
        workers: 1,
        slabs: 3,
        base_opts: ClipOptions {
            budget: ExecBudget {
                max_intersections: Some(3 * k / 4),
                ..ExecBudget::default()
            },
            ..ClipOptions::sequential()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![("sq3".into(), layer)], "127.0.0.1:0").unwrap();
    let mut c = TestClient::connect(&server);

    let r = c.clip(1, Priority::Normal, None, &SPAN_Q);
    assert_eq!(status_of(&r), "ok", "retry must salvage: {r:?}");
    assert!(flag(&r, "retried"), "first attempt must have failed: {r:?}");
    assert!(flag(&r, "partial"), "salvage must be partial: {r:?}");
    let degraded: Vec<String> = r
        .get("degraded")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .filter_map(|d| d.as_str().map(str::to_string))
        .collect();
    assert!(
        degraded.iter().any(|d| d.contains("partial result")),
        "engine rung missing: {degraded:?}"
    );
    assert!(
        degraded.iter().any(|d| d.contains("service degraded")),
        "service rung missing: {degraded:?}"
    );

    // Overload-shaped answers are not cached: the same query misses again.
    let r2 = c.clip(2, Priority::Normal, None, &SPAN_Q);
    assert!(!flag(&r2, "cache_hit"), "partial result must not be cached");

    let stats = server.stats();
    assert_eq!(stats.retries.load(Ordering::Relaxed), 2);
    assert_eq!(stats.completed_retried.load(Ordering::Relaxed), 2);
    assert_eq!(stats.completed_partial.load(Ordering::Relaxed), 2);
    assert_eq!(stats.failed.load(Ordering::Relaxed), 0);

    server.shutdown();
    server.wait();
}

/// Rung 3: when even the retry fails, errors accumulate and the layer's
/// circuit breaker opens — then a successful probe after the cooldown
/// closes it again.
#[test]
fn repeated_failures_trip_the_breaker_and_a_probe_heals_it() {
    let cfg = ServeConfig {
        workers: 1,
        slabs: 1,
        // Cap of 1: the span query trips it on both the first attempt and
        // the retry (a single slab salvages nothing), so every request is
        // a hard failure.
        base_opts: ClipOptions {
            budget: ExecBudget {
                max_intersections: Some(1),
                ..ExecBudget::default()
            },
            ..ClipOptions::sequential()
        },
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(40),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![("sq3".into(), three_squares())], "127.0.0.1:0").unwrap();
    let mut c = TestClient::connect(&server);

    // Failures count twice per request (first attempt + failed retry), so
    // the threshold of 3 opens the breaker during the second request.
    let mut errors = 0;
    let mut breaker_reject = None;
    for id in 1..=5u64 {
        let r = c.clip(id, Priority::Normal, None, &SPAN_Q);
        match status_of(&r) {
            "error" => errors += 1,
            "rejected" if reason_of(&r) == "breaker_open" => {
                breaker_reject = Some(r);
                break;
            }
            other => panic!("request {id}: unexpected status {other}: {r:?}"),
        }
    }
    assert_eq!(errors, 2, "breaker must open after two double-failures");
    let rej = breaker_reject.expect("breaker never opened");
    assert!(
        rej.get("retry_after_ms").and_then(|v| v.as_f64()).unwrap() > 0.0,
        "breaker rejection must hint a cooldown"
    );
    let stats = server.stats();
    assert_eq!(stats.failed.load(Ordering::Relaxed), 2);
    assert!(stats.retries.load(Ordering::Relaxed) >= 2);
    assert_eq!(stats.rejected_breaker.load(Ordering::Relaxed), 1);

    // After the cooldown (grown by the re-trips) the breaker half-opens;
    // a crossing-free query succeeds as the probe and closes it, and the
    // layer serves clean traffic again.
    std::thread::sleep(Duration::from_millis(600));
    let probe = c.clip(10, Priority::Normal, None, &FAR_Q);
    assert_eq!(
        status_of(&probe),
        "ok",
        "probe through half-open: {probe:?}"
    );
    let after = c.clip(11, Priority::Normal, None, &FAR_Q);
    assert_eq!(status_of(&after), "ok", "breaker must be closed: {after:?}");
    assert!(flag(&after, "cache_hit"), "clean result was cacheable");

    server.shutdown();
    server.wait();
}

/// Rung 4: a stalled worker (pull-stall fault) backs the bounded queue up
/// on demand; the watermark ladder engages, completed responses carry the
/// `ServiceDegraded` rung, the lowest class is shed, and the queue bound
/// holds.
#[test]
fn stalled_workers_engage_the_ladder_shed_low_priority_and_bound_the_queue() {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        faults: ServeFaultPlan {
            // Every pull stalls 300ms: the queue fills faster than it
            // drains for as long as the test needs, without any race on
            // "did the worker get to it first".
            stall_pull_ms: 300,
            stall_pulls: u64::MAX,
            ..ServeFaultPlan::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![("sq3".into(), three_squares())], "127.0.0.1:0").unwrap();
    let mut c = TestClient::connect(&server);

    // Fill the queue to capacity while the worker sits in its first stall.
    // Distinct queries defeat the cache (coalescing would mask the load).
    for id in 1..=4u64 {
        let x = id as f64 * 0.1;
        c.send_clip(
            id,
            Priority::Normal,
            None,
            &[(x, 0.1), (1.5, 0.1), (1.5, 1.0), (x, 1.0)],
        );
    }
    // Queue full (fill 1.0 ⇒ ladder level 3): Low is shed outright...
    c.send_clip(5, Priority::Low, None, &SPAN_Q);
    // ...and Normal still hits the hard queue bound.
    c.send_clip(6, Priority::Normal, None, &SPAN_Q);

    let mut by_id = std::collections::HashMap::new();
    for _ in 0..6 {
        let r = c.recv();
        by_id.insert(r.get("id").and_then(|v| v.as_f64()).unwrap() as u64, r);
    }
    assert_eq!(status_of(&by_id[&5]), "rejected");
    assert_eq!(reason_of(&by_id[&5]), "shed");
    assert_eq!(status_of(&by_id[&6]), "rejected");
    assert_eq!(reason_of(&by_id[&6]), "queue_full");
    for id in 1..=4u64 {
        assert_eq!(
            status_of(&by_id[&id]),
            "ok",
            "queued job {id} must complete"
        );
    }
    // The first job dequeued ran while the queue was still ¾ full: its
    // response must carry the service-degradation rung. The last one ran
    // against an empty queue and must not.
    let rung = |id: u64| {
        by_id[&id]
            .get("degraded")
            .and_then(|v| v.as_arr())
            .unwrap()
            .iter()
            .any(|d| d.as_str().is_some_and(|s| s.contains("service degraded")))
    };
    assert!(rung(1), "job 1 ran under load: {:?}", by_id[&1]);
    assert!(
        !rung(4),
        "job 4 ran against a drained queue: {:?}",
        by_id[&4]
    );

    let stats = server.stats();
    assert_eq!(stats.rejected_shed.load(Ordering::Relaxed), 1);
    assert_eq!(stats.rejected_queue_full.load(Ordering::Relaxed), 1);
    assert_eq!(stats.degrade_max.load(Ordering::Relaxed), 3);

    server.shutdown();
    server.wait();
}

/// Worker-kill fault: panics after the response is written are contained,
/// the pool respawns, and no request is lost — the client sees only ok's.
#[test]
fn killed_workers_respawn_and_no_response_is_lost() {
    let cfg = ServeConfig {
        workers: 1,
        faults: ServeFaultPlan {
            // Every (re)spawned worker dies after its first job, twice.
            kill_after_jobs: Some(1),
            kill_count: 2,
            ..ServeFaultPlan::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![("sq3".into(), three_squares())], "127.0.0.1:0").unwrap();
    let mut c = TestClient::connect(&server);

    for id in 1..=4u64 {
        let x = id as f64 * 0.1;
        let r = c.clip(
            id,
            Priority::Normal,
            None,
            &[(x, 0.1), (1.5, 0.1), (1.5, 1.0), (x, 1.0)],
        );
        assert_eq!(status_of(&r), "ok", "request {id} across kills: {r:?}");
    }
    assert_eq!(server.stats().worker_respawns.load(Ordering::Relaxed), 2);

    server.shutdown();
    server.wait();
}

/// Deadline-corruption fault: every second admitted request's deadline is
/// zeroed after admission, so the worker finds it expired at dequeue and
/// drops it unstarted — the typed rejection and the `doomed_dropped`
/// counter prove the drop path runs.
#[test]
fn corrupted_deadlines_are_dropped_unstarted_at_dequeue() {
    let cfg = ServeConfig {
        workers: 1,
        faults: ServeFaultPlan {
            corrupt_deadline_every: Some(2),
            ..ServeFaultPlan::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![("sq3".into(), three_squares())], "127.0.0.1:0").unwrap();
    let mut c = TestClient::connect(&server);

    let mut outcomes = Vec::new();
    for id in 1..=4u64 {
        let x = id as f64 * 0.1;
        let r = c.clip(
            id,
            Priority::Normal,
            Some(10_000.0),
            &[(x, 0.1), (1.5, 0.1), (1.5, 1.0), (x, 1.0)],
        );
        outcomes.push((status_of(&r).to_string(), reason_of(&r).to_string()));
    }
    assert_eq!(
        outcomes,
        vec![
            ("ok".into(), "".into()),
            ("rejected".into(), "deadline_unmeetable".into()),
            ("ok".into(), "".into()),
            ("rejected".into(), "deadline_unmeetable".into()),
        ],
        "corruption fires on exact multiples of 2"
    );
    assert_eq!(server.stats().doomed_dropped.load(Ordering::Relaxed), 2);

    server.shutdown();
    server.wait();
}
