//! Reusable scratch arenas for the sweep hot path.
//!
//! The refinement loop of the engine rebuilds the event schedule, the
//! [`BeamSet`](crate::beams::BeamSet), the forced-split table and the
//! crossing lists once per round; Algorithm 2 additionally repeats the whole
//! cycle once per slab. Every one of those structures is sized by the
//! *output* (`n + k + k'`), so the allocator traffic of round 2 is a
//! near-exact replay of round 1. [`SweepScratch`] keeps the backing buffers
//! alive between rounds (and, held per worker, between slabs): structures are
//! built *into* the arena with the `*_in` constructors and handed back with
//! their `recycle` methods, so the steady state allocates nothing.
//!
//! The arena also keeps two counters the bench suite reports:
//! a high-water mark of the total capacity held (observed at each recycle
//! point) and the cumulative bytes of capacity that were reused instead of
//! freshly allocated (credited each time a non-empty buffer is taken).

use crate::beams::SubEdge;
use crate::cross::CrossEvent;
use polyclip_geom::OrdF64;
use polyclip_parprim::inversions::InvScratch;
use polyclip_segtree::{StabScratch, TreeScratch};

fn vec_bytes<T>(v: &Vec<T>) -> u64 {
    (v.capacity() * std::mem::size_of::<T>()) as u64
}

/// Per-beam working buffers for inversion discovery: the top-order
/// permutation, its rank array, the merge-sort scratch of the reporter and
/// the reported pairs. One of these lives in [`SweepScratch`] for the
/// sequential path; the parallel path keeps one per rayon fold segment.
#[derive(Debug, Default)]
pub struct BeamScratch {
    pub(crate) top_order: Vec<u32>,
    pub(crate) rank: Vec<u32>,
    pub(crate) inv: InvScratch,
    pub(crate) pairs: Vec<(usize, usize)>,
}

impl BeamScratch {
    fn capacity_bytes(&self) -> u64 {
        vec_bytes(&self.top_order)
            + vec_bytes(&self.rank)
            + self.inv.capacity_bytes()
            + vec_bytes(&self.pairs)
    }
}

/// Reusable buffers threaded through the sweep pipeline (see module docs).
///
/// All fields are crate-private; external callers only create one
/// (`SweepScratch::default()`), pass it by `&mut` into the `*_in` entry
/// points, and read the [`high_water_bytes`](Self::high_water_bytes) /
/// [`take_reused_bytes`](Self::take_reused_bytes) statistics.
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// Sort buffer for the event schedule.
    pub(crate) ord_ys: Vec<OrdF64>,
    /// Pool for the `f64` event schedule a `BeamSet` takes ownership of.
    pub(crate) ys: Vec<f64>,
    /// Pool for the sub-edge array of a `BeamSet`.
    pub(crate) sub: Vec<SubEdge>,
    /// Pool for the per-beam CSR offsets of a `BeamSet`.
    pub(crate) beam_start: Vec<usize>,
    /// Per-edge / per-beam counts for the count→allocate→fill passes.
    pub(crate) counts: Vec<usize>,
    /// Edge y-span intervals for the segment-tree backend.
    pub(crate) intervals: Vec<(usize, usize)>,
    /// Segment-tree construction buffers (cover pairs + recycled CSR).
    pub(crate) tree: TreeScratch,
    /// Segment-tree batched stabbing buffers.
    pub(crate) stab: StabScratch,
    /// Sort/dedup buffer for forced-split triples.
    pub(crate) triples: Vec<(u32, f64, f64)>,
    /// Pool for the CSR offsets of a `ForcedSplits`.
    pub(crate) forced_start: Vec<usize>,
    /// Pool for the `(y, x)` items of a `ForcedSplits`.
    pub(crate) forced_items: Vec<(f64, f64)>,
    /// Pool for discovered crossing events.
    pub(crate) events: Vec<CrossEvent>,
    /// Sequential per-beam inversion buffers.
    pub(crate) beam: BeamScratch,
    /// Interior split points `(old beam, y)` of an incremental refinement.
    pub(crate) splits: Vec<(u32, f64)>,
    /// Dirty flags per old beam of an incremental refinement.
    pub(crate) dirty: Vec<bool>,
    /// CSR over old beams into `splits`.
    pub(crate) split_start: Vec<usize>,
    reused_bytes: u64,
    hwm_bytes: u64,
}

impl SweepScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total heap capacity currently parked in the arena (bytes). Buffers
    /// lent out to a live `BeamSet`/`ForcedSplits` are not counted until
    /// recycled.
    pub fn capacity_bytes(&self) -> u64 {
        vec_bytes(&self.ord_ys)
            + vec_bytes(&self.ys)
            + vec_bytes(&self.sub)
            + vec_bytes(&self.beam_start)
            + vec_bytes(&self.counts)
            + vec_bytes(&self.intervals)
            + self.tree.capacity_bytes()
            + self.stab.capacity_bytes()
            + vec_bytes(&self.triples)
            + vec_bytes(&self.forced_start)
            + vec_bytes(&self.forced_items)
            + vec_bytes(&self.events)
            + self.beam.capacity_bytes()
            + vec_bytes(&self.splits)
            + vec_bytes(&self.dirty)
            + vec_bytes(&self.split_start)
    }

    /// Largest total capacity observed at a recycle point (bytes) since the
    /// arena was created or [`reset_high_water`](Self::reset_high_water) was
    /// last called.
    pub fn high_water_bytes(&self) -> u64 {
        self.hwm_bytes
    }

    /// Re-baseline the high-water mark to the capacity currently parked in
    /// the arena. Callers that keep one arena alive across many independent
    /// clips (the prepared-layer scratch pool) call this when checking an
    /// arena out, so [`high_water_bytes`](Self::high_water_bytes) reports
    /// the peak of *this* call instead of the process-lifetime maximum.
    pub fn reset_high_water(&mut self) {
        self.hwm_bytes = self.capacity_bytes();
    }

    /// Cumulative bytes of capacity taken from the arena non-empty (i.e.
    /// reused instead of freshly allocated) since the last call; resets the
    /// counter so per-round / per-slab deltas can be attributed.
    pub fn take_reused_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.reused_bytes)
    }

    /// Update the high-water mark; called whenever buffers come home.
    pub(crate) fn note_hwm(&mut self) {
        self.hwm_bytes = self.hwm_bytes.max(self.capacity_bytes());
    }

    /// Credit `bytes` of capacity as reused rather than freshly allocated.
    pub(crate) fn credit_reuse(&mut self, bytes: u64) {
        self.reused_bytes += bytes;
    }

    pub(crate) fn take_ys(&mut self) -> Vec<f64> {
        self.reused_bytes += vec_bytes(&self.ys);
        let mut v = std::mem::take(&mut self.ys);
        v.clear();
        v
    }

    /// Return an event schedule obtained from [`event_ys_in`]
    /// (crate::events::event_ys_in) whose `BeamSet` was never built.
    pub fn give_ys(&mut self, v: Vec<f64>) {
        self.ys = v;
        self.note_hwm();
    }

    pub(crate) fn take_sub(&mut self) -> Vec<SubEdge> {
        self.reused_bytes += vec_bytes(&self.sub);
        let mut v = std::mem::take(&mut self.sub);
        v.clear();
        v
    }

    pub(crate) fn give_sub(&mut self, v: Vec<SubEdge>) {
        self.sub = v;
        self.note_hwm();
    }

    pub(crate) fn take_beam_start(&mut self) -> Vec<usize> {
        self.reused_bytes += vec_bytes(&self.beam_start);
        let mut v = std::mem::take(&mut self.beam_start);
        v.clear();
        v
    }

    pub(crate) fn give_beam_start(&mut self, v: Vec<usize>) {
        self.beam_start = v;
        self.note_hwm();
    }

    pub(crate) fn take_forced(&mut self) -> (Vec<usize>, Vec<(f64, f64)>) {
        self.reused_bytes += vec_bytes(&self.forced_start) + vec_bytes(&self.forced_items);
        let mut s = std::mem::take(&mut self.forced_start);
        let mut i = std::mem::take(&mut self.forced_items);
        s.clear();
        i.clear();
        (s, i)
    }

    pub(crate) fn give_forced(&mut self, start: Vec<usize>, items: Vec<(f64, f64)>) {
        self.forced_start = start;
        self.forced_items = items;
        self.note_hwm();
    }

    pub(crate) fn take_events(&mut self) -> Vec<CrossEvent> {
        self.reused_bytes += vec_bytes(&self.events);
        let mut v = std::mem::take(&mut self.events);
        v.clear();
        v
    }

    /// Return a consumed crossing list obtained from one of the
    /// `discover_*_in` entry points.
    pub fn give_events(&mut self, v: Vec<CrossEvent>) {
        self.events = v;
        self.note_hwm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_high_water_rebaselines_to_current_capacity() {
        let mut s = SweepScratch::new();
        s.give_ys(Vec::with_capacity(1024));
        let hwm = s.high_water_bytes();
        assert!(hwm >= 1024 * std::mem::size_of::<f64>() as u64);
        // Lending the big buffer out leaves the mark untouched...
        let lent = s.take_ys();
        assert_eq!(s.high_water_bytes(), hwm);
        // ...and resetting re-baselines to what is actually parked now.
        s.reset_high_water();
        assert_eq!(s.high_water_bytes(), s.capacity_bytes());
        assert!(s.high_water_bytes() < hwm);
        drop(lent);
    }
}
