//! Normalized sweep edges.

use polyclip_geom::{Contour, Point, PolygonSet, Segment, EPS_EVENT_SNAP_REL};

/// Which input polygon an edge came from. The paper's Lemma 3 parity test
/// counts edges of *the other* polygon, so every edge carries its source.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Source {
    /// The subject polygon (B in the paper's problem definition).
    Subject,
    /// The clip polygon (O in the paper's problem definition).
    Clip,
}

/// A non-horizontal polygon edge normalized for sweeping: `lo.y < hi.y`.
#[derive(Clone, Copy, Debug)]
pub struct InputEdge {
    /// Lower endpoint (smaller y).
    pub lo: Point,
    /// Upper endpoint (larger y).
    pub hi: Point,
    /// Originating polygon.
    pub src: Source,
    /// +1 if the original contour direction was upward (lo → hi), −1 if
    /// downward. Drives nonzero-winding classification; even-odd ignores it.
    pub winding: i8,
    /// Dense id, unique across both inputs; indexes auxiliary arrays.
    pub id: u32,
}

impl InputEdge {
    /// The edge as a bottom-to-top segment.
    #[inline]
    pub fn segment(&self) -> Segment {
        Segment::new(self.lo, self.hi)
    }

    /// x-coordinate at height `y`, exact at the endpoints.
    #[inline]
    pub fn x_at_y(&self, y: f64) -> f64 {
        self.segment().x_at_y(y)
    }
}

/// Width below which two y values are considered one scanline: a handful of
/// ulps at the given magnitude. Distinct event y's closer than this create
/// scanbeams too thin for intersection events to be representable inside.
#[inline]
pub fn snap_tolerance(mag: f64) -> f64 {
    EPS_EVENT_SNAP_REL * mag.abs().max(f64::MIN_POSITIVE)
}

/// Greedy left-to-right snap clustering: every y within [`snap_tolerance`]
/// of a cluster's first member maps to that member. Returns the mapping for
/// the values that move.
///
/// Snapping is applied to *vertices*, so the two edges sharing a vertex see
/// the same snapped y — edges that become horizontal are dropped without
/// disturbing crossing parity anywhere (both endpoints land on the same
/// scanline). This is what makes nearly-horizontal ulp-thin edges safe,
/// where simply dropping them would leave an odd crossing count in the thin
/// strip between their endpoints.
pub fn snap_map(mut ys: Vec<OrdF64>) -> std::collections::HashMap<u64, f64> {
    use std::collections::HashMap;
    ys.sort_unstable();
    ys.dedup();
    let mut map = HashMap::new();
    let mut i = 0;
    while i < ys.len() {
        let rep = ys[i].get();
        let tol = snap_tolerance(rep);
        let mut j = i + 1;
        while j < ys.len() && ys[j].get() - rep <= tol {
            map.insert(ys[j].get().to_bits(), rep);
            j += 1;
        }
        i = j;
    }
    map
}

use polyclip_geom::OrdF64;

/// Collect the sweep edges of both polygons, assigning dense ids
/// (subject first). Vertex y's are snap-clustered (see [`snap_map`]);
/// horizontal-after-snap and degenerate edges are dropped — they span no
/// scanbeam and never enter an active edge set, and the engine's horizontal
/// reconstruction regenerates their output geometry.
pub fn collect_edges(subject: &PolygonSet, clip: &PolygonSet) -> Vec<InputEdge> {
    let s: Vec<&Contour> = subject.contours().iter().collect();
    let c: Vec<&Contour> = clip.contours().iter().collect();
    collect_edges_refs(&s, &c)
}

/// [`collect_edges`] over borrowed contour slices — the entry point for
/// callers (the slab index) that assemble an input from a mix of borrowed
/// and freshly clipped contours without materializing a [`PolygonSet`].
/// Given the same contour sequences, the output is bit-identical to
/// [`collect_edges`].
pub fn collect_edges_refs(subject: &[&Contour], clip: &[&Contour]) -> Vec<InputEdge> {
    // Build the vertex-y snap map across BOTH inputs so shared scanlines
    // agree between the polygons.
    let ys: Vec<OrdF64> = subject
        .iter()
        .chain(clip.iter())
        .flat_map(|c| c.points().iter().map(|p| OrdF64::new(p.y)))
        .collect();
    let snap = snap_map(ys);
    let fix = |p: Point| -> Point {
        match snap.get(&p.y.to_bits()) {
            Some(&y) => Point::new(p.x, y),
            None => p,
        }
    };

    let cap: usize = subject.iter().chain(clip.iter()).map(|c| c.len()).sum();
    let mut out = Vec::with_capacity(cap);
    let push_contours = |contours: &[&Contour], src: Source, out: &mut Vec<InputEdge>| {
        for contour in contours {
            for e in contour.edges() {
                let (a, b) = (fix(e.a), fix(e.b));
                if a == b || a.y == b.y {
                    continue;
                }
                let upward = a.y < b.y;
                let (lo, hi) = if upward { (a, b) } else { (b, a) };
                out.push(InputEdge {
                    lo,
                    hi,
                    src,
                    winding: if upward { 1 } else { -1 },
                    id: out.len() as u32,
                });
            }
        }
    };
    push_contours(subject, Source::Subject, &mut out);
    push_contours(clip, Source::Clip, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;

    #[test]
    fn rect_yields_two_vertical_sweep_edges() {
        // A rectangle has two horizontal edges (dropped) and two vertical.
        let p = PolygonSet::from_contour(rect(0.0, 0.0, 2.0, 1.0));
        let edges = collect_edges(&p, &PolygonSet::new());
        assert_eq!(edges.len(), 2);
        for e in &edges {
            assert!(e.lo.y < e.hi.y);
            assert_eq!(e.src, Source::Subject);
        }
        // CCW rectangle: right side goes up (+1), left side goes down (−1).
        let up: Vec<_> = edges.iter().filter(|e| e.winding == 1).collect();
        let down: Vec<_> = edges.iter().filter(|e| e.winding == -1).collect();
        assert_eq!(up.len(), 1);
        assert_eq!(down.len(), 1);
        assert_eq!(up[0].lo.x, 2.0);
        assert_eq!(down[0].lo.x, 0.0);
    }

    #[test]
    fn ids_are_dense_and_sources_tagged() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)]);
        let b = PolygonSet::from_xy(&[(0.0, 1.0), (2.0, 1.0), (1.0, 3.0)]);
        let edges = collect_edges(&a, &b);
        // Triangles with one horizontal edge each: 2 sweep edges per input.
        assert_eq!(edges.len(), 4);
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(e.id as usize, i);
        }
        assert_eq!(edges.iter().filter(|e| e.src == Source::Clip).count(), 2);
    }

    #[test]
    fn degenerate_edges_dropped() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        let edges = collect_edges(&p, &PolygonSet::new());
        // Duplicate point removed by Contour; the remaining triangle has one
        // horizontal edge, so 2 sweep edges.
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn x_at_y_endpoint_exactness() {
        let p = PolygonSet::from_xy(&[(0.25, 0.1), (1.5, 0.1), (0.75, 2.3)]);
        let edges = collect_edges(&p, &PolygonSet::new());
        for e in &edges {
            assert_eq!(e.x_at_y(e.lo.y), e.lo.x);
            assert_eq!(e.x_at_y(e.hi.y), e.hi.x);
        }
    }
}
