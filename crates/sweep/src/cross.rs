//! Output-sensitive intersection discovery via inversions (Lemma 4).
//!
//! Within one scanbeam every active sub-edge spans the whole beam, so two
//! sub-edges cross **iff** their left-to-right order at the bottom scanline
//! differs from their order at the top scanline — an inversion of the
//! bottom-to-top rank permutation. Counting and reporting those inversions
//! with the extended merge sort of [`polyclip_parprim::inversions`] finds the
//! k intersections in `O((n + k') log (n + k') + k)` work, never enumerating
//! non-crossing pairs: this is what makes the algorithm output-sensitive.
//!
//! Pairs meeting exactly at a scanline produce no inversion (the shared
//! endpoint ties, and both orders break the tie the same way), so endpoint
//! touching is — correctly — not reported as a crossing.

use crate::beams::BeamSet;
use crate::edges::InputEdge;
use crate::scratch::{BeamScratch, SweepScratch};
use polyclip_geom::{OrdF64, Point, SegmentIntersection};
use polyclip_parprim::inversions::{par_report_inversions_gated, report_inversions_in};
use polyclip_parprim::Gate;
use rayon::prelude::*;

/// A discovered crossing between two input edges.
#[derive(Clone, Copy, Debug)]
pub struct CrossEvent {
    /// First edge id.
    pub e1: u32,
    /// Second edge id.
    pub e2: u32,
    /// The intersection vertex (floating-point parametric intersection of
    /// the *original* segments, shared verbatim by both edges thereafter).
    pub p: Point,
}

/// Beams whose active list is at least this long use the parallel
/// inversion reporter internally (nested parallelism over huge beams).
/// Overridable per call via `ClipOptions::grain` → the `grain` parameter of
/// the `*_in` discovery entry points.
pub const BIG_BEAM: usize = 16 * 1024;

/// Discover all transversal edge crossings.
///
/// `beams` must be a Round-A beam set (split at endpoint events only);
/// `edges` the input edges it was built from.
pub fn discover_intersections(
    beams: &BeamSet,
    edges: &[InputEdge],
    parallel: bool,
) -> Vec<CrossEvent> {
    discover_intersections_gated(beams, edges, parallel, None)
}

/// [`discover_intersections`] under a cooperative [`Gate`]: each scanbeam
/// polls the gate before doing any work (the per-scanbeam checkpoint of the
/// bounded-execution design), credits its discovered crossings to the work
/// meter, and big beams run the gated parallel inversion reporter which
/// refuses the `O(k)` fill when `max_intersections` would blow. A tripped
/// gate yields a truncated event list — callers must check the gate.
pub fn discover_intersections_gated(
    beams: &BeamSet,
    edges: &[InputEdge],
    parallel: bool,
    gate: Option<&Gate>,
) -> Vec<CrossEvent> {
    discover_intersections_in(
        beams,
        edges,
        parallel,
        gate,
        BIG_BEAM,
        &mut SweepScratch::default(),
    )
}

/// [`discover_intersections_gated`] into a reused [`SweepScratch`]: the
/// event list and the per-beam inversion buffers come from the arena (the
/// parallel path keeps one [`BeamScratch`] per rayon fold segment), so
/// repeated rounds allocate nothing once capacity is established. Event
/// order is preserved exactly (beam order, then within-beam pair order), so
/// downstream forced-split dedup sees the same first-wins winner. Hand the
/// returned vector back via [`SweepScratch`] when done.
pub fn discover_intersections_in(
    beams: &BeamSet,
    edges: &[InputEdge],
    parallel: bool,
    gate: Option<&Gate>,
    grain: usize,
    scratch: &mut SweepScratch,
) -> Vec<CrossEvent> {
    let mut out = scratch.take_events();
    if parallel {
        // Chunk the beams so each task reuses one scratch across its chunk;
        // chunks are emitted in beam order, so the event order matches the
        // sequential path exactly.
        let n = beams.n_beams();
        let chunk = beam_chunk_size(n);
        let found: Vec<CrossEvent> = (0..n.div_ceil(chunk.max(1)))
            .into_par_iter()
            .flat_map_iter(|c| {
                let mut bs = BeamScratch::default();
                let mut acc = Vec::new();
                for b in c * chunk..((c + 1) * chunk).min(n) {
                    beam_crossings_in(beams, edges, b, gate, grain, &mut bs, &mut acc);
                }
                acc
            })
            .collect();
        out.extend(found);
    } else {
        for b in 0..beams.n_beams() {
            beam_crossings_in(beams, edges, b, gate, grain, &mut scratch.beam, &mut out);
        }
    }
    out
}

/// Beams per parallel discovery task: a few chunks per thread for load
/// balance while amortizing one scratch allocation over the whole chunk.
/// Chunking affects grouping only, never results — events stay in beam
/// order regardless.
fn beam_chunk_size(n_beams: usize) -> usize {
    n_beams
        .div_ceil((rayon::current_num_threads() * 4).max(1))
        .max(1)
}

/// Discover *residual* crossings in a split beam set: inversions evaluated
/// on the (possibly bent, forced-split) sub-edge geometry itself.
///
/// After the intersection events are inserted, rounding can still leave two
/// sub-edges swapping order inside a numerically degenerate (hair-thin)
/// beam — e.g. when two crossings of a nearly horizontal edge round to
/// inconsistent y's. The engine iterates: discover residuals, split at them,
/// rebuild, until every beam is crossing-free. The returned intersection
/// points come from the sub-edge segments, which guarantees they fall
/// *strictly inside* the offending beam and therefore make progress.
pub fn discover_residual_crossings(beams: &BeamSet, parallel: bool) -> Vec<CrossEvent> {
    discover_residual_crossings_gated(beams, parallel, None)
}

/// [`discover_residual_crossings`] with the same per-scanbeam gating as
/// [`discover_intersections_gated`].
pub fn discover_residual_crossings_gated(
    beams: &BeamSet,
    parallel: bool,
    gate: Option<&Gate>,
) -> Vec<CrossEvent> {
    discover_residual_crossings_in(
        beams,
        parallel,
        gate,
        BIG_BEAM,
        &mut SweepScratch::default(),
    )
}

/// [`discover_residual_crossings_gated`] into a reused [`SweepScratch`],
/// with the same arena discipline and event-order guarantee as
/// [`discover_intersections_in`].
pub fn discover_residual_crossings_in(
    beams: &BeamSet,
    parallel: bool,
    gate: Option<&Gate>,
    grain: usize,
    scratch: &mut SweepScratch,
) -> Vec<CrossEvent> {
    let mut out = scratch.take_events();
    if parallel {
        let n = beams.n_beams();
        let chunk = beam_chunk_size(n);
        let found: Vec<CrossEvent> = (0..n.div_ceil(chunk.max(1)))
            .into_par_iter()
            .flat_map_iter(|c| {
                let mut bs = BeamScratch::default();
                let mut acc = Vec::new();
                for b in c * chunk..((c + 1) * chunk).min(n) {
                    beam_residuals_in(beams, b, gate, grain, &mut bs, &mut acc);
                }
                acc
            })
            .collect();
        out.extend(found);
    } else {
        for b in 0..beams.n_beams() {
            beam_residuals_in(beams, b, gate, grain, &mut scratch.beam, &mut out);
        }
    }
    out
}

/// Residual crossings of one beam, appended to `out`.
fn beam_residuals_in(
    beams: &BeamSet,
    b: usize,
    gate: Option<&Gate>,
    grain: usize,
    bs: &mut BeamScratch,
    out: &mut Vec<CrossEvent>,
) {
    if gate.is_some_and(|g| g.is_tripped()) {
        return;
    }
    let sub = beams.beam(b);
    beam_inversions_in(sub, gate, grain, bs);
    if let Some(g) = gate {
        if g.intersections_would_exceed(bs.pairs.len() as u64) {
            return;
        }
        g.meter().add_intersections(bs.pairs.len() as u64);
    }
    let (yb, yt) = (beams.y_bot(b), beams.y_top(b));
    out.reserve(bs.pairs.len());
    for (t, &(i, j)) in bs.pairs.iter().enumerate() {
        // A dense beam can hold millions of pairs; re-poll inside the O(k)
        // materialization so cancellation latency stays bounded by the
        // batch, not the beam.
        if t & 0xFFF == 0 && t > 0 && gate.is_some_and(|g| g.is_tripped()) {
            return;
        }
        let (sa, sb) = (&sub[i], &sub[j]);
        let seg_a = polyclip_geom::Segment::new(Point::new(sa.xb, yb), Point::new(sa.xt, yt));
        let seg_b = polyclip_geom::Segment::new(Point::new(sb.xb, yb), Point::new(sb.xt, yt));
        if let SegmentIntersection::At(p) = seg_a.intersect(&seg_b) {
            out.push(CrossEvent {
                e1: sa.edge_id,
                e2: sb.edge_id,
                p,
            });
        }
    }
}

/// Inversion pairs (bottom order vs top order) of one beam's sub-edges,
/// left in `bs.pairs`.
fn beam_inversions_in(
    sub: &[crate::beams::SubEdge],
    gate: Option<&Gate>,
    grain: usize,
    bs: &mut BeamScratch,
) {
    bs.pairs.clear();
    let m = sub.len();
    if m < 2 {
        return;
    }
    bs.top_order.clear();
    bs.top_order.extend(0..m as u32);
    bs.top_order.sort_unstable_by_key(|&i| {
        let s = &sub[i as usize];
        (OrdF64::new(s.xt), OrdF64::new(s.xb), s.edge_id)
    });
    bs.rank.clear();
    bs.rank.resize(m, 0);
    for (t, &p) in bs.top_order.iter().enumerate() {
        bs.rank[p as usize] = t as u32;
    }
    if m >= grain.max(2) {
        bs.pairs = par_report_inversions_gated(&bs.rank, gate);
    } else {
        report_inversions_in(&bs.rank, &mut bs.inv, &mut bs.pairs);
    }
}

/// Crossings inside a single beam, appended to `out`.
fn beam_crossings_in(
    beams: &BeamSet,
    edges: &[InputEdge],
    b: usize,
    gate: Option<&Gate>,
    grain: usize,
    bs: &mut BeamScratch,
    out: &mut Vec<CrossEvent>,
) {
    // Per-scanbeam interruption point: a tripped gate degrades every
    // remaining beam to an empty crossing list.
    if gate.is_some_and(|g| g.is_tripped()) {
        return;
    }
    let sub = beams.beam(b);
    // `sub` is in bottom order (xb, then xt); inversions against the top
    // order (xt, then xb) are exactly the crossing pairs.
    beam_inversions_in(sub, gate, grain, bs);
    if let Some(g) = gate {
        // Credit before materializing the events; a beam that would blow
        // `max_intersections` latches the gate instead of allocating O(k).
        if g.intersections_would_exceed(bs.pairs.len() as u64) {
            return;
        }
        g.meter().add_intersections(bs.pairs.len() as u64);
    }
    out.reserve(bs.pairs.len());
    for (t, &(i, j)) in bs.pairs.iter().enumerate() {
        // Same batched re-poll as the residual path: k segment-intersection
        // tests in one beam must not straddle the cancellation contract.
        if t & 0xFFF == 0 && t > 0 && gate.is_some_and(|g| g.is_tripped()) {
            return;
        }
        let (sa, sb) = (&sub[i], &sub[j]);
        if sa.edge_id == sb.edge_id {
            continue; // an edge occurs once per beam, but stay defensive
        }
        let ea = edges[sa.edge_id as usize].segment();
        let eb = edges[sb.edge_id as usize].segment();
        match ea.intersect(&eb) {
            SegmentIntersection::At(p) => out.push(CrossEvent {
                e1: sa.edge_id,
                e2: sb.edge_id,
                p,
            }),
            // Collinear overlaps and rounding-phantom inversions carry no
            // transversal crossing; the parity classifier handles them
            // without an explicit intersection vertex.
            SegmentIntersection::Overlap(..) | SegmentIntersection::None => {}
        }
    }
}

/// Reference oracle: O(n²) pairwise transversal-crossing finder used by
/// tests and the output-sensitivity benches. Counts only crossings strictly
/// interior to both segments (endpoint touching excluded), matching what
/// inversion discovery reports.
pub fn brute_force_crossings(edges: &[InputEdge]) -> Vec<CrossEvent> {
    let mut out = Vec::new();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            let (a, b) = (edges[i].segment(), edges[j].segment());
            if let SegmentIntersection::At(p) = a.intersect(&b) {
                let interior_a = p != a.a && p != a.b;
                let interior_b = p != b.a && p != b.b;
                if interior_a && interior_b {
                    out.push(CrossEvent {
                        e1: edges[i].id,
                        e2: edges[j].id,
                        p,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beams::{BeamSet, ForcedSplits, PartitionBackend};
    use crate::edges::collect_edges;
    use crate::events::event_ys;
    use polyclip_geom::PolygonSet;
    use std::collections::HashSet;

    fn discover(
        a: &PolygonSet,
        b: &PolygonSet,
        parallel: bool,
    ) -> (Vec<InputEdge>, Vec<CrossEvent>) {
        let edges = collect_edges(a, b);
        let ys = event_ys(&edges, &[], false);
        let beams = BeamSet::build(
            &edges,
            ys,
            &ForcedSplits::empty(edges.len()),
            PartitionBackend::DirectScan,
            false,
        );
        let events = discover_intersections(&beams, &edges, parallel);
        (edges, events)
    }

    fn pair_set(events: &[CrossEvent]) -> HashSet<(u32, u32)> {
        events
            .iter()
            .map(|e| (e.e1.min(e.e2), e.e1.max(e.e2)))
            .collect()
    }

    #[test]
    fn overlapping_diamonds_cross_twice() {
        // Two diamonds offset horizontally: boundaries cross exactly twice.
        let a = PolygonSet::from_xy(&[(0.0, -1.0), (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)]);
        let b = a.translate(polyclip_geom::Point::new(1.0, 0.1)).clone();
        let (edges, events) = discover(&a, &b, false);
        assert_eq!(pair_set(&events), pair_set(&brute_force_crossings(&edges)));
        assert_eq!(pair_set(&events).len(), 2);
    }

    #[test]
    fn bowtie_self_intersection_found() {
        // The bow-tie's own edges cross once at its waist.
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let (edges, events) = discover(&bow, &PolygonSet::new(), false);
        let brute = brute_force_crossings(&edges);
        assert_eq!(pair_set(&events), pair_set(&brute));
        assert_eq!(events.len(), 1);
        let p = events[0].p;
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_polygons_have_no_crossings() {
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (1.0, 0.2), (0.5, 1.0)]);
        let b = a.translate(polyclip_geom::Point::new(10.0, 0.0));
        let (_, events) = discover(&a, &b, false);
        assert!(events.is_empty());
    }

    #[test]
    fn vertex_touching_is_not_a_crossing() {
        // Two triangles sharing exactly one vertex.
        let a = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 0.1), (1.0, 1.0)]);
        let b = PolygonSet::from_xy(&[(1.0, 1.0), (3.0, 1.2), (2.0, 2.0)]);
        let (_, events) = discover(&a, &b, false);
        assert!(events.is_empty(), "got {events:?}");
    }

    #[test]
    fn matches_bruteforce_on_random_star_polygons() {
        // Deterministic pseudo-random star polygons with many crossings.
        let mk = |seed: u64, cx: f64, cy: f64| {
            let mut s = seed;
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 1000.0
            };
            let n = 24;
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let ang = (i as f64) * std::f64::consts::TAU / (n as f64);
                    let r = 0.4 + 0.6 * rng();
                    (cx + r * ang.cos(), cy + r * ang.sin())
                })
                .collect();
            PolygonSet::from_xy(&pts)
        };
        let a = mk(0xabc123, 0.0, 0.0);
        let b = mk(0x987654, 0.4, 0.3);
        for parallel in [false, true] {
            let (edges, events) = discover(&a, &b, parallel);
            let brute = brute_force_crossings(&edges);
            assert_eq!(
                pair_set(&events),
                pair_set(&brute),
                "parallel={parallel}: inversion discovery disagrees with brute force"
            );
            assert!(!events.is_empty());
        }
    }

    #[test]
    fn grid_cross_hatch_counts() {
        // Thin vertical strips vs one fat diagonal band: each strip's two
        // long verticals cross the band's two long diagonals.
        let mut contours = Vec::new();
        for i in 0..5 {
            let x = i as f64;
            contours.push(polyclip_geom::Contour::from_xy(&[
                (x, -5.0),
                (x + 0.2, -5.0),
                (x + 0.2, 5.0),
                (x, 5.0),
            ]));
        }
        let strips = PolygonSet::from_contours(contours);
        let band = PolygonSet::from_xy(&[(-6.0, -1.0), (6.0, -0.5), (6.0, 0.5), (-6.0, 1.0)]);
        let (edges, events) = discover(&strips, &band, false);
        assert_eq!(pair_set(&events), pair_set(&brute_force_crossings(&edges)));
        // 10 vertical edges × 2 near-horizontal band edges = 20 crossings.
        assert_eq!(pair_set(&events).len(), 20);
    }
}
