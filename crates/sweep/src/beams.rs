//! Scanbeam partitioning (Step 2 of Algorithm 1).
//!
//! Every non-horizontal edge is split at each event y interior to its span,
//! producing *sub-edges* that span exactly one scanbeam. The split vertices
//! are the paper's **virtual vertices**; their total count is the k' term of
//! the output-sensitive complexity. Two backends implement the partition:
//!
//! * [`PartitionBackend::DirectScan`] — count sub-edges per edge, prefix-sum,
//!   scatter, sort by (beam, x): the plain count→allocate→fill pattern;
//! * [`PartitionBackend::SegmentTree`] — the paper's §III-E construction: a
//!   segment tree over the event intervals answers "which edges are active
//!   in beam i" with counting queries first and reporting queries after the
//!   output-sensitive allocation.
//!
//! Both produce identical [`BeamSet`]s (asserted in tests); the bench suite
//! compares their cost (ablation `ablation_partition_backend`).

use crate::edges::{InputEdge, Source};
use crate::events::event_index;
use crate::scratch::SweepScratch;
use polyclip_geom::OrdF64;
use polyclip_parprim::Gate;
use polyclip_segtree::SegmentTree;
use rayon::prelude::*;

/// Placeholder sub-edge used to pre-size fill buffers; every slot is
/// overwritten before use unless the gate trips (in which case the caller
/// discards the whole set).
const DUMMY_SUB: SubEdge = SubEdge {
    beam: 0,
    xb: 0.0,
    xt: 0.0,
    src: Source::Subject,
    winding: 0,
    edge_id: 0,
};

/// A fragment of an input edge spanning exactly one scanbeam.
#[derive(Clone, Copy, Debug)]
pub struct SubEdge {
    /// Index of the scanbeam this fragment lives in.
    pub beam: u32,
    /// x-coordinate at the beam's bottom scanline.
    pub xb: f64,
    /// x-coordinate at the beam's top scanline.
    pub xt: f64,
    /// Source polygon of the original edge.
    pub src: Source,
    /// Winding direction of the original edge (+1 up, −1 down).
    pub winding: i8,
    /// Id of the original edge.
    pub edge_id: u32,
}

impl SubEdge {
    /// Lexicographic key ordering fragments left-to-right inside a beam:
    /// bottom x first, top x as tiebreak (two non-crossing fragments sharing
    /// their bottom vertex diverge at the top), edge id for determinism.
    #[inline]
    pub fn order_key(&self) -> (u32, OrdF64, OrdF64, u32) {
        (
            self.beam,
            OrdF64::new(self.xb),
            OrdF64::new(self.xt),
            self.edge_id,
        )
    }
}

/// Forced split points: exact vertices that override the interpolated x when
/// an edge is split at an intersection y. Both edges of a crossing share the
/// *same* intersection vertex, which keeps the stitched output watertight.
#[derive(Clone, Debug, Default)]
pub struct ForcedSplits {
    /// CSR over edge ids: `items[start[id]..start[id+1]]`, sorted by y.
    start: Vec<usize>,
    items: Vec<(f64, f64)>, // (y, x)
}

impl ForcedSplits {
    /// No forced splits (Round A).
    pub fn empty(n_edges: usize) -> Self {
        ForcedSplits {
            start: vec![0; n_edges + 1],
            items: Vec::new(),
        }
    }

    /// Build from `(edge_id, y, x)` triples; duplicates (same edge, same y)
    /// collapse to one entry.
    pub fn build(n_edges: usize, triples: Vec<(u32, f64, f64)>) -> Self {
        Self::build_in(n_edges, &triples, &mut SweepScratch::default())
    }

    /// [`build`](Self::build) from a borrowed triple slice into reused
    /// buffers: the sort/dedup working copy and the CSR arrays come from
    /// `scratch`, so per-round rebuilds of the forced-split table allocate
    /// nothing once capacity is established. Hand the table back with
    /// [`recycle`](Self::recycle).
    pub fn build_in(
        n_edges: usize,
        triples: &[(u32, f64, f64)],
        scratch: &mut SweepScratch,
    ) -> Self {
        let mut buf = std::mem::take(&mut scratch.triples);
        buf.clear();
        buf.extend_from_slice(triples);
        buf.sort_unstable_by(|a, b| (a.0, OrdF64::new(a.1)).cmp(&(b.0, OrdF64::new(b.1))));
        buf.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let (mut start, mut items) = scratch.take_forced();
        start.resize(n_edges + 1, 0);
        for &(id, _, _) in buf.iter() {
            start[id as usize + 1] += 1;
        }
        for i in 0..n_edges {
            start[i + 1] += start[i];
        }
        items.extend(buf.drain(..).map(|(_, y, x)| (y, x)));
        scratch.triples = buf;
        ForcedSplits { start, items }
    }

    /// Hand the CSR arrays back to `scratch` for the next
    /// [`build_in`](Self::build_in).
    pub fn recycle(self, scratch: &mut SweepScratch) {
        scratch.give_forced(self.start, self.items);
    }

    /// The forced x for `edge` at exactly `y`, if any.
    ///
    /// Invariant: `start` has `n_edges + 1` entries and is monotone (built
    /// by prefix sum), so the slice below is in bounds for every edge id the
    /// set was built with; callers never pass ids from a different edge
    /// list. `y` comes from the caller's own event list, never user input,
    /// so the `OrdF64` comparison cannot see NaN.
    #[inline]
    pub fn forced_x(&self, edge: u32, y: f64) -> Option<f64> {
        let s = &self.items[self.start[edge as usize]..self.start[edge as usize + 1]];
        s.binary_search_by(|&(fy, _)| OrdF64::new(fy).cmp(&OrdF64::new(y)))
            .ok()
            .map(|i| s[i].1)
    }

    /// All forced split y's of `edge`.
    #[inline]
    pub fn splits_of(&self, edge: u32) -> &[(f64, f64)] {
        &self.items[self.start[edge as usize]..self.start[edge as usize + 1]]
    }

    /// Total forced vertices.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no forced vertices exist.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Which implementation performs the Step-2 partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartitionBackend {
    /// Count → prefix sum → scatter → sort. Default.
    #[default]
    DirectScan,
    /// Parallel segment tree with count-then-report queries (§III-E).
    SegmentTree,
}

/// Result of [`BeamSet::refine_incremental`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineOutcome {
    /// The set was patched in place; `beams_rebuilt` dirty beams were
    /// re-split and re-sorted, every other beam was kept verbatim.
    Incremental {
        /// Number of dirty beams recomputed.
        beams_rebuilt: usize,
    },
    /// The dirty fraction exceeded the threshold (or a new scanline fell
    /// outside the schedule); the caller must perform a full rebuild.
    TooDirty,
}

/// Edges partitioned into scanbeams: the scanbeam table of the paper,
/// with per-beam sub-edges sorted left-to-right.
#[derive(Clone, Debug)]
pub struct BeamSet {
    /// Sorted distinct event y's; beam `i` spans `ys[i]..ys[i+1]`.
    pub ys: Vec<f64>,
    beam_start: Vec<usize>,
    sub: Vec<SubEdge>,
}

impl BeamSet {
    /// Partition `edges` into the scanbeams bounded by `ys`.
    ///
    /// `ys` must contain every edge endpoint y (and every forced split y);
    /// `parallel` switches the fill and sort to rayon.
    pub fn build(
        edges: &[InputEdge],
        ys: Vec<f64>,
        forced: &ForcedSplits,
        backend: PartitionBackend,
        parallel: bool,
    ) -> Self {
        Self::build_gated(edges, ys, forced, backend, parallel, None)
    }

    /// [`build`](Self::build) under a cooperative [`Gate`]: the splitter
    /// fill polls per input edge, the segment-tree path uses the gated
    /// count-then-report queries, and the final sort is skipped once the
    /// gate trips. Sub-edge incidences (the paper's `k'` scale) are credited
    /// to the gate's work meter. A tripped gate leaves the `BeamSet`
    /// truncated — callers must check the gate before using it.
    pub fn build_gated(
        edges: &[InputEdge],
        ys: Vec<f64>,
        forced: &ForcedSplits,
        backend: PartitionBackend,
        parallel: bool,
        gate: Option<&Gate>,
    ) -> Self {
        Self::build_gated_in(
            edges,
            ys,
            forced,
            backend,
            parallel,
            gate,
            &mut SweepScratch::default(),
        )
    }

    /// [`build_gated`](Self::build_gated) into a reused [`SweepScratch`]:
    /// the sub-edge array, CSR offsets, segment-tree buffers and the
    /// count→allocate→fill working arrays all come from the arena, so
    /// refinement rounds ≥ 2 (and later slabs on the same worker) reuse
    /// round-1 capacity instead of reallocating. Output is bit-identical to
    /// [`build_gated`]: the fill produces the same sub-edge multiset and the
    /// final sort key `(beam, xb, xt, edge_id)` is a strict total order.
    /// Hand the set back with [`recycle`](Self::recycle).
    pub fn build_gated_in(
        edges: &[InputEdge],
        ys: Vec<f64>,
        forced: &ForcedSplits,
        backend: PartitionBackend,
        parallel: bool,
        gate: Option<&Gate>,
        scratch: &mut SweepScratch,
    ) -> Self {
        let n_beams = ys.len().saturating_sub(1);
        let tripped = || gate.is_some_and(|g| g.is_tripped());
        let mut sub = scratch.take_sub();
        match backend {
            PartitionBackend::DirectScan => {
                if parallel {
                    // Count → allocate → fill: each edge owns a disjoint
                    // slice sized by its beam span, so the fill is parallel
                    // and the sub-edge buffer is reused across rounds.
                    let counts = &mut scratch.counts;
                    counts.clear();
                    counts.par_extend(
                        edges
                            .par_iter()
                            .map(|e| event_index(&ys, e.hi.y) - event_index(&ys, e.lo.y)),
                    );
                    let total: usize = counts.iter().sum();
                    sub.resize(total, DUMMY_SUB);
                    let mut slices: Vec<&mut [SubEdge]> = Vec::with_capacity(edges.len());
                    let mut rest: &mut [SubEdge] = &mut sub;
                    for &c in counts.iter() {
                        let (head, tail) = rest.split_at_mut(c);
                        slices.push(head);
                        rest = tail;
                    }
                    slices
                        .into_par_iter()
                        .zip(edges.par_iter())
                        .for_each(|(dst, e)| {
                            // Per-edge interruption point: remaining edges
                            // degrade to placeholder fills.
                            if tripped() {
                                dst.fill(DUMMY_SUB);
                                return;
                            }
                            for (d, s) in dst.iter_mut().zip(EdgeSplitter::new(e, &ys, forced)) {
                                *d = s;
                            }
                        });
                } else {
                    // Per-edge interruption point: a tripped gate degrades
                    // the remaining splitters to empty iterators.
                    let splitter = |e| {
                        let mut sp = EdgeSplitter::new(e, &ys, forced);
                        if tripped() {
                            sp.cur = sp.end;
                        }
                        sp
                    };
                    sub.extend(edges.iter().flat_map(splitter));
                }
            }
            PartitionBackend::SegmentTree => {
                // Intervals in elementary-beam index space.
                let intervals = &mut scratch.intervals;
                intervals.clear();
                intervals.extend(
                    edges
                        .iter()
                        .map(|e| (event_index(&ys, e.lo.y), event_index(&ys, e.hi.y))),
                );
                scratch.credit_reuse(scratch.tree.reusable_bytes());
                let tree =
                    SegmentTree::build_in(n_beams, &scratch.intervals, parallel, &mut scratch.tree);
                tree.par_stab_all_in(gate, &mut scratch.stab);
                if !tripped() {
                    // Reporting phase: each (beam, edge) pair becomes a
                    // sub-edge; beams own disjoint contiguous slices.
                    let offsets = &scratch.stab.offsets;
                    let items = &scratch.stab.items;
                    sub.resize(items.len(), DUMMY_SUB);
                    if parallel {
                        let mut slices: Vec<&mut [SubEdge]> = Vec::with_capacity(n_beams);
                        let mut rest: &mut [SubEdge] = &mut sub;
                        for b in 0..n_beams {
                            let (head, tail) = rest.split_at_mut(offsets[b + 1] - offsets[b]);
                            slices.push(head);
                            rest = tail;
                        }
                        slices.into_par_iter().enumerate().for_each(|(b, dst)| {
                            for (d, &id) in dst.iter_mut().zip(&items[offsets[b]..offsets[b + 1]]) {
                                *d = sub_edge_for(&edges[id as usize], &ys, b, forced);
                            }
                        });
                    } else {
                        let mut k = 0;
                        for b in 0..n_beams {
                            for &id in &items[offsets[b]..offsets[b + 1]] {
                                sub[k] = sub_edge_for(&edges[id as usize], &ys, b, forced);
                                k += 1;
                            }
                        }
                    }
                }
                tree.recycle(&mut scratch.tree);
            }
        };

        if let Some(g) = gate {
            g.meter().add_events(sub.len() as u64);
            g.meter()
                .record_scratch_bytes((sub.len() * std::mem::size_of::<SubEdge>()) as u64);
        }
        // CSR over beams, counted *before* ordering (the counts are
        // order-independent): having the offsets first lets the ordering
        // pass run per beam instead of as one global sort.
        let mut beam_start = scratch.take_beam_start();
        beam_start.resize(n_beams + 1, 0);
        for s in &sub {
            beam_start[s.beam as usize + 1] += 1;
        }
        for i in 0..n_beams {
            beam_start[i + 1] += beam_start[i];
        }

        if !tripped() {
            sort_sub_by_beam(
                &mut sub,
                &beam_start,
                n_beams,
                parallel,
                gate,
                &mut scratch.counts,
            );
        }

        BeamSet {
            ys,
            beam_start,
            sub,
        }
    }

    /// Hand the set's buffers (event schedule, sub-edge array, CSR offsets)
    /// back to `scratch` for the next build or refinement round.
    pub fn recycle(self, scratch: &mut SweepScratch) {
        scratch.give_ys(self.ys);
        scratch.give_sub(self.sub);
        scratch.give_beam_start(self.beam_start);
    }

    /// Incrementally refine the partition after a round discovered new split
    /// scanlines, instead of rebuilding the whole set.
    ///
    /// `new_ys` are the event y's the round appended (residual-crossing
    /// heights; unsorted, duplicates allowed) and `forced` is the *complete*
    /// updated forced-split table. Each new y classifies one or two beams as
    /// **dirty**:
    ///
    /// * a y strictly inside beam `b` splits `b` into two fragments — `b` is
    ///   dirty;
    /// * a y equal to an existing scanline adds no beam, but the forced x of
    ///   edges crossing that scanline changed — both adjacent beams are
    ///   dirty.
    ///
    /// Every edge active in a dirty beam is re-split and re-sorted there;
    /// clean beams keep their sub-edges verbatim (only the beam index is
    /// renumbered), which is sound because a new forced entry either sits at
    /// a new interior y (inside a dirty beam) or at an existing scanline
    /// whose two adjacent beams are dirty — no clean beam's boundary data
    /// changes. Because [`x_on_edge`] is a pure function and the sort key
    /// `(beam, xb, xt, edge_id)` is a strict total order per beam, the
    /// patched set is **bit-identical** to a full rebuild on the merged
    /// schedule (property-tested against both backends).
    ///
    /// Returns [`RefineOutcome::TooDirty`] — caller must fall back to a full
    /// rebuild — when the dirty fraction exceeds `max_dirty_fraction` or a
    /// new y falls outside the current schedule. The fill runs parallel over
    /// beams when `parallel` is set and the patched set is at least `grain`
    /// sub-edges.
    #[allow(clippy::too_many_arguments)]
    pub fn refine_incremental(
        &mut self,
        edges: &[InputEdge],
        forced: &ForcedSplits,
        new_ys: &[f64],
        max_dirty_fraction: f64,
        grain: usize,
        parallel: bool,
        gate: Option<&Gate>,
        scratch: &mut SweepScratch,
    ) -> RefineOutcome {
        let n_beams = self.n_beams();
        if n_beams == 0 {
            return RefineOutcome::TooDirty;
        }
        // Classify each new scanline. Plain f64 equality against the
        // schedule matches the OrdF64 dedup of `event_ys` (no NaN here, and
        // ±0.0 compare equal under both).
        let mut splits = std::mem::take(&mut scratch.splits);
        let mut dirty = std::mem::take(&mut scratch.dirty);
        splits.clear();
        dirty.clear();
        dirty.resize(n_beams, false);
        for &y in new_ys {
            let idx = self.ys.partition_point(|&v| v < y);
            if idx < self.ys.len() && self.ys[idx] == y {
                if idx > 0 {
                    dirty[idx - 1] = true;
                }
                if idx < n_beams {
                    dirty[idx] = true;
                }
            } else if idx == 0 || idx > n_beams {
                // Outside the schedule: the beam structure itself grows;
                // this cannot happen for genuine residual crossings, so
                // don't complicate the patch path for it.
                scratch.splits = splits;
                scratch.dirty = dirty;
                return RefineOutcome::TooDirty;
            } else {
                dirty[idx - 1] = true;
                splits.push((idx as u32 - 1, y));
            }
        }
        splits.sort_unstable_by(|a, b| (a.0, OrdF64::new(a.1)).cmp(&(b.0, OrdF64::new(b.1))));
        splits.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let beams_rebuilt = dirty.iter().filter(|&&d| d).count();
        if beams_rebuilt as f64 > max_dirty_fraction * n_beams as f64 {
            scratch.splits = splits;
            scratch.dirty = dirty;
            return RefineOutcome::TooDirty;
        }

        // CSR over old beams into `splits`, plus output offsets: old beam b
        // becomes `splits_of_b + 1` fragments of `old_count` sub-edges each
        // (every old sub-edge spans the whole old beam, hence every
        // fragment).
        let mut split_start = std::mem::take(&mut scratch.split_start);
        split_start.clear();
        split_start.reserve(n_beams + 1);
        split_start.push(0);
        {
            let mut si = 0usize;
            for b in 0..n_beams {
                while si < splits.len() && (splits[si].0 as usize) == b {
                    si += 1;
                }
                split_start.push(si);
            }
        }

        // Merged schedule: old scanlines with each beam's interior splits
        // spliced in — exactly what `event_ys` would produce.
        let mut new_ys_vec = scratch.take_ys();
        new_ys_vec.reserve(self.ys.len() + splits.len());
        for b in 0..n_beams {
            new_ys_vec.push(self.ys[b]);
            for &(_, y) in &splits[split_start[b]..split_start[b + 1]] {
                new_ys_vec.push(y);
            }
        }
        new_ys_vec.push(self.ys[n_beams]);

        let mut new_total = 0usize;
        let mut recomputed = 0usize;
        for b in 0..n_beams {
            let nfrag = split_start[b + 1] - split_start[b] + 1;
            let cnt = self.beam(b).len();
            new_total += nfrag * cnt;
            if dirty[b] {
                recomputed += nfrag * cnt;
            }
        }
        if let Some(g) = gate {
            g.meter().add_events(recomputed as u64);
            g.meter()
                .record_scratch_bytes((new_total * std::mem::size_of::<SubEdge>()) as u64);
        }

        let mut new_sub = scratch.take_sub();
        new_sub.resize(new_total, DUMMY_SUB);
        {
            let tripped = || gate.is_some_and(|g| g.is_tripped());
            let fill_beam = |b: usize, dst: &mut [SubEdge]| {
                let old = self.beam(b);
                let base = (b + split_start[b]) as u32;
                if !dirty[b] {
                    // Clean beam: copy verbatim, renumbering the beam index.
                    for (d, s) in dst.iter_mut().zip(old) {
                        let mut c = *s;
                        c.beam = base;
                        *d = c;
                    }
                    return;
                }
                if tripped() {
                    dst.fill(DUMMY_SUB);
                    return;
                }
                let cnt = old.len();
                let s_range = &splits[split_start[b]..split_start[b + 1]];
                let nfrag = s_range.len() + 1;
                for (ei, s) in old.iter().enumerate() {
                    let e = &edges[s.edge_id as usize];
                    let mut x_lo = x_on_edge(e, self.ys[b], forced);
                    for f in 0..nfrag {
                        let y_hi = if f < s_range.len() {
                            s_range[f].1
                        } else {
                            self.ys[b + 1]
                        };
                        let x_hi = x_on_edge(e, y_hi, forced);
                        dst[f * cnt + ei] = SubEdge {
                            beam: base + f as u32,
                            xb: x_lo,
                            xt: x_hi,
                            src: s.src,
                            winding: s.winding,
                            edge_id: s.edge_id,
                        };
                        x_lo = x_hi;
                    }
                }
                for f in 0..nfrag {
                    dst[f * cnt..(f + 1) * cnt].sort_unstable_by_key(|s| s.order_key());
                }
            };
            if parallel && new_total >= grain {
                let mut slices: Vec<&mut [SubEdge]> = Vec::with_capacity(n_beams);
                let mut rest: &mut [SubEdge] = &mut new_sub;
                for b in 0..n_beams {
                    let nfrag = split_start[b + 1] - split_start[b] + 1;
                    let (head, tail) = rest.split_at_mut(nfrag * self.beam(b).len());
                    slices.push(head);
                    rest = tail;
                }
                slices
                    .into_par_iter()
                    .enumerate()
                    .for_each(|(b, dst)| fill_beam(b, dst));
            } else {
                let mut off = 0usize;
                for b in 0..n_beams {
                    let nfrag = split_start[b + 1] - split_start[b] + 1;
                    let len = nfrag * self.beam(b).len();
                    fill_beam(b, &mut new_sub[off..off + len]);
                    off += len;
                }
            }
        }

        // New per-beam CSR: every fragment of old beam b holds `old_count`
        // sub-edges.
        let mut new_start = scratch.take_beam_start();
        new_start.reserve(n_beams + splits.len() + 1);
        let mut acc = 0usize;
        for b in 0..n_beams {
            let nfrag = split_start[b + 1] - split_start[b] + 1;
            let cnt = self.beam(b).len();
            for _ in 0..nfrag {
                new_start.push(acc);
                acc += cnt;
            }
        }
        new_start.push(acc);
        debug_assert_eq!(acc, new_total);

        let old_ys = std::mem::replace(&mut self.ys, new_ys_vec);
        let old_sub = std::mem::replace(&mut self.sub, new_sub);
        let old_start = std::mem::replace(&mut self.beam_start, new_start);
        scratch.give_ys(old_ys);
        scratch.give_sub(old_sub);
        scratch.give_beam_start(old_start);
        scratch.splits = splits;
        scratch.dirty = dirty;
        scratch.split_start = split_start;
        RefineOutcome::Incremental { beams_rebuilt }
    }

    /// Number of scanbeams.
    #[inline]
    pub fn n_beams(&self) -> usize {
        self.ys.len().saturating_sub(1)
    }

    /// The sub-edges of beam `i`, sorted left-to-right.
    #[inline]
    pub fn beam(&self, i: usize) -> &[SubEdge] {
        &self.sub[self.beam_start[i]..self.beam_start[i + 1]]
    }

    /// Bottom scanline of beam `i`.
    #[inline]
    pub fn y_bot(&self, i: usize) -> f64 {
        self.ys[i]
    }

    /// Top scanline of beam `i`.
    #[inline]
    pub fn y_top(&self, i: usize) -> f64 {
        self.ys[i + 1]
    }

    /// Total sub-edge count; `total_sub_edges() - n_input_edges` is the
    /// number of virtual vertices k' introduced by the partition.
    #[inline]
    pub fn total_sub_edges(&self) -> usize {
        self.sub.len()
    }
}

/// Order `sub` by [`SubEdge::order_key`], given the per-beam CSR offsets:
/// an in-place bucket permutation by beam (`O(total)` swaps) followed by
/// independent per-beam sorts. The key is total (edge ids are unique within
/// a beam), so the result is bit-identical to a global unstable sort by the
/// same key — but the comparison depth drops from `log total` to
/// `log beam_len`, the per-beam phase parallelizes over beams, and both
/// phases poll the gate at bounded intervals, where a single global sort is
/// uninterruptible for its whole `O(total log total)` run. A trip mid-pass
/// leaves `sub` partially ordered — callers must check the gate.
fn sort_sub_by_beam(
    sub: &mut [SubEdge],
    beam_start: &[usize],
    n_beams: usize,
    parallel: bool,
    gate: Option<&Gate>,
    cursor: &mut Vec<usize>,
) {
    let tripped = || gate.is_some_and(|g| g.is_tripped());
    cursor.clear();
    cursor.extend_from_slice(&beam_start[..n_beams]);
    let mut ops = 0usize;
    for b in 0..n_beams {
        // Buckets below `b` are already complete, so every remaining
        // misplaced element swaps directly into its final bucket; each
        // element moves at most once.
        let end = beam_start[b + 1];
        while cursor[b] < end {
            ops += 1;
            if ops & 0xFFFF == 0 && tripped() {
                return;
            }
            let tb = sub[cursor[b]].beam as usize;
            if tb == b {
                cursor[b] += 1;
            } else {
                let dst = cursor[tb];
                cursor[tb] += 1;
                sub.swap(cursor[b], dst);
            }
        }
    }
    if parallel {
        let mut slices: Vec<&mut [SubEdge]> = Vec::with_capacity(n_beams);
        let mut rest: &mut [SubEdge] = sub;
        for b in 0..n_beams {
            let (head, tail) = rest.split_at_mut(beam_start[b + 1] - beam_start[b]);
            slices.push(head);
            rest = tail;
        }
        slices.into_par_iter().for_each(|s| {
            if s.len() > 1 && !tripped() {
                s.sort_unstable_by_key(|e| e.order_key());
            }
        });
    } else {
        for b in 0..n_beams {
            if tripped() {
                return;
            }
            sub[beam_start[b]..beam_start[b + 1]].sort_unstable_by_key(|e| e.order_key());
        }
    }
}

/// Compute the sub-edge of `e` in `beam` (both boundary x's).
fn sub_edge_for(e: &InputEdge, ys: &[f64], beam: usize, forced: &ForcedSplits) -> SubEdge {
    let yb = ys[beam];
    let yt = ys[beam + 1];
    SubEdge {
        beam: beam as u32,
        xb: x_on_edge(e, yb, forced),
        xt: x_on_edge(e, yt, forced),
        src: e.src,
        winding: e.winding,
        edge_id: e.id,
    }
}

/// x of edge `e` at event height `y`: endpoint-exact, then forced vertices,
/// then interpolation. Pure function of its arguments, so the two beams
/// sharing a scanline obtain bit-identical coordinates.
#[inline]
fn x_on_edge(e: &InputEdge, y: f64, forced: &ForcedSplits) -> f64 {
    if y == e.lo.y {
        e.lo.x
    } else if y == e.hi.y {
        e.hi.x
    } else if let Some(x) = forced.forced_x(e.id, y) {
        x
    } else {
        e.x_at_y(y)
    }
}

/// Iterator yielding the sub-edges of one input edge, bottom to top.
struct EdgeSplitter<'a> {
    e: &'a InputEdge,
    ys: &'a [f64],
    forced: &'a ForcedSplits,
    cur: usize,
    end: usize,
    /// x at the current (lower) boundary, reused as the next xb.
    x_cur: f64,
}

impl<'a> EdgeSplitter<'a> {
    fn new(e: &'a InputEdge, ys: &'a [f64], forced: &'a ForcedSplits) -> Self {
        let i0 = event_index(ys, e.lo.y);
        let i1 = event_index(ys, e.hi.y);
        debug_assert!(i0 < i1, "edge must span at least one beam");
        EdgeSplitter {
            e,
            ys,
            forced,
            cur: i0,
            end: i1,
            x_cur: e.lo.x,
        }
    }
}

impl Iterator for EdgeSplitter<'_> {
    type Item = SubEdge;

    fn next(&mut self) -> Option<SubEdge> {
        if self.cur >= self.end {
            return None;
        }
        let beam = self.cur;
        let xb = self.x_cur;
        let xt = x_on_edge(self.e, self.ys[beam + 1], self.forced);
        self.x_cur = xt;
        self.cur += 1;
        Some(SubEdge {
            beam: beam as u32,
            xb,
            xt,
            src: self.e.src,
            winding: self.e.winding,
            edge_id: self.e.id,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::collect_edges;
    use crate::events::{event_ys, event_ys_in};
    use polyclip_geom::PolygonSet;

    fn beams_of(
        p: &PolygonSet,
        q: &PolygonSet,
        backend: PartitionBackend,
        parallel: bool,
    ) -> (Vec<InputEdge>, BeamSet) {
        let edges = collect_edges(p, q);
        let ys = event_ys(&edges, &[], false);
        let forced = ForcedSplits::empty(edges.len());
        let bs = BeamSet::build(&edges, ys, &forced, backend, parallel);
        (edges, bs)
    }

    #[test]
    fn triangle_splits_into_two_beams() {
        // Triangle with apex between the base corners' y's.
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 1.0), (2.0, 2.0)]);
        let (edges, bs) = beams_of(&p, &PolygonSet::new(), PartitionBackend::DirectScan, false);
        assert_eq!(edges.len(), 3);
        assert_eq!(bs.n_beams(), 2);
        // Beam 0 (y 0..1): edges (0,0)-(4,1) and (0,0)-(2,2) → 2 sub-edges.
        assert_eq!(bs.beam(0).len(), 2);
        // Beam 1 (y 1..2): edges (4,1)-(2,2) and (0,0)-(2,2) → 2 sub-edges.
        assert_eq!(bs.beam(1).len(), 2);
        // k': edge (0,0)-(2,2) was split once.
        assert_eq!(bs.total_sub_edges(), 4);
        // Sub-edges are x-sorted within their beams.
        for b in 0..bs.n_beams() {
            let s = bs.beam(b);
            for w in s.windows(2) {
                assert!(w[0].order_key() <= w[1].order_key());
            }
        }
    }

    #[test]
    fn shared_scanline_coordinates_match_exactly() {
        let p = PolygonSet::from_xy(&[(0.1, 0.0), (4.3, 0.7), (2.9, 2.1), (0.4, 1.3)]);
        let q = PolygonSet::from_xy(&[(1.0, 0.3), (3.0, 0.2), (2.0, 1.9)]);
        let (_, bs) = beams_of(&p, &q, PartitionBackend::DirectScan, false);
        // For every pair of vertically adjacent beams, each edge present in
        // both must have top-x (below) == bottom-x (above), bit-exact.
        for b in 0..bs.n_beams().saturating_sub(1) {
            for lo in bs.beam(b) {
                for hi in bs.beam(b + 1) {
                    if lo.edge_id == hi.edge_id {
                        assert_eq!(lo.xt.to_bits(), hi.xb.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn segment_tree_backend_agrees_with_direct_scan() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        for parallel in [false, true] {
            let (_, a) = beams_of(&p, &q, PartitionBackend::DirectScan, parallel);
            let (_, b) = beams_of(&p, &q, PartitionBackend::SegmentTree, parallel);
            assert_eq!(a.n_beams(), b.n_beams());
            assert_eq!(a.total_sub_edges(), b.total_sub_edges());
            for i in 0..a.n_beams() {
                let (sa, sb) = (a.beam(i), b.beam(i));
                assert_eq!(sa.len(), sb.len(), "beam {i}");
                for (x, y) in sa.iter().zip(sb) {
                    assert_eq!(x.edge_id, y.edge_id);
                    assert_eq!(x.xb.to_bits(), y.xb.to_bits());
                    assert_eq!(x.xt.to_bits(), y.xt.to_bits());
                }
            }
        }
    }

    #[test]
    fn forced_splits_override_interpolation() {
        // One tall edge from (0,0) to (2,4); force a vertex at (0.75, 2.0).
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 4.0), (-2.0, 4.0)]);
        let edges = collect_edges(&p, &PolygonSet::new());
        let diag = edges
            .iter()
            .find(|e| e.lo == polyclip_geom::Point::new(0.0, 0.0) && e.hi.x == 2.0)
            .unwrap();
        let ys = event_ys(&edges, &[2.0], false);
        let forced = ForcedSplits::build(edges.len(), vec![(diag.id, 2.0, 0.75)]);
        let bs = BeamSet::build(&edges, ys, &forced, PartitionBackend::DirectScan, false);
        // The diagonal's sub-edge below y=2 ends at x=0.75, not at 1.0.
        let below: Vec<&SubEdge> = bs.beam(0).iter().filter(|s| s.edge_id == diag.id).collect();
        assert_eq!(below.len(), 1);
        assert_eq!(below[0].xt, 0.75);
        let above: Vec<&SubEdge> = bs.beam(1).iter().filter(|s| s.edge_id == diag.id).collect();
        assert_eq!(above[0].xb, 0.75);
    }

    #[test]
    fn forced_splits_dedupe() {
        let f = ForcedSplits::build(
            2,
            vec![(0, 1.0, 5.0), (0, 1.0, 5.0), (0, 2.0, 6.0), (1, 1.0, 7.0)],
        );
        assert_eq!(f.len(), 3);
        assert_eq!(f.forced_x(0, 1.0), Some(5.0));
        assert_eq!(f.forced_x(0, 2.0), Some(6.0));
        assert_eq!(f.forced_x(0, 3.0), None);
        assert_eq!(f.forced_x(1, 1.0), Some(7.0));
        assert_eq!(f.splits_of(0).len(), 2);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        let (_, a) = beams_of(&p, &q, PartitionBackend::DirectScan, false);
        let (_, b) = beams_of(&p, &q, PartitionBackend::DirectScan, true);
        assert_eq!(a.total_sub_edges(), b.total_sub_edges());
        for i in 0..a.n_beams() {
            for (x, y) in a.beam(i).iter().zip(b.beam(i)) {
                assert_eq!(x.edge_id, y.edge_id);
                assert_eq!(x.xb.to_bits(), y.xb.to_bits());
            }
        }
    }

    fn assert_identical(a: &BeamSet, b: &BeamSet) {
        assert_eq!(a.ys.len(), b.ys.len(), "schedule length");
        for (x, y) in a.ys.iter().zip(&b.ys) {
            assert_eq!(x.to_bits(), y.to_bits(), "schedule y");
        }
        assert_eq!(a.beam_start, b.beam_start, "beam CSR");
        assert_eq!(a.sub.len(), b.sub.len());
        for (x, y) in a.sub.iter().zip(&b.sub) {
            assert_eq!(x.beam, y.beam);
            assert_eq!(x.xb.to_bits(), y.xb.to_bits());
            assert_eq!(x.xt.to_bits(), y.xt.to_bits());
            assert_eq!(x.src, y.src);
            assert_eq!(x.winding, y.winding);
            assert_eq!(x.edge_id, y.edge_id);
        }
    }

    /// Forced triples for `new_ys`: every edge strictly spanning a new y
    /// gets a forced vertex there, mimicking what intersection discovery
    /// feeds the engine.
    fn triples_at(edges: &[InputEdge], new_ys: &[f64]) -> Vec<(u32, f64, f64)> {
        let mut t = Vec::new();
        for &y in new_ys {
            for e in edges {
                if e.lo.y < y && y < e.hi.y {
                    t.push((e.id, y, e.x_at_y(y)));
                }
            }
        }
        t
    }

    #[test]
    fn incremental_refine_matches_full_rebuild() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        let edges = collect_edges(&p, &q);
        // Round-2 scanlines: two interior, one landing exactly on an
        // existing event (1.0) so the forced-x-at-existing-scanline path is
        // exercised, plus a duplicate.
        let extra = [0.8, 1.0, 2.2, 0.8];
        let triples = triples_at(&edges, &extra);
        for backend in [PartitionBackend::DirectScan, PartitionBackend::SegmentTree] {
            for parallel in [false, true] {
                let mut scratch = SweepScratch::new();
                let ys0 = event_ys(&edges, &[], parallel);
                let empty = ForcedSplits::empty(edges.len());
                let mut inc = BeamSet::build_gated_in(
                    &edges,
                    ys0,
                    &empty,
                    backend,
                    parallel,
                    None,
                    &mut scratch,
                );
                let forced = ForcedSplits::build(edges.len(), triples.clone());
                let out = inc.refine_incremental(
                    &edges,
                    &forced,
                    &extra,
                    1.0,
                    4,
                    parallel,
                    None,
                    &mut scratch,
                );
                assert!(
                    matches!(out, RefineOutcome::Incremental { beams_rebuilt } if beams_rebuilt > 0),
                    "{out:?}"
                );
                let ys1 = event_ys(&edges, &extra, parallel);
                let full = BeamSet::build(&edges, ys1, &forced, backend, parallel);
                assert_identical(&inc, &full);
            }
        }
    }

    #[test]
    fn incremental_refine_multi_round_reuses_capacity() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        let edges = collect_edges(&p, &q);
        let mut scratch = SweepScratch::new();
        let ys0 = event_ys_in(&edges, &[], false, &mut scratch);
        let empty = ForcedSplits::empty(edges.len());
        let mut inc = BeamSet::build_gated_in(
            &edges,
            ys0,
            &empty,
            PartitionBackend::DirectScan,
            false,
            None,
            &mut scratch,
        );
        scratch.take_reused_bytes();
        let mut extra_all: Vec<f64> = Vec::new();
        for round_ys in [[0.8, 2.2], [1.4, 0.9]] {
            extra_all.extend_from_slice(&round_ys);
            let forced = ForcedSplits::build(edges.len(), triples_at(&edges, &extra_all));
            let out = inc.refine_incremental(
                &edges,
                &forced,
                &round_ys,
                1.0,
                4,
                false,
                None,
                &mut scratch,
            );
            assert!(matches!(out, RefineOutcome::Incremental { .. }), "{out:?}");
        }
        let ysf = event_ys(&edges, &extra_all, false);
        let forced = ForcedSplits::build(edges.len(), triples_at(&edges, &extra_all));
        let full = BeamSet::build(&edges, ysf, &forced, PartitionBackend::DirectScan, false);
        assert_identical(&inc, &full);
        // Round 2 drew its sub-edge / schedule buffers from round-1 capacity.
        assert!(scratch.take_reused_bytes() > 0);
        assert!(scratch.high_water_bytes() > 0);
    }

    #[test]
    fn incremental_refine_rejects_out_of_schedule_and_high_dirt() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 1.0), (2.0, 2.0)]);
        let edges = collect_edges(&p, &PolygonSet::new());
        let mut scratch = SweepScratch::new();
        let ys = event_ys(&edges, &[], false);
        let empty = ForcedSplits::empty(edges.len());
        let mut bs = BeamSet::build(&edges, ys, &empty, PartitionBackend::DirectScan, false);
        let before = bs.clone();
        // y below the whole schedule → structural growth → TooDirty.
        let out = bs.refine_incremental(&edges, &empty, &[-1.0], 1.0, 4, false, None, &mut scratch);
        assert_eq!(out, RefineOutcome::TooDirty);
        // Every beam dirty with a 10% budget → TooDirty. Neither call may
        // have modified the set.
        let out = bs.refine_incremental(
            &edges,
            &empty,
            &[0.5, 1.5],
            0.1,
            4,
            false,
            None,
            &mut scratch,
        );
        assert_eq!(out, RefineOutcome::TooDirty);
        assert_identical(&bs, &before);
    }
}
