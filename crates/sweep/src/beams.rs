//! Scanbeam partitioning (Step 2 of Algorithm 1).
//!
//! Every non-horizontal edge is split at each event y interior to its span,
//! producing *sub-edges* that span exactly one scanbeam. The split vertices
//! are the paper's **virtual vertices**; their total count is the k' term of
//! the output-sensitive complexity. Two backends implement the partition:
//!
//! * [`PartitionBackend::DirectScan`] — count sub-edges per edge, prefix-sum,
//!   scatter, sort by (beam, x): the plain count→allocate→fill pattern;
//! * [`PartitionBackend::SegmentTree`] — the paper's §III-E construction: a
//!   segment tree over the event intervals answers "which edges are active
//!   in beam i" with counting queries first and reporting queries after the
//!   output-sensitive allocation.
//!
//! Both produce identical [`BeamSet`]s (asserted in tests); the bench suite
//! compares their cost (ablation `ablation_partition_backend`).

use crate::edges::{InputEdge, Source};
use crate::events::event_index;
use polyclip_geom::OrdF64;
use polyclip_parprim::Gate;
use polyclip_segtree::SegmentTree;
use rayon::prelude::*;

/// A fragment of an input edge spanning exactly one scanbeam.
#[derive(Clone, Copy, Debug)]
pub struct SubEdge {
    /// Index of the scanbeam this fragment lives in.
    pub beam: u32,
    /// x-coordinate at the beam's bottom scanline.
    pub xb: f64,
    /// x-coordinate at the beam's top scanline.
    pub xt: f64,
    /// Source polygon of the original edge.
    pub src: Source,
    /// Winding direction of the original edge (+1 up, −1 down).
    pub winding: i8,
    /// Id of the original edge.
    pub edge_id: u32,
}

impl SubEdge {
    /// Lexicographic key ordering fragments left-to-right inside a beam:
    /// bottom x first, top x as tiebreak (two non-crossing fragments sharing
    /// their bottom vertex diverge at the top), edge id for determinism.
    #[inline]
    pub fn order_key(&self) -> (u32, OrdF64, OrdF64, u32) {
        (
            self.beam,
            OrdF64::new(self.xb),
            OrdF64::new(self.xt),
            self.edge_id,
        )
    }
}

/// Forced split points: exact vertices that override the interpolated x when
/// an edge is split at an intersection y. Both edges of a crossing share the
/// *same* intersection vertex, which keeps the stitched output watertight.
#[derive(Clone, Debug, Default)]
pub struct ForcedSplits {
    /// CSR over edge ids: `items[start[id]..start[id+1]]`, sorted by y.
    start: Vec<usize>,
    items: Vec<(f64, f64)>, // (y, x)
}

impl ForcedSplits {
    /// No forced splits (Round A).
    pub fn empty(n_edges: usize) -> Self {
        ForcedSplits {
            start: vec![0; n_edges + 1],
            items: Vec::new(),
        }
    }

    /// Build from `(edge_id, y, x)` triples; duplicates (same edge, same y)
    /// collapse to one entry.
    pub fn build(n_edges: usize, mut triples: Vec<(u32, f64, f64)>) -> Self {
        triples.sort_unstable_by(|a, b| (a.0, OrdF64::new(a.1)).cmp(&(b.0, OrdF64::new(b.1))));
        triples.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let mut start = vec![0usize; n_edges + 1];
        for &(id, _, _) in &triples {
            start[id as usize + 1] += 1;
        }
        for i in 0..n_edges {
            start[i + 1] += start[i];
        }
        let items = triples.into_iter().map(|(_, y, x)| (y, x)).collect();
        ForcedSplits { start, items }
    }

    /// The forced x for `edge` at exactly `y`, if any.
    ///
    /// Invariant: `start` has `n_edges + 1` entries and is monotone (built
    /// by prefix sum), so the slice below is in bounds for every edge id the
    /// set was built with; callers never pass ids from a different edge
    /// list. `y` comes from the caller's own event list, never user input,
    /// so the `OrdF64` comparison cannot see NaN.
    #[inline]
    pub fn forced_x(&self, edge: u32, y: f64) -> Option<f64> {
        let s = &self.items[self.start[edge as usize]..self.start[edge as usize + 1]];
        s.binary_search_by(|&(fy, _)| OrdF64::new(fy).cmp(&OrdF64::new(y)))
            .ok()
            .map(|i| s[i].1)
    }

    /// All forced split y's of `edge`.
    #[inline]
    pub fn splits_of(&self, edge: u32) -> &[(f64, f64)] {
        &self.items[self.start[edge as usize]..self.start[edge as usize + 1]]
    }

    /// Total forced vertices.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no forced vertices exist.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Which implementation performs the Step-2 partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PartitionBackend {
    /// Count → prefix sum → scatter → sort. Default.
    #[default]
    DirectScan,
    /// Parallel segment tree with count-then-report queries (§III-E).
    SegmentTree,
}

/// Edges partitioned into scanbeams: the scanbeam table of the paper,
/// with per-beam sub-edges sorted left-to-right.
#[derive(Clone, Debug)]
pub struct BeamSet {
    /// Sorted distinct event y's; beam `i` spans `ys[i]..ys[i+1]`.
    pub ys: Vec<f64>,
    beam_start: Vec<usize>,
    sub: Vec<SubEdge>,
}

impl BeamSet {
    /// Partition `edges` into the scanbeams bounded by `ys`.
    ///
    /// `ys` must contain every edge endpoint y (and every forced split y);
    /// `parallel` switches the fill and sort to rayon.
    pub fn build(
        edges: &[InputEdge],
        ys: Vec<f64>,
        forced: &ForcedSplits,
        backend: PartitionBackend,
        parallel: bool,
    ) -> Self {
        Self::build_gated(edges, ys, forced, backend, parallel, None)
    }

    /// [`build`](Self::build) under a cooperative [`Gate`]: the splitter
    /// fill polls per input edge, the segment-tree path uses the gated
    /// count-then-report queries, and the final sort is skipped once the
    /// gate trips. Sub-edge incidences (the paper's `k'` scale) are credited
    /// to the gate's work meter. A tripped gate leaves the `BeamSet`
    /// truncated — callers must check the gate before using it.
    pub fn build_gated(
        edges: &[InputEdge],
        ys: Vec<f64>,
        forced: &ForcedSplits,
        backend: PartitionBackend,
        parallel: bool,
        gate: Option<&Gate>,
    ) -> Self {
        let n_beams = ys.len().saturating_sub(1);
        let tripped = || gate.is_some_and(|g| g.is_tripped());
        // Per-edge interruption point: a tripped gate degrades the remaining
        // splitters to empty iterators.
        let splitter = |e| {
            let mut sp = EdgeSplitter::new(e, &ys, forced);
            if tripped() {
                sp.cur = sp.end;
            }
            sp
        };
        let mut sub: Vec<SubEdge> = match backend {
            PartitionBackend::DirectScan => {
                if parallel {
                    edges.par_iter().flat_map_iter(splitter).collect()
                } else {
                    edges.iter().flat_map(splitter).collect()
                }
            }
            PartitionBackend::SegmentTree => {
                // Intervals in elementary-beam index space.
                let intervals: Vec<(usize, usize)> = edges
                    .iter()
                    .map(|e| (event_index(&ys, e.lo.y), event_index(&ys, e.hi.y)))
                    .collect();
                let tree = if parallel {
                    SegmentTree::par_build(n_beams, &intervals)
                } else {
                    SegmentTree::build(n_beams, &intervals)
                };
                let (offsets, items) = tree.par_stab_all_gated(gate);
                if tripped() {
                    Vec::new()
                } else {
                    // Reporting phase: each (beam, edge) pair becomes a
                    // sub-edge.
                    let make = |beam: usize, id: u32| -> SubEdge {
                        let e = &edges[id as usize];
                        sub_edge_for(e, &ys, beam, forced)
                    };
                    if parallel {
                        (0..n_beams)
                            .into_par_iter()
                            .flat_map_iter(|b| {
                                items[offsets[b]..offsets[b + 1]]
                                    .iter()
                                    .map(move |&id| make(b, id))
                            })
                            .collect()
                    } else {
                        (0..n_beams)
                            .flat_map(|b| {
                                items[offsets[b]..offsets[b + 1]]
                                    .iter()
                                    .map(move |&id| make(b, id))
                            })
                            .collect()
                    }
                }
            }
        };

        if let Some(g) = gate {
            g.meter().add_events(sub.len() as u64);
            g.meter()
                .record_scratch_bytes((sub.len() * std::mem::size_of::<SubEdge>()) as u64);
        }
        if !tripped() {
            if parallel {
                sub.par_sort_unstable_by_key(|s| s.order_key());
            } else {
                sub.sort_unstable_by_key(|s| s.order_key());
            }
        }

        // CSR over beams.
        let mut beam_start = vec![0usize; n_beams + 1];
        for s in &sub {
            beam_start[s.beam as usize + 1] += 1;
        }
        for i in 0..n_beams {
            beam_start[i + 1] += beam_start[i];
        }
        BeamSet {
            ys,
            beam_start,
            sub,
        }
    }

    /// Number of scanbeams.
    #[inline]
    pub fn n_beams(&self) -> usize {
        self.ys.len().saturating_sub(1)
    }

    /// The sub-edges of beam `i`, sorted left-to-right.
    #[inline]
    pub fn beam(&self, i: usize) -> &[SubEdge] {
        &self.sub[self.beam_start[i]..self.beam_start[i + 1]]
    }

    /// Bottom scanline of beam `i`.
    #[inline]
    pub fn y_bot(&self, i: usize) -> f64 {
        self.ys[i]
    }

    /// Top scanline of beam `i`.
    #[inline]
    pub fn y_top(&self, i: usize) -> f64 {
        self.ys[i + 1]
    }

    /// Total sub-edge count; `total_sub_edges() - n_input_edges` is the
    /// number of virtual vertices k' introduced by the partition.
    #[inline]
    pub fn total_sub_edges(&self) -> usize {
        self.sub.len()
    }
}

/// Compute the sub-edge of `e` in `beam` (both boundary x's).
fn sub_edge_for(e: &InputEdge, ys: &[f64], beam: usize, forced: &ForcedSplits) -> SubEdge {
    let yb = ys[beam];
    let yt = ys[beam + 1];
    SubEdge {
        beam: beam as u32,
        xb: x_on_edge(e, yb, forced),
        xt: x_on_edge(e, yt, forced),
        src: e.src,
        winding: e.winding,
        edge_id: e.id,
    }
}

/// x of edge `e` at event height `y`: endpoint-exact, then forced vertices,
/// then interpolation. Pure function of its arguments, so the two beams
/// sharing a scanline obtain bit-identical coordinates.
#[inline]
fn x_on_edge(e: &InputEdge, y: f64, forced: &ForcedSplits) -> f64 {
    if y == e.lo.y {
        e.lo.x
    } else if y == e.hi.y {
        e.hi.x
    } else if let Some(x) = forced.forced_x(e.id, y) {
        x
    } else {
        e.x_at_y(y)
    }
}

/// Iterator yielding the sub-edges of one input edge, bottom to top.
struct EdgeSplitter<'a> {
    e: &'a InputEdge,
    ys: &'a [f64],
    forced: &'a ForcedSplits,
    cur: usize,
    end: usize,
    /// x at the current (lower) boundary, reused as the next xb.
    x_cur: f64,
}

impl<'a> EdgeSplitter<'a> {
    fn new(e: &'a InputEdge, ys: &'a [f64], forced: &'a ForcedSplits) -> Self {
        let i0 = event_index(ys, e.lo.y);
        let i1 = event_index(ys, e.hi.y);
        debug_assert!(i0 < i1, "edge must span at least one beam");
        EdgeSplitter {
            e,
            ys,
            forced,
            cur: i0,
            end: i1,
            x_cur: e.lo.x,
        }
    }
}

impl Iterator for EdgeSplitter<'_> {
    type Item = SubEdge;

    fn next(&mut self) -> Option<SubEdge> {
        if self.cur >= self.end {
            return None;
        }
        let beam = self.cur;
        let xb = self.x_cur;
        let xt = x_on_edge(self.e, self.ys[beam + 1], self.forced);
        self.x_cur = xt;
        self.cur += 1;
        Some(SubEdge {
            beam: beam as u32,
            xb,
            xt,
            src: self.e.src,
            winding: self.e.winding,
            edge_id: self.e.id,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::collect_edges;
    use crate::events::event_ys;
    use polyclip_geom::PolygonSet;

    fn beams_of(
        p: &PolygonSet,
        q: &PolygonSet,
        backend: PartitionBackend,
        parallel: bool,
    ) -> (Vec<InputEdge>, BeamSet) {
        let edges = collect_edges(p, q);
        let ys = event_ys(&edges, &[], false);
        let forced = ForcedSplits::empty(edges.len());
        let bs = BeamSet::build(&edges, ys, &forced, backend, parallel);
        (edges, bs)
    }

    #[test]
    fn triangle_splits_into_two_beams() {
        // Triangle with apex between the base corners' y's.
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 1.0), (2.0, 2.0)]);
        let (edges, bs) = beams_of(&p, &PolygonSet::new(), PartitionBackend::DirectScan, false);
        assert_eq!(edges.len(), 3);
        assert_eq!(bs.n_beams(), 2);
        // Beam 0 (y 0..1): edges (0,0)-(4,1) and (0,0)-(2,2) → 2 sub-edges.
        assert_eq!(bs.beam(0).len(), 2);
        // Beam 1 (y 1..2): edges (4,1)-(2,2) and (0,0)-(2,2) → 2 sub-edges.
        assert_eq!(bs.beam(1).len(), 2);
        // k': edge (0,0)-(2,2) was split once.
        assert_eq!(bs.total_sub_edges(), 4);
        // Sub-edges are x-sorted within their beams.
        for b in 0..bs.n_beams() {
            let s = bs.beam(b);
            for w in s.windows(2) {
                assert!(w[0].order_key() <= w[1].order_key());
            }
        }
    }

    #[test]
    fn shared_scanline_coordinates_match_exactly() {
        let p = PolygonSet::from_xy(&[(0.1, 0.0), (4.3, 0.7), (2.9, 2.1), (0.4, 1.3)]);
        let q = PolygonSet::from_xy(&[(1.0, 0.3), (3.0, 0.2), (2.0, 1.9)]);
        let (_, bs) = beams_of(&p, &q, PartitionBackend::DirectScan, false);
        // For every pair of vertically adjacent beams, each edge present in
        // both must have top-x (below) == bottom-x (above), bit-exact.
        for b in 0..bs.n_beams().saturating_sub(1) {
            for lo in bs.beam(b) {
                for hi in bs.beam(b + 1) {
                    if lo.edge_id == hi.edge_id {
                        assert_eq!(lo.xt.to_bits(), hi.xb.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn segment_tree_backend_agrees_with_direct_scan() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        for parallel in [false, true] {
            let (_, a) = beams_of(&p, &q, PartitionBackend::DirectScan, parallel);
            let (_, b) = beams_of(&p, &q, PartitionBackend::SegmentTree, parallel);
            assert_eq!(a.n_beams(), b.n_beams());
            assert_eq!(a.total_sub_edges(), b.total_sub_edges());
            for i in 0..a.n_beams() {
                let (sa, sb) = (a.beam(i), b.beam(i));
                assert_eq!(sa.len(), sb.len(), "beam {i}");
                for (x, y) in sa.iter().zip(sb) {
                    assert_eq!(x.edge_id, y.edge_id);
                    assert_eq!(x.xb.to_bits(), y.xb.to_bits());
                    assert_eq!(x.xt.to_bits(), y.xt.to_bits());
                }
            }
        }
    }

    #[test]
    fn forced_splits_override_interpolation() {
        // One tall edge from (0,0) to (2,4); force a vertex at (0.75, 2.0).
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 4.0), (-2.0, 4.0)]);
        let edges = collect_edges(&p, &PolygonSet::new());
        let diag = edges
            .iter()
            .find(|e| e.lo == polyclip_geom::Point::new(0.0, 0.0) && e.hi.x == 2.0)
            .unwrap();
        let ys = event_ys(&edges, &[2.0], false);
        let forced = ForcedSplits::build(edges.len(), vec![(diag.id, 2.0, 0.75)]);
        let bs = BeamSet::build(&edges, ys, &forced, PartitionBackend::DirectScan, false);
        // The diagonal's sub-edge below y=2 ends at x=0.75, not at 1.0.
        let below: Vec<&SubEdge> = bs.beam(0).iter().filter(|s| s.edge_id == diag.id).collect();
        assert_eq!(below.len(), 1);
        assert_eq!(below[0].xt, 0.75);
        let above: Vec<&SubEdge> = bs.beam(1).iter().filter(|s| s.edge_id == diag.id).collect();
        assert_eq!(above[0].xb, 0.75);
    }

    #[test]
    fn forced_splits_dedupe() {
        let f = ForcedSplits::build(
            2,
            vec![(0, 1.0, 5.0), (0, 1.0, 5.0), (0, 2.0, 6.0), (1, 1.0, 7.0)],
        );
        assert_eq!(f.len(), 3);
        assert_eq!(f.forced_x(0, 1.0), Some(5.0));
        assert_eq!(f.forced_x(0, 2.0), Some(6.0));
        assert_eq!(f.forced_x(0, 3.0), None);
        assert_eq!(f.forced_x(1, 1.0), Some(7.0));
        assert_eq!(f.splits_of(0).len(), 2);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (5.0, 0.5), (4.0, 3.0), (1.0, 2.5)]);
        let q = PolygonSet::from_xy(&[(2.0, 1.0), (6.0, 1.5), (3.0, 4.0)]);
        let (_, a) = beams_of(&p, &q, PartitionBackend::DirectScan, false);
        let (_, b) = beams_of(&p, &q, PartitionBackend::DirectScan, true);
        assert_eq!(a.total_sub_edges(), b.total_sub_edges());
        for i in 0..a.n_beams() {
            for (x, y) in a.beam(i).iter().zip(b.beam(i)) {
                assert_eq!(x.edge_id, y.edge_id);
                assert_eq!(x.xb.to_bits(), y.xb.to_bits());
            }
        }
    }
}
