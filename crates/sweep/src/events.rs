//! Event-point schedule: the sorted, distinct y-coordinates (Step 1).

use crate::edges::InputEdge;
use polyclip_geom::OrdF64;
use polyclip_parprim::sort::par_merge_sort;

/// Sorted, deduplicated event y-coordinates of all edge endpoints, plus any
/// `extra` values (Round B adds the intersection y's here). Consecutive
/// events bound the scanbeams; because duplicates are removed, every
/// scanbeam has strictly positive height — "intervals with `y_i` equal to
/// `y_{i+1}` are not considered as they do not form a valid scanbeam".
pub fn event_ys(edges: &[InputEdge], extra: &[f64], parallel: bool) -> Vec<f64> {
    let mut ys: Vec<OrdF64> = Vec::with_capacity(2 * edges.len() + extra.len());
    for e in edges {
        ys.push(OrdF64::new(e.lo.y));
        ys.push(OrdF64::new(e.hi.y));
    }
    ys.extend(extra.iter().map(|&y| OrdF64::new(y)));
    if parallel {
        par_merge_sort(&mut ys, |a, b| a.cmp(b));
    } else {
        ys.sort_unstable();
    }
    ys.dedup();
    ys.into_iter().map(|y| y.get()).collect()
}

/// Index of `y` in the sorted event array. For event values this is an exact
/// lookup; for arbitrary values it returns the index of the scanline at or
/// below `y` (i.e. the beam containing `y` is `event_index(ys, y)` when `y`
/// is not itself an event).
#[inline]
pub fn event_index(ys: &[f64], y: f64) -> usize {
    // partition_point gives the count of events < y; for an exact event
    // value that is its index.
    ys.partition_point(|&v| v < y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::collect_edges;
    use polyclip_geom::PolygonSet;

    fn tri(ys: [f64; 3]) -> PolygonSet {
        PolygonSet::from_xy(&[(0.0, ys[0]), (2.0, ys[1]), (1.0, ys[2])])
    }

    #[test]
    fn events_sorted_distinct() {
        let a = tri([0.0, 1.0, 2.0]);
        let b = tri([1.0, 3.0, 2.0]); // shares y = 1.0 and 2.0
        let edges = collect_edges(&a, &b);
        let ys = event_ys(&edges, &[], false);
        assert_eq!(ys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn extra_events_merge_in() {
        let a = tri([0.0, 0.5, 2.0]);
        let edges = collect_edges(&a, &PolygonSet::new());
        let ys = event_ys(&edges, &[1.25, 0.5], false);
        assert_eq!(ys, vec![0.0, 0.5, 1.25, 2.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = tri([0.0, 1.0, 2.0]);
        let b = tri([-1.0, 0.5, 3.0]);
        let edges = collect_edges(&a, &b);
        assert_eq!(event_ys(&edges, &[], true), event_ys(&edges, &[], false));
    }

    #[test]
    fn exact_index_lookup() {
        let ys = [0.0, 0.5, 1.25, 2.0];
        assert_eq!(event_index(&ys, 0.0), 0);
        assert_eq!(event_index(&ys, 1.25), 2);
        assert_eq!(event_index(&ys, 2.0), 3);
        // Non-event value: two events are < 0.7, so it falls in beam 1..2.
        assert_eq!(event_index(&ys, 0.7), 2);
    }
}
