//! Event-point schedule: the sorted, distinct y-coordinates (Step 1).

use crate::edges::InputEdge;
use crate::scratch::SweepScratch;
use polyclip_geom::OrdF64;
use polyclip_parprim::sort::par_merge_sort;

/// Sorted, deduplicated event y-coordinates of all edge endpoints, plus any
/// `extra` values (Round B adds the intersection y's here). Consecutive
/// events bound the scanbeams; because duplicates are removed, every
/// scanbeam has strictly positive height — "intervals with `y_i` equal to
/// `y_{i+1}` are not considered as they do not form a valid scanbeam".
pub fn event_ys(edges: &[InputEdge], extra: &[f64], parallel: bool) -> Vec<f64> {
    event_ys_in(edges, extra, parallel, &mut SweepScratch::default())
}

/// [`event_ys`] into a reused [`SweepScratch`]: the `OrdF64` sort buffer and
/// the returned `f64` vector both come from the arena (the latter is handed
/// back when the owning `BeamSet` is recycled), so per-round schedule
/// rebuilds allocate nothing once capacity is established.
pub fn event_ys_in(
    edges: &[InputEdge],
    extra: &[f64],
    parallel: bool,
    scratch: &mut SweepScratch,
) -> Vec<f64> {
    let ord = &mut scratch.ord_ys;
    ord.clear();
    ord.reserve(2 * edges.len() + extra.len());
    for e in edges {
        ord.push(OrdF64::new(e.lo.y));
        ord.push(OrdF64::new(e.hi.y));
    }
    ord.extend(extra.iter().map(|&y| OrdF64::new(y)));
    if parallel {
        par_merge_sort(ord, |a, b| a.cmp(b));
    } else {
        ord.sort_unstable();
    }
    ord.dedup();
    let n = ord.len();
    let mut ys = scratch.take_ys();
    ys.reserve(n);
    ys.extend(scratch.ord_ys.iter().map(|y| y.get()));
    ys
}

/// Index of `y` in the sorted event array. For event values this is an exact
/// lookup; for arbitrary values it returns the index of the scanline at or
/// below `y` (i.e. the beam containing `y` is `event_index(ys, y)` when `y`
/// is not itself an event).
#[inline]
pub fn event_index(ys: &[f64], y: f64) -> usize {
    // partition_point gives the count of events < y; for an exact event
    // value that is its index.
    ys.partition_point(|&v| v < y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::collect_edges;
    use polyclip_geom::PolygonSet;

    fn tri(ys: [f64; 3]) -> PolygonSet {
        PolygonSet::from_xy(&[(0.0, ys[0]), (2.0, ys[1]), (1.0, ys[2])])
    }

    #[test]
    fn events_sorted_distinct() {
        let a = tri([0.0, 1.0, 2.0]);
        let b = tri([1.0, 3.0, 2.0]); // shares y = 1.0 and 2.0
        let edges = collect_edges(&a, &b);
        let ys = event_ys(&edges, &[], false);
        assert_eq!(ys, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn extra_events_merge_in() {
        let a = tri([0.0, 0.5, 2.0]);
        let edges = collect_edges(&a, &PolygonSet::new());
        let ys = event_ys(&edges, &[1.25, 0.5], false);
        assert_eq!(ys, vec![0.0, 0.5, 1.25, 2.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = tri([0.0, 1.0, 2.0]);
        let b = tri([-1.0, 0.5, 3.0]);
        let edges = collect_edges(&a, &b);
        assert_eq!(event_ys(&edges, &[], true), event_ys(&edges, &[], false));
    }

    #[test]
    fn exact_index_lookup() {
        let ys = [0.0, 0.5, 1.25, 2.0];
        assert_eq!(event_index(&ys, 0.0), 0);
        assert_eq!(event_index(&ys, 1.25), 2);
        assert_eq!(event_index(&ys, 2.0), 3);
        // Non-event value: two events are < 0.7, so it falls in beam 1..2.
        assert_eq!(event_index(&ys, 0.7), 2);
    }
}
