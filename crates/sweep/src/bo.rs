//! Bentley–Ottmann plane sweep — the classical `O((n + k) log n)` segment
//! intersection algorithm the paper's related work builds on ([2], [15],
//! [16] of the paper). Serves as an independent baseline and oracle for the
//! inversion-based discovery of Lemma 4: both must report exactly the same
//! transversal crossing pairs.
//!
//! This is a reference implementation for inputs in general position: the
//! sweep status is kept as a sorted vector (logarithmic search, linear
//! update), which favours simplicity and testability over asymptotics; the
//! production path in this workspace is the inversion-based discovery,
//! whose per-beam structure parallelizes — the very point of the paper.

use crate::cross::CrossEvent;
use crate::edges::InputEdge;
use polyclip_geom::{OrdF64, Point, SegmentIntersection};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    /// Lower endpoint: insert into the status.
    Start,
    /// Upper endpoint: remove from the status.
    End,
    /// Two neighbours cross: swap them.
    Cross(u32, u32),
}

#[derive(Clone, Copy, Debug)]
struct Event {
    y: OrdF64,
    x: OrdF64,
    kind: EventKind,
    /// Edge for Start/End events (unused for Cross).
    edge: u32,
}

impl PartialEq for Event {
    fn eq(&self, o: &Self) -> bool {
        (self.y, self.x) == (o.y, o.x)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Bottom-to-top, left-to-right; kind breaks ties so that End events
        // run before Start events at shared vertices (remove-then-insert).
        (self.y, self.x, kind_rank(self.kind)).cmp(&(o.y, o.x, kind_rank(o.kind)))
    }
}

fn kind_rank(k: EventKind) -> u8 {
    match k {
        EventKind::End => 0,
        EventKind::Cross(..) => 1,
        EventKind::Start => 2,
    }
}

/// Report all transversal crossings by a bottom-to-top plane sweep.
///
/// Pairs touching only at endpoints are not reported (matching the
/// inversion discovery's contract). Inputs must be in general position for
/// exact agreement; degenerate inputs may report duplicates, which are
/// deduplicated before returning.
pub fn bentley_ottmann(edges: &[InputEdge]) -> Vec<CrossEvent> {
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(2 * edges.len());
    for e in edges {
        queue.push(Reverse(Event {
            y: OrdF64::new(e.lo.y),
            x: OrdF64::new(e.lo.x),
            kind: EventKind::Start,
            edge: e.id,
        }));
        queue.push(Reverse(Event {
            y: OrdF64::new(e.hi.y),
            x: OrdF64::new(e.hi.x),
            kind: EventKind::End,
            edge: e.id,
        }));
    }

    // Status: active edge ids ordered left-to-right at the sweep position.
    let mut status: Vec<u32> = Vec::new();
    let mut out: Vec<CrossEvent> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = Default::default();

    // x of `edge` slightly above the event point (slope as tiebreak).
    let x_key = |edge: u32, y: f64, x_hint: f64| -> (f64, f64) {
        let e = &edges[edge as usize];
        let x = if y <= e.lo.y {
            e.lo.x
        } else if y >= e.hi.y {
            e.hi.x
        } else {
            e.x_at_y(y)
        };
        let slope = (e.hi.x - e.lo.x) / (e.hi.y - e.lo.y);
        let _ = x_hint;
        (x, slope)
    };

    let mut check = |a: u32,
                     b: u32,
                     out: &mut Vec<CrossEvent>,
                     queue: &mut BinaryHeap<Reverse<Event>>,
                     cur_y: f64| {
        let (ea, eb) = (&edges[a as usize], &edges[b as usize]);
        if let SegmentIntersection::At(p) = ea.segment().intersect(&eb.segment()) {
            // Interior crossing only (endpoint touches excluded).
            let interior = p != ea.lo && p != ea.hi && p != eb.lo && p != eb.hi;
            if interior && p.y >= cur_y && seen.insert((a.min(b), a.max(b))) {
                out.push(CrossEvent { e1: a, e2: b, p });
                queue.push(Reverse(Event {
                    y: OrdF64::new(p.y),
                    x: OrdF64::new(p.x),
                    kind: EventKind::Cross(a, b),
                    edge: a,
                }));
            }
        }
    };

    while let Some(Reverse(ev)) = queue.pop() {
        let y = ev.y.get();
        match ev.kind {
            EventKind::Start => {
                let e = &edges[ev.edge as usize];
                let key = (e.lo.x, (e.hi.x - e.lo.x) / (e.hi.y - e.lo.y));
                let pos = status.partition_point(|&s| x_key(s, y, key.0) < key);
                status.insert(pos, ev.edge);
                if pos > 0 {
                    check(status[pos - 1], ev.edge, &mut out, &mut queue, y);
                }
                if pos + 1 < status.len() {
                    check(ev.edge, status[pos + 1], &mut out, &mut queue, y);
                }
            }
            EventKind::End => {
                if let Some(pos) = status.iter().position(|&s| s == ev.edge) {
                    status.remove(pos);
                    if pos > 0 && pos < status.len() {
                        check(status[pos - 1], status[pos], &mut out, &mut queue, y);
                    }
                }
            }
            EventKind::Cross(a, b) => {
                // Swap the two in the status; check new neighbour pairs.
                let (pa, pb) = (
                    status.iter().position(|&s| s == a),
                    status.iter().position(|&s| s == b),
                );
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    status.swap(pa, pb);
                    let (lo, hi) = (pa.min(pb), pa.max(pb));
                    if lo > 0 {
                        check(status[lo - 1], status[lo], &mut out, &mut queue, y);
                    }
                    if hi + 1 < status.len() {
                        check(status[hi], status[hi + 1], &mut out, &mut queue, y);
                    }
                }
            }
        }
    }
    out
}

/// Pair set helper shared by the oracle tests.
pub fn pair_set(events: &[CrossEvent]) -> std::collections::HashSet<(u32, u32)> {
    events
        .iter()
        .map(|e| (e.e1.min(e.e2), e.e1.max(e.e2)))
        .collect()
}

#[allow(dead_code)]
fn _unused(_: Point) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beams::{BeamSet, ForcedSplits, PartitionBackend};
    use crate::cross::{brute_force_crossings, discover_intersections};
    use crate::edges::collect_edges;
    use crate::events::event_ys;
    use polyclip_geom::PolygonSet;

    fn blob(seed: u64, cx: f64, cy: f64, n: usize) -> PolygonSet {
        let mut s = seed;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 1000.0
        };
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let ang = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 0.4 + 0.6 * rng();
                (cx + r * ang.cos(), cy + r * ang.sin())
            })
            .collect();
        PolygonSet::from_xy(&pts)
    }

    #[test]
    fn agrees_with_bruteforce_on_random_blobs() {
        for seed in [1u64, 7, 42, 1234] {
            let a = blob(seed, 0.0, 0.0, 18);
            let b = blob(seed ^ 0xff, 0.4, 0.25, 18);
            let edges = collect_edges(&a, &b);
            let bo = bentley_ottmann(&edges);
            let brute = brute_force_crossings(&edges);
            assert_eq!(pair_set(&bo), pair_set(&brute), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_inversion_discovery() {
        let a = blob(9, 0.0, 0.0, 24);
        let b = blob(77, 0.3, 0.2, 24);
        let edges = collect_edges(&a, &b);
        let bo = bentley_ottmann(&edges);
        let ys = event_ys(&edges, &[], false);
        let beams = BeamSet::build(
            &edges,
            ys,
            &ForcedSplits::empty(edges.len()),
            PartitionBackend::DirectScan,
            false,
        );
        let inv = discover_intersections(&beams, &edges, false);
        assert_eq!(pair_set(&bo), pair_set(&inv));
    }

    #[test]
    fn simple_cross_pair() {
        // Two diamonds crossing twice.
        let a = PolygonSet::from_xy(&[(0.0, -1.0), (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)]);
        let b = a.translate(polyclip_geom::Point::new(1.0, 0.1));
        let edges = collect_edges(&a, &b);
        assert_eq!(bentley_ottmann(&edges).len(), 2);
    }

    #[test]
    fn disjoint_and_empty() {
        let a = blob(5, 0.0, 0.0, 12);
        let b = blob(6, 10.0, 0.0, 12);
        let edges = collect_edges(&a, &b);
        assert!(bentley_ottmann(&edges).is_empty());
        assert!(bentley_ottmann(&[]).is_empty());
    }

    #[test]
    fn self_intersection_found() {
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        let edges = collect_edges(&bow, &PolygonSet::new());
        let evs = bentley_ottmann(&edges);
        assert_eq!(evs.len(), 1);
        assert!((evs[0].p.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_crosshatch() {
        // 6 vertical strips × one wide band: 12 crossings per band side.
        let mut contours = Vec::new();
        for i in 0..6 {
            let x = i as f64;
            contours.push(polyclip_geom::Contour::from_xy(&[
                (x, -5.0),
                (x + 0.3, -5.0),
                (x + 0.3, 5.0),
                (x, 5.0),
            ]));
        }
        let strips = PolygonSet::from_contours(contours);
        let band = PolygonSet::from_xy(&[(-1.0, -1.0), (7.0, -0.8), (7.0, 0.8), (-1.0, 1.0)]);
        let edges = collect_edges(&strips, &band);
        let bo = bentley_ottmann(&edges);
        let brute = brute_force_crossings(&edges);
        assert_eq!(pair_set(&bo), pair_set(&brute));
        assert_eq!(bo.len(), 24);
    }
}
