//! Scanbeam machinery for the parallel plane-sweep clipper.
//!
//! This crate realizes Steps 1–2 of the paper's Algorithm 1 and the
//! intersection-discovery machinery of Lemma 4:
//!
//! * [`edges`] — turning polygon sets into normalized sweep edges (bottom →
//!   top, with winding direction), dropping horizontal and degenerate edges
//!   (the paper assumes horizontal edges away; we instead handle them by
//!   construction: they span no scanbeam and the engine's horizontal-boundary
//!   reconstruction regenerates any horizontal output geometry);
//! * [`events`] — the sorted, deduplicated event-y schedule (the scanbeam
//!   table);
//! * [`beams`] — partitioning edges into scanbeams by splitting each edge at
//!   every event y interior to its span. The split points are the paper's
//!   **virtual vertices** (contributing the k' term of the complexity), and
//!   both a direct count→scan→scatter backend and a segment-tree backend
//!   (§III-E) are provided;
//! * [`cross`] — discovering the k edge intersections *output-sensitively*:
//!   within a scanbeam every active sub-edge spans the full beam, so a pair
//!   crosses iff its order at the bottom scanline differs from its order at
//!   the top scanline — an inversion, counted and reported with the extended
//!   merge sort of [`polyclip_parprim::inversions`] (Lemma 4).

pub mod beams;
pub mod bo;
pub mod cross;
pub mod edges;
pub mod events;
pub mod scratch;

pub use beams::{BeamSet, ForcedSplits, PartitionBackend, RefineOutcome, SubEdge};
pub use bo::bentley_ottmann;
pub use cross::{
    discover_intersections, discover_intersections_gated, discover_intersections_in, CrossEvent,
    BIG_BEAM,
};
pub use edges::{collect_edges, collect_edges_refs, InputEdge, Source};
pub use events::{event_index, event_ys, event_ys_in};
pub use scratch::SweepScratch;
