//! Liang–Barsky parametric segment clipping against a rectangle.
//!
//! One of the two classical algorithms (§II-B) whose parallelizations
//! predate the paper. Kept as a baseline and as a utility for rectangle
//! windowing in the examples.

use polyclip_geom::{BBox, Point, Segment};

/// Clip segment `s` to the closed rectangle `r`.
///
/// Returns the clipped segment and its parameter range `(t0, t1)` along the
/// original segment, or `None` when the segment misses the rectangle.
pub fn clip_segment_to_rect(s: &Segment, r: &BBox) -> Option<(Segment, (f64, f64))> {
    let d = s.dir();
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;

    // For each of the four half-planes: p·t <= q.
    let checks = [
        (-d.x, s.a.x - r.xmin), // x >= xmin
        (d.x, r.xmax - s.a.x),  // x <= xmax
        (-d.y, s.a.y - r.ymin), // y >= ymin
        (d.y, r.ymax - s.a.y),  // y <= ymax
    ];
    for &(p, q) in &checks {
        if p == 0.0 {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let t = q / p;
            if p < 0.0 {
                if t > t1 {
                    return None;
                }
                if t > t0 {
                    t0 = t;
                }
            } else {
                if t < t0 {
                    return None;
                }
                if t < t1 {
                    t1 = t;
                }
            }
        }
    }
    let a = if t0 == 0.0 { s.a } else { s.a.lerp(&s.b, t0) };
    let b = if t1 == 1.0 { s.b } else { s.a.lerp(&s.b, t1) };
    Some((Segment::new(a, b), (t0, t1)))
}

/// Clip a polyline (open chain) to a rectangle, returning the visible runs.
pub fn clip_polyline_to_rect(pts: &[Point], r: &BBox) -> Vec<Vec<Point>> {
    let mut runs: Vec<Vec<Point>> = Vec::new();
    let mut cur: Vec<Point> = Vec::new();
    for w in pts.windows(2) {
        match clip_segment_to_rect(&Segment::new(w[0], w[1]), r) {
            Some((seg, (t0, t1))) => {
                match cur.last() {
                    None => cur.push(seg.a),
                    Some(&last) if last != seg.a => {
                        runs.push(std::mem::take(&mut cur));
                        cur.push(seg.a);
                    }
                    Some(_) => {}
                }
                cur.push(seg.b);
                if t1 < 1.0 {
                    runs.push(std::mem::take(&mut cur));
                }
                let _ = t0;
            }
            None => {
                if !cur.is_empty() {
                    runs.push(std::mem::take(&mut cur));
                }
            }
        }
    }
    if !cur.is_empty() {
        runs.push(cur);
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::point::pt;
    use polyclip_geom::segment::seg;

    fn unit() -> BBox {
        BBox::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn fully_inside_unchanged() {
        let s = seg(0.2, 0.2, 0.8, 0.6);
        let (c, (t0, t1)) = clip_segment_to_rect(&s, &unit()).unwrap();
        assert_eq!(c, s);
        assert_eq!((t0, t1), (0.0, 1.0));
    }

    #[test]
    fn crossing_through_is_trimmed_on_both_ends() {
        let s = seg(-1.0, 0.5, 2.0, 0.5);
        let (c, _) = clip_segment_to_rect(&s, &unit()).unwrap();
        assert_eq!(c, seg(0.0, 0.5, 1.0, 0.5));
    }

    #[test]
    fn diagonal_corner_to_corner() {
        let s = seg(-1.0, -1.0, 2.0, 2.0);
        let (c, _) = clip_segment_to_rect(&s, &unit()).unwrap();
        assert!((c.a.x - 0.0).abs() < 1e-12 && (c.a.y - 0.0).abs() < 1e-12);
        assert!((c.b.x - 1.0).abs() < 1e-12 && (c.b.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_segments_rejected() {
        assert!(clip_segment_to_rect(&seg(2.0, 2.0, 3.0, 3.0), &unit()).is_none());
        assert!(clip_segment_to_rect(&seg(-0.5, 0.5, 0.5, 2.0), &unit()).is_none()); // passes corner outside
        assert!(clip_segment_to_rect(&seg(-1.0, 1.5, 2.0, 1.5), &unit()).is_none());
        // parallel above
    }

    #[test]
    fn touching_the_boundary_counts() {
        let (c, _) = clip_segment_to_rect(&seg(-1.0, 1.0, 2.0, 1.0), &unit()).unwrap();
        assert_eq!(c, seg(0.0, 1.0, 1.0, 1.0));
        let (p, _) = clip_segment_to_rect(&seg(1.0, 1.0, 2.0, 2.0), &unit()).unwrap();
        assert!(p.is_degenerate());
        assert_eq!(p.a, pt(1.0, 1.0));
    }

    #[test]
    fn polyline_splits_into_visible_runs() {
        // A zig-zag leaving and re-entering the window.
        let pts = [
            pt(0.1, 0.5),
            pt(1.5, 0.5), // exits right
            pt(1.5, 0.9),
            pt(0.9, 0.9), // re-enters
            pt(0.9, 0.1),
        ];
        let runs = clip_polyline_to_rect(&pts, &unit());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].first().unwrap(), &pt(0.1, 0.5));
        assert_eq!(runs[1].last().unwrap(), &pt(0.9, 0.1));
    }
}
