//! Foster–Overfelt degeneracy-robust polygon clipping.
//!
//! An independent implementation of the Greiner–Hormann variant from
//! Foster & Overfelt, *"Clipping of Arbitrary Polygons with Degeneracies"*
//! (see PAPERS.md): boolean operations on polygons-with-holes that remain
//! correct when the inputs touch degenerately — vertex-on-vertex,
//! vertex-on-edge, and collinear overlapping edges — **without**
//! perturbation and without ad-hoc epsilons (all geometric decisions go
//! through the exact-sign predicates in `geom::predicates`).
//!
//! # How it differs from plain Greiner–Hormann
//!
//! Classic GH inserts a crossing node wherever two edges properly
//! intersect and alternates entry/exit flags around each ring. Degenerate
//! contact breaks both steps: a shared vertex produces zero or two
//! coincident "crossings", and alternation derails. Foster–Overfelt
//! repairs this in three moves, all implemented here:
//!
//! 1. **Refinement** — every contact point becomes a *linked pair* of
//!    nodes, one per ring: proper crossings insert new nodes in both
//!    edges, a vertex on the other ring's vertex links the two original
//!    nodes, and a vertex in the interior of the other ring's edge splits
//!    that edge at the exact vertex coordinates. Collinear overlaps need
//!    no special case: after refinement both rings contain identical node
//!    sequences along any shared chain.
//! 2. **Side classification** — for each linked node, the directions to
//!    its ring neighbors are classified `Left`/`Right`/`On` relative to
//!    the partner ring's local wedge (exact orientation signs only). A
//!    maximal run of `On`-connected linked nodes is a *chain*; the chain
//!    **crosses** iff it approaches on one side and departs on the other,
//!    otherwise it *bounces*. A crossing chain contributes exactly one
//!    crossing node — the chain endpoint with the lexicographically
//!    smaller coordinate, a canonical choice both rings agree on, which
//!    keeps crossing marks mutual between partners. Entry/exit flags then
//!    alternate over crossing chains only, seeded by an exact point
//!    location at an uncontaminated seed point of each ring.
//! 3. **Whole-ring inclusion** — rings with no crossing chain (disjoint,
//!    nested, or touching without penetration) are kept or dropped by
//!    comparing the operation's truth value just inside vs. just outside
//!    the ring at its seed point; fully coincident ring pairs collapse to
//!    a single copy with both parities flipped across the boundary.
//!
//! # Scope
//!
//! * Fill rule is **even-odd** throughout, matching the rest of the
//!   workspace. `Xor` is exact by construction: under even-odd the
//!   symmetric difference is literally the concatenation of both
//!   contour lists.
//! * Inputs may be arbitrary polygon *sets* (multiple contours, holes by
//!   parity). Each set must be free of **self**-intersections: contours
//!   of one set may touch at points but must not properly cross each
//!   other or themselves, and must not overlap collinearly within the
//!   set. Cross-set degeneracies — the hard part — are fully supported.
//!   `core::oracle::FosterOverfeltOracle::supports` screens inputs for
//!   this precondition.
//! * This is a verification oracle, not a production path: refinement is
//!   a deliberate all-pairs `O(E_s · E_c)` scan that is easy to audit.

use polyclip_geom::predicates::orient2d_sign;
use polyclip_geom::{Contour, FillRule, Point, PolygonSet};

/// Boolean operation for [`fo_clip`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FoOp {
    /// Region in both subject and clip.
    Intersection,
    /// Region in either subject or clip.
    Union,
    /// Region in subject but not clip.
    Difference,
    /// Region in exactly one of the two (even-odd symmetric difference).
    Xor,
}

const NONE: usize = usize::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Left,
    Right,
    On,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Label {
    /// Not a contact point.
    Plain,
    /// Contact that does not cross the other boundary (or a non-canonical
    /// member of a crossing chain).
    Bounce,
    /// Canonical crossing node: the trace switches rings here.
    Crossing,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    p: Point,
    prev: usize,
    next: usize,
    /// Linked partner node in the other ring (`NONE` if not a contact).
    neighbor: usize,
    ring: usize,
    label: Label,
    entry: bool,
    visited: bool,
    /// Side of the partner wedge the own-ring predecessor lies on.
    side_prev: Side,
    /// Side of the partner wedge the own-ring successor lies on.
    side_next: Side,
}

#[derive(Clone, Copy, Debug)]
struct Ring {
    /// 0 = subject, 1 = clip.
    owner: u8,
    /// Contour index within the owner's cleaned set.
    contour: usize,
    /// Any node of the ring (assembly order start).
    first: usize,
    /// Node count after refinement.
    len: usize,
    has_crossing: bool,
    /// Every vertex linked and every edge midpoint on the other boundary:
    /// the ring coincides entirely with (part of) the other set.
    coincident: bool,
    /// Already emitted/suppressed as half of a coincident pair.
    consumed: bool,
    /// Walk start node.
    seed: usize,
    /// A point of the ring's boundary strictly off the other boundary.
    seed_pt: Point,
    /// Even-odd parity of the *other* set at `seed_pt`.
    seed_status: bool,
}

#[inline]
fn same_pt(a: Point, b: Point) -> bool {
    a.x == b.x && a.y == b.y
}

#[inline]
fn lex_le(a: Point, b: Point) -> bool {
    (a.x, a.y) <= (b.x, b.y)
}

/// Strictly-interior test for a point known collinear with `a → b`,
/// parameterized along the dominant axis so vertical edges work.
#[inline]
fn interior_of_edge(a: Point, b: Point, p: Point) -> bool {
    if (b.x - a.x).abs() >= (b.y - a.y).abs() {
        (a.x < p.x && p.x < b.x) || (b.x < p.x && p.x < a.x)
    } else {
        (a.y < p.y && p.y < b.y) || (b.y < p.y && p.y < a.y)
    }
}

/// Parameter of a point known to lie on edge `a → b`, for sort order only.
#[inline]
fn edge_param(a: Point, b: Point, p: Point) -> f64 {
    if (b.x - a.x).abs() >= (b.y - a.y).abs() {
        (p.x - a.x) / (b.x - a.x)
    } else {
        (p.y - a.y) / (b.y - a.y)
    }
}

/// Which side of the partner ring's local wedge `qm → i → qp` does the
/// own-ring neighbor `p` lie on? `On` means `p` coincides with a wedge
/// arm endpoint — i.e. the adjoining edge is genuinely shared (after
/// refinement, shared chains have identical node sequences in both
/// rings, so coincidence-with-neighbor is the exact shared-edge test).
fn side_of(p: Point, qm: Point, i: Point, qp: Point) -> Side {
    if same_pt(p, qm) || same_pt(p, qp) {
        return Side::On;
    }
    let o1 = orient2d_sign(qm, i, p);
    let o2 = orient2d_sign(i, qp, p);
    let oc = orient2d_sign(qm, i, qp);
    let left = if oc > 0.0 {
        // Convex wedge: left of both arms.
        if o1 == 0.0 {
            o2 > 0.0
        } else if o2 == 0.0 {
            o1 > 0.0
        } else {
            o1 > 0.0 && o2 > 0.0
        }
    } else if oc < 0.0 {
        // Reflex wedge: left of either arm.
        if o1 == 0.0 {
            o2 > 0.0
        } else if o2 == 0.0 {
            o1 > 0.0
        } else {
            o1 > 0.0 || o2 > 0.0
        }
    } else {
        // Straight-through partner: one consistent line.
        if o1 != 0.0 {
            o1 > 0.0
        } else if o2 != 0.0 {
            o2 > 0.0
        } else {
            return Side::On;
        }
    };
    if left {
        Side::Left
    } else {
        Side::Right
    }
}

/// Drop non-finite rings, collapse duplicate vertices, keep rings with
/// at least three distinct points, and drop rings whose points are all
/// exactly collinear (a collapsed ring encloses nothing). No snapping,
/// no reorientation.
fn clean(p: &PolygonSet) -> PolygonSet {
    let mut out = Vec::new();
    'ring: for c in p.contours() {
        for q in c.points() {
            if !q.is_finite() {
                continue 'ring;
            }
        }
        let c = Contour::new(c.points().to_vec());
        if c.len() < 3 {
            continue;
        }
        let pts = c.points();
        if pts[2..]
            .iter()
            .all(|&q| orient2d_sign(pts[0], pts[1], q) == 0.0)
        {
            continue;
        }
        out.push(c);
    }
    PolygonSet::from_contours(out)
}

fn op_status(op: FoOp, in_subject: bool, in_clip: bool) -> bool {
    match op {
        FoOp::Intersection => in_subject && in_clip,
        FoOp::Union => in_subject || in_clip,
        FoOp::Difference => in_subject && !in_clip,
        FoOp::Xor => in_subject != in_clip,
    }
}

/// Even-odd parity of `set` at `p`, skipping contour `skip`.
fn parity_excluding(set: &PolygonSet, skip: usize, p: Point) -> bool {
    let mut odd = false;
    for (ci, c) in set.contours().iter().enumerate() {
        if ci != skip && c.contains_even_odd(p) {
            odd = !odd;
        }
    }
    odd
}

struct Graph {
    nodes: Vec<Node>,
    rings: Vec<Ring>,
}

impl Graph {
    /// Phase 1: build refined node rings with all contact points linked.
    fn build(subj: &PolygonSet, clp: &PolygonSet) -> Graph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut rings: Vec<Ring> = Vec::new();
        // Original-vertex node ids per ring, in ring order.
        let mut orig: Vec<Vec<usize>> = Vec::new();
        // Nodes pending insertion per (ring, edge), keyed by edge param.
        let mut pend: Vec<Vec<Vec<(f64, usize)>>> = Vec::new();

        for (owner, set) in [(0u8, subj), (1u8, clp)] {
            for (ci, c) in set.contours().iter().enumerate() {
                let r = rings.len();
                let ids: Vec<usize> = c
                    .points()
                    .iter()
                    .map(|&p| {
                        let id = nodes.len();
                        nodes.push(Node {
                            p,
                            prev: NONE,
                            next: NONE,
                            neighbor: NONE,
                            ring: r,
                            label: Label::Plain,
                            entry: false,
                            visited: false,
                            side_prev: Side::On,
                            side_next: Side::On,
                        });
                        id
                    })
                    .collect();
                pend.push(vec![Vec::new(); ids.len()]);
                orig.push(ids);
                rings.push(Ring {
                    owner,
                    contour: ci,
                    first: NONE,
                    len: 0,
                    has_crossing: false,
                    coincident: false,
                    consumed: false,
                    seed: NONE,
                    seed_pt: Point::new(0.0, 0.0),
                    seed_status: false,
                });
            }
        }
        let n_subj = subj.len();

        // All-pairs edge scan: subject edge (a0 → a1) × clip edge (b0 → b1).
        for rs in 0..n_subj {
            let sn = orig[rs].len();
            for i in 0..sn {
                let na0 = orig[rs][i];
                let (a0, a1) = (nodes[na0].p, nodes[orig[rs][(i + 1) % sn]].p);
                for rc in n_subj..rings.len() {
                    let cn = orig[rc].len();
                    for j in 0..cn {
                        let nb0 = orig[rc][j];
                        let (b0, b1) = (nodes[nb0].p, nodes[orig[rc][(j + 1) % cn]].p);
                        // Bounding-box reject (strict, so touches survive).
                        if a0.x.max(a1.x) < b0.x.min(b1.x)
                            || b0.x.max(b1.x) < a0.x.min(a1.x)
                            || a0.y.max(a1.y) < b0.y.min(b1.y)
                            || b0.y.max(b1.y) < a0.y.min(a1.y)
                        {
                            continue;
                        }
                        let o1 = orient2d_sign(b0, b1, a0);
                        let o2 = orient2d_sign(b0, b1, a1);
                        let o3 = orient2d_sign(a0, a1, b0);
                        let o4 = orient2d_sign(a0, a1, b1);
                        if o1 * o2 < 0.0 && o3 * o4 < 0.0 {
                            // Proper transversal crossing: one new node in
                            // each edge, linked.
                            let d = a1 - a0;
                            let g = b1 - b0;
                            let denom = d.cross(&g);
                            if denom == 0.0 {
                                continue;
                            }
                            let t = (b0 - a0).cross(&g) / denom;
                            let u = (b0 - a0).cross(&d) / denom;
                            let p = a0.lerp(&a1, t);
                            let na = nodes.len();
                            nodes.push(Node {
                                p,
                                prev: NONE,
                                next: NONE,
                                neighbor: na + 1,
                                ring: rs,
                                label: Label::Plain,
                                entry: false,
                                visited: false,
                                side_prev: Side::On,
                                side_next: Side::On,
                            });
                            let nb = nodes.len();
                            nodes.push(Node {
                                p,
                                prev: NONE,
                                next: NONE,
                                neighbor: na,
                                ring: rc,
                                label: Label::Plain,
                                entry: false,
                                visited: false,
                                side_prev: Side::On,
                                side_next: Side::On,
                            });
                            pend[rs][i].push((t, na));
                            pend[rc][j].push((u, nb));
                            continue;
                        }
                        if same_pt(a0, b0) {
                            // Vertex-on-vertex: link the originals.
                            if nodes[na0].neighbor == NONE && nodes[nb0].neighbor == NONE {
                                nodes[na0].neighbor = nb0;
                                nodes[nb0].neighbor = na0;
                            }
                            continue;
                        }
                        // Vertex-on-edge (both directions; for collinear
                        // overlaps both can fire on one pair).
                        if o1 == 0.0
                            && !same_pt(a0, b1)
                            && interior_of_edge(b0, b1, a0)
                            && nodes[na0].neighbor == NONE
                        {
                            let id = nodes.len();
                            nodes.push(Node {
                                p: a0,
                                prev: NONE,
                                next: NONE,
                                neighbor: na0,
                                ring: rc,
                                label: Label::Plain,
                                entry: false,
                                visited: false,
                                side_prev: Side::On,
                                side_next: Side::On,
                            });
                            nodes[na0].neighbor = id;
                            pend[rc][j].push((edge_param(b0, b1, a0), id));
                        }
                        if o3 == 0.0
                            && !same_pt(b0, a1)
                            && interior_of_edge(a0, a1, b0)
                            && nodes[nb0].neighbor == NONE
                        {
                            let id = nodes.len();
                            nodes.push(Node {
                                p: b0,
                                prev: NONE,
                                next: NONE,
                                neighbor: nb0,
                                ring: rs,
                                label: Label::Plain,
                                entry: false,
                                visited: false,
                                side_prev: Side::On,
                                side_next: Side::On,
                            });
                            nodes[nb0].neighbor = id;
                            pend[rs][i].push((edge_param(a0, a1, b0), id));
                        }
                    }
                }
            }
        }

        // Assembly: splice pending nodes into ring order, wire prev/next.
        for r in 0..rings.len() {
            let mut order: Vec<usize> = Vec::with_capacity(orig[r].len());
            for (i, &v) in orig[r].iter().enumerate() {
                order.push(v);
                pend[r][i].sort_by(|x, y| x.0.total_cmp(&y.0));
                order.extend(pend[r][i].iter().map(|&(_, id)| id));
            }
            let n = order.len();
            for (k, &id) in order.iter().enumerate() {
                nodes[id].next = order[(k + 1) % n];
                nodes[id].prev = order[(k + n - 1) % n];
            }
            rings[r].first = order[0];
            rings[r].len = n;
        }

        Graph { nodes, rings }
    }

    fn ring_node_ids(&self, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.rings[r].len);
        let mut cur = self.rings[r].first;
        for _ in 0..self.rings[r].len {
            out.push(cur);
            cur = self.nodes[cur].next;
        }
        out
    }

    /// Phase 2a: classify the neighbor directions of every linked node
    /// against the partner wedge.
    fn classify_sides(&mut self) {
        for id in 0..self.nodes.len() {
            let nb = self.nodes[id].neighbor;
            if nb == NONE {
                continue;
            }
            let i = self.nodes[id].p;
            let qm = self.nodes[self.nodes[nb].prev].p;
            let qp = self.nodes[self.nodes[nb].next].p;
            let pm = self.nodes[self.nodes[id].prev].p;
            let pp = self.nodes[self.nodes[id].next].p;
            self.nodes[id].side_prev = side_of(pm, qm, i, qp);
            self.nodes[id].side_next = side_of(pp, qm, i, qp);
        }
    }

    /// Is the edge between consecutive nodes `a → b` shared with the
    /// partner ring (its endpoints' partners are ring-adjacent there)?
    fn edge_is_shared(&self, a: usize, b: usize) -> bool {
        let (na, nb) = (self.nodes[a].neighbor, self.nodes[b].neighbor);
        na != NONE && nb != NONE && (self.nodes[na].prev == nb || self.nodes[na].next == nb)
    }

    /// Phase 2b: pick a seed per ring — a boundary point provably off the
    /// other set's boundary — and record the other set's parity there.
    fn find_seeds(&mut self, subj: &PolygonSet, clp: &PolygonSet) {
        for r in 0..self.rings.len() {
            let other = if self.rings[r].owner == 0 { clp } else { subj };
            let ids = self.ring_node_ids(r);
            let mut found = false;
            if let Some(&v) = ids.iter().find(|&&id| self.nodes[id].neighbor == NONE) {
                // An unlinked vertex is off the other boundary by
                // construction (it would have been V- or T-linked).
                self.rings[r].seed = v;
                self.rings[r].seed_pt = self.nodes[v].p;
                found = true;
            } else {
                // Every vertex is linked; look for an edge that is not
                // *shared*, and seed at the node after it with the midpoint
                // status (chains then cannot wrap past the seed). Shared is
                // a structural test — the endpoints' partners are adjacent
                // in the partner ring — because after refinement an
                // inter-node edge either coincides with a partner edge
                // exactly or has its interior strictly off the other
                // boundary. (A geometric midpoint-on-boundary test would
                // lie here: `lerp` midpoints of non-axis-aligned edges are
                // not exactly collinear in floating point.)
                for &id in &ids {
                    let nx = self.nodes[id].next;
                    if !self.edge_is_shared(id, nx) {
                        self.rings[r].seed = nx;
                        self.rings[r].seed_pt = self.nodes[id].p.lerp(&self.nodes[nx].p, 0.5);
                        found = true;
                        break;
                    }
                }
            }
            if !found {
                self.rings[r].coincident = true;
                continue;
            }
            self.rings[r].seed_status = other.contains(self.rings[r].seed_pt, FillRule::EvenOdd);
        }
    }

    /// Phase 2c+2d: alternate entry flags over crossing chains, with a
    /// mutuality fixpoint (a chain marked crossing by only one ring is
    /// demoted to a bounce and the walk re-run).
    fn label_crossings(&mut self) {
        let mut forced = vec![false; self.nodes.len()];
        let max_rounds = self
            .nodes
            .iter()
            .filter(|n| n.neighbor != NONE)
            .count()
            .max(1);
        for _ in 0..=max_rounds {
            // Reset labels.
            for n in &mut self.nodes {
                n.label = if n.neighbor == NONE {
                    Label::Plain
                } else {
                    Label::Bounce
                };
                n.entry = false;
            }
            for r in &mut self.rings {
                r.has_crossing = false;
            }
            for r in 0..self.rings.len() {
                if !self.rings[r].coincident {
                    self.walk_ring(r, &forced);
                }
            }
            // Mutuality check: crossing marks must come in linked pairs.
            let mut changed = false;
            for (id, force) in forced.iter_mut().enumerate() {
                if self.nodes[id].label == Label::Crossing {
                    let nb = self.nodes[id].neighbor;
                    if self.nodes[nb].label != Label::Crossing && !*force {
                        *force = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    fn walk_ring(&mut self, r: usize, forced: &[bool]) {
        let seed = self.rings[r].seed;
        let mut status = self.rings[r].seed_status;
        let ring_len = self.rings[r].len;
        let mut cur = seed;
        let mut budget = ring_len + 1;
        let mut first = true;
        while (first || cur != seed) && budget > 0 {
            first = false;
            if self.nodes[cur].neighbor == NONE {
                cur = self.nodes[cur].next;
                budget -= 1;
                continue;
            }
            // Collect the maximal shared chain starting at `cur`.
            let start = cur;
            let mut end = cur;
            let mut chain = 1usize;
            while self.nodes[end].side_next == Side::On && chain <= ring_len {
                let nx = self.nodes[end].next;
                if nx == seed
                    || self.nodes[nx].neighbor == NONE
                    || self.nodes[nx].side_prev != Side::On
                {
                    break;
                }
                end = nx;
                chain += 1;
            }
            let approach = self.nodes[start].side_prev;
            let depart = self.nodes[end].side_next;
            // Canonical crossing node: the lexicographically smaller chain
            // endpoint. Both rings of a shared chain see the same two
            // endpoint coordinates, so their picks are linked partners.
            let canon = if chain == 1 || lex_le(self.nodes[start].p, self.nodes[end].p) {
                start
            } else {
                end
            };
            let crossing =
                approach != Side::On && depart != Side::On && approach != depart && !forced[canon];
            if crossing {
                self.nodes[canon].label = Label::Crossing;
                self.nodes[canon].entry = !status;
                status = !status;
                self.rings[r].has_crossing = true;
            }
            budget = budget.saturating_sub(chain);
            cur = self.nodes[end].next;
        }
    }

    /// Phase 3: Greiner–Hormann trace over the crossing nodes.
    fn trace(&mut self, op: FoOp) -> Vec<Contour> {
        let invert = match op {
            FoOp::Intersection => (false, false),
            FoOp::Union => (true, true),
            FoOp::Difference => (true, false),
            FoOp::Xor => unreachable!("Xor is handled by concatenation"),
        };
        let cap = 2 * self.nodes.len() + 8;
        let mut out = Vec::new();
        for s in 0..self.nodes.len() {
            if self.nodes[s].label != Label::Crossing || self.nodes[s].visited {
                continue;
            }
            let mut pts: Vec<Point> = Vec::new();
            let mut cur = s;
            let mut steps = 0usize;
            'trace: loop {
                self.nodes[cur].visited = true;
                let nb = self.nodes[cur].neighbor;
                if nb != NONE {
                    self.nodes[nb].visited = true;
                }
                let inv = if self.rings[self.nodes[cur].ring].owner == 0 {
                    invert.0
                } else {
                    invert.1
                };
                let fwd = self.nodes[cur].entry ^ inv;
                loop {
                    pts.push(self.nodes[cur].p);
                    cur = if fwd {
                        self.nodes[cur].next
                    } else {
                        self.nodes[cur].prev
                    };
                    steps += 1;
                    if steps > cap {
                        break 'trace;
                    }
                    if self.nodes[cur].label == Label::Crossing {
                        break;
                    }
                }
                if cur == s {
                    break;
                }
                self.nodes[cur].visited = true;
                let nb = self.nodes[cur].neighbor;
                if nb == NONE || nb == s || self.nodes[nb].visited {
                    break;
                }
                cur = nb;
            }
            let c = Contour::new(pts);
            if c.len() >= 3 {
                out.push(c);
            }
        }
        out
    }

    /// Phase 3.5: whole-ring inclusion for rings without crossings.
    fn emit_noncrossing(
        &mut self,
        op: FoOp,
        subj: &PolygonSet,
        clp: &PolygonSet,
        out: &mut Vec<Contour>,
    ) {
        for r in 0..self.rings.len() {
            if self.rings[r].has_crossing || self.rings[r].consumed {
                continue;
            }
            let owner = self.rings[r].owner;
            let (own, other) = if owner == 0 { (subj, clp) } else { (clp, subj) };
            if self.rings[r].coincident {
                // The ring lies entirely on the other set's boundary. Find
                // its partner ring; if that partner is also fully
                // coincident the two rings are copies of each other and
                // collapse to (at most) one emitted copy.
                let ids = self.ring_node_ids(r);
                let partner = ids
                    .iter()
                    .find(|&&id| self.nodes[id].neighbor != NONE)
                    .map(|&id| self.nodes[self.nodes[id].neighbor].ring);
                let Some(pr) = partner else {
                    // No links at all yet marked coincident — impossible,
                    // but dropping is the safe answer.
                    self.rings[r].consumed = true;
                    continue;
                };
                if !self.rings[pr].coincident || self.rings[pr].consumed {
                    // Partial coincidence with a larger ring implies a
                    // self-touching other set; out of supported scope.
                    self.rings[r].consumed = true;
                    continue;
                }
                self.rings[r].consumed = true;
                self.rings[pr].consumed = true;
                let v = self.nodes[ids[0]].p;
                // Parity just inside the shared boundary: the ring itself
                // plus any surrounding contours of each set.
                let own_in = !parity_excluding(own, self.rings[r].contour, v);
                let other_in = !parity_excluding(other, self.rings[pr].contour, v);
                let (pa, pb) = if owner == 0 {
                    (own_in, other_in)
                } else {
                    (other_in, own_in)
                };
                // Crossing the shared boundary flips both parities.
                if op_status(op, pa, pb) != op_status(op, !pa, !pb) {
                    out.push(own.contours()[self.rings[r].contour].clone());
                }
            } else {
                let seed_pt = self.rings[r].seed_pt;
                let own_in = !parity_excluding(own, self.rings[r].contour, seed_pt);
                let other_in = self.rings[r].seed_status;
                let (pa, pb) = if owner == 0 {
                    (own_in, other_in)
                } else {
                    (other_in, own_in)
                };
                // Crossing this ring's boundary flips only its own parity.
                let (qa, qb) = if owner == 0 { (!pa, pb) } else { (pa, !pb) };
                if op_status(op, pa, pb) != op_status(op, qa, qb) {
                    out.push(own.contours()[self.rings[r].contour].clone());
                }
            }
        }
    }
}

/// Clip `subject` against `clip` under the even-odd fill rule, robustly
/// handling degenerate contacts (shared vertices, vertices on edges,
/// collinear overlapping edges). See the module docs for scope.
pub fn fo_clip(subject: &PolygonSet, clip: &PolygonSet, op: FoOp) -> PolygonSet {
    let subj = clean(subject);
    let clp = clean(clip);
    if matches!(op, FoOp::Xor) {
        // Even-odd symmetric difference is concatenation, exactly.
        let mut out = subj;
        out.extend(clp);
        return out;
    }
    if subj.is_empty() || clp.is_empty() {
        return match op {
            FoOp::Intersection => PolygonSet::from_contours(Vec::new()),
            FoOp::Union => {
                let mut out = subj;
                out.extend(clp);
                out
            }
            FoOp::Difference => subj,
            FoOp::Xor => unreachable!(),
        };
    }
    let mut g = Graph::build(&subj, &clp);
    g.classify_sides();
    g.find_seeds(&subj, &clp);
    g.label_crossings();
    let mut contours = g.trace(op);
    g.emit_noncrossing(op, &subj, &clp, &mut contours);
    PolygonSet::from_contours(contours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;
    use polyclip_geom::measure::{overlap_area, region_area};

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x0, y0, x1, y1))
    }

    fn area(p: &PolygonSet) -> f64 {
        region_area(p)
    }

    /// Assert all three primary ops against expected region areas.
    fn check_ops(subj: &PolygonSet, clp: &PolygonSet, inter: f64, uni: f64, diff: f64) {
        let i = fo_clip(subj, clp, FoOp::Intersection);
        let u = fo_clip(subj, clp, FoOp::Union);
        let d = fo_clip(subj, clp, FoOp::Difference);
        assert!(
            (area(&i) - inter).abs() < 1e-9,
            "intersection area {} != {inter}: {i:?}",
            area(&i)
        );
        assert!(
            (area(&u) - uni).abs() < 1e-9,
            "union area {} != {uni}: {u:?}",
            area(&u)
        );
        assert!(
            (area(&d) - diff).abs() < 1e-9,
            "difference area {} != {diff}: {d:?}",
            area(&d)
        );
    }

    #[test]
    fn offset_squares_generic_position() {
        // The classic GH case still works: proper crossings only.
        check_ops(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(1.0, 1.0, 3.0, 3.0),
            1.0,
            7.0,
            3.0,
        );
    }

    #[test]
    fn disjoint_and_nested() {
        check_ops(
            &sq(0.0, 0.0, 1.0, 1.0),
            &sq(5.0, 5.0, 6.0, 6.0),
            0.0,
            2.0,
            1.0,
        );
        // Clip strictly inside subject.
        check_ops(
            &sq(0.0, 0.0, 4.0, 4.0),
            &sq(1.0, 1.0, 2.0, 2.0),
            1.0,
            16.0,
            15.0,
        );
        // Subject strictly inside clip.
        check_ops(
            &sq(1.0, 1.0, 2.0, 2.0),
            &sq(0.0, 0.0, 4.0, 4.0),
            1.0,
            16.0,
            0.0,
        );
    }

    #[test]
    fn identical_squares_fully_coincident() {
        check_ops(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(0.0, 0.0, 2.0, 2.0),
            4.0,
            4.0,
            0.0,
        );
    }

    #[test]
    fn overlapping_collinear_edges() {
        // A = [0,2]², B = [1,3]×[0,2]: bottom and top edges overlap
        // collinearly along x ∈ [1,2]; the paper's "overlapping edges" case.
        check_ops(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(1.0, 0.0, 3.0, 2.0),
            2.0,
            6.0,
            2.0,
        );
    }

    #[test]
    fn corner_touch_vertex_on_vertex() {
        // Single shared corner at (2,2): the paper's vertex-on-vertex case.
        check_ops(
            &sq(0.0, 0.0, 2.0, 2.0),
            &sq(2.0, 2.0, 4.0, 4.0),
            0.0,
            8.0,
            4.0,
        );
    }

    #[test]
    fn shared_full_edge() {
        // Two unit squares sharing the full edge x = 1.
        check_ops(
            &sq(0.0, 0.0, 1.0, 1.0),
            &sq(1.0, 0.0, 2.0, 1.0),
            0.0,
            2.0,
            1.0,
        );
    }

    #[test]
    fn diamond_with_vertices_on_square_boundary() {
        // Diamond with two vertices ON the square's right edge (at its
        // corners' midside): vertex-on-edge contacts that DO cross.
        let square = sq(0.0, 0.0, 2.0, 2.0);
        let diamond = PolygonSet::from_xy(&[(2.0, 0.0), (3.0, 1.0), (2.0, 2.0), (1.0, 1.0)]);
        // Diamond area 2; half of it (triangle (2,0),(2,2),(1,1), area 1)
        // lies inside the square.
        check_ops(&square, &diamond, 1.0, 5.0, 3.0);
    }

    #[test]
    fn triangle_apex_on_edge_from_inside() {
        // Vertex-on-edge without penetration: apex touches the top edge
        // from inside; the triangle bounces and resolves by containment.
        let square = sq(0.0, 0.0, 2.0, 2.0);
        let tri = PolygonSet::from_xy(&[(1.0, 2.0), (0.5, 1.0), (1.5, 1.0)]);
        check_ops(&square, &tri, 0.5, 4.0, 3.5);
    }

    #[test]
    fn triangle_apex_on_edge_from_outside() {
        // Vertex-on-edge touch from outside: interiors are disjoint.
        let square = sq(0.0, 0.0, 2.0, 2.0);
        let tri = PolygonSet::from_xy(&[(1.0, 0.0), (3.0, -2.0), (-1.0, -2.0)]);
        check_ops(&square, &tri, 0.0, 8.0, 4.0);
    }

    #[test]
    fn holes_and_multiple_contours() {
        // Subject: [0,4]² with hole [1,3]² (even-odd). Clip: [2,6]×[0,4].
        let mut subj = sq(0.0, 0.0, 4.0, 4.0);
        subj.push(rect(1.0, 1.0, 3.0, 3.0));
        let clp = sq(2.0, 0.0, 6.0, 4.0);
        check_ops(&subj, &clp, 6.0, 22.0, 6.0);
    }

    #[test]
    fn hole_boundary_coincides_with_clip() {
        // Clip exactly equals the subject's hole: intersection is empty,
        // difference is the ring, union is the outer square.
        let mut subj = sq(0.0, 0.0, 4.0, 4.0);
        subj.push(rect(1.0, 1.0, 3.0, 3.0));
        let clp = sq(1.0, 1.0, 3.0, 3.0);
        check_ops(&subj, &clp, 0.0, 16.0, 12.0);
    }

    #[test]
    fn xor_is_concatenation() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        let b = sq(1.0, 1.0, 3.0, 3.0);
        let x = fo_clip(&a, &b, FoOp::Xor);
        let expect = area(&a) + area(&b) - 2.0 * overlap_area(&a, &b);
        assert!((area(&x) - expect).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_survive() {
        let empty = PolygonSet::from_contours(Vec::new());
        let a = sq(0.0, 0.0, 1.0, 1.0);
        assert!(fo_clip(&empty, &a, FoOp::Intersection).is_empty());
        assert!((area(&fo_clip(&empty, &a, FoOp::Union)) - 1.0).abs() < 1e-12);
        assert!(fo_clip(&empty, &a, FoOp::Difference).is_empty());
        // Degenerate (collapsed) contour cleans away.
        let line = PolygonSet::from_xy(&[(0.0, 0.0), (1.0, 0.0), (0.5, 0.0)]);
        assert!(fo_clip(&line, &a, FoOp::Intersection).is_empty());
        // Non-finite coordinates drop the ring, not the process.
        let bad = PolygonSet::from_xy(&[(f64::NAN, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        assert!(fo_clip(&bad, &a, FoOp::Intersection).is_empty());
    }
}
