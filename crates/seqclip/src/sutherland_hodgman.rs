//! Sutherland–Hodgman clipping against a convex region.
//!
//! The classic re-entrant clipper: the subject contour is clipped against
//! each half-plane bounded by a clip edge in turn. Correct for arbitrary
//! subject contours when the clip region is convex; output may contain
//! degenerate boundary runs where the subject left and re-entered the
//! region — callers that feed the result into the scanbeam engine are immune
//! to those (they carry no area).

use polyclip_geom::{Contour, Point, Segment};

/// Clip `subject` to the closed half-plane **left of** the directed line
/// `a → b`.
pub fn clip_to_halfplane(subject: &Contour, a: Point, b: Point) -> Contour {
    let pts = subject.points();
    let n = pts.len();
    if n == 0 {
        return Contour::default();
    }
    let line = Segment::new(a, b);
    let inside = |p: Point| line.side_of(p) >= 0.0;
    let mut out: Vec<Point> = Vec::with_capacity(n + 4);
    for i in 0..n {
        let cur = pts[i];
        let prev = pts[(i + n - 1) % n];
        let (cin, pin) = (inside(cur), inside(prev));
        if cin {
            if !pin {
                out.push(edge_crossing(prev, cur, &line));
            }
            out.push(cur);
        } else if pin {
            out.push(edge_crossing(prev, cur, &line));
        }
    }
    Contour::new(out)
}

/// Crossing point of segment `p → q` with the (infinite) clip line.
fn edge_crossing(p: Point, q: Point, line: &Segment) -> Point {
    let d = line.dir();
    let denom = d.cross(&(q - p));
    if denom == 0.0 {
        // Segment parallel to the line but straddling it can only happen
        // through rounding; either endpoint is on the line then.
        return p;
    }
    let t = d.cross(&(p - line.a)) / -denom;
    let t = t.clamp(0.0, 1.0);
    p.lerp(&q, t)
}

/// Clip `subject` against a convex counterclockwise `clip` contour.
///
/// # Panics
/// Debug-panics if `clip` is not convex; results are meaningless for
/// non-convex clip regions (use the scanbeam engine for those).
pub fn clip_to_convex(subject: &Contour, clip: &Contour) -> Contour {
    debug_assert!(
        clip.is_convex(),
        "Sutherland-Hodgman needs a convex clip region"
    );
    debug_assert!(clip.is_ccw(), "clip contour must be counterclockwise");
    let mut cur = subject.clone();
    let cpts = clip.points();
    let m = cpts.len();
    for i in 0..m {
        if cur.is_empty() {
            break;
        }
        cur = clip_to_halfplane(&cur, cpts[i], cpts[(i + 1) % m]);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;
    use polyclip_geom::point::pt;

    #[test]
    fn square_clipped_by_overlapping_square() {
        let subject = rect(0.0, 0.0, 2.0, 2.0);
        let clip = rect(1.0, 1.0, 3.0, 3.0);
        let out = clip_to_convex(&subject, &clip);
        assert_eq!(out.area(), 1.0);
        assert_eq!(out.bbox(), polyclip_geom::BBox::new(1.0, 1.0, 2.0, 2.0));
    }

    #[test]
    fn subject_fully_inside_is_unchanged() {
        let subject = rect(1.0, 1.0, 2.0, 2.0);
        let clip = rect(0.0, 0.0, 3.0, 3.0);
        let out = clip_to_convex(&subject, &clip);
        assert_eq!(out.area(), 1.0);
    }

    #[test]
    fn subject_fully_outside_vanishes() {
        let subject = rect(5.0, 5.0, 6.0, 6.0);
        let clip = rect(0.0, 0.0, 3.0, 3.0);
        let out = clip_to_convex(&subject, &clip);
        assert!(out.is_empty() || out.area() == 0.0);
    }

    #[test]
    fn triangle_against_triangle() {
        let subject = Contour::from_xy(&[(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)]);
        let clip = Contour::from_xy(&[(0.0, 1.0), (4.0, 1.0), (2.0, 5.0)]);
        let out = clip_to_convex(&subject, &clip);
        // Overlap is a quadrilateral strictly above y = 1 and inside both.
        assert!(out.is_valid());
        assert!(out.area() > 0.0);
        assert!(out.bbox().ymin >= 1.0 - 1e-12);
        for p in out.points() {
            assert!(subject.contains_even_odd(*p) || on_boundary(&subject, *p));
            assert!(clip.contains_even_odd(*p) || on_boundary(&clip, *p));
        }
    }

    fn on_boundary(c: &Contour, p: Point) -> bool {
        use polyclip_geom::EPS_BOUNDARY;
        c.edges().any(|e| {
            polyclip_geom::predicates::point_on_segment(e.a, e.b, p)
                || p.dist(&e.a) < EPS_BOUNDARY
                || e.side_of(p).abs() < EPS_BOUNDARY && e.bbox().contains(p)
        })
    }

    #[test]
    fn halfplane_keeps_left() {
        let sq = rect(0.0, 0.0, 2.0, 2.0);
        // Vertical line x = 1 directed upward keeps x <= 1.
        let out = clip_to_halfplane(&sq, pt(1.0, 0.0), pt(1.0, 5.0));
        assert_eq!(out.area(), 2.0);
        assert!(out.bbox().xmax <= 1.0);
    }

    #[test]
    fn concave_subject_against_rect_preserves_area() {
        // L-shaped subject, clip to a rect covering half of it.
        let l = Contour::from_xy(&[
            (0.0, 0.0),
            (2.0, 0.0),
            (2.0, 1.0),
            (1.0, 1.0),
            (1.0, 2.0),
            (0.0, 2.0),
        ]);
        let clip = rect(0.0, 0.0, 2.0, 1.0);
        let out = clip_to_convex(&l, &clip);
        assert!((out.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_subject() {
        let out = clip_to_convex(&Contour::default(), &rect(0.0, 0.0, 1.0, 1.0));
        assert!(out.is_empty());
    }
}
