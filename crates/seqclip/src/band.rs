//! Horizontal band (slab) clipping — the `rectangleClip` of Algorithm 2.
//!
//! Algorithm 2 partitions the plane into horizontal slabs and clips both
//! input polygons to each slab before running the sequential clipper inside
//! it. Because a slab is the intersection of just two horizontal half-planes,
//! Sutherland–Hodgman per contour does the job in one linear pass.
//!
//! On self-intersecting contours Sutherland–Hodgman can leave degenerate
//! runs *along the slab boundary*; those runs are horizontal, and horizontal
//! edges never enter the scanbeam engine's active sets, so the downstream
//! per-slab boolean is unaffected — this is why band clipping is safe here
//! while general rectangle clipping of arbitrary polygons would not be.

use polyclip_geom::{Contour, Point, PolygonSet, Segment};
use std::borrow::Cow;

/// Clip every contour of `poly` to the band `ymin <= y <= ymax`.
///
/// Crossing points are computed **canonically** from the original edge
/// endpoints via [`Segment::x_at_y`], so the two slabs sharing a boundary
/// obtain bit-identical cut vertices — the property Algorithm 2's cheap
/// seam-cancelling merge relies on.
pub fn band_clip(poly: &PolygonSet, ymin: f64, ymax: f64) -> PolygonSet {
    debug_assert!(ymin < ymax, "empty band");
    let mut scratch = Vec::new();
    let mut out = PolygonSet::new();
    for c in poly.contours() {
        let b = c.bbox();
        if !b.y_overlaps(ymin, ymax) {
            continue; // entirely outside the band
        }
        if b.inside_band(ymin, ymax) {
            out.push(c.clone()); // entirely inside
            continue;
        }
        out.push(band_clip_contour_into(c, ymin, ymax, &mut scratch));
    }
    out
}

/// [`band_clip`] without deep-cloning untouched geometry: contours fully
/// inside the band come back `Cow::Borrowed`, only boundary-crossing
/// contours are clipped into owned storage. Contours that would not survive
/// [`PolygonSet::push`]'s validity filter (fewer than three vertices) are
/// omitted, so collecting the owned values reproduces `band_clip` exactly.
pub fn band_clip_cow<'a>(poly: &'a PolygonSet, ymin: f64, ymax: f64) -> Vec<Cow<'a, Contour>> {
    debug_assert!(ymin < ymax, "empty band");
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    for c in poly.contours() {
        let b = c.bbox();
        if !b.y_overlaps(ymin, ymax) {
            continue;
        }
        if b.inside_band(ymin, ymax) {
            if c.is_valid() {
                out.push(Cow::Borrowed(c));
            }
            continue;
        }
        let clipped = band_clip_contour_into(c, ymin, ymax, &mut scratch);
        if clipped.is_valid() {
            out.push(Cow::Owned(clipped));
        }
    }
    out
}

/// One-pass Sutherland–Hodgman against the two horizontal half-planes.
///
/// Per directed edge: emit the boundary crossings in order along the edge,
/// then the end vertex when it lies in the band. Consecutive emissions on
/// the same boundary line connect along that line, reproducing the classic
/// SH boundary runs; an edge traversing the whole band emits both crossings
/// and keeps its interior portion.
pub fn band_clip_contour(c: &Contour, ymin: f64, ymax: f64) -> Contour {
    band_clip_contour_into(c, ymin, ymax, &mut Vec::with_capacity(c.len() + 8))
}

/// [`band_clip_contour`] writing through a caller-owned scratch buffer, so a
/// slab worker clipping many contours reuses one allocation for the working
/// vertex list instead of a fresh `Vec<Point>` per contour. Only the
/// returned [`Contour`] allocates (exactly its final size); `scratch` keeps
/// its capacity and may be reused immediately.
pub fn band_clip_contour_into(
    c: &Contour,
    ymin: f64,
    ymax: f64,
    scratch: &mut Vec<Point>,
) -> Contour {
    let pts = c.points();
    let n = pts.len();
    scratch.clear();
    let out = scratch;
    for i in 0..n {
        let p = pts[i];
        let q = pts[(i + 1) % n];
        if (p.y < ymin && q.y < ymin) || (p.y > ymax && q.y > ymax) {
            continue; // entirely on one outside side
        }
        let seg = Segment::new(p, q);
        let crosses_min = (p.y < ymin) != (q.y < ymin);
        let crosses_max = (p.y > ymax) != (q.y > ymax);
        let upward = q.y > p.y;
        // Crossings in order along the edge.
        let emit_cross = |y: f64, out: &mut Vec<Point>| {
            out.push(Point::new(seg.x_at_y(y), y));
        };
        if upward {
            if crosses_min {
                emit_cross(ymin, &mut *out);
            }
            if crosses_max {
                emit_cross(ymax, &mut *out);
            }
        } else {
            if crosses_max {
                emit_cross(ymax, &mut *out);
            }
            if crosses_min {
                emit_cross(ymin, &mut *out);
            }
        }
        if q.y >= ymin && q.y <= ymax {
            out.push(q);
        }
    }
    Contour::new(out.clone())
}

/// Clip every contour of `poly` to the vertical band `xmin <= x <= xmax`
/// (the x-axis analogue of [`band_clip`]).
pub fn xband_clip(poly: &PolygonSet, xmin: f64, xmax: f64) -> PolygonSet {
    debug_assert!(xmin < xmax, "empty band");
    let mut out = PolygonSet::new();
    for c in poly.contours() {
        let b = c.bbox();
        if b.xmax < xmin || b.xmin > xmax {
            continue;
        }
        if b.xmin >= xmin && b.xmax <= xmax {
            out.push(c.clone());
            continue;
        }
        // Transpose, clip with the y-band routine, transpose back.
        let t = Contour::new(c.points().iter().map(|p| Point::new(p.y, p.x)).collect());
        let clipped = band_clip_contour(&t, xmin, xmax);
        out.push(Contour::new(
            clipped
                .points()
                .iter()
                .map(|p| Point::new(p.y, p.x))
                .collect(),
        ));
    }
    out
}

use polyclip_geom::BBox;

/// Clip to an axis-aligned rectangle: the y-band then the x-band. This is
/// the general `rectangleClip` of Algorithm 2's steps 4–5 for arbitrary
/// (including self-intersecting) inputs: any Sutherland–Hodgman artifacts
/// lie exactly on the rectangle boundary, where they are parity-neutral
/// (each artifact run is traversed twice in opposite directions).
pub fn rect_clip(poly: &PolygonSet, r: &BBox) -> PolygonSet {
    xband_clip(&band_clip(poly, r.ymin, r.ymax), r.xmin, r.xmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;

    #[test]
    fn square_split_by_band() {
        let p = PolygonSet::from_contour(rect(0.0, 0.0, 2.0, 4.0));
        let mid = band_clip(&p, 1.0, 3.0);
        assert_eq!(mid.len(), 1);
        assert_eq!(mid.contours()[0].area(), 4.0);
        let b = mid.bbox();
        assert_eq!((b.ymin, b.ymax), (1.0, 3.0));
    }

    #[test]
    fn contour_fully_inside_is_passed_through() {
        let p = PolygonSet::from_contour(rect(0.0, 1.5, 1.0, 2.5));
        let out = band_clip(&p, 1.0, 3.0);
        assert_eq!(out, p);
    }

    #[test]
    fn contour_fully_outside_is_dropped() {
        let p = PolygonSet::from_contour(rect(0.0, 5.0, 1.0, 6.0));
        assert!(band_clip(&p, 1.0, 3.0).is_empty());
    }

    #[test]
    fn triangle_apex_cut_off() {
        let p = PolygonSet::from_xy(&[(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)]);
        let out = band_clip(&p, 0.0, 2.0);
        // Trapezoid: area = (4 + 2) / 2 * 2 = 6.
        assert_eq!(out.len(), 1);
        assert!((out.contours()[0].area() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn band_boundaries_are_inclusive() {
        let p = PolygonSet::from_contour(rect(0.0, 1.0, 1.0, 3.0));
        let out = band_clip(&p, 1.0, 3.0);
        assert_eq!(out.len(), 1);
        assert!((out.contours()[0].area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_contours_processed_independently() {
        let p = PolygonSet::from_contours(vec![
            rect(0.0, 0.0, 1.0, 10.0),
            rect(2.0, 4.0, 3.0, 5.0),
            rect(4.0, 8.0, 5.0, 9.0),
        ]);
        let out = band_clip(&p, 3.0, 6.0);
        assert_eq!(out.len(), 2);
        let area: f64 = out.contours().iter().map(|c| c.area()).sum();
        assert!((area - (3.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn cow_variant_matches_band_clip_and_borrows_inside_contours() {
        let p = PolygonSet::from_contours(vec![
            rect(0.0, 0.0, 1.0, 10.0), // crosses both boundaries
            rect(2.0, 4.0, 3.0, 5.0),  // fully inside
            rect(4.0, 8.0, 5.0, 9.0),  // fully outside
            rect(6.0, 3.0, 7.0, 6.5),  // crosses the top boundary
        ]);
        let cows = band_clip_cow(&p, 3.0, 6.0);
        let owned = band_clip(&p, 3.0, 6.0);
        let collected =
            PolygonSet::from_contours(cows.iter().map(|c| c.as_ref().clone()).collect());
        assert_eq!(collected, owned);
        let borrowed = cows
            .iter()
            .filter(|c| matches!(c, Cow::Borrowed(_)))
            .count();
        assert_eq!(borrowed, 1, "exactly the fully-inside contour is borrowed");
    }

    #[test]
    fn scratch_buffer_reuse_is_bit_identical() {
        let tri = Contour::new(vec![
            Point::new(0.3, 0.1),
            Point::new(5.7, 0.9),
            Point::new(2.2, 4.7),
        ]);
        let mut scratch = Vec::new();
        let a = band_clip_contour(&tri, 0.5, 3.0);
        let b = band_clip_contour_into(&tri, 0.5, 3.0, &mut scratch);
        assert_eq!(a, b);
        // Reuse with stale capacity must not leak previous contents.
        let c = band_clip_contour_into(&tri, 1.0, 2.0, &mut scratch);
        assert_eq!(c, band_clip_contour(&tri, 1.0, 2.0));
    }

    #[test]
    fn xband_clip_transposed_semantics() {
        let p = PolygonSet::from_contour(rect(0.0, 0.0, 4.0, 2.0));
        let mid = xband_clip(&p, 1.0, 3.0);
        assert_eq!(mid.len(), 1);
        assert!((mid.contours()[0].area() - 4.0).abs() < 1e-12);
        let b = mid.bbox();
        assert_eq!((b.xmin, b.xmax), (1.0, 3.0));
        // Pass-through and drop fast paths.
        assert_eq!(xband_clip(&p, -1.0, 5.0), p);
        assert!(xband_clip(&p, 9.0, 10.0).is_empty());
    }

    #[test]
    fn rect_clip_of_triangle() {
        let tri = PolygonSet::from_xy(&[(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)]);
        let r = BBox::new(1.0, 1.0, 5.0, 2.0);
        let out = rect_clip(&tri, &r);
        assert_eq!(out.len(), 1);
        let bb = out.bbox();
        assert!(bb.xmin >= 1.0 - 1e-12 && bb.xmax <= 5.0 + 1e-12);
        assert!(bb.ymin >= 1.0 - 1e-12 && bb.ymax <= 2.0 + 1e-12);
        // Analytical area: the triangle slice between y=1 and y=2 clipped to
        // x in [1,5]: widths at y: w(y) = 6 - 2y (full triangle), clipped to
        // [1,5]: at y=1 span is [1, 5] width 4 (tri spans [0.5,5.5]); at y=2
        // tri spans [1,5] width 4 → area = 4.
        assert!(
            (out.contours()[0].area() - 4.0).abs() < 1e-9,
            "area={}",
            out.contours()[0].area()
        );
    }

    #[test]
    fn adjacent_bands_tile_a_contour_exactly() {
        // The union of band areas equals the original area: no double count,
        // no gap — the invariant Algorithm 2's slab decomposition rests on.
        let tri = PolygonSet::from_xy(&[(0.3, 0.1), (5.7, 0.9), (2.2, 4.7)]);
        let total: f64 = tri.contours()[0].area();
        let cuts = [0.1, 1.3, 2.0, 3.1, 4.7];
        let mut acc = 0.0;
        for w in cuts.windows(2) {
            let part = band_clip(&tri, w[0], w[1]);
            acc += part.contours().iter().map(|c| c.area()).sum::<f64>();
        }
        assert!((acc - total).abs() < 1e-9, "acc={acc} total={total}");
    }
}
