//! Sequential baseline clippers.
//!
//! The paper positions its contribution against the classical sequential
//! algorithms; this crate implements them from scratch:
//!
//! * [`sutherland_hodgman`] — clipping against a *convex* region (the
//!   algorithm whose prior parallelizations the paper's §II-B reviews);
//! * [`liang_barsky`] — parametric segment-vs-rectangle clipping;
//! * [`greiner_hormann`] — general simple-polygon boolean operations, the
//!   algorithm the paper itself uses for the `rectangleClip` step of
//!   Algorithm 2 ("we used Greiner-Hormann since we found it to be faster
//!   than GPC for rectangular clipping"); requires inputs in general
//!   position (see its module docs);
//! * [`foster_overfelt`] — the degeneracy-robust Greiner–Hormann variant
//!   of Foster & Overfelt, used as the independent verification oracle
//!   (`core::oracle`): the only seqclip entry point that is correct on
//!   shared vertices, vertices on edges, and collinear overlapping edges;
//! * [`band`] — the specialized horizontal-slab clip used by our Algorithm 2
//!   realization: Sutherland–Hodgman against the two horizontal half-planes,
//!   whose only artifacts are horizontal boundary runs that the scanbeam
//!   engine ignores by construction.

pub mod band;
pub mod foster_overfelt;
pub mod greiner_hormann;
pub mod liang_barsky;
pub mod sutherland_hodgman;

pub use band::{
    band_clip, band_clip_contour, band_clip_contour_into, band_clip_cow, rect_clip, xband_clip,
};
pub use foster_overfelt::{fo_clip, FoOp};
pub use greiner_hormann::{gh_clip, GhOp};
pub use liang_barsky::clip_segment_to_rect;
pub use sutherland_hodgman::{clip_to_convex, clip_to_halfplane};
