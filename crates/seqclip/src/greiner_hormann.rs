//! Greiner–Hormann polygon clipping.
//!
//! The algorithm the paper uses for the `rectangleClip` step of Algorithm 2.
//! It computes boolean operations on two *simple* polygons in general
//! position (no vertex of one on an edge of the other, no collinear
//! overlapping edges): intersection vertices are inserted into both vertex
//! rings, marked alternately as entry/exit, and result contours are traced
//! by switching rings at each intersection.
//!
//! # Precondition: general position
//!
//! Degenerate configurations are a documented limitation of the original
//! algorithm, and this implementation makes **no** attempt to repair them.
//! Callers must guarantee that
//!
//! * no vertex of one polygon lies on a vertex or edge of the other, and
//! * no pair of edges overlaps collinearly;
//!
//! otherwise entry/exit alternation derails and the trace can emit the
//! wrong region or a degenerate sliver. Upstream users satisfy this by
//! snap-rounding/sanitizing inputs or by generating perturbed data. Debug
//! builds verify the precondition with `debug_assert` guards
//! ([`debug_check_general_position`]); release builds trust the caller.
//!
//! Code that cannot guarantee general position should use
//! [`crate::foster_overfelt`] — the degeneracy-robust variant — or the
//! scanbeam engine in `polyclip-core`. This module remains the fast
//! baseline the paper benchmarks against for rectangular clips.

use polyclip_geom::predicates::point_on_segment;
use polyclip_geom::{Contour, Point, PolygonSet};

/// Boolean operation for [`gh_clip`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GhOp {
    /// Region inside both polygons.
    Intersection,
    /// Region inside either polygon.
    Union,
    /// Region inside `subject` but not `clip`.
    Difference,
}

const NONE: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    p: Point,
    next: usize,
    prev: usize,
    neighbor: usize,
    intersect: bool,
    entry: bool,
    visited: bool,
}

impl Node {
    fn vertex(p: Point) -> Self {
        Node {
            p,
            next: NONE,
            prev: NONE,
            neighbor: NONE,
            intersect: false,
            entry: false,
            visited: false,
        }
    }
}

/// Clip two simple polygons (single contours) with Greiner–Hormann.
///
/// Returns the result contours. Inputs must be simple and in general
/// position; both orientations are accepted.
pub fn gh_clip(subject: &Contour, clip: &Contour, op: GhOp) -> PolygonSet {
    if !subject.is_valid() || !clip.is_valid() {
        return degenerate_result(subject, clip, op);
    }
    debug_assert!(
        debug_check_general_position(subject, clip),
        "gh_clip precondition violated: inputs are not in general position \
         (vertex-on-boundary or collinear overlapping edges); use \
         foster_overfelt::fo_clip for degenerate inputs"
    );
    let spts = subject.points();
    let cpts = clip.points();
    let (ns, nc) = (spts.len(), cpts.len());

    // Phase 1: pairwise edge intersections with parametric positions.
    // inters[k] = (i, t, j, u, point): subject edge i at parameter t meets
    // clip edge j at parameter u.
    let mut inters: Vec<(usize, f64, usize, f64, Point)> = Vec::new();
    for i in 0..ns {
        let (s0, s1) = (spts[i], spts[(i + 1) % ns]);
        let ds = s1 - s0;
        for j in 0..nc {
            let (c0, c1) = (cpts[j], cpts[(j + 1) % nc]);
            let dc = c1 - c0;
            let denom = ds.cross(&dc);
            if denom == 0.0 {
                continue; // parallel (general position: no overlap handling)
            }
            let w = c0 - s0;
            let t = w.cross(&dc) / denom;
            let u = w.cross(&ds) / denom;
            if t > 0.0 && t < 1.0 && u > 0.0 && u < 1.0 {
                inters.push((i, t, j, u, s0.lerp(&s1, t)));
            }
        }
    }

    if inters.is_empty() {
        return no_intersection_result(subject, clip, op);
    }

    // Build both rings in one arena. Subject ring first.
    let mut nodes: Vec<Node> = Vec::with_capacity(ns + nc + 2 * inters.len());
    let mut sub_ids: Vec<usize> = vec![NONE; inters.len()];
    let mut clip_ids: Vec<usize> = vec![NONE; inters.len()];

    let s_head = build_ring(
        &mut nodes,
        spts,
        &mut |edge| {
            let mut on_edge: Vec<(f64, usize)> = inters
                .iter()
                .enumerate()
                .filter(|(_, it)| it.0 == edge)
                .map(|(k, it)| (it.1, k))
                .collect();
            on_edge.sort_by(|a, b| a.0.total_cmp(&b.0));
            on_edge
        },
        &inters,
        &mut sub_ids,
    );

    let c_head = build_ring(
        &mut nodes,
        cpts,
        &mut |edge| {
            let mut on_edge: Vec<(f64, usize)> = inters
                .iter()
                .enumerate()
                .filter(|(_, it)| it.2 == edge)
                .map(|(k, it)| (it.3, k))
                .collect();
            on_edge.sort_by(|a, b| a.0.total_cmp(&b.0));
            on_edge
        },
        &inters,
        &mut clip_ids,
    );

    // Cross-link neighbors.
    for k in 0..inters.len() {
        let (a, b) = (sub_ids[k], clip_ids[k]);
        nodes[a].neighbor = b;
        nodes[b].neighbor = a;
    }

    // Phase 2: entry/exit marking. Walking a ring from its first original
    // vertex, intersections alternate entering/leaving the other polygon.
    let (invert_s, invert_c) = match op {
        GhOp::Intersection => (false, false),
        GhOp::Union => (true, true),
        GhOp::Difference => (true, false),
    };
    mark_entries(&mut nodes, s_head, clip, invert_s);
    mark_entries(&mut nodes, c_head, subject, invert_c);

    // Phase 3: trace result contours.
    let mut out = PolygonSet::new();
    while let Some(start) = nodes.iter().position(|n| n.intersect && !n.visited) {
        let mut pts: Vec<Point> = Vec::new();
        let mut cur = start;
        pts.push(nodes[cur].p);
        loop {
            nodes[cur].visited = true;
            let nb = nodes[cur].neighbor;
            nodes[nb].visited = true;
            if nodes[cur].entry {
                loop {
                    cur = nodes[cur].next;
                    if nodes[cur].intersect {
                        break;
                    }
                    pts.push(nodes[cur].p);
                }
            } else {
                loop {
                    cur = nodes[cur].prev;
                    if nodes[cur].intersect {
                        break;
                    }
                    pts.push(nodes[cur].p);
                }
            }
            cur = nodes[cur].neighbor;
            if cur == start {
                break;
            }
            pts.push(nodes[cur].p);
        }
        out.push(Contour::new(pts));
    }
    out
}

/// Verify the general-position precondition of [`gh_clip`]: no vertex of
/// either polygon on the other's boundary, and no collinear overlapping
/// edge pair. Exact predicates, `O(n·m)` — intended for `debug_assert!`
/// use only (release builds skip it entirely).
///
/// Returns `true` when the inputs are safe for plain Greiner–Hormann.
pub fn debug_check_general_position(subject: &Contour, clip: &Contour) -> bool {
    let on_any_edge = |c: &Contour, p: Point| -> bool {
        let pts = c.points();
        let n = pts.len();
        (0..n).any(|i| point_on_segment(pts[i], pts[(i + 1) % n], p))
    };
    if subject.points().iter().any(|&v| on_any_edge(clip, v))
        || clip.points().iter().any(|&v| on_any_edge(subject, v))
    {
        return false;
    }
    // Collinear overlapping edges: parallel pair where an endpoint of one
    // lies on the other (vertex checks above catch shared endpoints; this
    // catches interior-to-interior overlaps of equal-length spans too).
    let (spts, cpts) = (subject.points(), clip.points());
    let (ns, nc) = (spts.len(), cpts.len());
    for i in 0..ns {
        let (s0, s1) = (spts[i], spts[(i + 1) % ns]);
        for j in 0..nc {
            let (c0, c1) = (cpts[j], cpts[(j + 1) % nc]);
            if (s1 - s0).cross(&(c1 - c0)) == 0.0
                && (point_on_segment(s0, s1, c0)
                    || point_on_segment(s0, s1, c1)
                    || point_on_segment(c0, c1, s0)
                    || point_on_segment(c0, c1, s1))
            {
                return false;
            }
        }
    }
    true
}

/// Build a circular ring for `pts` in `nodes`, inserting the intersection
/// nodes of each edge ordered by parameter. `on_edge(i)` returns the sorted
/// `(t, inter_index)` list of edge `i`; `ids[k]` receives the node index of
/// intersection `k` in this ring.
fn build_ring(
    nodes: &mut Vec<Node>,
    pts: &[Point],
    on_edge: &mut dyn FnMut(usize) -> Vec<(f64, usize)>,
    inters: &[(usize, f64, usize, f64, Point)],
    ids: &mut [usize],
) -> usize {
    let head = nodes.len();
    let mut prev = NONE;
    for (i, &p) in pts.iter().enumerate() {
        let v = nodes.len();
        nodes.push(Node::vertex(p));
        if prev != NONE {
            nodes[prev].next = v;
            nodes[v].prev = prev;
        }
        prev = v;
        for (_, k) in on_edge(i) {
            let w = nodes.len();
            let mut n = Node::vertex(inters[k].4);
            n.intersect = true;
            nodes.push(n);
            nodes[prev].next = w;
            nodes[w].prev = prev;
            prev = w;
            ids[k] = w;
        }
    }
    nodes[prev].next = head;
    nodes[head].prev = prev;
    head
}

/// Alternate entry/exit flags along the ring starting at `head` (an
/// original vertex), seeded by whether that vertex is inside `other`.
fn mark_entries(nodes: &mut [Node], head: usize, other: &Contour, invert: bool) {
    let mut entry = !other.contains_even_odd(nodes[head].p);
    if invert {
        entry = !entry;
    }
    let mut cur = head;
    loop {
        if nodes[cur].intersect {
            nodes[cur].entry = entry;
            entry = !entry;
        }
        cur = nodes[cur].next;
        if cur == head {
            break;
        }
    }
}

/// Result when the boundaries do not cross: decided by containment.
fn no_intersection_result(subject: &Contour, clip: &Contour, op: GhOp) -> PolygonSet {
    let s_in_c = clip.contains_even_odd(subject.points()[0]);
    let c_in_s = subject.contains_even_odd(clip.points()[0]);
    match op {
        GhOp::Intersection => {
            if s_in_c {
                PolygonSet::from_contour(subject.clone())
            } else if c_in_s {
                PolygonSet::from_contour(clip.clone())
            } else {
                PolygonSet::new()
            }
        }
        GhOp::Union => {
            if s_in_c {
                PolygonSet::from_contour(clip.clone())
            } else if c_in_s {
                PolygonSet::from_contour(subject.clone())
            } else {
                PolygonSet::from_contours(vec![subject.clone(), clip.clone()])
            }
        }
        GhOp::Difference => {
            if s_in_c {
                PolygonSet::new()
            } else if c_in_s {
                // Subject with a hole: even-odd representation, two contours.
                PolygonSet::from_contours(vec![subject.clone(), clip.clone()])
            } else {
                PolygonSet::from_contour(subject.clone())
            }
        }
    }
}

fn degenerate_result(subject: &Contour, clip: &Contour, op: GhOp) -> PolygonSet {
    match op {
        GhOp::Intersection => PolygonSet::new(),
        GhOp::Union => PolygonSet::from_contours(vec![subject.clone(), clip.clone()]),
        GhOp::Difference => PolygonSet::from_contour(subject.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyclip_geom::contour::rect;
    use polyclip_geom::point::pt;
    use polyclip_geom::FillRule;

    fn area(p: &PolygonSet) -> f64 {
        // Even-odd area via signed contour areas works for GH outputs
        // because traced contours do not overlap each other except for
        // hole nesting, which signed orientation handles if holes come out
        // oppositely wound; take abs per contour for the simple cases here.
        p.contours()
            .iter()
            .map(|c| c.signed_area())
            .sum::<f64>()
            .abs()
    }

    fn offset_squares() -> (Contour, Contour) {
        (rect(0.0, 0.0, 2.0, 2.0), rect(1.0, 1.0, 3.0, 3.0))
    }

    #[test]
    fn intersection_of_offset_squares() {
        let (a, b) = offset_squares();
        let r = gh_clip(&a, &b, GhOp::Intersection);
        assert_eq!(r.len(), 1);
        assert!((area(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_of_offset_squares() {
        let (a, b) = offset_squares();
        let r = gh_clip(&a, &b, GhOp::Union);
        assert_eq!(r.len(), 1);
        assert!((area(&r) - 7.0).abs() < 1e-12, "area={}", area(&r));
    }

    #[test]
    fn difference_of_offset_squares() {
        let (a, b) = offset_squares();
        let r = gh_clip(&a, &b, GhOp::Difference);
        assert_eq!(r.len(), 1);
        assert!((area(&r) - 3.0).abs() < 1e-12, "area={}", area(&r));
        // The notch corner (1.5, 1.5) must be outside the result.
        assert!(!r.contains(pt(1.5, 1.5), FillRule::EvenOdd));
        assert!(r.contains(pt(0.5, 0.5), FillRule::EvenOdd));
    }

    #[test]
    fn disjoint_polygons() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(5.0, 5.0, 6.0, 6.0);
        assert!(gh_clip(&a, &b, GhOp::Intersection).is_empty());
        assert_eq!(gh_clip(&a, &b, GhOp::Union).len(), 2);
        let d = gh_clip(&a, &b, GhOp::Difference);
        assert_eq!(d.len(), 1);
        assert!((area(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_polygons() {
        let outer = rect(0.0, 0.0, 4.0, 4.0);
        let inner = rect(1.0, 1.0, 2.0, 2.0);
        let i = gh_clip(&outer, &inner, GhOp::Intersection);
        assert!((area(&i) - 1.0).abs() < 1e-12);
        let u = gh_clip(&outer, &inner, GhOp::Union);
        assert!((area(&u) - 16.0).abs() < 1e-12);
        // outer − inner: ring with hole, even-odd two contours, area 15.
        let d = gh_clip(&outer, &inner, GhOp::Difference);
        assert_eq!(d.len(), 2);
        assert!(!d.contains(pt(1.5, 1.5), FillRule::EvenOdd));
        assert!(d.contains(pt(0.5, 0.5), FillRule::EvenOdd));
        // inner − outer = empty.
        assert!(gh_clip(&inner, &outer, GhOp::Difference).is_empty());
    }

    #[test]
    fn concave_subject() {
        // L-shape ∩ square over the notch area.
        let l = Contour::from_xy(&[
            (0.0, 0.0),
            (3.0, 0.0),
            (3.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 3.0),
        ]);
        let sq = rect(0.5, 0.5, 2.5, 2.5);
        let r = gh_clip(&l, &sq, GhOp::Intersection);
        // Overlap: [0.5,2.5]x[0.5,1.0] plus [0.5,1.0]x[1.0,2.5]
        let want = 2.0 * 0.5 + 0.5 * 1.5;
        assert!((area(&r) - want).abs() < 1e-12, "area={}", area(&r));
    }

    #[test]
    fn crossing_strips_make_multiple_output_contours() {
        // A plus-sign style crossing: vertical strip ∩ horizontal strip is
        // one square; vertical ∪ horizontal is a cross (one contour);
        // vertical − horizontal is two pieces.
        let v = rect(1.0, 0.0, 2.0, 3.0);
        let h = rect(0.0, 1.0, 3.0, 2.0);
        let i = gh_clip(&v, &h, GhOp::Intersection);
        assert_eq!(i.len(), 1);
        assert!((area(&i) - 1.0).abs() < 1e-12);
        let d = gh_clip(&v, &h, GhOp::Difference);
        assert_eq!(d.len(), 2);
        let total: f64 = d.contours().iter().map(|c| c.area()).sum();
        assert!((total - 2.0).abs() < 1e-12);
        let u = gh_clip(&v, &h, GhOp::Union);
        assert_eq!(u.len(), 1);
        assert!((area(&u) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn general_position_guard_classifies_degeneracies() {
        let (a, b) = offset_squares();
        assert!(debug_check_general_position(&a, &b));
        // Shared vertex.
        assert!(!debug_check_general_position(
            &rect(0.0, 0.0, 2.0, 2.0),
            &rect(2.0, 2.0, 4.0, 4.0)
        ));
        // Vertex on edge interior.
        assert!(!debug_check_general_position(
            &rect(0.0, 0.0, 2.0, 2.0),
            &Contour::from_xy(&[(1.0, 2.0), (3.0, 3.0), (3.0, 1.0)])
        ));
        // Collinear overlapping edges.
        assert!(!debug_check_general_position(
            &rect(0.0, 0.0, 2.0, 2.0),
            &rect(1.0, 0.0, 3.0, 2.0)
        ));
    }

    #[test]
    fn orientation_insensitivity() {
        let (a, mut b) = offset_squares();
        b.reverse();
        let r = gh_clip(&a, &b, GhOp::Intersection);
        assert!((area(&r) - 1.0).abs() < 1e-12);
    }
}
