//! Criterion benches for the PRAM primitives of Section III: prefix sums
//! (Lemma 3), parallel merge sort, inversion counting/reporting (Lemma 4)
//! and segment-tree partitioning (Step 2). These back the paper's claim
//! that the whole algorithm reduces to sorting + scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyclip::parprim::{
    count_inversions, inclusive_scan, par_count_inversions, par_inclusive_scan, par_merge_sort,
    report_inversions,
};
use polyclip::segtree::SegmentTree;

fn data(n: usize) -> Vec<u64> {
    let mut s = 0x243f6a8885a308d3u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % 1_000_000
        })
        .collect()
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    for n in [10_000usize, 100_000, 1_000_000] {
        let xs = data(n);
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| inclusive_scan(&xs, |a, b| a + b))
        });
        g.bench_with_input(BenchmarkId::new("par", n), &n, |b, _| {
            b.iter(|| par_inclusive_scan(&xs, |a, b| a + b))
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_sort");
    g.sample_size(10);
    for n in [100_000usize, 1_000_000] {
        let xs = data(n);
        g.bench_with_input(BenchmarkId::new("par_merge_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut v = xs.clone();
                par_merge_sort(&mut v, |a, b| a.cmp(b));
                v
            })
        });
        g.bench_with_input(BenchmarkId::new("std_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut v = xs.clone();
                v.sort_unstable();
                v
            })
        });
    }
    g.finish();
}

fn bench_inversions(c: &mut Criterion) {
    let mut g = c.benchmark_group("inversions");
    g.sample_size(10);
    for n in [10_000usize, 100_000] {
        let xs = data(n);
        g.bench_with_input(BenchmarkId::new("count_seq", n), &n, |b, _| {
            b.iter(|| count_inversions(&xs))
        });
        g.bench_with_input(BenchmarkId::new("count_par", n), &n, |b, _| {
            b.iter(|| par_count_inversions(&xs))
        });
    }
    // Reporting is output-sensitive: near-sorted input, sparse inversions.
    let mut nearly: Vec<u64> = (0..100_000u64).collect();
    for i in (0..nearly.len()).step_by(1000) {
        nearly.swap(i, i + 7);
    }
    g.bench_function("report_sparse_100k", |b| {
        b.iter(|| report_inversions(&nearly))
    });
    g.finish();
}

fn bench_segtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("segtree");
    g.sample_size(10);
    for n in [10_000usize, 100_000] {
        let intervals: Vec<(usize, usize)> = data(n)
            .iter()
            .map(|&x| {
                let a = (x % n as u64) as usize;
                let b = a + 1 + (x % 64) as usize;
                (a, b.min(n))
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("build_seq", n), &n, |b, _| {
            b.iter(|| SegmentTree::build(n, &intervals))
        });
        g.bench_with_input(BenchmarkId::new("build_par", n), &n, |b, _| {
            b.iter(|| SegmentTree::par_build(n, &intervals))
        });
        let tree = SegmentTree::build(n, &intervals);
        g.bench_with_input(BenchmarkId::new("stab_all", n), &n, |b, _| {
            b.iter(|| tree.par_stab_all())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scan,
    bench_sort,
    bench_inversions,
    bench_segtree
);
criterion_main!(benches);
