//! Criterion bench for Figures 10–12: layer overlay (intersection and
//! union) on Table III replica layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyclip::prelude::*;
use polyclip_bench::layer;

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_layer_scaling");
    g.sample_size(10);
    let opts = ClipOptions::sequential();
    // Small scale keeps criterion's repeated sampling tractable.
    let a = layer(1, 0.005, 1007);
    let b = layer(2, 0.005, 2007);
    for slabs in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("intersect_1_2", slabs),
            &slabs,
            |bch, &s| {
                bch.iter(|| overlay_intersection(&a, &b, s, SlabAssignment::UniqueOwner, &opts))
            },
        );
        g.bench_with_input(BenchmarkId::new("union_1_2", slabs), &slabs, |bch, &s| {
            bch.iter(|| overlay_union(&a, &b, s, &opts))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
