//! Criterion bench for Figure 7: sequential clipping time vs polygon size.
//!
//! The paper's Figure 7 shows GPC's superlinear growth with polygon size —
//! the motivation for partitioning. This bench measures our sequential
//! scanbeam engine (the GPC substitute) on the same synthetic pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_seq_scaling");
    g.sample_size(10);
    let seq = ClipOptions::sequential();
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let (a, b) = synthetic_pair(n, 42);
        g.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| clip(&a, &b, BoolOp::Intersection, &seq))
        });
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bch, _| {
            bch.iter(|| clip(&a, &b, BoolOp::Union, &seq))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
