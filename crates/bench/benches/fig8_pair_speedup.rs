//! Criterion bench for Figure 8: Algorithm 2 (slab partitioning) on a
//! synthetic polygon pair, across slab counts.
//!
//! The measured wall time on a 1-core host stays flat (the slabs serialize)
//! — the `figures fig8` harness additionally reports the critical-path
//! projection; this bench tracks the *total work* the decomposition costs,
//! i.e. the partition + clip + merge overhead of slabbing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_pair_speedup");
    g.sample_size(10);
    let seq = ClipOptions::sequential();
    let (a, b) = synthetic_pair(20_000, 42);
    for slabs in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("slabs", slabs), &slabs, |bch, &s| {
            bch.iter(|| clip_pair_slabs(&a, &b, BoolOp::Intersection, s, &seq))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
