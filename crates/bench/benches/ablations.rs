//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Step-2 partition backend: direct scan vs segment tree (§III-E);
//! * slab assignment: the paper's replication vs unique-owner;
//! * Algorithm-2 partition backend: per-slab full scan vs the shared
//!   output-sensitive slab index;
//! * output sensitivity: fixed n, increasing overlap (and therefore k) —
//!   the work must track k, not n² (the paper's core claim vs Karinthi
//!   et al.).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyclip::datagen::{smooth_blob, synthetic_pair};
use polyclip::prelude::*;
use polyclip::sweep::PartitionBackend;
use polyclip_bench::layer;

fn bench_partition_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_partition_backend");
    g.sample_size(10);
    let (a, b) = synthetic_pair(20_000, 42);
    for (name, backend) in [
        ("direct_scan", PartitionBackend::DirectScan),
        ("segment_tree", PartitionBackend::SegmentTree),
    ] {
        let opts = ClipOptions {
            backend,
            parallel: false,
            ..Default::default()
        };
        g.bench_function(name, |bch| {
            bch.iter(|| clip(&a, &b, BoolOp::Intersection, &opts))
        });
    }
    g.finish();
}

fn bench_slab_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_slab_assignment");
    g.sample_size(10);
    let opts = ClipOptions::sequential();
    let a = layer(1, 0.005, 1007);
    let b = layer(2, 0.005, 2007);
    for (name, assignment) in [
        ("replicate", SlabAssignment::Replicate),
        ("unique_owner", SlabAssignment::UniqueOwner),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 8), &assignment, |bch, &asg| {
            bch.iter(|| overlay_intersection(&a, &b, 8, asg, &opts))
        });
    }
    g.finish();
}

fn bench_output_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_output_sensitivity");
    g.sample_size(10);
    let seq = ClipOptions::sequential();
    let n = 8_000;
    let a = smooth_blob(5, Point::new(0.0, 0.0), 1.0, n, 0.3);
    // Increasing overlap: k grows while n stays fixed.
    for (name, dx) in [
        ("disjoint", 3.0),
        ("touching", 1.9),
        ("half", 1.0),
        ("deep", 0.3),
    ] {
        let b = smooth_blob(9, Point::new(dx, 0.05), 1.0, n, 0.3);
        let (_, stats) = clip_with_stats(&a, &b, BoolOp::Intersection, &seq);
        let id = format!("{name}_k{}", stats.k_intersections);
        g.bench_function(&id, |bch| {
            bch.iter(|| clip(&a, &b, BoolOp::Intersection, &seq))
        });
    }
    g.finish();
}

fn bench_algo2_partition_backend(c: &mut Criterion) {
    // The tentpole ablation: every slab scanning the full inputs (O(n·p))
    // vs one shared binning pass feeding each slab only its overlapping
    // contours (O(n + Σ overlaps)).
    use polyclip::core::algo2::PartitionBackend as Algo2Backend;
    let mut g = c.benchmark_group("ablation_algo2_partition_backend");
    g.sample_size(10);
    let seq = ClipOptions::sequential();
    let (a, b) = synthetic_pair(40_000, 42);
    for (name, backend) in [
        ("full_scan", Algo2Backend::FullScan),
        ("slab_index", Algo2Backend::SlabIndex),
    ] {
        for slabs in [4usize, 16] {
            g.bench_with_input(BenchmarkId::new(name, slabs), &slabs, |bch, &p| {
                bch.iter(|| {
                    clip_pair_slabs_backend(
                        &a,
                        &b,
                        BoolOp::Union,
                        p,
                        &seq,
                        MergeStrategy::Sequential,
                        backend,
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_merge_strategy(c: &mut Criterion) {
    // Sequential single-pass merge (the paper's Step 8) vs the Figure 6
    // tree reduction (the paper's future-work extension).
    let mut g = c.benchmark_group("ablation_merge_strategy");
    g.sample_size(10);
    let seq = ClipOptions::sequential();
    let (a, b) = synthetic_pair(40_000, 42);
    for (name, strategy) in [
        ("sequential", MergeStrategy::Sequential),
        ("tree", MergeStrategy::Tree),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| clip_pair_slabs_with(&a, &b, BoolOp::Union, 16, &seq, strategy))
        });
    }
    g.finish();
}

fn bench_intersection_discovery(c: &mut Criterion) {
    // Lemma 4's inversion-based discovery vs the classical Bentley–Ottmann
    // sweep (paper §II's reference line-intersection approach).
    use polyclip::sweep::{
        bentley_ottmann, collect_edges, discover_intersections, event_ys, BeamSet, ForcedSplits,
        PartitionBackend as PB,
    };
    let mut g = c.benchmark_group("ablation_intersection_discovery");
    g.sample_size(10);
    for n in [2_000usize, 8_000] {
        let (a, b) = synthetic_pair(n, 42);
        let edges = collect_edges(&a, &b);
        g.bench_with_input(BenchmarkId::new("inversions", n), &n, |bch, _| {
            bch.iter(|| {
                let ys = event_ys(&edges, &[], false);
                let beams = BeamSet::build(
                    &edges,
                    ys,
                    &ForcedSplits::empty(edges.len()),
                    PB::DirectScan,
                    false,
                );
                discover_intersections(&beams, &edges, false)
            })
        });
        g.bench_with_input(BenchmarkId::new("bentley_ottmann", n), &n, |bch, _| {
            bch.iter(|| bentley_ottmann(&edges))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_partition_backend,
    bench_slab_assignment,
    bench_algo2_partition_backend,
    bench_output_sensitivity,
    bench_merge_strategy,
    bench_intersection_discovery
);
criterion_main!(benches);
