//! Machine-readable sweep-refinement benchmark: incremental dirty-beam
//! refinement and scratch-arena reuse versus full scanbeam rebuilds, on a
//! smooth blob pair (p ∈ {1, 8} slabs) and the degeneracy torture corpus
//! (where refinement runs multiple rounds).
//!
//! ```sh
//! cargo run --release -p polyclip-bench --bin bench_sweep            # full run
//! cargo run --release -p polyclip-bench --bin bench_sweep -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_sweep.json` (override with `--out <path>`), then re-reads
//! and validates the file so a truncated artifact fails loudly. Every
//! incremental run is checked bit-identical against its full-rebuild twin
//! before its timings are recorded — a faster wrong answer aborts the
//! bench. The headline numbers are `clip_total_ms` (incremental vs full)
//! and `beams_rebuilt` against `n_beams` (how much of the structure each
//! refinement round actually touched).

use polyclip::datagen::{synthetic_pair, torture_corpus};
use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_bench::{exit_after_artifact, time_best, write_artifact, BenchArgs};
use std::process::ExitCode;

const SLAB_COUNTS: [usize; 2] = [1, 8];

fn opts_with(incremental: bool) -> ClipOptions {
    ClipOptions {
        incremental_refine: incremental,
        ..ClipOptions::sequential()
    }
}

/// One measured configuration: best-of-`reps` wall clock, with the
/// incremental run verified bit-identical to the full-rebuild run.
fn run_pair(
    a: &PolygonSet,
    b: &PolygonSet,
    p: usize,
    reps: usize,
) -> (
    Algo2Result,
    std::time::Duration,
    Algo2Result,
    std::time::Duration,
) {
    let (inc, inc_wall) = time_best(reps, || {
        clip_pair_slabs(a, b, BoolOp::Union, p, &opts_with(true))
    });
    let (full, full_wall) = time_best(reps, || {
        clip_pair_slabs(a, b, BoolOp::Union, p, &opts_with(false))
    });
    assert_eq!(
        inc.output, full.output,
        "incremental refinement changed the output (p = {p})"
    );
    (inc, inc_wall, full, full_wall)
}

fn record(
    runs: &mut Vec<Value>,
    workload: &str,
    p: usize,
    inc: &Algo2Result,
    inc_wall: std::time::Duration,
    full: &Algo2Result,
    full_wall: std::time::Duration,
) {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let rounds = inc.stats.refine_rounds.max(1);
    println!(
        "{workload:>28}  p={p}  rounds={rounds}  inc_rounds={}  \
         beams_rebuilt={}/{}  arena_reused={}B  \
         clip_total inc={:>8.3}ms full={:>8.3}ms  wall inc={:>8.3}ms full={:>8.3}ms",
        inc.stats.refine_rounds_incremental,
        inc.stats.beams_rebuilt,
        inc.stats.n_beams,
        inc.times.arena_reused_bytes,
        ms(inc.times.clip_total()),
        ms(full.times.clip_total()),
        ms(inc_wall),
        ms(full_wall),
    );
    runs.push(Value::obj(vec![
        ("workload", Value::Str(workload.into())),
        ("p", Value::Num(p as f64)),
        ("refine_rounds", Value::Num(inc.stats.refine_rounds as f64)),
        (
            "refine_rounds_incremental",
            Value::Num(inc.stats.refine_rounds_incremental as f64),
        ),
        ("beams_rebuilt", Value::Num(inc.stats.beams_rebuilt as f64)),
        ("n_beams", Value::Num(inc.stats.n_beams as f64)),
        (
            "arena_hwm_bytes",
            Value::Num(inc.times.arena_hwm_bytes as f64),
        ),
        (
            "arena_reused_bytes",
            Value::Num(inc.times.arena_reused_bytes as f64),
        ),
        (
            "clip_total_incremental_ms",
            Value::Num(ms(inc.times.clip_total())),
        ),
        (
            "clip_total_full_ms",
            Value::Num(ms(full.times.clip_total())),
        ),
        ("wall_incremental_ms", Value::Num(ms(inc_wall))),
        ("wall_full_ms", Value::Num(ms(full_wall))),
        (
            "wall_per_round_ms",
            Value::Num(ms(inc_wall) / rounds as f64),
        ),
        ("out_contours", Value::Num(inc.output.len() as f64)),
    ]));
}

fn main() -> ExitCode {
    let BenchArgs {
        out_path, n, reps, ..
    } = BenchArgs::parse("BENCH_sweep.json");

    let mut runs: Vec<Value> = Vec::new();

    // Workload 1: the smooth blob pair. Refinement converges in one round
    // here, so the incremental-vs-full delta isolates what the scratch
    // arenas and the bucketed per-beam ordering save on a big clean input.
    let (blob_a, blob_b) = synthetic_pair(n, 42);
    println!(
        "-- blob_pair: {} + {} vertices",
        blob_a.vertex_count(),
        blob_b.vertex_count()
    );
    for &p in &SLAB_COUNTS {
        let (inc, iw, full, fw) = run_pair(&blob_a, &blob_b, p, reps);
        record(&mut runs, "blob_pair", p, &inc, iw, &full, fw);
    }

    // Workload 2: the degeneracy torture corpus, where residual crossings
    // drive the refinement loop through several rounds — the regime the
    // dirty-beam patch exists for. Single slab: the corpus cases are small,
    // and the point is the per-round refinement cost, not slab scaling.
    println!("-- torture_corpus");
    for case in torture_corpus(99) {
        let (inc, iw, full, fw) = run_pair(&case.subject, &case.clip, 1, reps);
        record(&mut runs, case.name, 1, &inc, iw, &full, fw);
    }

    let doc = Value::obj(vec![
        ("bench", Value::Str("sweep_refinement".into())),
        (
            "workloads",
            Value::Arr(vec![
                Value::obj(vec![
                    ("name", Value::Str("blob_pair".into())),
                    ("generator", Value::Str("synthetic_pair".into())),
                    ("n_vertices", Value::Num(n as f64)),
                    ("seed", Value::Num(42.0)),
                ]),
                Value::obj(vec![
                    ("name", Value::Str("torture_corpus".into())),
                    ("generator", Value::Str("torture_corpus".into())),
                    ("seed", Value::Num(99.0)),
                ]),
            ]),
        ),
        ("op", Value::Str("union".into())),
        ("reps", Value::Num(reps as f64)),
        ("slab_counts", {
            Value::Arr(SLAB_COUNTS.iter().map(|&p| Value::Num(p as f64)).collect())
        }),
        ("runs", Value::Arr(runs)),
    ]);

    exit_after_artifact(write_artifact(&out_path, &doc))
}
