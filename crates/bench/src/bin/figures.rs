//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p polyclip-bench --bin figures -- all --scale 0.02
//! cargo run --release -p polyclip-bench --bin figures -- fig8 fig12
//! ```
//!
//! Each experiment prints an aligned table and writes `results/<id>.csv`.
//! Parallel scaling is reported twice: `measured` wall time on this host and
//! the `critical-path` projection (slowest slab + sequential merge), which
//! is what a machine with ≥ p cores realizes — see EXPERIMENTS.md for the
//! substitution rationale (the paper used a 64-core Opteron).

use polyclip::datagen::{synthetic_pair, table3_spec};
use polyclip::parprim::inversions::report_inversion_values;
use polyclip::prelude::*;
use polyclip::seqclip::{gh_clip, GhOp};
use polyclip::sweep::{collect_edges, event_ys, BeamSet, ForcedSplits, PartitionBackend, Source};
use polyclip_bench::*;
use std::path::PathBuf;
use std::time::Duration;

struct Config {
    scale: f64,
    out: PathBuf,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut cfg = Config {
        scale: 0.02,
        out: PathBuf::from("results"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--scale <f64>");
            }
            "--out" => {
                cfg.out = PathBuf::from(it.next().expect("--out <dir>"));
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "pram",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for w in &wanted {
        println!("\n================ {w} ================\n");
        let tables = match w.as_str() {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(&cfg),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(&cfg),
            "fig10" => fig10(&cfg),
            "fig11" => fig11(&cfg),
            "fig12" => fig12(&cfg),
            "pram" => pram_table(),
            other => {
                eprintln!("unknown experiment `{other}`");
                continue;
            }
        };
        for t in tables {
            println!("{}", t.render());
            if let Err(e) = t.write_csv(&cfg.out) {
                eprintln!("csv write failed: {e}");
            }
        }
    }
}

/// Table I: inversion pairs reported while merging {5,6,7,9} and {1,2,3,4}.
fn table1() -> Vec<ResultTable> {
    let xs = [5u32, 6, 7, 9, 1, 2, 3, 4];
    let mut pairs = report_inversion_values(&xs);
    pairs.sort_unstable();
    let mut t = ResultTable::new("table1_inversions", &["input", "inversions", "pairs"]);
    t.push_row(vec![
        format!("{xs:?}"),
        pairs.len().to_string(),
        pairs
            .iter()
            .map(|(a, b)| format!("({a},{b})"))
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    t.push_row(vec![
        "paper".into(),
        "16".into(),
        "all left×right pairs (Table I)".into(),
    ]);
    vec![t]
}

/// Table II: the scanbeam table (active edges per beam) for a Figure-2
/// style scene with a self-intersecting subject.
fn table2() -> Vec<ResultTable> {
    let subject = PolygonSet::from_xy(&[(0.0, 0.5), (6.0, 3.5), (6.0, 0.5), (0.0, 3.5)]);
    let clip_p = PolygonSet::from_xy(&[
        (1.0, 0.0),
        (5.0, 0.25),
        (5.0, 1.5),
        (3.2, 2.1),
        (5.0, 2.5),
        (5.0, 4.0),
        (1.0, 4.25),
    ]);
    let edges = collect_edges(&subject, &clip_p);
    let ys = event_ys(&edges, &[], false);
    let beams = BeamSet::build(
        &edges,
        ys,
        &ForcedSplits::empty(edges.len()),
        PartitionBackend::DirectScan,
        false,
    );
    let mut t = ResultTable::new(
        "table2_scanbeams",
        &["beam", "y_range", "edges (s=subject, c=clip; L/R label)"],
    );
    for b in 0..beams.n_beams() {
        let list: Vec<String> = beams
            .beam(b)
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let src = match s.src {
                    Source::Subject => "s",
                    Source::Clip => "c",
                };
                // Lemma 1: position parity within the beam gives the label.
                let label = if i % 2 == 0 { "L" } else { "R" };
                format!("{src}{}{label}", s.edge_id)
            })
            .collect();
        t.push_row(vec![
            b.to_string(),
            format!("{:.2}..{:.2}", beams.y_bot(b), beams.y_top(b)),
            list.join(" "),
        ]);
    }
    let (out, stats) = clip_with_stats(
        &subject,
        &clip_p,
        BoolOp::Intersection,
        &ClipOptions::sequential(),
    );
    let mut s = ResultTable::new(
        "table2_summary",
        &[
            "beams",
            "k",
            "k_prime",
            "out_contours",
            "out_vertices",
            "area",
        ],
    );
    s.push_row(vec![
        stats.n_beams.to_string(),
        stats.k_intersections.to_string(),
        stats.k_prime.to_string(),
        out.len().to_string(),
        out.vertex_count().to_string(),
        format!("{:.6}", eo_area(&out)),
    ]);
    vec![t, s]
}

/// Table III: the dataset replicas at the configured scale.
fn table3(cfg: &Config) -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "table3_datasets",
        &[
            "id",
            "dataset",
            "paper_polys",
            "paper_edges",
            "scale",
            "gen_polys",
            "gen_edges",
            "gen_time_ms",
        ],
    );
    for id in 1..=4 {
        let spec = table3_spec(id);
        let (l, d) = time(|| layer(id, cfg.scale, id as u64 * 1000 + 7));
        t.push_row(vec![
            id.to_string(),
            spec.name.into(),
            spec.polys.to_string(),
            spec.edges.to_string(),
            format!("{}", cfg.scale),
            l.len().to_string(),
            l.edge_count().to_string(),
            ms(d),
        ]);
    }
    vec![t]
}

/// Figure 7: sequential clipping time vs polygon size (superlinear growth —
/// the reason partitioning into smaller subproblems pays off).
fn fig7() -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "fig7_seq_scaling",
        &[
            "n_edges",
            "intersect_ms",
            "union_ms",
            "us_per_edge",
            "k",
            "k_prime",
        ],
    );
    let seq = ClipOptions::sequential();
    for n in [
        1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000,
    ] {
        let (a, b) = synthetic_pair(n, 42);
        let ((_, stats), ti) = time_best(2, || clip_with_stats(&a, &b, BoolOp::Intersection, &seq));
        let (_, tu) = time_best(2, || clip(&a, &b, BoolOp::Union, &seq));
        t.push_row(vec![
            n.to_string(),
            ms(ti),
            ms(tu),
            format!("{:.3}", ti.as_secs_f64() * 1e6 / n as f64),
            stats.k_intersections.to_string(),
            stats.k_prime.to_string(),
        ]);
    }
    vec![t]
}

/// Figure 8: Algorithm 2 speedup vs thread (slab) count for synthetic pairs
/// of increasing size.
fn fig8() -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "fig8_pair_speedup",
        &[
            "n_edges",
            "slabs",
            "measured_ms",
            "critical_ms",
            "proj_speedup",
            "imbalance",
        ],
    );
    let seq = ClipOptions::sequential();
    for n in [10_000usize, 40_000, 160_000] {
        let (a, b) = synthetic_pair(n, 42);
        let (_, t_seq) = time_best(2, || clip(&a, &b, BoolOp::Intersection, &seq));
        for &slabs in SLAB_SWEEP {
            let (r, measured) = time(|| clip_pair_slabs(&a, &b, BoolOp::Intersection, slabs, &seq));
            let crit = critical_path(&r.times);
            t.push_row(vec![
                n.to_string(),
                r.slabs.to_string(),
                ms(measured),
                ms(crit),
                format!("{:.2}", t_seq.as_secs_f64() / crit.as_secs_f64().max(1e-9)),
                format!("{:.2}", r.times.load_imbalance()),
            ]);
        }
    }
    vec![t]
}

/// Figure 9: partition / clip / merge phase breakdown vs slab count for two
/// dataset pairs (I = 1∪2, II = 3∪4).
fn fig9(cfg: &Config) -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "fig9_phases",
        &[
            "pair",
            "slabs",
            "index_ms",
            "partition_avg_ms",
            "partition_total_ms",
            "clip_avg_ms",
            "clip_max_ms",
            "clip_total_ms",
            "merge_ms",
        ],
    );
    let opts = ClipOptions::sequential();
    for (label, ia, ib) in [("I(1-2)", 1usize, 2usize), ("II(3-4)", 3, 4)] {
        let a = layer(ia, cfg.scale, ia as u64 * 1000 + 7);
        let b = layer(ib, cfg.scale, ib as u64 * 1000 + 7);
        for &slabs in SLAB_SWEEP {
            let r = overlay_union(&a, &b, slabs, &opts);
            let clip_max = r
                .times
                .per_slab_clip
                .iter()
                .copied()
                .max()
                .unwrap_or(Duration::ZERO);
            t.push_row(vec![
                label.into(),
                r.slabs.to_string(),
                ms(r.times.index),
                ms(r.times.partition_avg()),
                ms(r.times.partition_total()),
                ms(r.times.clip_avg()),
                ms(clip_max),
                ms(r.times.clip_total()),
                ms(r.times.merge),
            ]);
        }
    }
    vec![t]
}

/// Figure 10: self-relative speedup of layer intersection and union vs
/// slab count, datasets (1,2) and (3,4).
fn fig10(cfg: &Config) -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "fig10_layer_scaling",
        &["op", "slabs", "measured_ms", "critical_ms", "self_speedup"],
    );
    let opts = ClipOptions::sequential();
    for (ia, ib) in [(1usize, 2usize), (3, 4)] {
        let a = layer(ia, cfg.scale, ia as u64 * 1000 + 7);
        let b = layer(ib, cfg.scale, ib as u64 * 1000 + 7);

        // Intersection.
        let mut base = Duration::ZERO;
        for &slabs in SLAB_SWEEP {
            let (r, measured) =
                time(|| overlay_intersection(&a, &b, slabs, SlabAssignment::UniqueOwner, &opts));
            let crit = overlay_critical_path(&r);
            if slabs == 1 {
                base = crit;
            }
            t.push_row(vec![
                format!("Intersect({ia}-{ib})"),
                slabs.to_string(),
                ms(measured),
                ms(crit),
                format!("{:.2}", base.as_secs_f64() / crit.as_secs_f64().max(1e-9)),
            ]);
        }

        // Union.
        let mut base = Duration::ZERO;
        for &slabs in SLAB_SWEEP {
            let (r, measured) = time(|| overlay_union(&a, &b, slabs, &opts));
            let crit = critical_path(&r.times);
            if slabs == 1 {
                base = crit;
            }
            t.push_row(vec![
                format!("Union({ia}-{ib})"),
                r.slabs.to_string(),
                ms(measured),
                ms(crit),
                format!("{:.2}", base.as_secs_f64() / crit.as_secs_f64().max(1e-9)),
            ]);
        }
    }
    vec![t]
}

/// Figure 11: per-slab clip-time load profile of Intersect(1,2).
fn fig11(cfg: &Config) -> Vec<ResultTable> {
    let a = layer(1, cfg.scale, 1007);
    let b = layer(2, cfg.scale, 2007);
    let opts = ClipOptions::sequential();
    let r = overlay_intersection(&a, &b, 16, SlabAssignment::UniqueOwner, &opts);
    let mut t = ResultTable::new("fig11_load_profile", &["slab", "clip_ms"]);
    let labels: Vec<String> = (0..r.per_slab_clip.len()).map(|i| i.to_string()).collect();
    let values: Vec<f64> = r
        .per_slab_clip
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    for (l, v) in labels.iter().zip(&values) {
        t.push_row(vec![l.clone(), format!("{v:.3}")]);
    }
    println!("{}", ascii_bars(&labels, &values, 50));
    println!("load imbalance (max/mean): {:.2}\n", r.load_imbalance());
    vec![t]
}

/// Figure 12: absolute speedup over the best sequential baseline
/// (sequential scanbeam engine = our GPC/ArcGIS substitute; pairwise
/// Greiner–Hormann as a second reference).
fn fig12(cfg: &Config) -> Vec<ResultTable> {
    let mut t = ResultTable::new(
        "fig12_absolute_speedup",
        &[
            "op",
            "seq_engine_ms",
            "gh_pairwise_ms",
            "best_parallel_critical_ms",
            "abs_speedup",
            "slabs",
        ],
    );
    let opts = ClipOptions::sequential();
    let jobs: [(&str, usize, usize, bool); 3] = [
        ("Intersect(3-4)", 3, 4, true),
        ("Union(3-4)", 3, 4, false),
        ("Intersect(1-2)", 1, 2, true),
    ];
    for (label, ia, ib, is_intersect) in jobs {
        let a = layer(ia, cfg.scale, ia as u64 * 1000 + 7);
        let b = layer(ib, cfg.scale, ib as u64 * 1000 + 7);

        // Sequential baselines.
        let (gh_ms, seq_ms) = if is_intersect {
            let (_, t_seq) =
                time(|| overlay_intersection(&a, &b, 1, SlabAssignment::UniqueOwner, &opts));
            let (_, t_gh) = time(|| gh_pairwise_intersection(&a, &b));
            (ms(t_gh), t_seq)
        } else {
            let (_, t_seq) = time(|| overlay_union(&a, &b, 1, &opts));
            ("-".to_string(), t_seq)
        };

        // Best parallel configuration by critical path.
        let mut best = Duration::MAX;
        let mut best_slabs = 1;
        for &slabs in SLAB_SWEEP {
            let crit = if is_intersect {
                let r = overlay_intersection(&a, &b, slabs, SlabAssignment::UniqueOwner, &opts);
                overlay_critical_path(&r)
            } else {
                let r = overlay_union(&a, &b, slabs, &opts);
                critical_path(&r.times)
            };
            if crit < best {
                best = crit;
                best_slabs = slabs;
            }
        }
        t.push_row(vec![
            label.into(),
            ms(seq_ms),
            gh_ms,
            ms(best),
            format!("{:.2}", seq_ms.as_secs_f64() / best.as_secs_f64().max(1e-9)),
            best_slabs.to_string(),
        ]);
    }
    vec![t]
}

/// PRAM theory table (§III): work, span and Brent-simulated speedups of the
/// engine's phases, demonstrating the O((n+k+k')·log/p) claim empirically.
fn pram_table() -> Vec<ResultTable> {
    use polyclip::core::pram_cost;
    let mut t = ResultTable::new(
        "pram_theory",
        &[
            "n_edges",
            "k",
            "k_prime",
            "work",
            "span",
            "T_1",
            "T_64",
            "T_inf",
            "speedup_64",
            "speedup_paper_p",
        ],
    );
    for n in [1_000usize, 4_000, 16_000, 64_000] {
        let (a, b) = synthetic_pair(n, 42);
        let m = pram_cost(&a, &b, BoolOp::Intersection, &ClipOptions::sequential());
        let pp = m.paper_processors();
        t.push_row(vec![
            m.stats.n_edges.to_string(),
            m.stats.k_intersections.to_string(),
            m.stats.k_prime.to_string(),
            format!("{:.3e}", m.total_work()),
            format!("{:.1}", m.total_span()),
            format!("{:.3e}", m.time_on(1)),
            format!("{:.3e}", m.time_on(64)),
            format!("{:.1}", m.total_span()),
            format!("{:.1}", m.speedup(64)),
            format!("{:.1}", m.speedup(pp)),
        ]);
    }
    // Per-phase breakdown of the largest instance.
    let (a, b) = synthetic_pair(64_000, 42);
    let m = pram_cost(&a, &b, BoolOp::Intersection, &ClipOptions::sequential());
    let mut ph = ResultTable::new("pram_phases", &["phase", "work", "span"]);
    for p in &m.phases {
        ph.push_row(vec![
            p.name.into(),
            format!("{:.3e}", p.work),
            format!("{:.1}", p.span),
        ]);
    }
    vec![t, ph]
}

/// Pairwise Greiner–Hormann layer intersection (single-contour features
/// only — exactly what the replica layers contain).
fn gh_pairwise_intersection(a: &Layer, b: &Layer) -> usize {
    let boxes_a: Vec<_> = a.features.iter().map(|f| f.bbox()).collect();
    let boxes_b: Vec<_> = b.features.iter().map(|f| f.bbox()).collect();
    let mut produced = 0usize;
    for (i, fa) in a.features.iter().enumerate() {
        for (j, fb) in b.features.iter().enumerate() {
            if !boxes_a[i].intersects(&boxes_b[j]) {
                continue;
            }
            let out = gh_clip(&fa.contours()[0], &fb.contours()[0], GhOp::Intersection);
            produced += out.len();
        }
    }
    produced
}
