//! Machine-readable Algorithm-2 phase benchmark: partition / clip / merge
//! wall-clock at p ∈ {1, 2, 4, 8} slabs on a fixed datagen workload, for
//! both partition backends.
//!
//! ```sh
//! cargo run --release -p polyclip-bench --bin bench_algo2            # full run
//! cargo run --release -p polyclip-bench --bin bench_algo2 -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_algo2.json` (override with `--out <path>`), then re-reads
//! and validates the file so a truncated artifact fails loudly. The headline
//! comparison is the partition phase (shared index build + per-slab
//! partitioning) at p = 8: `slab_index` must not scan the full inputs once
//! per slab, so its partition total shrinks relative to `full_scan` as p
//! grows.

use polyclip::core::algo2::PartitionBackend;
use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_bench::{
    critical_path, exit_after_artifact, flatten_layer, time_best, write_artifact, BenchArgs,
};
use std::process::ExitCode;

const SLAB_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() -> ExitCode {
    let BenchArgs {
        out_path,
        n,
        scale,
        reps,
        ..
    } = BenchArgs::parse("BENCH_algo2.json");

    // Two workloads: a two-giant-contours pair (every contour overlaps every
    // slab — worst case for binning, best case for the scratch-buffer reuse)
    // and a flattened GIS layer pair (thousands of small contours, each
    // overlapping few slabs — where the O(n + Σ overlaps) partition wins).
    let blob = synthetic_pair(n, 42);
    let gis = (flatten_layer(1, scale, 1007), flatten_layer(2, scale, 2007));
    let workloads: [(&str, &PolygonSet, &PolygonSet); 2] = [
        ("blob_pair", &blob.0, &blob.1),
        ("gis_multi", &gis.0, &gis.1),
    ];

    let opts = ClipOptions::sequential();
    // Armed-but-unbounded budget: the gate, meter and every checkpoint run,
    // but nothing can trip. `budget_overhead` = armed wall / unarmed wall;
    // the bounded-execution contract (DESIGN.md §4.8) keeps it under 1% on
    // gis_multi at p = 8.
    let budgeted_opts = ClipOptions {
        budget: ExecBudget {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_intersections: Some(u64::MAX / 2),
            max_output_vertices: Some(u64::MAX / 2),
            allow_partial: true,
            ..Default::default()
        },
        ..opts.clone()
    };
    let msf = |d: std::time::Duration| Value::Num(d.as_secs_f64() * 1e3);

    let mut runs: Vec<Value> = Vec::new();
    for (workload_name, a, b) in workloads {
        println!(
            "-- {workload_name}: {} + {} contours, {} + {} vertices",
            a.len(),
            b.len(),
            a.vertex_count(),
            b.vertex_count()
        );
        for (backend_name, backend) in [
            ("full_scan", PartitionBackend::FullScan),
            ("slab_index", PartitionBackend::SlabIndex),
        ] {
            for &p in &SLAB_COUNTS {
                let (r, wall) = time_best(reps, || {
                    clip_pair_slabs_backend(
                        a,
                        b,
                        BoolOp::Union,
                        p,
                        &opts,
                        MergeStrategy::Sequential,
                        backend,
                    )
                });
                let (_, budgeted_wall) = time_best(reps, || {
                    clip_pair_slabs_backend(
                        a,
                        b,
                        BoolOp::Union,
                        p,
                        &budgeted_opts,
                        MergeStrategy::Sequential,
                        backend,
                    )
                });
                let budget_overhead = budgeted_wall.as_secs_f64() / wall.as_secs_f64().max(1e-12);
                println!(
                    "{backend_name:>10}  p={p}  slabs={}  sanitize={:>7.3}ms  \
                     partition={:>9.3}ms  clip={:>9.3}ms  merge={:>7.3}ms  wall={:>9.3}ms  \
                     budget_overhead={budget_overhead:>6.4}",
                    r.slabs,
                    r.times.sanitize.as_secs_f64() * 1e3,
                    r.times.partition_total().as_secs_f64() * 1e3,
                    r.times.clip_total().as_secs_f64() * 1e3,
                    r.times.merge.as_secs_f64() * 1e3,
                    wall.as_secs_f64() * 1e3,
                );
                runs.push(Value::obj(vec![
                    ("workload", Value::Str(workload_name.into())),
                    ("backend", Value::Str(backend_name.into())),
                    ("p", Value::Num(p as f64)),
                    ("slabs", Value::Num(r.slabs as f64)),
                    ("sanitize_ms", msf(r.times.sanitize)),
                    ("index_ms", msf(r.times.index)),
                    ("partition_total_ms", msf(r.times.partition_total())),
                    ("clip_total_ms", msf(r.times.clip_total())),
                    ("merge_ms", msf(r.times.merge)),
                    ("critical_path_ms", msf(critical_path(&r.times))),
                    ("wall_ms", msf(wall)),
                    ("load_imbalance", Value::Num(r.times.load_imbalance())),
                    ("budget_overhead", Value::Num(budget_overhead)),
                    ("out_contours", Value::Num(r.output.len() as f64)),
                ]));
            }
        }
    }

    let doc = Value::obj(vec![
        ("bench", Value::Str("algo2_phases".into())),
        (
            "workloads",
            Value::Arr(vec![
                Value::obj(vec![
                    ("name", Value::Str("blob_pair".into())),
                    ("generator", Value::Str("synthetic_pair".into())),
                    ("n_vertices", Value::Num(n as f64)),
                    ("seed", Value::Num(42.0)),
                ]),
                Value::obj(vec![
                    ("name", Value::Str("gis_multi".into())),
                    (
                        "generator",
                        Value::Str("table3 layers 1+2, flattened".into()),
                    ),
                    ("scale", Value::Num(scale)),
                ]),
            ]),
        ),
        ("op", Value::Str("union".into())),
        ("reps", Value::Num(reps as f64)),
        ("slab_counts", {
            Value::Arr(SLAB_COUNTS.iter().map(|&p| Value::Num(p as f64)).collect())
        }),
        ("runs", Value::Arr(runs)),
    ]);

    exit_after_artifact(write_artifact(&out_path, &doc))
}
