//! Machine-readable prepared-layer benchmark: cold `clip_pair_slabs` versus
//! [`PreparedLayer`] + `clip_prepared` on the same subject, for the
//! compile-once / clip-many service workload — a big base layer queried by
//! small clip polygons, p ∈ {1, 2, 4, 8} slabs.
//!
//! ```sh
//! cargo run --release -p polyclip-bench --bin bench_prepared            # full run
//! cargo run --release -p polyclip-bench --bin bench_prepared -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_prepared.json` (override with `--out <path>`), then
//! re-reads and validates the file so a truncated artifact fails loudly.
//! Every prepared run is asserted **bit-identical** to its cold twin before
//! any timing is recorded — a faster wrong answer aborts the bench. The
//! headline number is `speedup` (cold wall / prepared wall) on the
//! `gis_multi` point-ish queries at p = 8, where the prepared path skips
//! subject sanitization, the event-schedule sort, subject binning, *and*
//! every slab the query provably cannot reach; the roadmap target is ≥ 10×.
//! `amortize_after_clips` reports how many prepared clips pay off the
//! one-time build.

use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_bench::{exit_after_artifact, flatten_layer, time_best, write_artifact, BenchArgs};
use std::process::ExitCode;

const SLAB_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One benchmark subject plus its named query set.
type Workload<'a> = (&'a str, &'a PolygonSet, Vec<(&'a str, PolygonSet)>);

/// An axis-aligned square query covering `frac` of the subject's bbox span
/// in each axis — "point-ish" for small `frac` — centered horizontally and
/// placed at fraction `fy` of the bbox height. The benchmark queries sit at
/// `fy = 0.25` rather than dead center: equal-event-count slab boundaries
/// put a boundary at the event median, so a bbox-centered query probes the
/// densest band — representative service queries land in an ordinary one.
fn query_at(subject: &PolygonSet, fy: f64, frac: f64) -> PolygonSet {
    let bb = subject.bbox();
    let (cx, cy) = (
        (bb.xmin + bb.xmax) / 2.0,
        bb.ymin + (bb.ymax - bb.ymin) * fy,
    );
    let (hx, hy) = (
        (bb.xmax - bb.xmin) * frac / 2.0,
        (bb.ymax - bb.ymin) * frac / 2.0,
    );
    PolygonSet::from_xy(&[
        (cx - hx, cy - hy),
        (cx + hx, cy - hy),
        (cx + hx, cy + hy),
        (cx - hx, cy + hy),
    ])
}

fn main() -> ExitCode {
    let BenchArgs {
        out_path,
        n,
        scale,
        reps,
        ..
    } = BenchArgs::parse("BENCH_prepared.json");

    let opts = ClipOptions::sequential();

    // Two subjects: the flattened GIS layer (hundreds of small contours —
    // the base-map regime PreparedLayer targets) and one giant smooth blob
    // (slab skipping can't help much; what remains is the frozen schedule
    // and the warm arenas). The GIS layer runs at half the shared Table III
    // scale: the per-request regime the prepared layer exists for is a
    // mid-sized base map clipped constantly, where a cold clip's fixed
    // subject-side costs — exactly what PreparedLayer amortizes away — are
    // a large share of the wall clock. Queries: two point-ish boxes plus,
    // for the blob, its natural partner blob — an honest full-overlap clip.
    let gis = flatten_layer(1, scale / 2.0, 1007);
    let (blob_a, blob_b) = synthetic_pair(n, 42);
    let workloads: [Workload; 2] = [
        (
            "gis_multi",
            &gis,
            vec![
                ("point", query_at(&gis, 0.25, 0.005)),
                ("cell", query_at(&gis, 0.25, 0.05)),
            ],
        ),
        (
            "blob_pair",
            &blob_a,
            vec![
                ("point", query_at(&blob_a, 0.25, 0.005)),
                ("blob", blob_b.clone()),
            ],
        ),
    ];

    let mut runs: Vec<Value> = Vec::new();
    let mut workload_docs: Vec<Value> = Vec::new();
    for (workload, subject, queries) in &workloads {
        println!(
            "-- {workload}: {} contours, {} vertices",
            subject.len(),
            subject.vertex_count()
        );
        // Build once per workload; every (query, p) below reuses the layer.
        let (layer, build_wall) = time_best(reps, || PreparedLayer::build(subject, &opts).unwrap());
        let build_ms = build_wall.as_secs_f64() * 1e3;
        println!(
            "   prepared build: {build_ms:.3}ms, {} events, {} repairs",
            layer.event_count(),
            layer.repairs()
        );
        workload_docs.push(Value::obj(vec![
            ("name", Value::Str((*workload).into())),
            ("contours", Value::Num(subject.len() as f64)),
            ("vertices", Value::Num(subject.vertex_count() as f64)),
            ("prepare_build_ms", Value::Num(build_ms)),
        ]));

        for (query_name, q) in queries {
            for &p in &SLAB_COUNTS {
                let (cold, cold_wall) = time_best(reps, || {
                    clip_pair_slabs(subject, q, BoolOp::Intersection, p, &opts)
                });
                let (warm, warm_wall) = time_best(reps, || {
                    clip_prepared(&layer, q, BoolOp::Intersection, p, &opts)
                });
                // The contract the whole feature rests on: a prepared clip
                // is the cold clip, minus redundant work.
                assert_eq!(
                    warm.output, cold.output,
                    "prepared output diverged from cold path \
                     ({workload}/{query_name}, p = {p})"
                );
                assert!(warm.times.prepared_reused && !cold.times.prepared_reused);
                let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-12);
                let saved = cold_wall.as_secs_f64() - warm_wall.as_secs_f64();
                let amortize = if saved > 0.0 {
                    (build_wall.as_secs_f64() / saved).ceil()
                } else {
                    f64::INFINITY // emitted as null: this config never pays off
                };
                println!(
                    "   {query_name:>6}  p={p}  cold={:>9.3}ms  prepared={:>9.3}ms  \
                     speedup={speedup:>7.2}x  amortize_after={amortize:>4} clips",
                    cold_wall.as_secs_f64() * 1e3,
                    warm_wall.as_secs_f64() * 1e3,
                );
                runs.push(Value::obj(vec![
                    ("workload", Value::Str((*workload).into())),
                    ("query", Value::Str((*query_name).into())),
                    ("p", Value::Num(p as f64)),
                    ("slabs", Value::Num(warm.slabs as f64)),
                    ("cold_wall_ms", Value::Num(cold_wall.as_secs_f64() * 1e3)),
                    (
                        "prepared_wall_ms",
                        Value::Num(warm_wall.as_secs_f64() * 1e3),
                    ),
                    ("speedup", Value::Num(speedup)),
                    ("prepare_build_ms", Value::Num(build_ms)),
                    ("amortize_after_clips", Value::Num(amortize)),
                    (
                        "arena_hwm_bytes",
                        Value::Num(warm.times.arena_hwm_bytes as f64),
                    ),
                    (
                        "arena_reused_bytes",
                        Value::Num(warm.times.arena_reused_bytes as f64),
                    ),
                    ("out_contours", Value::Num(warm.output.len() as f64)),
                    ("bit_identical", Value::Bool(true)),
                ]));
            }
        }
    }

    let doc = Value::obj(vec![
        ("bench", Value::Str("prepared_layer".into())),
        ("workloads", Value::Arr(workload_docs)),
        ("op", Value::Str("intersection".into())),
        ("reps", Value::Num(reps as f64)),
        ("slab_counts", {
            Value::Arr(SLAB_COUNTS.iter().map(|&p| Value::Num(p as f64)).collect())
        }),
        ("runs", Value::Arr(runs)),
    ]);
    exit_after_artifact(write_artifact(&out_path, &doc))
}
