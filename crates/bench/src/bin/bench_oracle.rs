//! Machine-readable differential-oracle benchmark: what the independent
//! Foster–Overfelt reference costs relative to the production engine, and
//! what the band-integration comparator adds on top — the price of a
//! differential verification pass.
//!
//! ```sh
//! cargo run --release -p polyclip-bench --bin bench_oracle            # full run
//! cargo run --release -p polyclip-bench --bin bench_oracle -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_oracle.json` (override with `--out <path>`), then
//! re-reads and validates the file so a truncated artifact fails loudly.
//! Every timed pair is also *checked*: the two implementations must agree
//! below [`ORACLE_REL_TOL`] before any number is recorded — a fast
//! disagreeing oracle aborts the bench. The oracle is a deliberately
//! simple O(S·C) reference, so bench sizes are fractions of the shared
//! `--n` and the `overhead` column is expected to grow with size; the
//! interesting outputs are the absolute per-case cost (what a fuzz
//! iteration or matrix cell spends) and the comparator share.

use polyclip::datagen::synthetic_pair;
use polyclip::prelude::*;
use polyclip_bench::json::Value;
use polyclip_bench::{exit_after_artifact, time_best, write_artifact, BenchArgs};
use std::process::ExitCode;

const OPS: [(BoolOp, &str); 4] = [
    (BoolOp::Intersection, "intersection"),
    (BoolOp::Union, "union"),
    (BoolOp::Difference, "difference"),
    (BoolOp::Xor, "xor"),
];

fn main() -> ExitCode {
    let BenchArgs {
        out_path, n, reps, ..
    } = BenchArgs::parse("BENCH_oracle.json");

    // The oracle does pairwise refinement, so a full --n pair would swamp
    // the run; n/80 .. n/20 spans the sizes the differential harness
    // actually feeds it (matrix corpora and fuzz cases are far smaller).
    let sizes: Vec<usize> = [n / 80, n / 40, n / 20]
        .iter()
        .map(|&s| s.max(16))
        .collect();
    let engine = ScanbeamOracle::new(PartitionBackend::SlabIndex, 4);
    let fo = FosterOverfeltOracle;

    let mut runs: Vec<Value> = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let (a, b) = synthetic_pair(size, 0x0c1e + i as u64);
        let (supported, screen_wall) = time_best(reps, || fo.supports(&a, &b));
        assert!(
            supported,
            "bench pair (size {size}) fell outside the oracle contract"
        );
        let screen_ms = screen_wall.as_secs_f64() * 1e3;
        println!(
            "-- size {size}: {} + {} vertices, contract screen {screen_ms:.3}ms",
            a.vertex_count(),
            b.vertex_count()
        );
        for (op, op_name) in OPS {
            let (eng_out, eng_wall) = time_best(reps, || engine.clip(&a, &b, op).unwrap());
            let (fo_out, fo_wall) = time_best(reps, || fo.clip(&a, &b, op).unwrap());
            let (diff, cmp_wall) = time_best(reps, || compare_outputs(&eng_out, &fo_out));
            // The bench must not time a broken oracle: agreement first.
            assert!(
                diff.within_tolerance(ORACLE_REL_TOL),
                "size {size} {op_name}: engine {:.12} vs oracle {:.12}, sym-diff {:.3e}",
                diff.area_a,
                diff.area_b,
                diff.sym_diff_area,
            );
            let (eng_ms, fo_ms, cmp_ms) = (
                eng_wall.as_secs_f64() * 1e3,
                fo_wall.as_secs_f64() * 1e3,
                cmp_wall.as_secs_f64() * 1e3,
            );
            let overhead = fo_ms / eng_ms.max(1e-9);
            println!(
                "   {op_name:>12}  engine={eng_ms:>8.3}ms  oracle={fo_ms:>8.3}ms  \
                 compare={cmp_ms:>8.3}ms  overhead={overhead:>6.2}x"
            );
            runs.push(Value::obj(vec![
                ("size", Value::Num(size as f64)),
                ("op", Value::Str(op_name.into())),
                ("engine_wall_ms", Value::Num(eng_ms)),
                ("oracle_wall_ms", Value::Num(fo_ms)),
                ("compare_wall_ms", Value::Num(cmp_ms)),
                ("screen_wall_ms", Value::Num(screen_ms)),
                ("overhead", Value::Num(overhead)),
                ("sym_diff_area", Value::Num(diff.sym_diff_area)),
                ("within_tolerance", Value::Bool(true)),
            ]));
        }
    }

    let doc = Value::obj(vec![
        ("bench", Value::Str("oracle".into())),
        ("engine", Value::Str("scanbeam-slabindex-p4".into())),
        ("oracle", Value::Str("foster-overfelt".into())),
        ("rel_tol", Value::Num(ORACLE_REL_TOL)),
        ("reps", Value::Num(reps as f64)),
        (
            "sizes",
            Value::Arr(sizes.iter().map(|&s| Value::Num(s as f64)).collect()),
        ),
        ("runs", Value::Arr(runs)),
    ]);
    exit_after_artifact(write_artifact(&out_path, &doc))
}
