//! Shared harness utilities for regenerating the paper's tables and
//! figures: deterministic workloads, wall-clock measurement, the
//! critical-path projection used to report parallel scaling on hosts with
//! fewer cores than the paper's 64-core Opteron, CSV output and quick ASCII
//! charts.

use polyclip::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

/// Measure one closure invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Measure the minimum of `reps` invocations (steadier than a single shot).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps {
        let (v, d) = time(&mut f);
        if d < best {
            best = d;
            out = v;
        }
    }
    (out, best)
}

/// The parallel-time projection for a slab run: the shared slab-index build,
/// plus the slowest slab's partition + clip, plus the sequential merge. On a
/// machine with ≥ p cores this equals the measured wall time; on smaller
/// hosts it reports what the decomposition *would* achieve — the
/// substitution documented in EXPERIMENTS.md for the paper's 64-core
/// testbed.
pub fn critical_path(times: &PhaseTimes) -> Duration {
    let slowest = times
        .per_slab_partition
        .iter()
        .zip(&times.per_slab_clip)
        .map(|(p, c)| *p + *c)
        .max()
        .unwrap_or(Duration::ZERO);
    times.sanitize + times.index + slowest + times.merge
}

/// Critical path of an overlay run: slowest slab + the (parallel-safe)
/// partition prologue.
pub fn overlay_critical_path(r: &OverlayResult) -> Duration {
    let slowest = r
        .per_slab_clip
        .iter()
        .copied()
        .max()
        .unwrap_or(Duration::ZERO);
    r.partition + slowest
}

/// A results table: header plus rows, printable and CSV-serializable.
#[derive(Debug, Default, Clone)]
pub struct ResultTable {
    /// Table name (file stem for the CSV).
    pub name: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(name: &str, header: &[&str]) -> Self {
        ResultTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.name)), s)
    }
}

/// Quick ASCII bar chart of labelled values (for the per-slab load profile).
pub fn ascii_bars(labels: &[String], values: &[f64], width: usize) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut out = String::new();
    for (l, v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(out, "{l:>10} | {} {v:.4}", "#".repeat(n));
    }
    out
}

/// Format a duration in milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The slab counts swept by the scaling figures.
pub const SLAB_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// Hand-rolled JSON emission, validation, and parsing for the
/// machine-readable bench artifacts (`BENCH_algo2.json`) and the
/// `polyclip-serve` line protocol. The workspace deliberately carries no
/// serde; the subset here (objects, arrays, strings, finite numbers, bools,
/// null) covers everything those emit, [`json::validate`] gives CI a cheap
/// well-formedness check on written files, and [`json::Value::parse`] is
/// the shared reader for the serve protocol and loadgen's artifact checks.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value restricted to what the bench artifacts need.
    #[derive(Debug, Clone)]
    pub enum Value {
        /// A finite number (non-finite inputs are emitted as `null`).
        Num(f64),
        /// A string (escaped on write).
        Str(String),
        /// A boolean.
        Bool(bool),
        /// An ordered list.
        Arr(Vec<Value>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Convenience object constructor from `(key, value)` pairs.
        pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
            Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }

        /// Parse one JSON document (the same subset [`validate`] accepts;
        /// `null` parses as a non-finite [`Value::Num`], mirroring how
        /// rendering emits non-finite numbers as `null`). Returns the byte
        /// position of the failure on malformed input.
        pub fn parse(text: &str) -> Result<Value, usize> {
            let b = text.as_bytes();
            let mut i = 0usize;
            skip_ws(b, &mut i);
            let v = parse_into(b, &mut i)?;
            skip_ws(b, &mut i);
            if i == b.len() {
                Ok(v)
            } else {
                Err(i)
            }
        }

        /// Object field lookup (first match); `None` on non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The finite number carried by a [`Value::Num`].
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) if x.is_finite() => Some(*x),
                _ => None,
            }
        }

        /// The string carried by a [`Value::Str`].
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean carried by a [`Value::Bool`].
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The elements of a [`Value::Arr`].
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(xs) => Some(xs),
                _ => None,
            }
        }

        /// Serialize onto a single line with no whitespace — the framing
        /// the line-delimited wire protocol in `polyclip-serve` needs
        /// (one document per `\n`-terminated line).
        pub fn render_compact(&self) -> String {
            let mut s = String::new();
            self.write_compact(&mut s);
            s
        }

        fn write_compact(&self, out: &mut String) {
            match self {
                Value::Num(x) if x.is_finite() => {
                    let _ = write!(out, "{x}");
                }
                Value::Num(_) => out.push_str("null"),
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::Str(s) => {
                    out.push('"');
                    out.push_str(&escape(s));
                    out.push('"');
                }
                Value::Arr(xs) => {
                    out.push('[');
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        x.write_compact(out);
                    }
                    out.push(']');
                }
                Value::Obj(kv) => {
                    out.push('{');
                    for (i, (k, v)) in kv.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\":", escape(k));
                        v.write_compact(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Serialize with two-space indentation.
        pub fn render(&self) -> String {
            let mut s = String::new();
            self.write(&mut s, 0);
            s.push('\n');
            s
        }

        fn write(&self, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Value::Num(x) if x.is_finite() => {
                    let _ = write!(out, "{x}");
                }
                Value::Num(_) => out.push_str("null"),
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::Str(s) => {
                    out.push('"');
                    out.push_str(&escape(s));
                    out.push('"');
                }
                Value::Arr(xs) if xs.is_empty() => out.push_str("[]"),
                Value::Arr(xs) => {
                    out.push_str("[\n");
                    for (i, x) in xs.iter().enumerate() {
                        out.push_str(&pad);
                        x.write(out, depth + 1);
                        out.push_str(if i + 1 < xs.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push(']');
                }
                Value::Obj(kv) if kv.is_empty() => out.push_str("{}"),
                Value::Obj(kv) => {
                    out.push_str("{\n");
                    for (i, (k, v)) in kv.iter().enumerate() {
                        let _ = write!(out, "{pad}\"{}\": ", escape(k));
                        v.write(out, depth + 1);
                        out.push_str(if i + 1 < kv.len() { ",\n" } else { "\n" });
                    }
                    out.push_str(&close);
                    out.push('}');
                }
            }
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Minimal well-formedness check: balanced structure, legal literals,
    /// exactly one top-level value. Returns the parse-failure position on
    /// error. Not a full RFC 8259 validator — just enough for CI to reject
    /// a truncated or garbled artifact. Shares the recursive-descent core
    /// with [`Value::parse`], so the two can never drift.
    pub fn validate(text: &str) -> Result<(), usize> {
        Value::parse(text).map(|_| ())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn parse_into(b: &[u8], i: &mut usize) -> Result<Value, usize> {
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                skip_ws(b, i);
                let mut kv: Vec<(String, Value)> = Vec::new();
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(kv));
                }
                loop {
                    skip_ws(b, i);
                    let key = parse_string(b, i)?;
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(*i);
                    }
                    *i += 1;
                    skip_ws(b, i);
                    let v = parse_into(b, i)?;
                    kv.push((key, v));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Obj(kv));
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                skip_ws(b, i);
                let mut xs: Vec<Value> = Vec::new();
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(xs));
                }
                loop {
                    skip_ws(b, i);
                    xs.push(parse_into(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Arr(xs));
                        }
                        _ => return Err(*i),
                    }
                }
            }
            Some(b'"') => parse_string(b, i).map(Value::Str),
            Some(b't') => parse_lit(b, i, b"true").map(|()| Value::Bool(true)),
            Some(b'f') => parse_lit(b, i, b"false").map(|()| Value::Bool(false)),
            Some(b'n') => parse_lit(b, i, b"null").map(|()| Value::Num(f64::NAN)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *i;
                *i += 1;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    *i += 1;
                }
                text_slice(b, start, *i)
                    .parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| start)
            }
            _ => Err(*i),
        }
    }

    /// Parse and unescape one string literal at `i`.
    fn parse_string(b: &[u8], i: &mut usize) -> Result<String, usize> {
        if b.get(*i) != Some(&b'"') {
            return Err(*i);
        }
        let start = *i;
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = b.get(*i + 1).ok_or(*i)?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*i + 2..*i + 6).ok_or(*i)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| *i)?, 16)
                                    .map_err(|_| *i)?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        _ => return Err(*i),
                    }
                    *i += 2;
                }
                _ => {
                    // Re-slice from the raw bytes to keep multi-byte UTF-8
                    // intact: advance to the next escape or quote.
                    let run_start = *i;
                    while *i < b.len() && b[*i] != b'"' && b[*i] != b'\\' {
                        *i += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[run_start..*i]).map_err(|_| run_start)?);
                }
            }
        }
        Err(start)
    }

    fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
            *i += lit.len();
            Ok(())
        } else {
            Err(*i)
        }
    }

    fn text_slice(b: &[u8], lo: usize, hi: usize) -> &str {
        std::str::from_utf8(&b[lo..hi]).unwrap_or("")
    }
}

/// Generate a Table III replica layer, caching nothing (generation is
/// deterministic and fast relative to clipping).
pub fn layer(id: usize, scale: f64, seed: u64) -> Layer {
    let spec = polyclip::datagen::table3_spec(id);
    Layer::new(polyclip::datagen::generate_layer(&spec, scale, seed))
}

/// Flatten a generated Table III layer into one multi-contour polygon set —
/// the many-small-contours regime where slab binning beats p full scans.
/// Shared by `bench_algo2` and `bench_prepared` (`gis_multi` workload).
pub fn flatten_layer(id: usize, scale: f64, seed: u64) -> PolygonSet {
    let mut out = PolygonSet::new();
    for feature in
        polyclip::datagen::generate_layer(&polyclip::datagen::table3_spec(id), scale, seed)
    {
        for c in feature.into_contours() {
            out.push(c);
        }
    }
    out
}

/// The common CLI surface of the bench bins: `--smoke` (CI-sized inputs,
/// single rep), `--out <path>`, `--n <vertices>`. Full-run defaults match
/// the checked-in artifacts: n = 40 000 vertices, Table III scale 0.02,
/// best-of-3 timing.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Artifact path (`--out`), pre-set to the bin's default.
    pub out_path: String,
    /// Synthetic-pair vertex count (`--n`).
    pub n: usize,
    /// Table III layer scale.
    pub scale: f64,
    /// Best-of-N repetitions per configuration.
    pub reps: usize,
    /// True when `--smoke` was passed.
    pub smoke: bool,
}

impl BenchArgs {
    /// Parse `std::env::args`, panicking on unknown flags (a bench bin has
    /// no business limping past a typo).
    pub fn parse(default_out: &str) -> Self {
        let mut parsed = BenchArgs {
            out_path: default_out.to_string(),
            n: 40_000,
            scale: 0.02,
            reps: 3,
            smoke: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--smoke" => {
                    parsed.n = 2_000;
                    parsed.scale = 0.002;
                    parsed.reps = 1;
                    parsed.smoke = true;
                }
                "--out" => parsed.out_path = it.next().expect("--out <path>").clone(),
                "--n" => {
                    parsed.n = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--n <vertices>");
                }
                other => panic!("unknown argument `{other}`"),
            }
        }
        parsed
    }
}

/// The shared artifact tail of every bench bin: render the document, write
/// it, re-read it, and validate the readback so a truncated or garbled
/// artifact fails loudly in CI instead of poisoning downstream analysis.
///
/// Returns `Err` (instead of panicking) on I/O failure or an invalid
/// readback so bins can propagate a non-zero exit status — a smoke job
/// that inspects only the exit code must not be able to pass on a
/// malformed artifact.
#[must_use = "a failed artifact write must fail the bench run"]
pub fn write_artifact(out_path: &str, doc: &json::Value) -> Result<(), String> {
    let text = doc.render();
    fs::write(out_path, &text).map_err(|e| format!("write {out_path}: {e}"))?;
    let readback = fs::read_to_string(out_path).map_err(|e| format!("re-read {out_path}: {e}"))?;
    json::validate(&readback)
        .map_err(|pos| format!("{out_path} is not valid JSON (parse failed at byte {pos})"))?;
    println!("wrote {out_path} ({} bytes, valid JSON)", readback.len());
    Ok(())
}

/// Exit-status adapter for the bench bins' `main`: report the artifact
/// error on stderr and return the conventional failure code.
pub fn exit_after_artifact(result: Result<(), String>) -> std::process::ExitCode {
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench artifact error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv_roundtrip() {
        let mut t = ResultTable::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["30".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("bb"));
        assert!(s.contains("30"));
        let dir = std::env::temp_dir().join("polyclip_bench_test");
        t.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bb"));
    }

    #[test]
    fn critical_path_is_index_plus_slowest_slab_plus_merge() {
        let times = PhaseTimes {
            sanitize: Duration::from_millis(1),
            index: Duration::from_millis(2),
            per_slab_partition: vec![Duration::from_millis(1), Duration::from_millis(2)],
            per_slab_clip: vec![Duration::from_millis(10), Duration::from_millis(5)],
            merge: Duration::from_millis(3),
            retry_total: Duration::ZERO,
            total: Duration::from_millis(23),
            ..Default::default()
        };
        assert_eq!(critical_path(&times), Duration::from_millis(17));
    }

    #[test]
    fn time_best_returns_minimum() {
        let mut n = 0u64;
        let (_, d) = time_best(3, || {
            n += 1;
            std::thread::sleep(Duration::from_millis(if n == 2 { 1 } else { 5 }));
        });
        assert!(d < Duration::from_millis(5));
    }

    #[test]
    fn ascii_bars_scale_to_width() {
        let s = ascii_bars(&["a".to_string(), "b".to_string()], &[1.0, 2.0], 10);
        assert!(s.lines().count() == 2);
        assert!(s.contains("##########"));
    }

    #[test]
    fn json_roundtrip_renders_and_validates() {
        let v = json::Value::obj(vec![
            ("name", json::Value::Str("bench \"quoted\"\n".into())),
            ("ok", json::Value::Bool(true)),
            ("nan", json::Value::Num(f64::NAN)),
            (
                "runs",
                json::Value::Arr(vec![
                    json::Value::Num(1.5),
                    json::Value::Num(-2e-3),
                    json::Value::obj(vec![("p", json::Value::Num(8.0))]),
                ]),
            ),
            ("empty", json::Value::Arr(vec![])),
        ]);
        let text = v.render();
        assert!(json::validate(&text).is_ok(), "{text}");
        assert!(text.contains("null"), "NaN must degrade to null");
    }

    #[test]
    fn json_parse_roundtrips_rendered_documents() {
        let v = json::Value::obj(vec![
            ("op", json::Value::Str("intersection".into())),
            ("deadline_ms", json::Value::Num(12.5)),
            ("partial", json::Value::Bool(false)),
            (
                "query",
                json::Value::Arr(vec![json::Value::Num(1.0), json::Value::Num(-2.0)]),
            ),
            ("note", json::Value::Str("line\nbreak \"q\"".into())),
        ]);
        let parsed = json::Value::parse(&v.render()).expect("parse rendered doc");
        assert_eq!(
            parsed.get("op").and_then(|v| v.as_str()),
            Some("intersection")
        );
        assert_eq!(
            parsed.get("deadline_ms").and_then(|v| v.as_f64()),
            Some(12.5)
        );
        assert_eq!(parsed.get("partial").and_then(|v| v.as_bool()), Some(false));
        let q = parsed.get("query").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(q[1].as_f64(), Some(-2.0));
        assert_eq!(
            parsed.get("note").and_then(|v| v.as_str()),
            Some("line\nbreak \"q\"")
        );
        // null parses as a non-finite Num, the mirror of how it renders.
        let n = json::Value::parse("{\"x\": null}").unwrap();
        assert!(matches!(n.get("x"), Some(json::Value::Num(x)) if x.is_nan()));
        assert_eq!(n.get("x").and_then(|v| v.as_f64()), None);
        // The wire framing: compact output is one line and parses back.
        let compact = v.render_compact();
        assert!(!compact.contains('\n'), "compact render must be one line");
        let reparsed = json::Value::parse(&compact).expect("parse compact doc");
        assert_eq!(
            reparsed.get("note").and_then(|v| v.as_str()),
            Some("line\nbreak \"q\"")
        );
    }

    #[test]
    fn json_parse_rejects_malformed_lines() {
        for bad in ["{\"a\": }", "[1, 2,] ", "{\"a\" 1}", "tru", "\"open", "{}}"] {
            assert!(json::Value::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn json_validate_rejects_garbage() {
        assert!(json::validate("{\"a\": }").is_err());
        assert!(json::validate("{\"a\": 1} trailing").is_err());
        assert!(json::validate("[1, 2,]").is_err());
        assert!(json::validate("").is_err());
        assert!(json::validate("{\"unterminated\": \"st").is_err());
        assert!(json::validate("{\"a\": [1, {\"b\": true}], \"c\": null}").is_ok());
    }
}
