//! Shared harness utilities for regenerating the paper's tables and
//! figures: deterministic workloads, wall-clock measurement, the
//! critical-path projection used to report parallel scaling on hosts with
//! fewer cores than the paper's 64-core Opteron, CSV output and quick ASCII
//! charts.

use polyclip::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

/// Measure one closure invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Measure the minimum of `reps` invocations (steadier than a single shot).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let (mut out, mut best) = time(&mut f);
    for _ in 1..reps {
        let (v, d) = time(&mut f);
        if d < best {
            best = d;
            out = v;
        }
    }
    (out, best)
}

/// The parallel-time projection for a slab run: the slowest slab's
/// partition + clip, plus the sequential merge. On a machine with ≥ p cores
/// this equals the measured wall time; on smaller hosts it reports what the
/// decomposition *would* achieve — the substitution documented in
/// EXPERIMENTS.md for the paper's 64-core testbed.
pub fn critical_path(times: &PhaseTimes) -> Duration {
    let slowest = times
        .per_slab_partition
        .iter()
        .zip(&times.per_slab_clip)
        .map(|(p, c)| *p + *c)
        .max()
        .unwrap_or(Duration::ZERO);
    slowest + times.merge
}

/// Critical path of an overlay run: slowest slab + the (parallel-safe)
/// partition prologue.
pub fn overlay_critical_path(r: &OverlayResult) -> Duration {
    let slowest = r
        .per_slab_clip
        .iter()
        .copied()
        .max()
        .unwrap_or(Duration::ZERO);
    r.partition + slowest
}

/// A results table: header plus rows, printable and CSV-serializable.
#[derive(Debug, Default, Clone)]
pub struct ResultTable {
    /// Table name (file stem for the CSV).
    pub name: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(name: &str, header: &[&str]) -> Self {
        ResultTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.name)), s)
    }
}

/// Quick ASCII bar chart of labelled values (for the per-slab load profile).
pub fn ascii_bars(labels: &[String], values: &[f64], width: usize) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut out = String::new();
    for (l, v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round() as usize;
        let _ = writeln!(out, "{l:>10} | {} {v:.4}", "#".repeat(n));
    }
    out
}

/// Format a duration in milliseconds with 3 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The slab counts swept by the scaling figures.
pub const SLAB_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64];

/// Generate a Table III replica layer, caching nothing (generation is
/// deterministic and fast relative to clipping).
pub fn layer(id: usize, scale: f64, seed: u64) -> Layer {
    let spec = polyclip::datagen::table3_spec(id);
    Layer::new(polyclip::datagen::generate_layer(&spec, scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv_roundtrip() {
        let mut t = ResultTable::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["30".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("bb"));
        assert!(s.contains("30"));
        let dir = std::env::temp_dir().join("polyclip_bench_test");
        t.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bb"));
    }

    #[test]
    fn critical_path_is_slowest_slab_plus_merge() {
        let times = PhaseTimes {
            per_slab_partition: vec![Duration::from_millis(1), Duration::from_millis(2)],
            per_slab_clip: vec![Duration::from_millis(10), Duration::from_millis(5)],
            merge: Duration::from_millis(3),
            total: Duration::from_millis(21),
        };
        assert_eq!(critical_path(&times), Duration::from_millis(14));
    }

    #[test]
    fn time_best_returns_minimum() {
        let mut n = 0u64;
        let (_, d) = time_best(3, || {
            n += 1;
            std::thread::sleep(Duration::from_millis(if n == 2 { 1 } else { 5 }));
        });
        assert!(d < Duration::from_millis(5));
    }

    #[test]
    fn ascii_bars_scale_to_width() {
        let s = ascii_bars(&["a".to_string(), "b".to_string()], &[1.0, 2.0], 10);
        assert!(s.lines().count() == 2);
        assert!(s.contains("##########"));
    }
}
