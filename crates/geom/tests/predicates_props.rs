//! Property tests for the geometry kernel: algebraic identities of the
//! robust predicates and segment intersection, on adversarially scaled
//! coordinates.

use polyclip_geom::predicates::{orient2d, orient2d_sign, point_on_segment, Orientation};
use polyclip_geom::{Point, Segment, SegmentIntersection};
use proptest::prelude::*;

fn arb_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e3f64..1.0e3,
        -1.0f64..1.0,
        // Large magnitudes stress the filtered predicate's error bound.
        -1.0e12f64..1.0e12,
    ]
}

fn arb_point() -> impl Strategy<Value = Point> {
    (arb_coord(), arb_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn orientation_is_antisymmetric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(orient2d(a, b, c), orient2d(b, a, c).reversed());
        prop_assert_eq!(orient2d(a, b, c), orient2d(a, c, b).reversed());
    }

    #[test]
    fn orientation_is_cyclic(a in arb_point(), b in arb_point(), c in arb_point()) {
        let o = orient2d(a, b, c);
        prop_assert_eq!(o, orient2d(b, c, a));
        prop_assert_eq!(o, orient2d(c, a, b));
    }

    #[test]
    fn degenerate_triples_are_collinear(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(orient2d(a, a, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, b), Orientation::Collinear);
        prop_assert_eq!(orient2d(a, b, a), Orientation::Collinear);
    }

    #[test]
    fn midpoints_are_never_strictly_sided(a in arb_point(), b in arb_point()) {
        // The rounded midpoint must lie within half an ulp of the segment:
        // the robust predicate may return Collinear or a side, but the two
        // half tests must never *both* claim strict sides with large
        // magnitude (sanity of the filter's error bound).
        let m = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
        let s1 = orient2d_sign(a, b, m);
        // The sign can be nonzero (m rounds off the line) but tiny compared
        // to the triangle with a genuinely offset point.
        let span = (b - a).norm();
        if span > 0.0 {
            let offset = Point::new(m.x - (b.y - a.y), m.y + (b.x - a.x));
            let s2 = orient2d_sign(a, b, offset).abs();
            prop_assert!(s1.abs() <= s2 * 1e-9 + f64::EPSILON * s2 + s2 * 0.0 + s2,
                "midpoint more sided than a unit-offset point");
        }
    }

    #[test]
    fn intersection_is_symmetric(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        let st = s.intersect(&t);
        let ts = t.intersect(&s);
        // Existence must agree; the reported point may differ only within
        // the overlap for collinear cases.
        prop_assert_eq!(
            matches!(st, SegmentIntersection::None),
            matches!(ts, SegmentIntersection::None)
        );
        if let (SegmentIntersection::At(p), SegmentIntersection::At(q)) = (st, ts) {
            // The parametric point's absolute error scales with the segment
            // lengths (t has ~1 ulp of relative error along the segment).
            let tol = 1e-9 * (1.0 + s.len() + t.len());
            prop_assert!(p.dist(&q) <= tol, "{} vs {} (tol {})", p, q, tol);
        }
    }

    #[test]
    fn reported_points_lie_on_both_boxes(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(c, d);
        if let SegmentIntersection::At(p) = s.intersect(&t) {
            let slack = 1e-9 * (1.0 + s.len() + t.len());
            let grow = |bb: polyclip_geom::BBox| polyclip_geom::BBox::new(
                bb.xmin - slack,
                bb.ymin - slack,
                bb.xmax + slack,
                bb.ymax + slack,
            );
            prop_assert!(grow(s.bbox()).contains(p), "{} outside subject box", p);
            prop_assert!(grow(t.bbox()).contains(p), "{} outside clip box", p);
        }
    }

    #[test]
    fn shared_endpoint_always_intersects(a in arb_point(), b in arb_point(), c in arb_point()) {
        let s = Segment::new(a, b);
        let t = Segment::new(b, c);
        prop_assert!(!matches!(s.intersect(&t), SegmentIntersection::None));
    }

    #[test]
    fn point_on_segment_accepts_vertices_and_rejects_offsets(a in arb_point(), b in arb_point()) {
        prop_assert!(point_on_segment(a, b, a));
        prop_assert!(point_on_segment(a, b, b));
        let d = b - a;
        if d.norm() > 1e-6 {
            // A point clearly off the supporting line.
            let off = Point::new(a.x - d.y, a.y + d.x);
            prop_assert!(!point_on_segment(a, b, off));
        }
    }

    #[test]
    fn x_at_y_is_monotone_consistent(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
        prop_assume!(a.y != b.y);
        let s = if a.y < b.y { Segment::new(a, b) } else { Segment::new(b, a) };
        let y = s.a.y + t * (s.b.y - s.a.y);
        prop_assume!(y >= s.a.y && y <= s.b.y);
        let x = s.x_at_y(y);
        let (lo, hi) = if s.a.x <= s.b.x { (s.a.x, s.b.x) } else { (s.b.x, s.a.x) };
        let slack = 1e-9 * (1.0 + lo.abs().max(hi.abs()));
        prop_assert!(x >= lo - slack && x <= hi + slack);
    }
}
