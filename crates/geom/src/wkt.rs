//! Well-Known Text (WKT) reading and writing for polygon sets.
//!
//! Supports the subset GIS polygon workflows need: `POLYGON`,
//! `MULTIPOLYGON` and `GEOMETRYCOLLECTION`-free round-tripping of contour
//! sets. Under the even-odd model a `POLYGON ((outer), (hole), ...)` maps
//! directly onto a [`PolygonSet`]'s contours, and a `MULTIPOLYGON` simply
//! concatenates them.

use crate::contour::Contour;
use crate::point::Point;
use crate::polygon::PolygonSet;
use std::fmt::Write as _;

/// Error from WKT parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WktError {
    /// Human-readable description with the offending position.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WKT error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for WktError {}

/// Serialize as `POLYGON` (single contour set with holes) or
/// `MULTIPOLYGON`-compatible text. Every contour is closed by repeating its
/// first vertex, as WKT requires. Empty sets serialize as `POLYGON EMPTY`.
pub fn to_wkt(p: &PolygonSet) -> String {
    if p.is_empty() {
        return "POLYGON EMPTY".to_string();
    }
    let mut s = String::from("POLYGON (");
    for (i, c) in p.contours().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('(');
        for (j, pt) in c.points().iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{} {}", pt.x, pt.y);
        }
        // Close the ring.
        if let Some(first) = c.points().first() {
            let _ = write!(s, ", {} {}", first.x, first.y);
        }
        s.push(')');
    }
    s.push(')');
    s
}

/// Parse `POLYGON (...)`, `MULTIPOLYGON (...)` or `POLYGON EMPTY` into a
/// polygon set (all rings concatenated; fill rule decides holes).
pub fn from_wkt(input: &str) -> Result<PolygonSet, WktError> {
    let mut p = Parser {
        s: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let tag = p.ident()?;
    match tag.to_ascii_uppercase().as_str() {
        "POLYGON" => {
            p.skip_ws();
            if p.try_keyword("EMPTY") {
                p.expect_end()?;
                return Ok(PolygonSet::new());
            }
            let rings = p.ring_list()?;
            p.expect_end()?;
            Ok(PolygonSet::from_contours(rings))
        }
        "MULTIPOLYGON" => {
            p.skip_ws();
            if p.try_keyword("EMPTY") {
                p.expect_end()?;
                return Ok(PolygonSet::new());
            }
            p.expect(b'(')?;
            let mut all = Vec::new();
            loop {
                p.skip_ws();
                all.extend(p.ring_list()?);
                p.skip_ws();
                if p.try_char(b',') {
                    continue;
                }
                p.expect(b')')?;
                break;
            }
            p.expect_end()?;
            Ok(PolygonSet::from_contours(all))
        }
        other => Err(p.err(&format!("unsupported geometry `{other}`"))),
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, m: &str) -> WktError {
        WktError {
            message: m.to_string(),
            position: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn ident(&mut self) -> Result<String, WktError> {
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_alphabetic() {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a geometry tag"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        let end = self.i + kw.len();
        if end <= self.s.len() && self.s[self.i..end].eq_ignore_ascii_case(kw.as_bytes()) {
            self.i = end;
            true
        } else {
            false
        }
    }

    fn try_char(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), WktError> {
        if self.try_char(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn expect_end(&mut self) -> Result<(), WktError> {
        self.skip_ws();
        if self.i == self.s.len() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("malformed number"))
    }

    /// `((x y, x y, ...), (x y, ...), ...)` — one polygon's ring list.
    fn ring_list(&mut self) -> Result<Vec<Contour>, WktError> {
        self.expect(b'(')?;
        let mut rings = Vec::new();
        loop {
            rings.push(self.ring()?);
            if self.try_char(b',') {
                continue;
            }
            self.expect(b')')?;
            break;
        }
        Ok(rings)
    }

    /// `(x y, x y, ...)` — one ring. An empty ring `()` is tolerated (real
    /// GIS exports produce them) and yields an empty contour, which the
    /// polygon-set constructor then drops. Unclosed rings are accepted: the
    /// closing edge is implicit in [`Contour`], so `(0 0, 1 0, 1 1)` and
    /// `(0 0, 1 0, 1 1, 0 0)` parse to the same contour.
    fn ring(&mut self) -> Result<Contour, WktError> {
        self.expect(b'(')?;
        let mut pts = Vec::new();
        if self.try_char(b')') {
            return Ok(Contour::new(pts));
        }
        loop {
            let x = self.number()?;
            let y = self.number()?;
            pts.push(Point::new(x, y));
            if self.try_char(b',') {
                continue;
            }
            self.expect(b')')?;
            break;
        }
        Ok(Contour::new(pts)) // drops the duplicated closing vertex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::rect;

    #[test]
    fn roundtrip_single_ring() {
        let p = PolygonSet::from_contour(rect(0.0, 0.0, 2.0, 1.0));
        let wkt = to_wkt(&p);
        assert_eq!(wkt, "POLYGON ((0 0, 2 0, 2 1, 0 1, 0 0))");
        let q = from_wkt(&wkt).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_with_hole() {
        let p = PolygonSet::from_contours(vec![rect(0.0, 0.0, 4.0, 4.0), rect(1.0, 1.0, 2.0, 2.0)]);
        let q = from_wkt(&to_wkt(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parses_multipolygon() {
        let q = from_wkt("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.vertex_count(), 6);
    }

    #[test]
    fn empty_and_whitespace_tolerance() {
        assert!(from_wkt("POLYGON EMPTY").unwrap().is_empty());
        assert_eq!(to_wkt(&PolygonSet::new()), "POLYGON EMPTY");
        let q = from_wkt("  polygon ( ( 0 0 , 1 0 , 0.5 1.5 , 0 0 ) )  ").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.contours()[0].len(), 3);
    }

    #[test]
    fn scientific_notation_and_negatives() {
        let q = from_wkt("POLYGON ((-1e-3 0, 2.5E2 0, 0 1.25, -1e-3 0))").unwrap();
        let pts = q.contours()[0].points();
        assert_eq!(pts[0].x, -1e-3);
        assert_eq!(pts[1].x, 250.0);
    }

    #[test]
    fn degenerate_rings_parse_and_roundtrip() {
        // Empty ring: tolerated, contributes no contour.
        assert!(from_wkt("POLYGON (())").unwrap().is_empty());
        let q = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), ())").unwrap();
        assert_eq!(q.len(), 1);

        // Two-vertex ring: parses, cannot bound area, dropped by the set.
        let q = from_wkt("POLYGON ((0 0, 1 1))").unwrap();
        assert!(q.is_empty());

        // Unclosed ring == closed ring (closing edge is implicit).
        let open = from_wkt("POLYGON ((0 0, 2 0, 2 1, 0 1))").unwrap();
        let closed = from_wkt("POLYGON ((0 0, 2 0, 2 1, 0 1, 0 0))").unwrap();
        assert_eq!(open, closed);
        // Writing always closes; re-reading restores the same set.
        assert_eq!(from_wkt(&to_wkt(&open)).unwrap(), open);

        // Repeated first vertex inside the ring collapses to one.
        let rep = from_wkt("POLYGON ((0 0, 0 0, 2 0, 2 1, 0 1, 0 0))").unwrap();
        assert_eq!(rep, closed);
        assert_eq!(from_wkt(&to_wkt(&rep)).unwrap(), rep);
    }

    #[test]
    fn errors_carry_positions() {
        assert!(from_wkt("LINESTRING (0 0, 1 1)").is_err());
        assert!(from_wkt("POLYGON ((0 0, 1 1)").is_err()); // unbalanced
        assert!(from_wkt("POLYGON ((0 zero, 1 1, 0 0))").is_err());
        let e = from_wkt("POLYGON ((0 0, 1 1, 2 0, 0 0)) junk").unwrap_err();
        assert!(e.message.contains("trailing"));
        assert!(e.position > 0);
        assert!(e.to_string().contains("byte"));
    }
}
