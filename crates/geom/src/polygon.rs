//! Polygon sets: collections of contours under a fill rule.
//!
//! Following GPC (the sequential library the paper builds Algorithm 2 on), a
//! "polygon" is a set of closed contours whose interior is defined by a fill
//! rule. Holes need no special representation: under the even-odd rule a
//! contour nested inside another *is* a hole, and self-intersecting contours
//! are meaningful inputs. This is exactly the input/output model of the
//! paper's clipper.

use crate::bbox::BBox;
use crate::contour::Contour;
use crate::point::Point;
use crate::segment::Segment;

/// How crossing parity / winding numbers map to "inside".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum FillRule {
    /// Inside ⇔ a ray crosses the boundary an odd number of times. The rule
    /// used throughout the paper (Lemma 3's parity prefix sums).
    #[default]
    EvenOdd,
    /// Inside ⇔ the winding number is nonzero.
    NonZero,
}

/// A (multi-)polygon: zero or more contours, interpreted under a fill rule
/// chosen at query/clip time.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PolygonSet {
    contours: Vec<Contour>,
}

impl PolygonSet {
    /// The empty polygon set.
    pub const fn new() -> Self {
        PolygonSet {
            contours: Vec::new(),
        }
    }

    /// Build from contours, dropping invalid (< 3 vertex) ones.
    pub fn from_contours(contours: Vec<Contour>) -> Self {
        PolygonSet {
            contours: contours.into_iter().filter(|c| c.is_valid()).collect(),
        }
    }

    /// A set holding a single contour.
    pub fn from_contour(c: Contour) -> Self {
        PolygonSet::from_contours(vec![c])
    }

    /// Convenience: single contour from `(x, y)` pairs.
    pub fn from_xy(xy: &[(f64, f64)]) -> Self {
        PolygonSet::from_contour(Contour::from_xy(xy))
    }

    /// The contours.
    #[inline]
    pub fn contours(&self) -> &[Contour] {
        &self.contours
    }

    /// Mutable access to the contours.
    #[inline]
    pub fn contours_mut(&mut self) -> &mut Vec<Contour> {
        &mut self.contours
    }

    /// Append a contour (ignored if invalid).
    pub fn push(&mut self, c: Contour) {
        if c.is_valid() {
            self.contours.push(c);
        }
    }

    /// Move all contours of `other` into `self`.
    pub fn extend(&mut self, other: PolygonSet) {
        self.contours.extend(other.contours);
    }

    /// Number of contours.
    #[inline]
    pub fn len(&self) -> usize {
        self.contours.len()
    }

    /// True if there are no contours.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.contours.is_empty()
    }

    /// Total vertex count across contours.
    pub fn vertex_count(&self) -> usize {
        self.contours.iter().map(|c| c.len()).sum()
    }

    /// Total edge count (== vertex count for closed contours).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.vertex_count()
    }

    /// Iterate over every directed edge of every contour.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.contours.iter().flat_map(|c| c.edges())
    }

    /// Location `(contour, vertex)` of the first NaN or infinite coordinate
    /// in the set, if any — the check behind the clipping API's
    /// non-finite-input rejection.
    pub fn first_non_finite(&self) -> Option<(usize, usize)> {
        self.contours
            .iter()
            .enumerate()
            .find_map(|(ci, c)| c.first_non_finite().map(|vi| (ci, vi)))
    }

    /// Tight bounding box over all contours (the paper's MBR).
    pub fn bbox(&self) -> BBox {
        self.contours
            .iter()
            .fold(BBox::EMPTY, |b, c| b.union(&c.bbox()))
    }

    /// Sum of the contours' signed areas. Under the even-odd rule with
    /// properly oriented output (outer CCW, holes CW) this is the enclosed
    /// area; for arbitrary inputs prefer a measure routine that honours the
    /// fill rule (provided by the sweep crate).
    pub fn signed_area(&self) -> f64 {
        self.contours.iter().map(|c| c.signed_area()).sum()
    }

    /// Point containment under `rule`, combining all contours.
    pub fn contains(&self, p: Point, rule: FillRule) -> bool {
        match rule {
            FillRule::EvenOdd => {
                let mut inside = false;
                for c in &self.contours {
                    if c.contains_even_odd(p) {
                        inside = !inside;
                    }
                }
                inside
            }
            FillRule::NonZero => {
                let wn: i32 = self.contours.iter().map(|c| c.winding_number(p)).sum();
                wn != 0
            }
        }
    }

    /// Translate every contour.
    pub fn translate(&self, d: Point) -> PolygonSet {
        PolygonSet {
            contours: self.contours.iter().map(|c| c.translate(d)).collect(),
        }
    }

    /// Scale every contour about the origin.
    pub fn scale(&self, s: f64) -> PolygonSet {
        PolygonSet {
            contours: self.contours.iter().map(|c| c.scale(s)).collect(),
        }
    }

    /// Consume into the contour vector.
    pub fn into_contours(self) -> Vec<Contour> {
        self.contours
    }
}

impl From<Contour> for PolygonSet {
    fn from(c: Contour) -> Self {
        PolygonSet::from_contour(c)
    }
}

impl FromIterator<Contour> for PolygonSet {
    fn from_iter<T: IntoIterator<Item = Contour>>(iter: T) -> Self {
        PolygonSet::from_contours(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::rect;
    use crate::point::pt;

    fn square_with_hole() -> PolygonSet {
        PolygonSet::from_contours(vec![rect(0.0, 0.0, 4.0, 4.0), rect(1.0, 1.0, 3.0, 3.0)])
    }

    #[test]
    fn even_odd_hole_semantics() {
        let p = square_with_hole();
        assert!(p.contains(pt(0.5, 0.5), FillRule::EvenOdd));
        assert!(!p.contains(pt(2.0, 2.0), FillRule::EvenOdd)); // inside hole
        assert!(!p.contains(pt(5.0, 5.0), FillRule::EvenOdd));
    }

    #[test]
    fn nonzero_same_orientation_fills_the_hole() {
        // Both contours CCW: winding number 2 in the "hole" region → filled
        // under NonZero, empty under EvenOdd.
        let p = square_with_hole();
        assert!(p.contains(pt(2.0, 2.0), FillRule::NonZero));
        // Reversing the inner contour makes it a true hole for NonZero too.
        let mut contours = p.into_contours();
        contours[1].reverse();
        let p2 = PolygonSet::from_contours(contours);
        assert!(!p2.contains(pt(2.0, 2.0), FillRule::NonZero));
    }

    #[test]
    fn invalid_contours_are_filtered() {
        let p = PolygonSet::from_contours(vec![
            Contour::from_xy(&[(0.0, 0.0), (1.0, 1.0)]),
            rect(0.0, 0.0, 1.0, 1.0),
        ]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn counts_and_bbox() {
        let p = square_with_hole();
        assert_eq!(p.vertex_count(), 8);
        assert_eq!(p.edge_count(), 8);
        assert_eq!(p.bbox(), BBox::new(0.0, 0.0, 4.0, 4.0));
        assert_eq!(p.edges().count(), 8);
    }

    #[test]
    fn signed_area_sums_contours() {
        let p = square_with_hole(); // both CCW: 16 + 4
        assert_eq!(p.signed_area(), 20.0);
        let mut contours = p.into_contours();
        contours[1].reverse(); // proper hole: 16 - 4
        let p2 = PolygonSet::from_contours(contours);
        assert_eq!(p2.signed_area(), 12.0);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = PolygonSet::new();
        assert!(e.is_empty());
        assert!(!e.contains(pt(0.0, 0.0), FillRule::EvenOdd));
        assert!(e.bbox().is_empty());
        assert_eq!(e.signed_area(), 0.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut a: PolygonSet = vec![rect(0.0, 0.0, 1.0, 1.0)].into_iter().collect();
        let b = PolygonSet::from_contour(rect(2.0, 0.0, 3.0, 1.0));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn transforms_compose() {
        let p = PolygonSet::from_contour(rect(0.0, 0.0, 1.0, 1.0));
        let q = p.translate(pt(1.0, 1.0)).scale(2.0);
        assert_eq!(q.bbox(), BBox::new(2.0, 2.0, 4.0, 4.0));
    }
}
