//! Total-order and comparison helpers for `f64` coordinates.
//!
//! The sweep machinery needs to sort, deduplicate and hash coordinates; plain
//! `f64` is not `Ord`/`Eq`/`Hash`. [`OrdF64`] is a thin newtype that provides
//! all three by rejecting NaN at construction time, which the geometry kernel
//! guarantees never to produce for finite inputs.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Half machine epsilon, 2⁻⁵³ — the rounding-error unit of a single f64
/// operation. The floating-point filters of [`crate::predicates`] build
/// their error bounds from this value.
pub const EPS_MACHINE: f64 = 1.110_223_024_625_156_5e-16;

/// Relative cross-product tolerance below which three points are treated as
/// collinear at rounding level: `|cross| <= EPS_COLLINEAR_REL · |ab| · |ac|`.
/// Used by the virtual-vertex packer and the input sanitizer's spike cull.
pub const EPS_COLLINEAR_REL: f64 = 1e-12;

/// On-boundary classification tolerance for the baseline clippers and the
/// datagen guards — points within this distance of an edge count as on it.
pub const EPS_BOUNDARY: f64 = 1e-9;

/// Relative event-snap tolerance: vertex/intersection y's within
/// `EPS_EVENT_SNAP_REL · |y|` of an existing scanline cluster onto it
/// (≈ 16 ulps — see `sweep::edges::snap_tolerance`).
pub const EPS_EVENT_SNAP_REL: f64 = 16.0 * f64::EPSILON;

/// Round `v` onto the uniform grid with the given cell size.
///
/// A non-positive `cell` disables snapping (identity) — the default
/// configuration, under which every pipeline result is bit-identical to a
/// build without snap rounding. Non-finite grid positions (overflow-scale
/// `v / cell`) also pass through unchanged rather than poisoning the
/// coordinate.
#[inline]
pub fn snap_to_grid(v: f64, cell: f64) -> f64 {
    if cell <= 0.0 {
        return v;
    }
    let snapped = (v / cell).round() * cell;
    if snapped.is_finite() {
        snapped
    } else {
        v
    }
}

/// A finite `f64` with total ordering, equality and hashing.
///
/// Construction panics on NaN: coordinates in this workspace are always
/// finite, so a NaN indicates a logic error upstream and should fail loudly.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a finite `f64`.
    ///
    /// # Panics
    /// Panics if `v` is NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrdF64 cannot hold NaN");
        OrdF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64::new(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed non-NaN, so partial_cmp always succeeds.
        self.0.partial_cmp(&other.0).expect("OrdF64 holds no NaN")
    }
}

impl Hash for OrdF64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to +0.0 so that values comparing equal hash equally.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Relative/absolute tolerance comparison used by tests and measures.
///
/// Returns `true` when `a` and `b` differ by at most `eps` in absolute terms
/// or by at most `eps` relative to the larger magnitude.
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= eps {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= eps * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ordering_is_total_for_finite_values() {
        let mut v = [
            OrdF64::new(3.5),
            OrdF64::new(-1.0),
            OrdF64::new(0.0),
            OrdF64::new(2.25),
        ];
        v.sort();
        let got: Vec<f64> = v.iter().map(|x| x.get()).collect();
        assert_eq!(got, vec![-1.0, 0.0, 2.25, 3.5]);
    }

    #[test]
    fn negative_zero_equals_positive_zero_and_hashes_equal() {
        let a = OrdF64::new(0.0);
        let b = OrdF64::new(-0.0);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn dedup_after_sort_removes_bitwise_duplicates() {
        let mut v = vec![OrdF64::new(1.0), OrdF64::new(1.0), OrdF64::new(2.0)];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn snap_to_grid_rounds_and_degrades_gracefully() {
        assert_eq!(snap_to_grid(1.26, 0.5), 1.5);
        assert_eq!(snap_to_grid(-0.74, 0.5), -0.5);
        // cell <= 0 disables snapping exactly.
        assert_eq!(snap_to_grid(1.26, 0.0), 1.26);
        assert_eq!(snap_to_grid(1.26, -1.0), 1.26);
        // Overflow-scale grid positions fall back to the unsnapped value.
        assert_eq!(snap_to_grid(1e308, 1e-320), 1e308);
        // Snapped values are exactly representable grid multiples.
        let v = snap_to_grid(0.30000000001, 0.1);
        assert_eq!(v, 0.1f64 * 3.0);
    }

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1.0, 1.01, 1e-9));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = OrdF64::new(f64::NAN);
    }
}
