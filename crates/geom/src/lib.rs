//! Geometry kernel for the `polyclip` workspace.
//!
//! This crate provides the small, self-contained geometric substrate that the
//! clipping algorithms of Puri & Prasad (ICPP 2014) are built on:
//!
//! * [`Point`], [`Segment`], [`BBox`] primitives with total-order helpers for
//!   `f64` coordinates ([`OrdF64`]);
//! * robust orientation predicates ([`predicates::orient2d`]) using a fast
//!   floating-point filter with an exact expansion-arithmetic fallback in the
//!   style of Shewchuk's adaptive predicates;
//! * segment–segment intersection ([`Segment::intersect`]);
//! * polygon containers: [`Contour`] (a closed ring, possibly
//!   self-intersecting) and [`PolygonSet`] (a collection of contours under an
//!   even-odd or nonzero fill rule), with areas, bounding boxes and
//!   point-in-polygon tests.
//!
//! Nothing in this crate is parallel; it is the shared vocabulary of the
//! sweep, clipping and data-generation crates.

pub mod bbox;
pub mod contour;
pub mod float;
pub mod geojson;
pub mod hull;
pub mod measure;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod segment;
pub mod svg;
pub mod wkt;

pub use bbox::BBox;
pub use contour::Contour;
pub use float::{
    approx_eq, snap_to_grid, OrdF64, EPS_BOUNDARY, EPS_COLLINEAR_REL, EPS_EVENT_SNAP_REL,
    EPS_MACHINE,
};
pub use hull::{convex_contains, convex_hull};
pub use measure::{overlap_area, region_area, symmetric_difference_area};
pub use point::Point;
pub use polygon::{FillRule, PolygonSet};
pub use predicates::{orient2d, Orientation};
pub use segment::{Segment, SegmentIntersection};
