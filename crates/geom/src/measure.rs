//! Independent area measures by scanline integration.
//!
//! The differential-verification harness needs to decide whether two clip
//! results describe the same region **without** trusting either clipper's
//! own machinery. Everything here is built from first principles on top of
//! segment/parity primitives only: no scanbeam structures, no dissolve, no
//! stitching — a shared-code bug in the engine cannot hide inside these
//! measures.
//!
//! The method is a horizontal-band decomposition: cut the plane at every
//! edge-endpoint `y` and at every pairwise edge-crossing `y` (so that no
//! two edges cross *inside* a band), then integrate per band. Within a
//! band the left/right order of edges is fixed, every even-odd interval
//! boundary moves linearly in `y`, and the quantity integrated (covered
//! length, or symmetric-difference length) is therefore **linear in `y`**
//! across the band — which makes the midpoint-sample × height product the
//! *exact* trapezoid integral, up to floating-point rounding. No sampling
//! error, no epsilon tuning.
//!
//! Cost is `O(E² + B·E log E)` for `E` edges and `B` bands — quadratic,
//! deliberately so: this is a verification oracle, not a production path,
//! and the simple all-pairs crossing enumeration is easy to audit.

use crate::point::Point;
use crate::polygon::PolygonSet;

/// A non-horizontal edge normalized to `y0 < y1`, tagged with the polygon
/// set (0 or 1) it came from.
#[derive(Clone, Copy, Debug)]
struct BandEdge {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    set: u8,
}

impl BandEdge {
    /// Interpolated x at height `y` (callers guarantee `y0 < y < y1`).
    #[inline]
    fn x_at(&self, y: f64) -> f64 {
        self.x0 + (self.x1 - self.x0) * ((y - self.y0) / (self.y1 - self.y0))
    }
}

/// Collect the non-horizontal edges of `p`, tagged with `set`.
///
/// Horizontal edges never cross a horizontal sample line transversally and
/// carry no parity information for this decomposition; their endpoints
/// still contribute band boundaries through the adjacent edges.
fn collect_edges(p: &PolygonSet, set: u8, out: &mut Vec<BandEdge>) {
    for c in p.contours() {
        let pts = c.points();
        let n = pts.len();
        for i in 0..n {
            let (a, b) = (pts[i], pts[(i + 1) % n]);
            if !a.is_finite() || !b.is_finite() || a.y == b.y {
                continue;
            }
            let (lo, hi) = if a.y < b.y { (a, b) } else { (b, a) };
            out.push(BandEdge {
                x0: lo.x,
                y0: lo.y,
                x1: hi.x,
                y1: hi.y,
                set,
            });
        }
    }
}

/// All band-boundary `y` values: edge endpoints plus every pairwise proper
/// crossing of the combined edge set (same-set crossings included — two
/// edges of *one* polygon crossing mid-band would also bend the integrand).
fn band_boundaries(edges: &[BandEdge]) -> Vec<f64> {
    let mut ys: Vec<f64> = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        ys.push(e.y0);
        ys.push(e.y1);
    }
    // Sort edges by y0 so the inner loop can stop once candidate edges
    // start above the current edge's span — prunes the all-pairs scan to
    // pairs with overlapping y-ranges.
    let mut by_y0: Vec<&BandEdge> = edges.iter().collect();
    by_y0.sort_by(|a, b| a.y0.total_cmp(&b.y0));
    for (i, e) in by_y0.iter().enumerate() {
        for f in by_y0.iter().skip(i + 1) {
            if f.y0 >= e.y1 {
                break; // y-ranges disjoint from here on
            }
            if let Some(y) = proper_crossing_y(e, f) {
                ys.push(y);
            }
        }
    }
    ys.retain(|y| y.is_finite());
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    ys
}

/// The `y` of a transversal interior crossing of two edges, if any.
///
/// Endpoint touches and collinear overlaps return `None`: their `y`s are
/// already band boundaries via the edge endpoints.
fn proper_crossing_y(e: &BandEdge, f: &BandEdge) -> Option<f64> {
    let (a0, a1) = (Point::new(e.x0, e.y0), Point::new(e.x1, e.y1));
    let (b0, b1) = (Point::new(f.x0, f.y0), Point::new(f.x1, f.y1));
    let o1 = crate::predicates::orient2d_sign(b0, b1, a0);
    let o2 = crate::predicates::orient2d_sign(b0, b1, a1);
    let o3 = crate::predicates::orient2d_sign(a0, a1, b0);
    let o4 = crate::predicates::orient2d_sign(a0, a1, b1);
    if !(o1 * o2 < 0.0 && o3 * o4 < 0.0) {
        return None;
    }
    let d = a1 - a0;
    let g = b1 - b0;
    let denom = d.cross(&g);
    if denom == 0.0 {
        return None;
    }
    let t = (b0 - a0).cross(&g) / denom;
    Some(a0.y + t * d.y)
}

/// Sorted x-crossings of the horizontal line `y = ym` for one set.
fn crossings_at(edges: &[BandEdge], set: u8, ym: f64, out: &mut Vec<f64>) {
    out.clear();
    for e in edges {
        if e.set == set && e.y0 <= ym && ym < e.y1 {
            out.push(e.x_at(ym));
        }
    }
    out.sort_by(f64::total_cmp);
}

/// Integrate `weight(inside_a, inside_b) ∈ {0, 1}` over the plane by
/// horizontal bands. The weight toggles at each crossing of either set.
fn integrate(edges: &[BandEdge], weight: impl Fn(bool, bool) -> bool) -> f64 {
    let ys = band_boundaries(edges);
    let mut xa: Vec<f64> = Vec::new();
    let mut xb: Vec<f64> = Vec::new();
    let mut total = 0.0f64;
    for w in ys.windows(2) {
        let (y0, y1) = (w[0], w[1]);
        let ym = 0.5 * (y0 + y1);
        // Denormally thin bands whose midpoint collapses onto a boundary
        // cannot be sampled representatively; their area is ~0 anyway.
        if !(y0 < ym && ym < y1) {
            continue;
        }
        crossings_at(edges, 0, ym, &mut xa);
        crossings_at(edges, 1, ym, &mut xb);
        // Merge-walk both crossing lists, accumulating length where the
        // weight predicate holds.
        let (mut i, mut j) = (0usize, 0usize);
        let (mut in_a, mut in_b) = (false, false);
        let mut len = 0.0f64;
        let mut prev_x = f64::NAN;
        while i < xa.len() || j < xb.len() {
            let take_a = j >= xb.len() || (i < xa.len() && xa[i] <= xb[j]);
            let x = if take_a { xa[i] } else { xb[j] };
            if weight(in_a, in_b) && prev_x.is_finite() {
                len += x - prev_x;
            }
            if take_a {
                in_a = !in_a;
                i += 1;
            } else {
                in_b = !in_b;
                j += 1;
            }
            prev_x = x;
        }
        total += (y1 - y0) * len;
    }
    total
}

/// Area of the even-odd region of `p`, measured independently of any
/// clipping machinery (band decomposition + parity integration).
///
/// Unlike summing signed contour areas, this is correct for overlapping
/// and self-intersecting contours: it measures the *region*, not the
/// winding.
pub fn region_area(p: &PolygonSet) -> f64 {
    let mut edges = Vec::new();
    collect_edges(p, 0, &mut edges);
    integrate(&edges, |a, _| a)
}

/// Area of the symmetric difference of the even-odd regions of `a` and
/// `b` — the canonical "how different are these two clip outputs" measure.
///
/// Zero (up to floating-point rounding) iff the two sets describe the same
/// region, regardless of vertex order, ring rotation, contour orientation,
/// added collinear vertices, or how holes are decomposed. This is what
/// makes it the right comparator for cross-algorithm verification, where
/// outputs are region-equal but never vertex-equal.
pub fn symmetric_difference_area(a: &PolygonSet, b: &PolygonSet) -> f64 {
    let mut edges = Vec::new();
    collect_edges(a, 0, &mut edges);
    collect_edges(b, 1, &mut edges);
    integrate(&edges, |ia, ib| ia != ib)
}

/// Area of the even-odd intersection of `a` and `b`, same machinery. Used
/// by tests that need an independent inclusion–exclusion check.
pub fn overlap_area(a: &PolygonSet, b: &PolygonSet) -> f64 {
    let mut edges = Vec::new();
    collect_edges(a, 0, &mut edges);
    collect_edges(b, 1, &mut edges);
    integrate(&edges, |ia, ib| ia && ib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contour::rect;
    use crate::contour::Contour;

    fn square(x: f64, y: f64, s: f64) -> PolygonSet {
        PolygonSet::from_contour(rect(x, y, x + s, y + s))
    }

    #[test]
    fn region_area_of_square_and_ring() {
        assert!((region_area(&square(0.0, 0.0, 2.0)) - 4.0).abs() < 1e-12);
        // Square with a concentric hole: even-odd area is the ring.
        let mut p = square(0.0, 0.0, 4.0);
        p.push(rect(1.0, 1.0, 3.0, 3.0));
        assert!((region_area(&p) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn region_area_handles_overlapping_contours() {
        // Two overlapping squares under even-odd: the overlap cancels.
        let mut p = square(0.0, 0.0, 2.0);
        p.push(rect(1.0, 1.0, 3.0, 3.0));
        assert!((region_area(&p) - 6.0).abs() < 1e-12, "xor region");
    }

    #[test]
    fn symmetric_difference_zero_for_rotated_and_reversed_rings() {
        let a = square(0.0, 0.0, 2.0);
        let pts = a.contours()[0].points().to_vec();
        // Rotate the starting vertex and reverse the orientation.
        let mut rotated: Vec<_> = pts[2..].to_vec();
        rotated.extend_from_slice(&pts[..2]);
        rotated.reverse();
        let b = PolygonSet::from_contour(Contour::new(rotated));
        assert_eq!(symmetric_difference_area(&a, &b), 0.0);
    }

    #[test]
    fn symmetric_difference_sees_real_differences() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 0.0, 2.0);
        // Two unit-width slivers of height 2 differ.
        assert!((symmetric_difference_area(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_difference_ignores_collinear_vertices() {
        let a = square(0.0, 0.0, 2.0);
        let b = PolygonSet::from_xy(&[
            (0.0, 0.0),
            (1.0, 0.0), // collinear midpoint inserted
            (2.0, 0.0),
            (2.0, 2.0),
            (0.0, 2.0),
        ]);
        assert_eq!(symmetric_difference_area(&a, &b), 0.0);
    }

    #[test]
    fn overlap_area_is_inclusion_exclusion_consistent() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let i = overlap_area(&a, &b);
        assert!((i - 1.0).abs() < 1e-12);
        let mut both = a.clone();
        both.extend(b.clone());
        // area(A xor B) = area(A) + area(B) - 2·area(A∩B)
        let xor = region_area(&both);
        assert!((xor - (4.0 + 4.0 - 2.0 * i)).abs() < 1e-12);
    }

    #[test]
    fn crossing_edges_inside_a_band_are_cut() {
        // A self-crossing ring whose signed (shoelace) area is exactly 0
        // but whose even-odd region has area 2: every vertex sits at y = 0
        // or y = 2, so the only interior band boundary is the crossing at
        // y = 1 — without it the midpoint sample lands on the crossing
        // point and the integral is garbage.
        let bow = PolygonSet::from_xy(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        assert_eq!(bow.contours()[0].signed_area(), 0.0);
        assert!((region_area(&bow) - 2.0).abs() < 1e-12);
    }
}
