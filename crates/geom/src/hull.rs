//! Convex hulls (Andrew's monotone chain) and related helpers.

use crate::contour::Contour;
use crate::point::Point;
use crate::predicates::{orient2d, orient2d_sign, Orientation};

/// Convex hull of a point set, as a counterclockwise contour.
///
/// Collinear boundary points are dropped (strict hull). Degenerate inputs
/// (fewer than 3 distinct non-collinear points) yield an invalid contour
/// that callers can detect via [`Contour::is_valid`].
pub fn convex_hull(points: &[Point]) -> Contour {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return Contour::new(pts);
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower chain.
    for &p in &pts {
        while hull.len() >= 2 && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper chain.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d_sign(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the first point is repeated at the end
    Contour::new(hull)
}

/// True if `p` lies inside or on the boundary of the convex CCW `hull`.
pub fn convex_contains(hull: &Contour, p: Point) -> bool {
    let pts = hull.points();
    let n = pts.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        if orient2d(pts[i], pts[(i + 1) % n], p) == Orientation::Clockwise {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            pt(0.0, 0.0),
            pt(2.0, 0.0),
            pt(2.0, 2.0),
            pt(0.0, 2.0),
            pt(1.0, 1.0), // interior
            pt(0.5, 1.5), // interior
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(h.is_ccw());
        assert!(h.is_convex());
        assert_eq!(h.area(), 4.0);
    }

    #[test]
    fn collinear_boundary_points_dropped() {
        let pts = [
            pt(0.0, 0.0),
            pt(1.0, 0.0), // collinear on the bottom edge
            pt(2.0, 0.0),
            pt(2.0, 2.0),
            pt(0.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn hull_contains_all_inputs() {
        let mut s = 0xfeedu64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        let pts: Vec<Point> = (0..200).map(|_| pt(rng(), rng())).collect();
        let h = convex_hull(&pts);
        assert!(h.is_valid());
        assert!(h.is_convex());
        assert!(h.is_ccw());
        for p in &pts {
            assert!(convex_contains(&h, *p), "{p} escaped its hull");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(!convex_hull(&[]).is_valid());
        assert!(!convex_hull(&[pt(1.0, 1.0)]).is_valid());
        assert!(!convex_hull(&[pt(0.0, 0.0), pt(1.0, 1.0)]).is_valid());
        // All collinear: hull degenerates to a segment (invalid contour).
        let line: Vec<Point> = (0..10).map(|i| pt(i as f64, i as f64 * 2.0)).collect();
        let h = convex_hull(&line);
        assert!(
            h.len() <= 2,
            "collinear hull must collapse, got {}",
            h.len()
        );
    }

    #[test]
    fn duplicate_points_are_harmless() {
        let pts = [
            pt(0.0, 0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            pt(1.0, 0.0),
            pt(0.5, 1.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
        assert!(h.is_ccw());
    }
}
