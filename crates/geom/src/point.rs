//! 2-D points with exact-bit equality and total ordering.

use crate::float::OrdF64;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the plane with `f64` coordinates.
///
/// Equality is exact (bitwise on the coordinate values after `-0.0`
/// normalization through [`Point::key`]); the clipping engine relies on
/// coordinates produced once and reused verbatim, so exact equality is the
/// correct notion of "same vertex".
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate (the sweep direction of the paper's scanbeams).
    pub y: f64,
}

impl Point {
    /// Construct a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// A hashable/sortable key `(y, x)` — sweep order: bottom-to-top, then
    /// left-to-right, matching the paper's scanline order.
    #[inline]
    pub fn key(&self) -> (OrdF64, OrdF64) {
        (OrdF64::new(self.y), OrdF64::new(self.x))
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(&self, o: &Point) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, o: &Point) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, o: &Point) -> f64 {
        (*self - *o).norm()
    }

    /// Linear interpolation: `self + t * (o - self)`.
    #[inline]
    pub fn lerp(&self, o: &Point, t: f64) -> Point {
        Point::new(self.x + t * (o.x - self.x), self.y + t * (o.y - self.y))
    }

    /// True if all coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Both coordinates rounded onto the uniform grid with cell size `cell`
    /// (identity when `cell <= 0` — see [`crate::float::snap_to_grid`]).
    #[inline]
    pub fn snap_to_grid(&self, cell: f64) -> Point {
        Point::new(
            crate::float::snap_to_grid(self.x, cell),
            crate::float::snap_to_grid(self.y, cell),
        )
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, o: Point) -> Point {
        Point::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, o: Point) -> Point {
        Point::new(self.x - o.x, self.y - o.y)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, s: f64) -> Point {
        Point::new(self.x / s, self.y / s)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_vectors() {
        let a = pt(1.0, 2.0);
        let b = pt(3.0, -1.0);
        assert_eq!(a + b, pt(4.0, 1.0));
        assert_eq!(a - b, pt(-2.0, 3.0));
        assert_eq!(-a, pt(-1.0, -2.0));
        assert_eq!(a * 2.0, pt(2.0, 4.0));
        assert_eq!(b / 2.0, pt(1.5, -0.5));
    }

    #[test]
    fn cross_sign_encodes_turn_direction() {
        // (1,0) x (0,1) = +1: counterclockwise.
        assert!(pt(1.0, 0.0).cross(&pt(0.0, 1.0)) > 0.0);
        assert!(pt(0.0, 1.0).cross(&pt(1.0, 0.0)) < 0.0);
        assert_eq!(pt(2.0, 2.0).cross(&pt(1.0, 1.0)), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = pt(0.0, 0.0);
        let b = pt(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), pt(1.0, 2.0));
    }

    #[test]
    fn key_orders_by_y_then_x() {
        let mut v = vec![pt(1.0, 2.0), pt(0.0, 1.0), pt(-1.0, 2.0)];
        v.sort_by_key(|p| p.key());
        assert_eq!(v, vec![pt(0.0, 1.0), pt(-1.0, 2.0), pt(1.0, 2.0)]);
    }

    #[test]
    fn distances() {
        assert_eq!(pt(0.0, 0.0).dist(&pt(3.0, 4.0)), 5.0);
        assert_eq!(pt(3.0, 4.0).norm2(), 25.0);
    }
}
